//! Structural validator for Chrome/Perfetto trace JSON.
//!
//! The tracer's [`to_chrome_json`](confluence_core::telemetry::TraceReport::to_chrome_json)
//! export is consumed by external viewers, so CI needs a loadability
//! check that doesn't depend on one. This module carries a minimal JSON
//! parser (the workspace is dependency-free by design) plus the checks a
//! viewer would trip over: a `traceEvents` array of objects, phase tags
//! with their required fields, non-negative slice durations, and every
//! flow-arrow terminus (`ph:"f"`) preceded by a matching start
//! (`ph:"s"`) with the same id.

use std::collections::HashSet;

/// A parsed JSON value (just enough for trace validation).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Self {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn err(&self, what: &str) -> String {
        format!("JSON parse error at byte {}: {what}", self.pos)
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.parse_object(),
            Some(b'[') => self.parse_array(),
            Some(b'"') => Ok(Json::Str(self.parse_string()?)),
            Some(b't') => self.parse_lit("true", Json::Bool(true)),
            Some(b'f') => self.parse_lit("false", Json::Bool(false)),
            Some(b'n') => self.parse_lit("null", Json::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(self.err(&format!("unexpected {:?}", b as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_lit(&mut self, lit: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {lit}")))
        }
    }

    fn parse_number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(b) = self.peek() {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number {text:?}")))
    }

    fn parse_string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 code point.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn parse_array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected , or ]")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected , or }")),
            }
        }
    }
}

/// Parse a JSON document (rejects trailing garbage).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.err("trailing data after document"));
    }
    Ok(value)
}

/// What a validated trace contains, for reporting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TraceStats {
    /// Total entries in `traceEvents`.
    pub events: usize,
    /// Complete slices (`ph:"X"`).
    pub slices: usize,
    /// Instant markers (`ph:"i"`).
    pub instants: usize,
    /// Flow-arrow starts (`ph:"s"`).
    pub flow_starts: usize,
    /// Flow-arrow termini (`ph:"f"`).
    pub flow_ends: usize,
    /// `thread_name` metadata records (`ph:"M"`).
    pub threads: usize,
}

fn field_num(event: &Json, key: &str, index: usize) -> Result<f64, String> {
    event
        .get(key)
        .and_then(Json::as_num)
        .ok_or_else(|| format!("event {index}: missing numeric {key:?}"))
}

fn field_str<'a>(event: &'a Json, key: &str, index: usize) -> Result<&'a str, String> {
    event
        .get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| format!("event {index}: missing string {key:?}"))
}

/// Validate Chrome-trace JSON text; returns counters on success.
pub fn validate_chrome_trace(text: &str) -> Result<TraceStats, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .ok_or("root object has no \"traceEvents\"")?;
    let events = match events {
        Json::Arr(items) => items,
        _ => return Err("\"traceEvents\" is not an array".into()),
    };
    let mut stats = TraceStats {
        events: events.len(),
        ..TraceStats::default()
    };
    let mut open_flows: HashSet<u64> = HashSet::new();
    for (index, event) in events.iter().enumerate() {
        if !matches!(event, Json::Obj(_)) {
            return Err(format!("event {index}: not an object"));
        }
        let phase = field_str(event, "ph", index)?;
        field_num(event, "pid", index)?;
        field_num(event, "tid", index)?;
        match phase {
            "M" => {
                stats.threads += 1;
                field_str(event, "name", index)?;
            }
            "X" => {
                stats.slices += 1;
                field_str(event, "name", index)?;
                field_num(event, "ts", index)?;
                let dur = field_num(event, "dur", index)?;
                if dur < 0.0 {
                    return Err(format!("event {index}: negative slice duration {dur}"));
                }
            }
            "i" => {
                stats.instants += 1;
                field_str(event, "name", index)?;
                field_num(event, "ts", index)?;
            }
            "s" | "f" => {
                field_str(event, "name", index)?;
                field_num(event, "ts", index)?;
                let id = field_num(event, "id", index)? as u64;
                if phase == "s" {
                    stats.flow_starts += 1;
                    open_flows.insert(id);
                } else {
                    stats.flow_ends += 1;
                    // Events are emitted in wave order, so the binding
                    // start must already have appeared.
                    if !open_flows.contains(&id) {
                        return Err(format!("event {index}: flow end with unopened id {id}"));
                    }
                    if field_str(event, "bp", index)? != "e" {
                        return Err(format!("event {index}: flow end without bp:\"e\""));
                    }
                }
            }
            other => return Err(format!("event {index}: unknown phase {other:?}")),
        }
    }
    if stats.events > 0 && stats.threads == 0 {
        return Err("no thread_name metadata for a non-empty trace".into());
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let doc = parse_json(r#"{"a":[1,-2.5,"x\n",true,null],"b":{"c":3e2}}"#).unwrap();
        let arr = doc.get("a").unwrap();
        match arr {
            Json::Arr(items) => {
                assert_eq!(items[0], Json::Num(1.0));
                assert_eq!(items[1], Json::Num(-2.5));
                assert_eq!(items[2], Json::Str("x\n".into()));
                assert_eq!(items[3], Json::Bool(true));
                assert_eq!(items[4], Json::Null);
            }
            _ => panic!("expected array"),
        }
        assert_eq!(doc.get("b").unwrap().get("c").unwrap().as_num(), Some(300.0));
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse_json("{} x").is_err());
        assert!(parse_json("{\"a\":}").is_err());
        assert!(parse_json("[1,]").is_err());
    }

    #[test]
    fn accepts_a_minimal_trace() {
        let text = r#"{"traceEvents":[
            {"ph":"M","pid":1,"tid":0,"name":"thread_name","args":{"name":"a"}},
            {"ph":"X","pid":1,"tid":0,"name":"fire","ts":0,"dur":5},
            {"ph":"s","pid":1,"tid":0,"name":"wave","cat":"wave","id":7,"ts":0},
            {"ph":"f","pid":1,"tid":0,"name":"wave","cat":"wave","id":7,"ts":3,"bp":"e"},
            {"ph":"i","pid":1,"tid":0,"name":"enqueue","ts":2,"s":"t"}
        ],"displayTimeUnit":"ms"}"#;
        let stats = validate_chrome_trace(text).unwrap();
        assert_eq!(stats.events, 5);
        assert_eq!(stats.slices, 1);
        assert_eq!(stats.flow_starts, 1);
        assert_eq!(stats.flow_ends, 1);
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.threads, 1);
    }

    #[test]
    fn rejects_unbound_flow_ends_and_negative_durations() {
        let unbound = r#"{"traceEvents":[
            {"ph":"M","pid":1,"tid":0,"name":"thread_name"},
            {"ph":"f","pid":1,"tid":0,"name":"wave","id":9,"ts":3,"bp":"e"}
        ]}"#;
        assert!(validate_chrome_trace(unbound).unwrap_err().contains("unopened id"));
        let negative = r#"{"traceEvents":[
            {"ph":"M","pid":1,"tid":0,"name":"thread_name"},
            {"ph":"X","pid":1,"tid":0,"name":"fire","ts":0,"dur":-1}
        ]}"#;
        assert!(validate_chrome_trace(negative).unwrap_err().contains("negative"));
    }

    #[test]
    fn validates_a_real_tracer_export() {
        use confluence_core::telemetry::{TraceConfig, Tracer};
        use confluence_core::actors::{Collector, VecSource};
        use confluence_core::engine::Engine;
        use confluence_core::graph::WorkflowBuilder;
        use confluence_core::window::WindowSpec;
        use confluence_core::Token;
        use std::sync::Arc;

        let collector = Collector::new();
        let mut b = WorkflowBuilder::new("demo");
        let s = b.add_actor("src", VecSource::new(vec![Token::Int(1), Token::Int(2)]));
        let k = b.add_actor("sink", collector.actor());
        b.connect_windowed(s, "out", k, "in", WindowSpec::each_event())
            .unwrap();
        let workflow = b.build().unwrap();
        let tracer = Arc::new(Tracer::for_workflow(&workflow, TraceConfig::default()));
        let mut engine = Engine::new(workflow).with_tracer(tracer);
        engine.run().unwrap();
        let report = engine.trace_report().unwrap();
        let stats = validate_chrome_trace(&report.to_chrome_json()).unwrap();
        assert!(stats.slices > 0, "expected fire slices, got {stats:?}");
        assert!(stats.threads > 0);
    }
}
