//! The figure experiments (paper §4.2).

use confluence_linearroad::Workload;

use crate::config::ExperimentConfig;
use crate::runner::{run_linear_road, LrRun, PolicyKind};

/// One labelled response-time curve.
pub struct Curve {
    /// Legend label (e.g. `QBS-q500`).
    pub label: String,
    /// `(bucket start sec, mean response sec, samples)` rows.
    pub points: Vec<(u64, f64, usize)>,
    /// Thrash point, if saturated.
    pub thrash_secs: Option<u64>,
    /// Mean response over the run, seconds.
    pub mean_secs: f64,
    /// Mean response over the pre-saturation window (first 400 s).
    pub mean_pre_secs: f64,
}

impl Curve {
    fn from_run(run: &LrRun, bucket_secs: u64) -> Curve {
        Curve {
            label: run.label.clone(),
            points: run
                .toll_series
                .bucketed(bucket_secs)
                .into_iter()
                .map(|b| (b.start_secs, b.mean_response_secs, b.count))
                .collect(),
            thrash_secs: run.thrash_secs,
            mean_secs: run.toll_series.mean_secs(),
            mean_pre_secs: run.toll_series.mean_secs_before(400),
        }
    }
}

/// Figure 5: the workload input rate over time.
pub fn fig5_workload(config: &ExperimentConfig) -> Vec<(u64, f64)> {
    let workload = Workload::generate(config.workload());
    workload.rate_series(30)
}

/// Figure 6: RR sensitivity to the basic quantum.
pub fn fig6_rr_sensitivity(config: &ExperimentConfig) -> Vec<Curve> {
    let workload = Workload::generate(config.workload());
    config
        .rr_quanta
        .iter()
        .map(|&slice| {
            let run = run_linear_road(PolicyKind::Rr { slice }, &workload, config);
            Curve::from_run(&run, config.bucket_secs)
        })
        .collect()
}

/// Figure 7: QBS sensitivity to the basic quantum.
pub fn fig7_qbs_sensitivity(config: &ExperimentConfig) -> Vec<Curve> {
    let workload = Workload::generate(config.workload());
    config
        .qbs_quanta
        .iter()
        .map(|&basic_quantum| {
            let run = run_linear_road(PolicyKind::Qbs { basic_quantum }, &workload, config);
            Curve::from_run(&run, config.bucket_secs)
        })
        .collect()
}

/// Figure 8: the main comparison — the best QBS and RR configurations
/// against RB and the thread-based PNCWF baseline.
pub fn fig8_all_schedulers(config: &ExperimentConfig) -> Vec<Curve> {
    let workload = Workload::generate(config.workload());
    [
        PolicyKind::Rr { slice: 40_000 },
        PolicyKind::Qbs { basic_quantum: 500 },
        PolicyKind::Rb,
        PolicyKind::Pncwf,
    ]
    .iter()
    .map(|&kind| {
        let run = run_linear_road(kind, &workload, config);
        Curve::from_run(&run, config.bucket_secs)
    })
    .collect()
}

/// Render a set of curves as an aligned text table: one row per bucket,
/// one column per curve (the textual analog of the paper's plots).
pub fn render_curves(title: &str, curves: &[Curve]) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!("{:>8}", "time(s)"));
    for c in curves {
        out.push_str(&format!(" {:>12}", c.label));
    }
    out.push('\n');
    let rows = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let t = curves
            .iter()
            .find_map(|c| c.points.get(i).map(|p| p.0))
            .unwrap_or(0);
        out.push_str(&format!("{t:>8}"));
        for c in curves {
            match c.points.get(i) {
                Some(&(_, mean, n)) if n > 0 => out.push_str(&format!(" {mean:>12.3}")),
                _ => out.push_str(&format!(" {:>12}", "-")),
            }
        }
        out.push('\n');
    }
    out.push_str("\nsummary:\n");
    for c in curves {
        out.push_str(&format!(
            "  {:<12} mean {:>8.3}s   mean<400s {:>7.3}s   thrash {}\n",
            c.label,
            c.mean_secs,
            c.mean_pre_secs,
            match c.thrash_secs {
                Some(t) => format!("at {t}s"),
                None => "never".to_string(),
            }
        ));
    }
    out
}

/// Render a set of curves as CSV: `time_s,<label>,<label>,...` with one
/// row per bucket (empty cells where a curve has no samples).
pub fn curves_to_csv(curves: &[Curve]) -> String {
    let mut out = String::from("time_s");
    for c in curves {
        out.push(',');
        out.push_str(&c.label);
    }
    out.push('\n');
    let rows = curves.iter().map(|c| c.points.len()).max().unwrap_or(0);
    for i in 0..rows {
        let t = curves
            .iter()
            .find_map(|c| c.points.get(i).map(|p| p.0))
            .unwrap_or(0);
        out.push_str(&t.to_string());
        for c in curves {
            out.push(',');
            if let Some(&(_, mean, n)) = c.points.get(i) {
                if n > 0 {
                    out.push_str(&format!("{mean:.6}"));
                }
            }
        }
        out.push('\n');
    }
    out
}

/// Render Figure 5's rate series as CSV.
pub fn fig5_to_csv(series: &[(u64, f64)]) -> String {
    let mut out = String::from("time_s,rate_per_s\n");
    for (t, r) in series {
        out.push_str(&format!("{t},{r:.3}\n"));
    }
    out
}

/// Render Figure 5 as text.
pub fn render_fig5(series: &[(u64, f64)]) -> String {
    let mut out = String::from("Figure 5: Workload of 0.5 highways (input rate over time)\n");
    out.push_str("time(s)  rate(updates/s)\n");
    for (t, r) in series {
        out.push_str(&format!("{t:>7} {r:>16.1}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_series_ramps() {
        let series = fig5_workload(&ExperimentConfig::quick());
        assert!(series.len() >= 15);
        let first = series[1].1;
        let last = series[series.len() - 2].1;
        assert!(last > first * 3.0, "ramp: {first} → {last}");
        let text = render_fig5(&series);
        assert!(text.contains("Figure 5"));
    }

    #[test]
    fn csv_rendering() {
        let curves = vec![
            Curve {
                label: "A".into(),
                points: vec![(0, 0.1, 5), (10, 0.2, 0)],
                thrash_secs: None,
                mean_secs: 0.1,
                mean_pre_secs: 0.1,
            },
            Curve {
                label: "B".into(),
                points: vec![(0, 0.3, 2)],
                thrash_secs: None,
                mean_secs: 0.3,
                mean_pre_secs: 0.3,
            },
        ];
        let csv = curves_to_csv(&curves);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "time_s,A,B");
        assert_eq!(lines[1], "0,0.100000,0.300000");
        assert_eq!(lines[2], "10,,", "empty cells for missing samples");
        let f5 = fig5_to_csv(&[(0, 10.0), (30, 20.5)]);
        assert!(f5.contains("30,20.500"));
    }

    #[test]
    fn render_curves_shapes_output() {
        let curves = vec![Curve {
            label: "X".into(),
            points: vec![(0, 0.1, 5), (10, 0.2, 6)],
            thrash_secs: Some(10),
            mean_secs: 0.15,
            mean_pre_secs: 0.15,
        }];
        let text = render_curves("demo", &curves);
        assert!(text.contains("demo"));
        assert!(text.contains("thrash at 10s"));
        assert_eq!(text.lines().count(), 2 + 2 + 2 + 1);
    }
}
