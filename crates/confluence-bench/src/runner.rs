//! Shared experiment runner: one Linear Road run under one scheduler.

use std::sync::Arc;

use confluence_core::director::pool::PoolDirector;
use confluence_core::director::pool_policy::{
    Fifo as PoolFifo, OldestWave, PoolPolicy, Quantum, RateBased,
};
use confluence_core::director::threaded::ThreadedDirector;
use confluence_core::director::Director;
use confluence_core::telemetry::{
    MetricsRecorder, MetricsSnapshot, MultiObserver, Observer, Telemetry, TraceConfig, TraceReport,
    Tracer,
};
use confluence_core::time::{Micros, Timestamp};
use confluence_linearroad::cost::{pncwf_cost_model, staf_cost_model};
use confluence_linearroad::{build, LrOptions, ResponseSeries, Workload};
use confluence_sched::cost::CostModel;
use confluence_sched::policies::{
    EdfScheduler, FifoScheduler, OsThreadScheduler, QbsScheduler, RbScheduler, RrScheduler,
};
use confluence_sched::{Scheduler, ScwfDirector};

use crate::config::ExperimentConfig;

/// Which scheduler to run (paper §4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Quantum Priority Based with the given basic quantum (µs).
    Qbs {
        /// Basic quantum `b` in µs.
        basic_quantum: u64,
    },
    /// Round-Robin with the given slice (µs).
    Rr {
        /// Per-period slice in µs.
        slice: u64,
    },
    /// Rate-Based (Highest Rate).
    Rb,
    /// The thread-based PNCWF baseline (simulated: arrival-order policy
    /// plus thread-overhead costs).
    Pncwf,
    /// Plain FIFO (not in the paper; used as an extra baseline).
    Fifo,
    /// Earliest-deadline-first (extension policy; delay target in µs).
    Edf {
        /// Delay target in µs.
        target: u64,
    },
}

impl PolicyKind {
    /// Display label matching the paper's figure legends.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::Qbs { basic_quantum } => format!("QBS-q{basic_quantum}"),
            PolicyKind::Rr { slice } => format!("RR-q{slice}"),
            PolicyKind::Rb => "RB".to_string(),
            PolicyKind::Pncwf => "PNCWF".to_string(),
            PolicyKind::Fifo => "FIFO".to_string(),
            PolicyKind::Edf { target } => format!("EDF-t{target}"),
        }
    }
}

/// A cost model scaled by a constant factor (used to down-scale workloads
/// while preserving the saturation dynamics).
struct ScaledCost<M> {
    inner: M,
    factor: f64,
}

impl<M: CostModel> CostModel for ScaledCost<M> {
    fn firing_cost(&self, actor: usize, name: &str, consumed: u64, produced: u64) -> Micros {
        let base = self.inner.firing_cost(actor, name, consumed, produced);
        Micros((base.as_micros() as f64 * self.factor).round() as u64)
    }
}

/// Knobs beyond the scheduler choice (ablations and extensions).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunOptions {
    /// Per-decision scheduler overhead charged in virtual time (the cost
    /// of the scheduling framework itself — ablation knob).
    pub scheduler_overhead: Micros,
    /// Use flat actors instead of composite sub-workflows (ablation knob).
    pub flat_subworkflows: bool,
    /// Enable adaptive load shedding with this response-time target.
    pub shed_target: Option<Micros>,
}

/// Results of one Linear Road run.
pub struct LrRun {
    /// Scheduler label.
    pub label: String,
    /// Response-time series at the TollNotification output.
    pub toll_series: ResponseSeries,
    /// Response-time series at AccidentNotificationOut.
    pub accident_series: ResponseSeries,
    /// Thrash point (seconds), if the scheduler saturated.
    pub thrash_secs: Option<u64>,
    /// Total actor firings.
    pub firings: u64,
    /// Number of toll notifications produced.
    pub toll_count: usize,
    /// Fraction of position reports dropped by the shedder (0 when
    /// shedding is off).
    pub shed_fraction: f64,
    /// Backpressure blocks observed at full bounded channels.
    pub channel_blocks: u64,
    /// Total time writers spent blocked on full channels.
    pub channel_block_time: Micros,
    /// Events shed by drop channel policies at full channels.
    pub channel_shed: u64,
    /// Highest inbox depth observed anywhere in the fabric.
    pub queue_high_water: u64,
    /// Per-actor metrics from the core telemetry recorder.
    pub metrics: MetricsSnapshot,
}

/// Run the Linear Road workflow under one scheduler in virtual time.
///
/// The run is cut off shortly after the experiment duration: once the
/// offered load exceeds capacity, the backlog would otherwise keep the
/// virtual clock crawling long past the window the paper plots.
pub fn run_linear_road(kind: PolicyKind, workload: &Workload, config: &ExperimentConfig) -> LrRun {
    run_linear_road_with(kind, workload, config, RunOptions::default())
}

/// [`run_linear_road`] with ablation/extension knobs.
pub fn run_linear_road_with(
    kind: PolicyKind,
    workload: &Workload,
    config: &ExperimentConfig,
    options: RunOptions,
) -> LrRun {
    run_linear_road_traced(kind, workload, config, options, None).0
}

/// [`run_linear_road_with`] plus an optional wave-lineage tracer: when
/// `trace` is set, a [`Tracer`] observes the run and its [`TraceReport`]
/// is returned alongside the metrics.
pub fn run_linear_road_traced(
    kind: PolicyKind,
    workload: &Workload,
    config: &ExperimentConfig,
    options: RunOptions,
    trace: Option<TraceConfig>,
) -> (LrRun, Option<TraceReport>) {
    let lr = build(
        workload,
        &LrOptions {
            composite_subworkflows: !options.flat_subworkflows,
            shed_target: options.shed_target,
            ..LrOptions::default()
        },
    )
    .expect("workflow builds");
    let mut lr = lr;
    let interval = config.qbs_source_interval;
    let policy: Box<dyn Scheduler> = match kind {
        PolicyKind::Qbs { basic_quantum } => Box::new(QbsScheduler::new(basic_quantum, interval)),
        PolicyKind::Rr { slice } => Box::new(RrScheduler::new(slice, interval)),
        PolicyKind::Rb => Box::new(RbScheduler::new()),
        PolicyKind::Pncwf => Box::new(OsThreadScheduler::new()),
        PolicyKind::Fifo => Box::new(FifoScheduler::new(interval)),
        PolicyKind::Edf { target } => Box::new(EdfScheduler::new(Micros(target), interval)),
    };
    // Down-scaled workloads get proportionally inflated costs so the
    // capacity-vs-ramp crossover lands at the same run time.
    let scale = 0.5 / workload.config.l_rating.max(1e-9);
    let cost: Box<dyn CostModel> = if kind == PolicyKind::Pncwf {
        Box::new(ScaledCost {
            inner: pncwf_cost_model(),
            factor: scale,
        })
    } else {
        Box::new(ScaledCost {
            inner: staf_cost_model(),
            factor: scale,
        })
    };
    let mut director = ScwfDirector::virtual_time(policy, cost)
        .with_scheduler_overhead(options.scheduler_overhead)
        .with_deadline(Timestamp::from_secs(config.duration_secs + 20));
    let recorder = Arc::new(MetricsRecorder::for_workflow(&lr.workflow));
    let tracer = trace.map(|cfg| Arc::new(Tracer::for_workflow(&lr.workflow, cfg)));
    let mut observers: Vec<Arc<dyn Observer>> = vec![recorder.clone()];
    if let Some(t) = &tracer {
        observers.push(t.clone());
    }
    director.instrument(Telemetry::new(Arc::new(MultiObserver::new(observers))));
    let report = director.run(&mut lr.workflow).expect("run succeeds");

    let toll_series = ResponseSeries::new(lr.toll_output.latency_samples());
    let accident_series = ResponseSeries::new(lr.accident_output.latency_samples());
    let thrash_secs = toll_series.thrash_point(config.bucket_secs, config.thrash_threshold_secs, 2);
    let shed_fraction = lr
        .shedder
        .as_ref()
        .map(|h| h.stats().drop_fraction())
        .unwrap_or(0.0);
    let metrics = recorder.snapshot();
    let run = LrRun {
        label: kind.label(),
        toll_count: lr.toll_output.len(),
        toll_series,
        accident_series,
        thrash_secs,
        firings: report.firings,
        shed_fraction,
        channel_blocks: metrics.total_blocks(),
        channel_block_time: metrics.total_block_time(),
        channel_shed: metrics.total_shed(),
        queue_high_water: metrics.max_queue_high_water(),
        metrics,
    };
    (run, tracer.map(|t| t.report()))
}

/// Ready-queue policy for the wall-clock pool executor (the STAFiLOS §3
/// policies ported to the work-stealing pool, `--fig8 --director pool`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RealtimePolicy {
    /// Arrival order (PR 3 behavior; the control).
    Fifo,
    /// Rate-Based (`gSel/gCost` from live statistics).
    RateBased,
    /// EDF on wave origins (oldest pending tuple first).
    OldestWave,
    /// Stride scheduling over the QBS Equation 1 allotments.
    Quantum {
        /// Basic quantum `b` in µs.
        basic_quantum: u64,
    },
}

impl RealtimePolicy {
    /// Every policy at its default configuration, FIFO (the control)
    /// first.
    pub fn all() -> [RealtimePolicy; 4] {
        [
            RealtimePolicy::Fifo,
            RealtimePolicy::RateBased,
            RealtimePolicy::OldestWave,
            RealtimePolicy::Quantum { basic_quantum: 1_000 },
        ]
    }

    /// Parse a CLI spelling: `fifo`, `rb`, `edf`, `qbs`, or `qbs:<µs>`.
    pub fn parse(s: &str) -> Option<RealtimePolicy> {
        match s {
            "fifo" => Some(RealtimePolicy::Fifo),
            "rb" => Some(RealtimePolicy::RateBased),
            "edf" => Some(RealtimePolicy::OldestWave),
            "qbs" => Some(RealtimePolicy::Quantum { basic_quantum: 1_000 }),
            _ => {
                let bq = s.strip_prefix("qbs:")?.parse().ok()?;
                Some(RealtimePolicy::Quantum { basic_quantum: bq })
            }
        }
    }

    /// Stable lower-case label (CSV/CLI).
    pub fn label(&self) -> String {
        match self {
            RealtimePolicy::Fifo => "fifo".to_string(),
            RealtimePolicy::RateBased => "rb".to_string(),
            RealtimePolicy::OldestWave => "edf".to_string(),
            RealtimePolicy::Quantum { basic_quantum } => format!("qbs:{basic_quantum}"),
        }
    }

    /// Instantiate the pool policy.
    pub fn build(&self) -> Arc<dyn PoolPolicy> {
        match self {
            RealtimePolicy::Fifo => Arc::new(PoolFifo),
            RealtimePolicy::RateBased => Arc::new(RateBased),
            RealtimePolicy::OldestWave => Arc::new(OldestWave),
            RealtimePolicy::Quantum { basic_quantum } => Arc::new(Quantum::new(*basic_quantum)),
        }
    }
}

/// Results of one wall-clock Linear Road run under a PN executor
/// (threaded or pooled) — the head-to-head `--fig5`/`--fig8 --director`
/// modes.
pub struct RealtimeRun {
    /// Executor label (`threaded`, `pool-N`, or `pool-N-<policy>`).
    pub label: String,
    /// Total successful firings.
    pub firings: u64,
    /// Total channel deliveries.
    pub events_routed: u64,
    /// Toll notifications produced.
    pub toll_count: usize,
    /// Wall-clock response-time series at the TollNotification output.
    pub toll_series: ResponseSeries,
    /// Wall-clock run time.
    pub elapsed: Micros,
    /// Per-actor (and, for the pool, per-worker) metrics.
    pub metrics: MetricsSnapshot,
}

/// Run Linear Road in real time under the thread-per-actor executor
/// (`pool_workers = None`) or the pooled work-stealing executor
/// (`Some(n)`), with the workload timetable compressed by
/// `arrival_speedup`.
pub fn run_linear_road_realtime(
    pool_workers: Option<usize>,
    workload: &Workload,
    arrival_speedup: u64,
) -> RealtimeRun {
    run_linear_road_realtime_policy(pool_workers, RealtimePolicy::Fifo, workload, arrival_speedup)
}

/// [`run_linear_road_realtime`] with an explicit pool ready-queue policy
/// (ignored for the threaded executor, which has no ready queue).
pub fn run_linear_road_realtime_policy(
    pool_workers: Option<usize>,
    policy: RealtimePolicy,
    workload: &Workload,
    arrival_speedup: u64,
) -> RealtimeRun {
    run_linear_road_realtime_traced(pool_workers, policy, workload, arrival_speedup, None).0
}

/// [`run_linear_road_realtime_policy`] plus an optional wave-lineage
/// tracer (see [`run_linear_road_traced`]).
pub fn run_linear_road_realtime_traced(
    pool_workers: Option<usize>,
    policy: RealtimePolicy,
    workload: &Workload,
    arrival_speedup: u64,
    trace: Option<TraceConfig>,
) -> (RealtimeRun, Option<TraceReport>) {
    let opts = LrOptions {
        arrival_speedup,
        ..LrOptions::default()
    };
    run_linear_road_realtime_opts(pool_workers, policy, workload, &opts, trace)
}

/// The fully-parameterized real-time runner: any [`LrOptions`] (toll
/// sharding, artificial toll cost, arrival speedup, shedding, …) under
/// the threaded or pooled executor.
pub fn run_linear_road_realtime_opts(
    pool_workers: Option<usize>,
    policy: RealtimePolicy,
    workload: &Workload,
    opts: &LrOptions,
    trace: Option<TraceConfig>,
) -> (RealtimeRun, Option<TraceReport>) {
    let mut lr = build(workload, opts).expect("workflow builds");
    let (label, mut director): (String, Box<dyn Director>) = match pool_workers {
        None => ("threaded".to_string(), Box::new(ThreadedDirector::new())),
        Some(n) => {
            let label = if policy == RealtimePolicy::Fifo {
                format!("pool-{n}")
            } else {
                format!("pool-{n}-{}", policy.label())
            };
            (
                label,
                Box::new(
                    PoolDirector::new()
                        .with_workers(n)
                        .with_policy_arc(policy.build()),
                ),
            )
        }
    };
    let recorder = Arc::new(MetricsRecorder::for_workflow(&lr.workflow));
    let tracer = trace.map(|cfg| Arc::new(Tracer::for_workflow(&lr.workflow, cfg)));
    let mut observers: Vec<Arc<dyn Observer>> = vec![recorder.clone()];
    if let Some(t) = &tracer {
        observers.push(t.clone());
    }
    director.instrument(Telemetry::new(Arc::new(MultiObserver::new(observers))));
    let report = director.run(&mut lr.workflow).expect("run succeeds");
    let run = RealtimeRun {
        label,
        firings: report.firings,
        events_routed: report.events_routed,
        toll_count: lr.toll_output.len(),
        toll_series: ResponseSeries::new(lr.toll_output.latency_samples()),
        elapsed: report.elapsed,
        metrics: recorder.snapshot(),
    };
    (run, tracer.map(|t| t.report()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(PolicyKind::Qbs { basic_quantum: 500 }.label(), "QBS-q500");
        assert_eq!(PolicyKind::Rr { slice: 40_000 }.label(), "RR-q40000");
        assert_eq!(PolicyKind::Rb.label(), "RB");
        assert_eq!(PolicyKind::Pncwf.label(), "PNCWF");
        assert_eq!(PolicyKind::Fifo.label(), "FIFO");
    }

    #[test]
    fn realtime_policy_parses_cli_spellings() {
        assert_eq!(RealtimePolicy::parse("fifo"), Some(RealtimePolicy::Fifo));
        assert_eq!(RealtimePolicy::parse("rb"), Some(RealtimePolicy::RateBased));
        assert_eq!(RealtimePolicy::parse("edf"), Some(RealtimePolicy::OldestWave));
        assert_eq!(
            RealtimePolicy::parse("qbs"),
            Some(RealtimePolicy::Quantum { basic_quantum: 1_000 })
        );
        assert_eq!(
            RealtimePolicy::parse("qbs:5000"),
            Some(RealtimePolicy::Quantum { basic_quantum: 5_000 })
        );
        assert_eq!(RealtimePolicy::parse("nope"), None);
        assert_eq!(RealtimePolicy::parse("qbs:x"), None);
        for p in RealtimePolicy::all() {
            assert_eq!(RealtimePolicy::parse(&p.label()), Some(p), "round-trip");
        }
    }

    #[test]
    fn quick_run_produces_series() {
        let config = ExperimentConfig::quick();
        let workload = Workload::generate(config.workload());
        let run = run_linear_road(PolicyKind::Fifo, &workload, &config);
        assert!(run.toll_count > 0);
        assert!(run.firings > 1_000);
        assert!(!run.toll_series.is_empty());
    }
}
