//! # confluence-bench
//!
//! The experiment harness regenerating every table and figure of the
//! paper's evaluation (§4): the Figure 5 workload curve, the Figure 6/7
//! sensitivity sweeps, the Figure 8 scheduler comparison, and Tables 1–3.
//!
//! Everything runs in virtual time with the calibrated cost models of
//! `confluence-linearroad::cost`; a full 600-second Linear Road run takes
//! well under a second of wall time in release mode.

pub mod config;
pub mod extensions;
pub mod figures;
pub mod runner;
pub mod tracecheck;

pub use config::ExperimentConfig;
pub use runner::{run_linear_road, LrRun, PolicyKind};
