//! Experimental setup (paper Table 3).

use confluence_linearroad::WorkloadConfig;

/// The parameters of Table 3, as used by every experiment.
#[derive(Debug, Clone)]
pub struct ExperimentConfig {
    /// Workload L-rating (0.5 expressways).
    pub l_rating: f64,
    /// Experiment duration in seconds (600).
    pub duration_secs: u64,
    /// QBS source scheduling interval: one source firing per this many
    /// internal actor iterations (5).
    pub qbs_source_interval: u64,
    /// Basic quantum values swept for QBS, in µs.
    pub qbs_quanta: Vec<u64>,
    /// Basic quantum (slice) values swept for RR, in µs.
    pub rr_quanta: Vec<u64>,
    /// Designer priorities used under QBS: output actors / statistics.
    pub priorities: (i32, i32),
    /// Response-time bucket width for the figures, in seconds.
    pub bucket_secs: u64,
    /// Saturation threshold for thrash detection, in seconds.
    pub thrash_threshold_secs: f64,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        ExperimentConfig {
            l_rating: 0.5,
            duration_secs: 600,
            qbs_source_interval: 5,
            qbs_quanta: vec![500, 1_000, 5_000, 10_000, 20_000],
            rr_quanta: vec![5_000, 10_000, 20_000, 40_000],
            priorities: (5, 10),
            bucket_secs: 10,
            thrash_threshold_secs: 4.0,
        }
    }
}

impl ExperimentConfig {
    /// The workload configuration this experiment setup implies.
    pub fn workload(&self) -> WorkloadConfig {
        WorkloadConfig {
            duration_secs: self.duration_secs,
            l_rating: self.l_rating,
            ..WorkloadConfig::paper()
        }
    }

    /// A down-scaled setup for quick CI runs (same shape, ~1/4 the events).
    pub fn quick() -> Self {
        ExperimentConfig {
            l_rating: 0.125,
            ..Self::default()
        }
    }

    /// Render Table 3 as text.
    pub fn render_table3(&self) -> String {
        let mut out = String::new();
        out.push_str("Table 3: Experimental setup\n");
        out.push_str(&format!("  Workload L-rating              {} highways\n", self.l_rating));
        out.push_str(&format!("  Experiment duration            {} sec\n", self.duration_secs));
        out.push_str(&format!(
            "  QBS source scheduling interval {} internal actor iterations\n",
            self.qbs_source_interval
        ));
        out.push_str(&format!("  Basic Quantum (QBS) (µs)       {:?}\n", self.qbs_quanta));
        out.push_str(&format!("  Basic Quantum (RR) (µs)        {:?}\n", self.rr_quanta));
        out.push_str(&format!(
            "  Priorities used (QBS)          {}, {}\n",
            self.priorities.0, self.priorities.1
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_table_3() {
        let c = ExperimentConfig::default();
        assert_eq!(c.l_rating, 0.5);
        assert_eq!(c.duration_secs, 600);
        assert_eq!(c.qbs_source_interval, 5);
        assert_eq!(c.qbs_quanta, vec![500, 1_000, 5_000, 10_000, 20_000]);
        assert_eq!(c.rr_quanta, vec![5_000, 10_000, 20_000, 40_000]);
        assert_eq!(c.priorities, (5, 10));
    }

    #[test]
    fn render_contains_all_rows() {
        let text = ExperimentConfig::default().render_table3();
        for needle in ["0.5 highways", "600 sec", "5 internal", "500", "40000", "5, 10"] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
    }

    #[test]
    fn quick_setup_scales_down() {
        let q = ExperimentConfig::quick();
        assert!(q.l_rating < 0.5);
        assert_eq!(q.duration_secs, 600);
    }
}
