//! Experiments beyond the paper's evaluation: the §4.3/§5 extensions.
//!
//! * **Load shedding** — the paper's discussion notes that integrated
//!   sources "can potentially be tuned to also support load shedding under
//!   overloading situations"; here an adaptive shedder keeps the Linear
//!   Road response time bounded past the capacity wall, at the price of
//!   dropped position reports.
//! * **Multi-workflow scheduling** — the paper's §5 hypothesis: two-level
//!   scheduling can "handle workflows with different priorities and
//!   different optimization metrics". Two Linear Road instances share one
//!   virtual CPU with weighted capacity.
//! * **Ablations** — the cost of the scheduling framework itself, and of
//!   the two-level workflow hierarchy.

use confluence_core::time::Micros;
use confluence_linearroad::cost::staf_cost_model;
use confluence_linearroad::{build, LrOptions, ResponseSeries, Workload};
use confluence_sched::multi::MultiWorkflowExecutor;
use confluence_sched::policies::QbsScheduler;

use crate::config::ExperimentConfig;
use crate::runner::{run_linear_road, run_linear_road_with, PolicyKind, RunOptions};

/// Result of the shedding comparison.
pub struct SheddingResult {
    /// Mean response in the saturated tail (last 150 s) without shedding.
    pub tail_mean_no_shed: f64,
    /// Same with shedding.
    pub tail_mean_shed: f64,
    /// Fraction of reports dropped by the shedder.
    pub shed_fraction: f64,
    /// Toll notifications with / without shedding.
    pub tolls: (usize, usize),
}

/// Run QBS with and without the adaptive shedder and compare the
/// saturated tail.
pub fn shedding_experiment(config: &ExperimentConfig) -> SheddingResult {
    let workload = Workload::generate(config.workload());
    let kind = PolicyKind::Qbs { basic_quantum: 500 };
    let base = run_linear_road_with(kind, &workload, config, RunOptions::default());
    let shed = run_linear_road_with(
        kind,
        &workload,
        config,
        RunOptions {
            shed_target: Some(Micros::from_millis(500)),
            ..RunOptions::default()
        },
    );
    let tail_from = config.duration_secs.saturating_sub(150);
    let tail = |s: &ResponseSeries| {
        let all = s.mean_secs();
        let pre = s.mean_secs_before(tail_from);
        let n = s.len() as f64;
        // Tail mean from totals (avoids re-bucketing): solve
        // all·n = pre·n_pre + tail·n_tail with bucket counts.
        let _ = (all, pre, n);
        // Simpler: recompute from buckets.
        let buckets = s.bucketed(10);
        let tail_buckets: Vec<_> = buckets
            .iter()
            .filter(|b| b.start_secs >= tail_from && b.count > 0)
            .collect();
        if tail_buckets.is_empty() {
            0.0
        } else {
            tail_buckets.iter().map(|b| b.mean_response_secs).sum::<f64>() / tail_buckets.len() as f64
        }
    };
    SheddingResult {
        tail_mean_no_shed: tail(&base.toll_series),
        tail_mean_shed: tail(&shed.toll_series),
        shed_fraction: shed.shed_fraction,
        tolls: (shed.toll_count, base.toll_count),
    }
}

/// Render the shedding comparison.
pub fn render_shedding(r: &SheddingResult) -> String {
    format!(
        "Load shedding under overload (QBS-q500, saturated tail):\n\
         \x20 tail mean response without shedding: {:>8.3} s\n\
         \x20 tail mean response with shedding:    {:>8.3} s\n\
         \x20 reports dropped: {:.1}%   tolls produced: {} (vs {} unshed)\n",
        r.tail_mean_no_shed,
        r.tail_mean_shed,
        r.shed_fraction * 100.0,
        r.tolls.0,
        r.tolls.1
    )
}

/// Result of the multi-workflow experiment.
pub struct MultiResult {
    /// Mean response of the high-share instance.
    pub premium_mean: f64,
    /// Mean response of the low-share instance.
    pub basic_mean: f64,
}

/// Two Linear Road instances on one virtual CPU with 4:1 capacity shares,
/// each under its own local QBS scheduler (two-level scheduling, §5).
pub fn multi_workflow_experiment(config: &ExperimentConfig) -> MultiResult {
    let workload = Workload::generate(config.workload());
    let scale = 0.5 / workload.config.l_rating.max(1e-9);
    let make = || {
        build(&workload, &LrOptions::default()).expect("workflow builds")
    };
    let cost = move || -> Box<dyn confluence_sched::cost::CostModel> {
        Box::new(Scaled(staf_cost_model(), scale))
    };
    let mut exec = MultiWorkflowExecutor::new(Micros(5_000));
    let premium = make();
    let basic = make();
    let premium_out = premium.toll_output.clone();
    let basic_out = basic.toll_output.clone();
    exec.add_workflow(
        "premium",
        premium.workflow,
        Box::new(QbsScheduler::new(500, config.qbs_source_interval)),
        cost(),
        4,
    );
    exec.add_workflow(
        "basic",
        basic.workflow,
        Box::new(QbsScheduler::new(500, config.qbs_source_interval)),
        cost(),
        1,
    );
    exec.run().expect("multi run succeeds");
    MultiResult {
        premium_mean: ResponseSeries::new(premium_out.latency_samples()).mean_secs(),
        basic_mean: ResponseSeries::new(basic_out.latency_samples()).mean_secs(),
    }
}

struct Scaled(confluence_sched::cost::TableCostModel, f64);
impl confluence_sched::cost::CostModel for Scaled {
    fn firing_cost(&self, actor: usize, name: &str, consumed: u64, produced: u64) -> Micros {
        let base = self.0.firing_cost(actor, name, consumed, produced);
        Micros((base.as_micros() as f64 * self.1).round() as u64)
    }
}

/// Render the multi-workflow comparison.
pub fn render_multi(r: &MultiResult) -> String {
    format!(
        "Two Linear Road instances, 4:1 capacity shares (two-level scheduling):\n\
         \x20 premium (share 4) mean response: {:>8.3} s\n\
         \x20 basic   (share 1) mean response: {:>8.3} s\n",
        r.premium_mean, r.basic_mean
    )
}

/// One ablation row: label and mean pre-saturation response.
pub struct AblationRow {
    /// Configuration label.
    pub label: String,
    /// Mean response before 400 s.
    pub mean_pre_secs: f64,
    /// Thrash point.
    pub thrash_secs: Option<u64>,
}

/// Ablations: scheduler-overhead sweep and composite-vs-flat hierarchy.
pub fn ablations(config: &ExperimentConfig) -> Vec<AblationRow> {
    let workload = Workload::generate(config.workload());
    let kind = PolicyKind::Qbs { basic_quantum: 500 };
    let mut rows = Vec::new();
    for overhead in [0u64, 100, 500] {
        let run = run_linear_road_with(
            kind,
            &workload,
            config,
            RunOptions {
                scheduler_overhead: Micros(overhead),
                ..RunOptions::default()
            },
        );
        rows.push(AblationRow {
            label: format!("scheduler overhead {overhead}µs"),
            mean_pre_secs: run.toll_series.mean_secs_before(400),
            thrash_secs: run.thrash_secs,
        });
    }
    for (label, flat) in [("composite sub-workflows", false), ("flat actors", true)] {
        let run = run_linear_road_with(
            kind,
            &workload,
            config,
            RunOptions {
                flat_subworkflows: flat,
                ..RunOptions::default()
            },
        );
        rows.push(AblationRow {
            label: label.to_string(),
            mean_pre_secs: run.toll_series.mean_secs_before(400),
            thrash_secs: run.thrash_secs,
        });
    }
    rows
}

/// Render the ablation table.
pub fn render_ablations(rows: &[AblationRow]) -> String {
    let mut out = String::from("Ablations (QBS-q500):\n");
    for r in rows {
        out.push_str(&format!(
            "  {:<28} mean<400s {:>7.3}s   thrash {}\n",
            r.label,
            r.mean_pre_secs,
            match r.thrash_secs {
                Some(t) => format!("at {t}s"),
                None => "never".to_string(),
            }
        ));
    }
    out
}

/// Run QBS over the Linear Road workflow and render the statistics
/// module's per-actor table — the runtime observability surface the
/// framework exposes to scheduler developers.
pub fn actor_stats_experiment(config: &ExperimentConfig) -> String {
    use confluence_core::director::Director;
    let workload = Workload::generate(config.workload());
    let mut lr = build(&workload, &LrOptions::default()).expect("workflow builds");
    let scale = 0.5 / workload.config.l_rating.max(1e-9);
    let mut director = confluence_sched::ScwfDirector::virtual_time(
        Box::new(QbsScheduler::new(500, config.qbs_source_interval)),
        Box::new(Scaled(staf_cost_model(), scale)),
    )
    .with_deadline(confluence_core::time::Timestamp::from_secs(
        config.duration_secs + 20,
    ));
    director.run(&mut lr.workflow).expect("run succeeds");
    let names: Vec<String> = lr
        .workflow
        .actor_ids()
        .map(|id| lr.workflow.node(id).name.clone())
        .collect();
    let stats = director.last_stats().expect("stats recorded");
    format!(
        "Actor runtime statistics (QBS-q500, full run):\n{}",
        stats.render(&names)
    )
}

/// Extra scheduler comparison: the paper's best (QBS) against the EDF
/// extension and plain FIFO.
pub fn extras_experiment(config: &ExperimentConfig) -> String {
    let workload = Workload::generate(config.workload());
    let mut out = String::from("Extra schedulers (pre-saturation, first 400 s):\n");
    for kind in [
        PolicyKind::Qbs { basic_quantum: 500 },
        PolicyKind::Edf { target: 2_000_000 },
        PolicyKind::Fifo,
    ] {
        let run = run_linear_road(kind, &workload, config);
        out.push_str(&format!(
            "  {:<12} mean<400s {:>7.3}s   p95 {:>7.3}s   thrash {}\n",
            run.label,
            run.toll_series.mean_secs_before(400),
            run.toll_series.percentile_secs(95.0),
            match run.thrash_secs {
                Some(t) => format!("at {t}s"),
                None => "never".to_string(),
            }
        ));
    }
    out
}
