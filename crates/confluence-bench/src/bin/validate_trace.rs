//! Validate a Chrome-trace JSON file produced by `experiments --trace`.
//!
//! ```text
//! validate_trace <trace.json> [more.json ...]
//! ```
//!
//! Exits non-zero (with a diagnostic) on the first file that fails
//! structural validation; prints per-file event counters otherwise.

use confluence_bench::tracecheck::validate_chrome_trace;

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    if paths.is_empty() {
        eprintln!("usage: validate_trace <trace.json> [more.json ...]");
        std::process::exit(2);
    }
    for path in &paths {
        let text = match std::fs::read_to_string(path) {
            Ok(text) => text,
            Err(err) => {
                eprintln!("{path}: {err}");
                std::process::exit(1);
            }
        };
        match validate_chrome_trace(&text) {
            Ok(stats) => println!(
                "{path}: ok — {} events ({} slices, {} instants, {} flow arrows, {} threads)",
                stats.events,
                stats.slices,
                stats.instants,
                stats.flow_ends,
                stats.threads
            ),
            Err(err) => {
                eprintln!("{path}: INVALID — {err}");
                std::process::exit(1);
            }
        }
    }
}
