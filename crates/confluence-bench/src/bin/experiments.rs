//! Regenerate the paper's tables and figures.
//!
//! ```text
//! experiments [--quick] [--table1] [--table2] [--table3]
//!             [--fig5] [--fig6] [--fig7] [--fig8]
//!             [--shedding] [--multi] [--ablations] [--extras] [--stats] [--all]
//! ```
//!
//! With no selection, `--all` is assumed. `--quick` runs a down-scaled
//! workload with proportionally inflated costs (same crossover shape,
//! ~1/4 the events). `--csv DIR` additionally writes each figure's data
//! as a CSV file under DIR (plot-ready artifacts).
//!
//! `--fig5 --director pool[:N]` (or `--director threaded`) switches the
//! figure-5 run from the virtual-time scheduler comparison to a
//! wall-clock head-to-head of the PN executors: the selected executor
//! runs the fig5 workload in real time (timetable compressed 100×) next
//! to the thread-per-actor baseline, printing firing/routing/latency
//! numbers side by side.

use confluence_bench::config::ExperimentConfig;
use confluence_bench::runner::{
    run_linear_road_realtime, run_linear_road_realtime_traced, run_linear_road_traced, PolicyKind,
    RealtimePolicy, RunOptions,
};
use confluence_bench::{extensions, figures};
use confluence_core::director::taxonomy;
use confluence_core::telemetry::{TraceConfig, TraceReport};
use confluence_linearroad::Workload;

/// Wave sampling rate for `--trace` runs: 1-in-N root waves.
const TRACE_SAMPLE_EVERY: u64 = 16;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |flag: &str| args.iter().any(|a| a == flag);
    let all = has("--all") || !args.iter().any(|a| a.starts_with("--") && a != "--quick");
    let config = if has("--quick") {
        ExperimentConfig::quick()
    } else {
        ExperimentConfig::default()
    };
    let csv_dir: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--csv")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    let write_csv = |name: &str, content: String| {
        if let Some(dir) = &csv_dir {
            let path = dir.join(name);
            std::fs::write(&path, content).expect("write csv");
            eprintln!("wrote {}", path.display());
        }
    };

    if all || has("--table1") {
        println!("Table 1: Taxonomy of directors (Kepler / PtolemyII / CWf)\n");
        println!("{}", taxonomy::render_table());
    }
    if all || has("--table2") {
        println!("{}", render_table2());
    }
    if all || has("--table3") {
        println!("{}", config.render_table3());
    }
    let director_mode: Option<String> = args
        .iter()
        .position(|a| a == "--director")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let trace_path: Option<std::path::PathBuf> = args
        .iter()
        .position(|a| a == "--trace")
        .and_then(|i| args.get(i + 1))
        .map(std::path::PathBuf::from);
    if has("--fig5") && director_mode.is_some() {
        run_fig5_head_to_head(&config, director_mode.as_deref().unwrap(), trace_path.as_deref());
        return;
    }
    if has("--fig8") && director_mode.is_some() {
        let policy: Option<String> = args
            .iter()
            .position(|a| a == "--policy")
            .and_then(|i| args.get(i + 1))
            .cloned();
        run_fig8_realtime(
            &config,
            director_mode.as_deref().unwrap(),
            policy.as_deref(),
            &write_csv,
            trace_path.as_deref(),
        );
        return;
    }
    if all || has("--fig5") {
        let series = figures::fig5_workload(&config);
        println!("{}", figures::render_fig5(&series));
        write_csv("fig5_workload.csv", figures::fig5_to_csv(&series));
        // One representative run over the fig5 workload, with the
        // telemetry layer's per-actor metrics table.
        let workload = Workload::generate(config.workload());
        let (run, trace) = run_linear_road_traced(
            PolicyKind::Qbs { basic_quantum: 500 },
            &workload,
            &config,
            RunOptions::default(),
            trace_path
                .as_deref()
                .map(|_| TraceConfig::sampled(TRACE_SAMPLE_EVERY)),
        );
        println!(
            "Per-actor metrics over the Figure 5 workload ({}):\n\n{}",
            run.label,
            run.metrics.render_table()
        );
        println!(
            "backpressure: blocks={} block_time={} shed={} queue_high_water={}",
            run.channel_blocks, run.channel_block_time, run.channel_shed, run.queue_high_water
        );
        write_csv("fig5_actor_metrics.json", run.metrics.to_json());
        if let (Some(path), Some(report)) = (trace_path.as_deref(), trace) {
            emit_trace(path, &report);
        }
    } else if has("--fig8") && trace_path.is_some() {
        // `--fig8 --trace` without `--director`: the fig8 curves are many
        // virtual-time runs, so trace one representative QBS run instead.
        let workload = Workload::generate(config.workload());
        let (run, trace) = run_linear_road_traced(
            PolicyKind::Qbs { basic_quantum: 500 },
            &workload,
            &config,
            RunOptions::default(),
            Some(TraceConfig::sampled(TRACE_SAMPLE_EVERY)),
        );
        println!("Wave-lineage trace over the Figure 8 workload ({})", run.label);
        if let (Some(path), Some(report)) = (trace_path.as_deref(), trace) {
            emit_trace(path, &report);
        }
    }
    if all || has("--fig6") {
        let curves = figures::fig6_rr_sensitivity(&config);
        println!(
            "{}",
            figures::render_curves(
                "Figure 6: Response Times of the RR scheduler (varying basic quantum)",
                &curves
            )
        );
        write_csv("fig6_rr_sensitivity.csv", figures::curves_to_csv(&curves));
    }
    if all || has("--fig7") {
        let curves = figures::fig7_qbs_sensitivity(&config);
        println!(
            "{}",
            figures::render_curves(
                "Figure 7: Response Times of the QBS scheduler (varying basic quantum)",
                &curves
            )
        );
        write_csv("fig7_qbs_sensitivity.csv", figures::curves_to_csv(&curves));
    }
    if all || has("--fig8") {
        let curves = figures::fig8_all_schedulers(&config);
        println!(
            "{}",
            figures::render_curves("Figure 8: Response Times of all the main schedulers", &curves)
        );
        write_csv("fig8_all_schedulers.csv", figures::curves_to_csv(&curves));
    }
    if all || has("--shedding") {
        println!(
            "{}",
            extensions::render_shedding(&extensions::shedding_experiment(&config))
        );
    }
    if all || has("--multi") {
        println!(
            "{}",
            extensions::render_multi(&extensions::multi_workflow_experiment(&config))
        );
    }
    if all || has("--ablations") {
        println!("{}", extensions::render_ablations(&extensions::ablations(&config)));
    }
    if all || has("--extras") {
        println!("{}", extensions::extras_experiment(&config));
    }
    if all || has("--stats") {
        println!("{}", extensions::actor_stats_experiment(&config));
    }
}

/// `--fig5 --director <pool[:N]|threaded>`: wall-clock Linear Road over
/// the fig5 workload, selected executor vs. the threaded baseline.
fn run_fig5_head_to_head(config: &ExperimentConfig, mode: &str, trace_path: Option<&std::path::Path>) {
    // Compress the timetable so the 600 s trace replays in seconds of
    // wall time; both executors see the identical workflow.
    const SPEEDUP: u64 = 100;
    let workload = Workload::generate(config.workload());
    let pool_workers = match mode.split_once(':') {
        Some(("pool", n)) => Some(n.parse().expect("worker count after pool:")),
        None if mode == "pool" => Some(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        ),
        None if mode == "threaded" => None,
        _ => panic!("unknown --director mode {mode:?} (expected pool[:N] or threaded)"),
    };
    println!(
        "Figure 5 workload, wall-clock head-to-head (timetable compressed {SPEEDUP}x)\n"
    );
    // The trace rides on the selected executor's run (the baseline when
    // the comparison is threaded-only).
    let trace_config = trace_path.map(|_| TraceConfig::sampled(TRACE_SAMPLE_EVERY));
    let (runs, trace) = match pool_workers {
        Some(n) => {
            let baseline = run_linear_road_realtime(None, &workload, SPEEDUP);
            let (selected, trace) = run_linear_road_realtime_traced(
                Some(n),
                RealtimePolicy::Fifo,
                &workload,
                SPEEDUP,
                trace_config,
            );
            (vec![baseline, selected], trace)
        }
        None => {
            let (baseline, trace) = run_linear_road_realtime_traced(
                None,
                RealtimePolicy::Fifo,
                &workload,
                SPEEDUP,
                trace_config,
            );
            (vec![baseline], trace)
        }
    };
    println!(
        "{:<12}  {:>10}  {:>12}  {:>8}  {:>12}",
        "executor", "firings", "routed", "tolls", "elapsed_us"
    );
    for run in &runs {
        println!(
            "{:<12}  {:>10}  {:>12}  {:>8}  {:>12}",
            run.label,
            run.firings,
            run.events_routed,
            run.toll_count,
            run.elapsed.as_micros()
        );
    }
    for run in &runs {
        println!("\nPer-actor metrics ({}):\n\n{}", run.label, run.metrics.render_table());
    }
    if let (Some(path), Some(report)) = (trace_path, trace) {
        emit_trace(path, &report);
    }
}

/// `--fig8 --director pool[:N] [--policy fifo|rb|edf|qbs[:µs]]`: the
/// figure-8 scheduler comparison in *wall-clock* form — the pool executor
/// replays the fig8 workload in real time under each ready-queue policy
/// and reports the toll-notification response-time distribution. With
/// `--policy`, only that policy runs next to the FIFO control; otherwise
/// all four run. Worker count defaults to 2 so the replay is actually
/// overloaded (the point of a scheduling policy); `pool:N` overrides.
fn run_fig8_realtime(
    config: &ExperimentConfig,
    mode: &str,
    policy: Option<&str>,
    write_csv: &dyn Fn(&str, String),
    trace_path: Option<&std::path::Path>,
) {
    // Compress the timetable harder than fig5's head-to-head: the policies
    // only separate once the ready queues actually back up.
    const SPEEDUP: u64 = 200;
    let workload = Workload::generate(config.workload());
    let workers = match mode.split_once(':') {
        Some(("pool", n)) => n.parse().expect("worker count after pool:"),
        None if mode == "pool" => 2,
        _ => panic!("unknown --director mode {mode:?} for --fig8 (expected pool[:N])"),
    };
    let policies: Vec<RealtimePolicy> = match policy {
        Some(p) => {
            let selected = RealtimePolicy::parse(p)
                .unwrap_or_else(|| panic!("unknown --policy {p:?} (fifo|rb|edf|qbs[:µs])"));
            if selected == RealtimePolicy::Fifo {
                vec![selected]
            } else {
                vec![RealtimePolicy::Fifo, selected]
            }
        }
        None => RealtimePolicy::all().to_vec(),
    };
    println!(
        "Figure 8 workload, wall-clock pool executor ({workers} workers, \
         timetable compressed {SPEEDUP}x), toll response times per ready-queue policy\n"
    );
    println!(
        "{:<10}  {:>10}  {:>12}  {:>8}  {:>12}  {:>9}  {:>9}  {:>9}",
        "policy", "firings", "routed", "tolls", "elapsed_us", "mean_ms", "p95_ms", "p99_ms"
    );
    let mut csv = String::from(
        "policy,workers,speedup,firings,events_routed,tolls,elapsed_us,mean_ms,p95_ms,p99_ms\n",
    );
    // The trace rides on the last policy's run (the selected one when a
    // `--policy` was given, since FIFO runs first as the control).
    let last = *policies.last().expect("at least one policy");
    let mut last_trace: Option<TraceReport> = None;
    for p in policies {
        let trace_config = if p == last {
            trace_path.map(|_| TraceConfig::sampled(TRACE_SAMPLE_EVERY))
        } else {
            None
        };
        let (run, trace) =
            run_linear_road_realtime_traced(Some(workers), p, &workload, SPEEDUP, trace_config);
        if trace.is_some() {
            last_trace = trace;
        }
        let mean_ms = run.toll_series.mean_secs() * 1e3;
        let p95_ms = run.toll_series.percentile_secs(95.0) * 1e3;
        let p99_ms = run.toll_series.percentile_secs(99.0) * 1e3;
        println!(
            "{:<10}  {:>10}  {:>12}  {:>8}  {:>12}  {:>9.2}  {:>9.2}  {:>9.2}",
            p.label(),
            run.firings,
            run.events_routed,
            run.toll_count,
            run.elapsed.as_micros(),
            mean_ms,
            p95_ms,
            p99_ms
        );
        csv.push_str(&format!(
            "{},{},{},{},{},{},{},{:.3},{:.3},{:.3}\n",
            p.label(),
            workers,
            SPEEDUP,
            run.firings,
            run.events_routed,
            run.toll_count,
            run.elapsed.as_micros(),
            mean_ms,
            p95_ms,
            p99_ms
        ));
    }
    write_csv("fig8_realtime.csv", csv);
    if let (Some(path), Some(report)) = (trace_path, last_trace) {
        emit_trace(path, &report);
    }
}

/// Write a [`TraceReport`] as Chrome/Perfetto JSON and print a bounded
/// lineage summary: flight-recorder counters, the head of the per-wave
/// critical-path table, and the first recorded wave's tree.
fn emit_trace(path: &std::path::Path, report: &TraceReport) {
    std::fs::write(path, report.to_chrome_json()).expect("write trace");
    eprintln!("wrote {}", path.display());
    println!(
        "\nWave-lineage trace: {} roots seen, {} sampled, {} waves recorded, \
         {} evicted, {} spans dropped",
        report.roots_seen,
        report.sampled_roots,
        report.waves.len(),
        report.evicted_waves,
        report.dropped_spans
    );
    const MAX_LINES: usize = 16;
    let summary = report.render_critical_paths();
    for line in summary.lines().take(MAX_LINES) {
        println!("{line}");
    }
    if summary.lines().count() > MAX_LINES {
        println!("... ({} waves total; full detail is in the JSON)", report.waves.len());
    }
    if let Some(first) = report.waves.first() {
        let head = TraceReport {
            waves: vec![first.clone()],
            ..report.clone()
        };
        let tree = head.render_tree();
        let total = tree.lines().count();
        println!();
        for line in tree.lines().take(2 * MAX_LINES) {
            println!("{line}");
        }
        if total > 2 * MAX_LINES {
            println!("... ({} more span lines in this wave)", total - 2 * MAX_LINES);
        }
    }
}

/// Table 2: the realized actor-state conditions, printed from the living
/// policy implementations (asserted in each policy's unit tests).
fn render_table2() -> String {
    let mut out =
        String::from("Table 2: State conditions for an actor A in the different schedulers\n\n");
    out.push_str("QBS and RR schedulers:\n");
    out.push_str("  ACTIVE   (internal) events queued AND positive quantum/slice\n");
    out.push_str("  ACTIVE   (source)   due arrival (scheduled at regular intervals)\n");
    out.push_str("  WAITING  (internal) events queued AND non-positive quantum/slice\n");
    out.push_str("  WAITING  (source)   no due arrival\n");
    out.push_str("  INACTIVE (internal) no events queued (quantum preserved under QBS,\n");
    out.push_str("                      fresh slice on new events under RR)\n\n");
    out.push_str("RB scheduler:\n");
    out.push_str("  ACTIVE   (internal) events in the current-period queue\n");
    out.push_str("  ACTIVE   (source)   has not yet fired in the current period\n");
    out.push_str("  WAITING  (internal) no current events, events in the next-period buffer\n");
    out.push_str("  WAITING  (source)   has fired in the current period\n");
    out.push_str("  INACTIVE (internal) no events in queue or buffer (sources never inactive)\n");
    out
}
