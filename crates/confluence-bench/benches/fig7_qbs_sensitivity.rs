//! Figure 7: QBS scheduler sensitivity to the basic quantum.

use criterion::{criterion_group, criterion_main, Criterion};

use confluence_bench::config::ExperimentConfig;
use confluence_bench::runner::{run_linear_road, PolicyKind};
use confluence_linearroad::Workload;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7_qbs_sensitivity");
    g.sample_size(10);
    let config = ExperimentConfig::quick();
    let workload = Workload::generate(config.workload());
    for &basic_quantum in &config.qbs_quanta {
        g.bench_function(format!("QBS-q{basic_quantum}"), |b| {
            b.iter(|| {
                let run = run_linear_road(PolicyKind::Qbs { basic_quantum }, &workload, &config);
                std::hint::black_box(run.toll_count)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
