//! PR 5 perf guard: wave-lineage tracing must be free when disabled.
//!
//! Re-runs the PR-3 fan-out routing benchmark three ways — bare fabric,
//! fabric observed by a *disabled* tracer (`TraceConfig::disabled()`,
//! the always-on production configuration), and fabric observed by an
//! enabled sample-everything tracer (the debugging configuration). The
//! guard asserts the disabled-tracer path stays within 5% of the bare
//! baseline; the enabled number is reported for context only.
//!
//! Writes `results/BENCH_pr5.json` (skipped under `cargo bench -- --test`
//! smoke mode).

use std::sync::Arc;

use criterion::{black_box, Criterion};

use confluence_core::actors::{Collector, VecSource};
use confluence_core::director::Fabric;
use confluence_core::graph::{ActorId, Workflow, WorkflowBuilder};
use confluence_core::telemetry::{Observer, TraceConfig, Tracer};
use confluence_core::time::Timestamp;
use confluence_core::token::Token;
use confluence_core::wave::WaveTag;

/// Emissions per simulated firing (matches the PR-3 routing benches).
const BATCH: usize = 1_000;

/// Fan-out width: one producer feeding this many sinks.
const SINKS: usize = 4;

fn fanout_workflow() -> (Workflow, ActorId) {
    let mut b = WorkflowBuilder::new("trace-overhead-bench");
    let s = b.add_actor("src", VecSource::new(vec![]));
    for i in 0..SINKS {
        let k = b.add_actor(format!("sink{i}"), Collector::new().actor());
        b.connect(s, "out", k, "in").unwrap();
    }
    (b.build().unwrap(), s)
}

/// A fresh fabric, optionally observed by a tracer built from `config`.
fn fanout_fabric(trace: Option<TraceConfig>) -> (Fabric, ActorId) {
    let (workflow, from) = fanout_workflow();
    let observer = trace.map(|config| {
        Arc::new(Tracer::for_workflow(&workflow, config)) as Arc<dyn Observer>
    });
    (Fabric::build_observed(&workflow, observer).unwrap(), from)
}

fn tokens() -> Vec<(usize, Token)> {
    (0..BATCH).map(|i| (0usize, Token::Int(i as i64))).collect()
}

fn route_batched(fabric: &Fabric, from: ActorId, parent: &WaveTag) -> u64 {
    fabric.route(from, tokens(), Some(parent), Timestamp(2)).unwrap()
}

fn bench_trace_overhead(c: &mut Criterion) {
    let parent = WaveTag::external(Timestamp(1));
    let mut g = c.benchmark_group("trace_overhead");
    g.bench_function("baseline", |b| {
        b.iter_with_setup(
            || fanout_fabric(None),
            |(f, from)| black_box(route_batched(&f, from, &parent)),
        )
    });
    g.bench_function("tracer_disabled", |b| {
        b.iter_with_setup(
            || fanout_fabric(Some(TraceConfig::disabled())),
            |(f, from)| black_box(route_batched(&f, from, &parent)),
        )
    });
    g.bench_function("tracer_enabled", |b| {
        b.iter_with_setup(
            || fanout_fabric(Some(TraceConfig::default())),
            |(f, from)| black_box(route_batched(&f, from, &parent)),
        )
    });
    g.finish();
}

fn mean_ns(results: &[criterion::BenchResult], name: &str) -> Option<u64> {
    results.iter().find(|r| r.name == name).map(|r| r.mean_ns)
}

fn main() {
    let _ = criterion::take_results();
    let mut c = Criterion::default();
    bench_trace_overhead(&mut c);
    let results = criterion::take_results();
    if criterion::is_test_mode() {
        println!("smoke mode (--test): benches ran once each, skipping BENCH_pr5.json");
        return;
    }
    let baseline = mean_ns(&results, "trace_overhead/baseline").expect("baseline result");
    let disabled = mean_ns(&results, "trace_overhead/tracer_disabled").expect("disabled result");
    let enabled = mean_ns(&results, "trace_overhead/tracer_enabled").expect("enabled result");
    let disabled_ratio = disabled as f64 / baseline as f64;
    let enabled_ratio = enabled as f64 / baseline as f64;
    println!("\ndisabled-tracer overhead: {:.2}% ({disabled} ns vs {baseline} ns)",
        (disabled_ratio - 1.0) * 100.0);
    println!("enabled-tracer overhead:  {:.2}% ({enabled} ns vs {baseline} ns)",
        (enabled_ratio - 1.0) * 100.0);
    let mut json = String::from("{\n  \"pr\": 5,\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {}, \"iters\": {}}}",
            r.name, r.mean_ns, r.iters
        ));
    }
    json.push_str(&format!(
        "\n  ],\n  \"disabled_tracer_ratio\": {disabled_ratio:.4},\n  \
         \"enabled_tracer_ratio\": {enabled_ratio:.4}\n}}\n"
    ));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/BENCH_pr5.json");
    std::fs::write(&path, json).expect("write BENCH_pr5.json");
    println!("wrote {}", path.display());
    assert!(
        disabled_ratio <= 1.05,
        "a disabled tracer must cost <= 5% over the bare routing path \
         (got {:.2}%)",
        (disabled_ratio - 1.0) * 100.0
    );
}
