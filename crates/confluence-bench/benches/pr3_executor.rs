//! PR 3 perf trajectory: batched event routing vs the pre-PR per-event
//! delivery path, fan-out routing, window formation, record field
//! lookups, and a threaded-vs-pool Linear Road segment.
//!
//! Besides printing each timing, the harness writes a machine-readable
//! summary to `results/BENCH_pr3.json` (skipped under
//! `cargo bench -- --test` smoke mode) so the numbers backing this PR's
//! claims are checked in next to the code.

use criterion::{black_box, Criterion};

use confluence_bench::runner::run_linear_road_realtime;
use confluence_core::actors::{Collector, VecSource};
use confluence_core::director::Fabric;
use confluence_core::event::{CwEvent, WaveStamper};
use confluence_core::graph::{ActorId, WorkflowBuilder};
use confluence_core::time::Timestamp;
use confluence_core::token::Token;
use confluence_core::wave::WaveTag;
use confluence_core::window::{GroupBy, WindowOperator, WindowSpec};
use confluence_linearroad::{Workload, WorkloadConfig};

/// Emissions per simulated firing in the routing benches.
const BATCH: usize = 1_000;

/// A built fabric with one producer fanned out to `sinks` inboxes.
struct Fanout {
    fabric: Fabric,
    from: ActorId,
}

fn fanout_fabric(sinks: usize) -> Fanout {
    let mut b = WorkflowBuilder::new("routing-bench");
    let s = b.add_actor("src", VecSource::new(vec![]));
    for i in 0..sinks {
        let k = b.add_actor(format!("sink{i}"), Collector::new().actor());
        b.connect(s, "out", k, "in").unwrap();
    }
    let workflow = b.build().unwrap();
    Fanout {
        fabric: Fabric::build(&workflow).unwrap(),
        from: s,
    }
}

fn tokens() -> Vec<(usize, Token)> {
    (0..BATCH).map(|i| (0usize, Token::Int(i as i64))).collect()
}

/// One firing through the batched `Fabric::route` path. The fabric is
/// fresh per sample (see the `iter_with_setup` call sites) so the timed
/// section is routing only.
fn route_batched(f: &Fanout, parent: &WaveTag) -> u64 {
    f.fabric
        .route(f.from, tokens(), Some(parent), Timestamp(2))
        .unwrap()
}

/// The same firing through a faithful reconstruction of the pre-PR
/// `Fabric::route`: three intermediate `Vec`s (ports, tokens, stamped
/// events), then one `deliver` — with its event clone, operator lock,
/// and inbox lock — per event per destination.
fn route_per_event(f: &Fanout, parent: &WaveTag) -> u64 {
    let emissions = tokens();
    let ports: Vec<usize> = emissions.iter().map(|(p, _)| *p).collect();
    let toks: Vec<Token> = emissions.into_iter().map(|(_, t)| t).collect();
    let stamped = WaveStamper::new(parent.clone()).stamp_all(toks, Timestamp(2));
    let events: Vec<(usize, CwEvent)> = ports.into_iter().zip(stamped).collect();
    let mut delivered = 0u64;
    for (port, event) in events {
        for dest in f.fabric.route_targets(f.from, port) {
            f.fabric.deliver(*dest, event.clone(), Timestamp(2)).unwrap();
            delivered += 1;
        }
    }
    delivered
}

fn bench_chain_routing(c: &mut Criterion) {
    let parent = WaveTag::external(Timestamp(1));
    let mut g = c.benchmark_group("chain_routing");
    g.bench_function("batched_route", |b| {
        b.iter_with_setup(|| fanout_fabric(1), |f| black_box(route_batched(&f, &parent)))
    });
    g.bench_function("per_event_deliver", |b| {
        b.iter_with_setup(|| fanout_fabric(1), |f| black_box(route_per_event(&f, &parent)))
    });
    g.finish();
}

fn bench_fanout_routing(c: &mut Criterion) {
    let parent = WaveTag::external(Timestamp(1));
    let mut g = c.benchmark_group("fanout_routing");
    g.bench_function("batched_route_x4", |b| {
        b.iter_with_setup(|| fanout_fabric(4), |f| black_box(route_batched(&f, &parent)))
    });
    g.bench_function("per_event_deliver_x4", |b| {
        b.iter_with_setup(|| fanout_fabric(4), |f| black_box(route_per_event(&f, &parent)))
    });
    g.finish();
}

fn report(carid: i64, ts: u64) -> confluence_core::event::CwEvent {
    confluence_core::event::CwEvent::external(lr_record(carid), Timestamp(ts))
}

fn lr_record(carid: i64) -> Token {
    Token::record()
        .field("time", 0)
        .field("carid", carid)
        .field("speed", 55.0)
        .field("xway", 0)
        .field("lane", 1)
        .field("dir", 0)
        .field("seg", carid % 100)
        .field("pos", carid * 20)
        .build()
}

fn bench_window_formation(c: &mut Criterion) {
    c.bench_function("window_formation/grouped_sliding_push", |b| {
        b.iter_with_setup(
            || {
                WindowOperator::new(
                    WindowSpec::tuples(4, 1).group_by(GroupBy::fields(&["carid"])),
                )
                .unwrap()
            },
            |mut op| {
                for i in 0..BATCH as u64 {
                    op.push(report((i % 50) as i64, i), Timestamp(i)).unwrap();
                    while op.pop_window().is_some() {}
                }
                black_box(op.pending_events())
            },
        )
    });
}

fn bench_record_lookup(c: &mut Criterion) {
    let token = lr_record(107);
    let rec = token.as_record().unwrap();
    let mut g = c.benchmark_group("record_get");
    g.bench_function("name_scan", |b| {
        b.iter(|| {
            let mut acc = 0i64;
            for _ in 0..BATCH {
                acc += rec.get("carid").unwrap().as_int().unwrap();
                acc += rec.get("seg").unwrap().as_int().unwrap();
                acc += rec.get("speed").unwrap().as_float().unwrap() as i64;
            }
            black_box(acc)
        })
    });
    g.bench_function("indexed", |b| {
        let carid = rec.index_of("carid").unwrap();
        let seg = rec.index_of("seg").unwrap();
        let speed = rec.index_of("speed").unwrap();
        b.iter(|| {
            let mut acc = 0i64;
            for _ in 0..BATCH {
                acc += rec.get_at(carid).unwrap().as_int().unwrap();
                acc += rec.get_at(seg).unwrap().as_int().unwrap();
                acc += rec.get_at(speed).unwrap().as_float().unwrap() as i64;
            }
            black_box(acc)
        })
    });
    g.finish();
}

fn bench_linear_road_segment(c: &mut Criterion) {
    // A short no-accident trace replayed 100x faster than real time:
    // both executors run the identical workflow wall-clock end to end.
    let workload = Workload::generate(WorkloadConfig {
        duration_secs: 60,
        l_rating: 0.05,
        expressways: 1,
        seed: 7,
        base_initial_cars: 600,
        base_final_cars: 1_200,
        accident_every_secs: None,
        accident_duration_secs: 0,
    });
    let mut g = c.benchmark_group("linear_road_segment");
    g.sample_size(1);
    g.bench_function("threaded", |b| {
        b.iter(|| black_box(run_linear_road_realtime(None, &workload, 100).firings))
    });
    g.bench_function("pool", |b| {
        b.iter(|| black_box(run_linear_road_realtime(Some(2), &workload, 100).firings))
    });
    g.finish();
}

fn mean_ns(results: &[criterion::BenchResult], name: &str) -> Option<u64> {
    results.iter().find(|r| r.name == name).map(|r| r.mean_ns)
}

fn main() {
    let _ = criterion::take_results();
    let mut c = Criterion::default();
    bench_chain_routing(&mut c);
    bench_fanout_routing(&mut c);
    bench_window_formation(&mut c);
    bench_record_lookup(&mut c);
    bench_linear_road_segment(&mut c);
    let results = criterion::take_results();
    if criterion::is_test_mode() {
        println!("smoke mode (--test): benches ran once each, skipping BENCH_pr3.json");
        return;
    }
    let ratio = |slow: &str, fast: &str| -> f64 {
        match (mean_ns(&results, slow), mean_ns(&results, fast)) {
            (Some(s), Some(f)) if f > 0 => s as f64 / f as f64,
            _ => 0.0,
        }
    };
    let chain_speedup = ratio("chain_routing/per_event_deliver", "chain_routing/batched_route");
    let fanout_speedup = ratio(
        "fanout_routing/per_event_deliver_x4",
        "fanout_routing/batched_route_x4",
    );
    let record_speedup = ratio("record_get/name_scan", "record_get/indexed");
    println!("\nchain routing speedup (batched vs per-event): {chain_speedup:.2}x");
    println!("fanout routing speedup (batched vs per-event): {fanout_speedup:.2}x");
    println!("record lookup speedup (indexed vs name scan): {record_speedup:.2}x");
    let mut json = String::from("{\n  \"pr\": 3,\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {}, \"iters\": {}}}",
            r.name, r.mean_ns, r.iters
        ));
    }
    json.push_str(&format!(
        "\n  ],\n  \"chain_routing_speedup\": {chain_speedup:.3},\n  \
         \"fanout_routing_speedup\": {fanout_speedup:.3},\n  \
         \"record_lookup_speedup\": {record_speedup:.3}\n}}\n"
    ));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../results/BENCH_pr3.json");
    std::fs::write(&path, json).expect("write BENCH_pr3.json");
    println!("wrote {}", path.display());
    assert!(
        chain_speedup >= 1.2,
        "batched routing must beat the per-event path by >= 20% (got {chain_speedup:.2}x)"
    );
}
