//! PR 6 scaling: keyed sharding of `TollCalculation` behind the generated
//! splitter / ordered-merge pair must deliver near-linear toll throughput
//! on the pooled executor while leaving the workflow's observable output
//! untouched. Two claims are checked:
//!
//! 1. *Scaling*: on a two-expressway Linear Road trace whose toll firings
//!    each stall for 1 ms (modelling a slow external toll service), four
//!    carid-keyed replicas on a 4-worker pool push toll throughput to at
//!    least 2.5x the 1-replica run.
//! 2. *Correctness*: every sharded run produces the byte-identical toll
//!    stream as the unsharded workflow, and routes the same number of
//!    events over every shared (non-generated) channel.
//!
//! Besides printing each run, the harness writes a machine-readable
//! summary to `results/BENCH_pr6.json` (skipped under
//! `cargo bench -- --test` smoke mode, which also shrinks the trace) so
//! the numbers backing this PR's claims are checked in next to the code.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use confluence_core::director::pool::PoolDirector;
use confluence_core::director::Director;
use confluence_core::telemetry::{MetricsRecorder, MetricsSnapshot, Telemetry};
use confluence_core::time::Micros;
use confluence_linearroad::{build, LrOptions, TollNotification, Workload, WorkloadConfig};

const WORKERS: usize = 4;

/// Deterministic (no-accident) trace over two expressways — the L >= 2
/// configuration the sharding claim is stated against.
fn workload(smoke: bool) -> Workload {
    Workload::generate(WorkloadConfig {
        duration_secs: if smoke { 30 } else { 300 },
        l_rating: 0.25,
        expressways: 2,
        seed: 7,
        base_initial_cars: if smoke { 60 } else { 600 },
        base_final_cars: if smoke { 120 } else { 1_200 },
        accident_every_secs: None,
        accident_duration_secs: 0,
    })
}

struct ShardRun {
    label: String,
    replicas: usize,
    firings: u64,
    tolls: Vec<(i64, i64, i64, u64)>,
    /// Routed events per shared channel, keyed by the channel's
    /// shard-normalized `(from, to, port)` (replica names collapse onto
    /// their base actor; channels internal to a shard group drop out).
    edges: BTreeMap<(String, String, usize), u64>,
    per_replica_fires: Vec<u64>,
    elapsed_secs: f64,
    tolls_per_sec: f64,
}

/// Collapse a generated `base#<i>` / `base#split` / `base#merge` name
/// back onto its base actor, so sharded and unsharded channel counts
/// compare under one key space.
fn norm(name: &str) -> String {
    name.split('#').next().unwrap_or(name).to_string()
}

fn shared_edges(metrics: &MetricsSnapshot) -> BTreeMap<(String, String, usize), u64> {
    let mut out = BTreeMap::new();
    for e in &metrics.edges {
        let from = norm(&e.from_name);
        let to = norm(&e.to_name);
        if from == to {
            // Splitter -> replica and replica -> merge channels (data and
            // ack) are internal to the expanded group: no unsharded
            // counterpart exists.
            continue;
        }
        *out.entry((from, to, e.port)).or_insert(0u64) += e.events;
    }
    out
}

/// One pooled run; `shard` = None is the unsharded reference.
fn run(w: &Workload, shard: Option<usize>, smoke: bool) -> ShardRun {
    let opts = LrOptions {
        composite_subworkflows: false,
        shard_toll: shard,
        // 1 ms of blocking service time per toll firing: the stall
        // overlaps across replicas (it blocks a worker, it does not burn
        // the core), so scaling shows even on a single-CPU host.
        toll_cost: Some(Micros(1_000)),
        arrival_speedup: if smoke { 100 } else { 1_000 },
        ..LrOptions::default()
    };
    let mut lr = build(w, &opts).expect("workflow builds");
    let recorder = Arc::new(MetricsRecorder::for_workflow(&lr.workflow));
    let mut director = PoolDirector::new().with_workers(WORKERS);
    director.instrument(Telemetry::new(recorder.clone()));
    let started = Instant::now();
    let report = director.run(&mut lr.workflow).expect("run succeeds");
    let elapsed_secs = started.elapsed().as_secs_f64();
    let metrics = recorder.snapshot();
    let mut tolls: Vec<(i64, i64, i64, u64)> = lr
        .toll_output
        .items()
        .iter()
        .map(|i| {
            let n = TollNotification::from_token(&i.token).unwrap();
            (n.carid, n.time, n.seg, n.toll.to_bits())
        })
        .collect();
    tolls.sort_unstable();
    let per_replica_fires = metrics
        .shards()
        .first()
        .map(|g| g.replicas.iter().map(|r| r.fires).collect())
        .unwrap_or_default();
    let tolls_per_sec = tolls.len() as f64 / elapsed_secs;
    ShardRun {
        label: match shard {
            None => "unsharded".to_string(),
            Some(n) => format!("replicas-{n}"),
        },
        replicas: shard.unwrap_or(1),
        firings: report.firings,
        tolls,
        edges: shared_edges(&metrics),
        per_replica_fires,
        elapsed_secs,
        tolls_per_sec,
    }
}

fn main() {
    let smoke = criterion::is_test_mode();
    let w = workload(smoke);
    println!(
        "pr6 shard scaling: {} reports, {} workers, 1 ms/firing toll service",
        w.len(),
        WORKERS
    );
    println!(
        "{:<12}  {:>8}  {:>8}  {:>10}  {:>12}  replica fires",
        "run", "firings", "tolls", "elapsed_s", "tolls_per_s"
    );
    let mut runs: Vec<ShardRun> = Vec::new();
    for shard in [None, Some(1), Some(2), Some(4)] {
        let r = run(&w, shard, smoke);
        println!(
            "{:<12}  {:>8}  {:>8}  {:>10.3}  {:>12.1}  {:?}",
            r.label,
            r.firings,
            r.tolls.len(),
            r.elapsed_secs,
            r.tolls_per_sec,
            r.per_replica_fires
        );
        runs.push(r);
    }

    // Correctness gate, enforced even in smoke mode: sharding must not
    // change the toll stream or the event counts on shared channels.
    let reference = &runs[0];
    assert!(!reference.tolls.is_empty(), "trace must produce tolls");
    for r in &runs[1..] {
        assert_eq!(
            reference.tolls, r.tolls,
            "{}: toll stream diverges from unsharded",
            r.label
        );
        assert_eq!(
            reference.edges, r.edges,
            "{}: shared-channel event counts diverge from unsharded",
            r.label
        );
    }
    println!("correctness: toll streams and shared-channel counts identical across runs");

    let thr = |replicas: usize| -> f64 {
        runs.iter()
            .find(|r| r.label.starts_with("replicas") && r.replicas == replicas)
            .map(|r| r.tolls_per_sec)
            .unwrap_or(0.0)
    };
    let speedup_2 = thr(2) / thr(1);
    let speedup_4 = thr(4) / thr(1);
    println!("toll throughput scaling vs 1 replica: 2 replicas {speedup_2:.2}x, 4 replicas {speedup_4:.2}x");

    if smoke {
        println!("smoke mode (--test): shrunk trace, skipping BENCH_pr6.json and the scaling gate");
        return;
    }

    let mut json = String::from("{\n  \"pr\": 6,\n  \"runs\": [\n");
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{\"label\": \"{}\", \"replicas\": {}, \"firings\": {}, \"tolls\": {}, \
             \"elapsed_secs\": {:.4}, \"tolls_per_sec\": {:.1}, \"replica_fires\": {:?}}}",
            r.label,
            r.replicas,
            r.firings,
            r.tolls.len(),
            r.elapsed_secs,
            r.tolls_per_sec,
            r.per_replica_fires
        ));
    }
    json.push_str(&format!(
        "\n  ],\n  \"workers\": {WORKERS},\n  \"toll_cost_us\": 1000,\n  \
         \"speedup_2_replicas\": {speedup_2:.3},\n  \
         \"speedup_4_replicas\": {speedup_4:.3},\n  \
         \"toll_streams_identical\": true,\n  \
         \"shared_edge_counts_identical\": true\n}}\n"
    ));
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_pr6.json");
    std::fs::write(&path, json).expect("write BENCH_pr6.json");
    println!("wrote {}", path.display());
    assert!(
        speedup_4 >= 2.5,
        "4 carid replicas on a {WORKERS}-worker pool must reach >= 2.5x the 1-replica toll \
         throughput (got {speedup_4:.2}x)"
    );
}
