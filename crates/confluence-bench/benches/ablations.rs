//! Ablation benches: the cost of the scheduling framework itself
//! (per-decision overhead sweep) and of the two-level workflow hierarchy
//! (composite sub-workflows vs flat actors).

use criterion::{criterion_group, criterion_main, Criterion};

use confluence_bench::config::ExperimentConfig;
use confluence_bench::runner::{run_linear_road_with, PolicyKind, RunOptions};
use confluence_core::time::Micros;
use confluence_linearroad::Workload;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    let config = ExperimentConfig::quick();
    let workload = Workload::generate(config.workload());
    let kind = PolicyKind::Qbs { basic_quantum: 500 };

    for overhead in [0u64, 100, 500] {
        g.bench_function(format!("scheduler_overhead_{overhead}us"), |b| {
            b.iter(|| {
                let run = run_linear_road_with(
                    kind,
                    &workload,
                    &config,
                    RunOptions {
                        scheduler_overhead: Micros(overhead),
                        ..RunOptions::default()
                    },
                );
                std::hint::black_box(run.toll_count)
            })
        });
    }
    for (label, flat) in [("composite", false), ("flat", true)] {
        g.bench_function(format!("hierarchy_{label}"), |b| {
            b.iter(|| {
                let run = run_linear_road_with(
                    kind,
                    &workload,
                    &config,
                    RunOptions {
                        flat_subworkflows: flat,
                        ..RunOptions::default()
                    },
                );
                std::hint::black_box(run.toll_count)
            })
        });
    }
    g.bench_function("with_load_shedding", |b| {
        b.iter(|| {
            let run = run_linear_road_with(
                kind,
                &workload,
                &config,
                RunOptions {
                    shed_target: Some(Micros::from_millis(500)),
                    ..RunOptions::default()
                },
            );
            std::hint::black_box(run.toll_count)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
