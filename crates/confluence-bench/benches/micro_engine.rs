//! Microbenchmarks of the engine's hot paths: the window operator, the
//! receiver put/get path, wave stamping, and scheduler decisions.

use criterion::{criterion_group, criterion_main, Criterion};

use confluence_core::event::CwEvent;
use confluence_core::receiver::{ActorInbox, PortReceiver};
use confluence_core::time::{Micros, Timestamp};
use confluence_core::token::Token;
use confluence_core::window::{GroupBy, WindowOperator, WindowSpec};
use confluence_sched::framework::{ActorInfo, Scheduler};
use confluence_sched::policies::QbsScheduler;
use confluence_sched::stats::StatsModule;

fn report(carid: i64, ts: u64) -> CwEvent {
    CwEvent::external(
        Token::record()
            .field("carid", carid)
            .field("seg", carid % 100)
            .field("speed", 55.0)
            .build(),
        Timestamp(ts),
    )
}

fn bench_window_operator(c: &mut Criterion) {
    let mut g = c.benchmark_group("window_operator");
    g.bench_function("sliding_tuple_grouped_push", |b| {
        b.iter_with_setup(
            || {
                WindowOperator::new(
                    WindowSpec::tuples(4, 1).group_by(GroupBy::fields(&["carid"])),
                )
                .unwrap()
            },
            |mut op| {
                for i in 0..1_000u64 {
                    op.push(report((i % 50) as i64, i), Timestamp(i)).unwrap();
                    while op.pop_window().is_some() {}
                }
                std::hint::black_box(op.pending_events())
            },
        )
    });
    g.bench_function("tumbling_time_grouped_push_poll", |b| {
        b.iter_with_setup(
            || {
                WindowOperator::new(
                    WindowSpec::time(Micros::from_secs(60), Micros::from_secs(60))
                        .group_by(GroupBy::fields(&["seg"])),
                )
                .unwrap()
            },
            |mut op| {
                for i in 0..1_000u64 {
                    let ts = i * 100_000; // 0.1 s apart
                    op.push(report(i as i64, ts), Timestamp(ts)).unwrap();
                    if let Some(d) = op.next_deadline() {
                        if d.as_micros() <= ts {
                            op.poll(Timestamp(ts));
                        }
                    }
                    while op.pop_window().is_some() {}
                }
                std::hint::black_box(op.ready_len())
            },
        )
    });
    g.finish();
}

fn bench_receiver(c: &mut Criterion) {
    c.bench_function("receiver_put_through_inbox", |b| {
        b.iter_with_setup(
            || {
                let inbox = ActorInbox::new(1);
                let recv =
                    PortReceiver::new(WindowSpec::each_event(), inbox.clone(), 0, 1).unwrap();
                (inbox, recv)
            },
            |(inbox, recv)| {
                for i in 0..1_000u64 {
                    recv.put(report(i as i64, i), Timestamp(i)).unwrap();
                    inbox.try_pop();
                }
                std::hint::black_box(inbox.len())
            },
        )
    });
}

fn bench_scheduler_decisions(c: &mut Criterion) {
    c.bench_function("qbs_decision_cycle", |b| {
        let infos: Vec<ActorInfo> = (0..16)
            .map(|i| ActorInfo {
                index: i,
                name: format!("a{i}"),
                priority: (i % 3 * 5 + 5) as i32,
                is_source: i == 0,
            })
            .collect();
        let stats = StatsModule::new(
            &confluence_core::graph::WorkflowBuilder::new("empty")
                .build()
                .unwrap(),
        );
        b.iter_with_setup(
            || {
                let mut q = QbsScheduler::new(500, 5);
                q.init(&infos);
                q.on_source_ready(0, true);
                for a in 1..16 {
                    for _ in 0..4 {
                        q.on_enqueue(a, Timestamp::ZERO);
                    }
                }
                q
            },
            |mut q| {
                let mut fired = 0u64;
                while let Some(a) = q.next_actor() {
                    q.after_fire(a, Micros(700), 0, &stats);
                    fired += 1;
                    if fired > 200 {
                        break;
                    }
                }
                std::hint::black_box(fired)
            },
        )
    });
}

criterion_group!(
    benches,
    bench_window_operator,
    bench_receiver,
    bench_scheduler_decisions
);
criterion_main!(benches);
