//! Figure 8: the main scheduler comparison (QBS-q500, RR-q40000, RB,
//! thread-based PNCWF).

use criterion::{criterion_group, criterion_main, Criterion};

use confluence_bench::config::ExperimentConfig;
use confluence_bench::runner::{run_linear_road, PolicyKind};
use confluence_linearroad::Workload;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8_all_schedulers");
    g.sample_size(10);
    let config = ExperimentConfig::quick();
    let workload = Workload::generate(config.workload());
    for kind in [
        PolicyKind::Rr { slice: 40_000 },
        PolicyKind::Qbs { basic_quantum: 500 },
        PolicyKind::Rb,
        PolicyKind::Pncwf,
    ] {
        g.bench_function(kind.label(), |b| {
            b.iter(|| {
                let run = run_linear_road(kind, &workload, &config);
                std::hint::black_box(run.toll_count)
            })
        });
    }
    g.finish();

    // Assert the headline shape once per bench run: the thread-based
    // baseline saturates earlier than the STAFiLOS schedulers.
    let qbs = run_linear_road(PolicyKind::Qbs { basic_quantum: 500 }, &workload, &config);
    let pncwf = run_linear_road(PolicyKind::Pncwf, &workload, &config);
    if let (Some(staf), Some(os)) = (qbs.thrash_secs, pncwf.thrash_secs) {
        assert!(os < staf, "PNCWF ({os}s) must thrash before QBS ({staf}s)");
    }
    assert!(
        pncwf.toll_series.mean_secs_before(300) > qbs.toll_series.mean_secs_before(300),
        "PNCWF pre-saturation response must exceed QBS"
    );
}

criterion_group!(benches, bench);
criterion_main!(benches);
