//! Figure 6: RR scheduler sensitivity to the basic quantum.

use criterion::{criterion_group, criterion_main, Criterion};

use confluence_bench::config::ExperimentConfig;
use confluence_bench::runner::{run_linear_road, PolicyKind};
use confluence_linearroad::Workload;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_rr_sensitivity");
    g.sample_size(10);
    let config = ExperimentConfig::quick();
    let workload = Workload::generate(config.workload());
    for &slice in &config.rr_quanta {
        g.bench_function(format!("RR-q{slice}"), |b| {
            b.iter(|| {
                let run = run_linear_road(PolicyKind::Rr { slice }, &workload, &config);
                std::hint::black_box(run.toll_count)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
