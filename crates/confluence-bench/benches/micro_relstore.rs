//! Microbenchmarks of the relational-store substrate: the operations the
//! Linear Road toll query leans on.

use criterion::{criterion_group, criterion_main, Criterion};

use confluence_relstore::expr::{col, lit};
use confluence_relstore::{Agg, Schema, Table, ValueType};

fn stats_table(rows: i64) -> Table {
    let schema = Schema::builder()
        .column("xway", ValueType::Int)
        .column("dir", ValueType::Int)
        .column("seg", ValueType::Int)
        .column("minute", ValueType::Int)
        .column("cars", ValueType::Int)
        .primary_key(&["xway", "dir", "seg", "minute"])
        .build()
        .unwrap();
    let mut t = Table::new(schema);
    t.create_index(&["seg"]).unwrap();
    for i in 0..rows {
        // (xway, dir, seg, minute) unique per i: seg spans 0..200 so the
        // (dir, seg) pair pins i within its 200-row block.
        t.insert(vec![
            0.into(),
            (i % 2).into(),
            (i % 200).into(),
            (i / 200).into(),
            (i % 120).into(),
        ])
        .unwrap();
    }
    t
}

fn bench(c: &mut Criterion) {
    let t = stats_table(20_000);
    let mut g = c.benchmark_group("relstore");

    g.bench_function("pk_point_lookup", |b| {
        // Row i = 2057: dir 1, seg 57, minute 10.
        b.iter(|| {
            std::hint::black_box(t.get(&[0.into(), 1.into(), 57.into(), 10.into()]))
        })
    });

    g.bench_function("secondary_index_select", |b| {
        let pred = col("seg").eq(lit(57)).and(col("cars").gt(lit(50)));
        b.iter(|| std::hint::black_box(t.select(Some(&pred)).unwrap().len()))
    });

    g.bench_function("range_scan_aggregate", |b| {
        let pred = col("minute").between(lit(40), lit(44));
        b.iter(|| std::hint::black_box(t.aggregate(Some(&pred), &Agg::Avg("cars".into())).unwrap()))
    });

    g.bench_function("upsert", |b| {
        let mut t = stats_table(5_000);
        let mut i = 0i64;
        b.iter(|| {
            i += 1;
            t.upsert(vec![
                0.into(),
                (i % 2).into(),
                (i % 200).into(),
                ((i / 200) % 25).into(),
                (i % 120).into(),
            ])
            .unwrap()
        })
    });

    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
