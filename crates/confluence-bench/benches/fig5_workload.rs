//! Figure 5: generating the 0.5-expressway workload and its rate series.

use criterion::{criterion_group, criterion_main, Criterion};

use confluence_bench::config::ExperimentConfig;
use confluence_linearroad::Workload;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_workload");
    g.sample_size(10);
    let config = ExperimentConfig::default();
    g.bench_function("generate_paper_workload", |b| {
        b.iter(|| {
            let w = Workload::generate(config.workload());
            std::hint::black_box(w.len())
        })
    });
    let w = Workload::generate(config.workload());
    g.bench_function("rate_series", |b| {
        b.iter(|| std::hint::black_box(w.rate_series(30).len()))
    });
    g.finish();

    // Assert the figure's shape once per bench run.
    let series = w.rate_series(30);
    let early = series[1].1;
    let late = series[series.len() - 2].1;
    assert!(late > early * 4.0, "Figure 5 ramp must hold: {early} → {late}");
}

criterion_group!(benches, bench);
criterion_main!(benches);
