//! PR 4 perf trajectory: policy-aware ready queues in the pool executor.
//!
//! Two claims are measured:
//!
//! 1. the per-worker priority heap (with LIFO slot and steal-best) stays
//!    within the same cost envelope as the plain deque it replaced
//!    (`ready_queue/*` micro-benches);
//! 2. on an *overloaded* wall-clock Linear Road replay, a priority
//!    policy (EDF-on-wave-origins or stride-scheduled QBS allotments)
//!    cuts the p95 toll-notification response time by at least 20%
//!    versus the FIFO control (`overload` section).
//!
//! Besides printing each timing, the harness writes a machine-readable
//! summary to `results/BENCH_pr4.json` (skipped under
//! `cargo bench -- --test` smoke mode) so the numbers backing this PR's
//! claims are checked in next to the code.

use std::collections::VecDeque;
use std::time::Instant;

use criterion::{black_box, Criterion};

use confluence_bench::runner::{run_linear_road_realtime_policy, RealtimePolicy};
use confluence_core::director::pool_policy::{ReadyEntry, ReadyQueue};
use confluence_linearroad::{Workload, WorkloadConfig};

/// Entries per micro-bench iteration.
const OPS: u64 = 1_000;

/// Pseudo-random priority key (Knuth multiplicative hash of the index).
fn key(i: u64) -> u64 {
    (i.wrapping_mul(2_654_435_761)) % 1_000
}

fn bench_ready_queue(c: &mut Criterion) {
    let mut g = c.benchmark_group("ready_queue");
    // The policy-aware heap: push OPS keyed entries, pop them all in
    // priority order (rekey is the cheap FIFO closure).
    g.bench_function("heap_push_pop", |b| {
        b.iter(|| {
            let mut q = ReadyQueue::new();
            for i in 0..OPS {
                q.push(
                    ReadyEntry {
                        key: key(i),
                        seq: i,
                        actor: (i % 64) as usize,
                    },
                    false,
                );
            }
            let mut acc = 0usize;
            while let Some(e) = q.pop_with(|_| 0) {
                acc += e.actor;
            }
            black_box(acc)
        })
    });
    // The PR 3 baseline it replaced: a plain FIFO deque.
    g.bench_function("deque_push_pop", |b| {
        b.iter(|| {
            let mut q: VecDeque<usize> = VecDeque::new();
            for i in 0..OPS {
                q.push_back((i % 64) as usize);
            }
            let mut acc = 0usize;
            while let Some(a) = q.pop_front() {
                acc += a;
            }
            black_box(acc)
        })
    });
    // Steal path: the thief takes the victim's *best* entry.
    g.bench_function("heap_steal_best", |b| {
        b.iter(|| {
            let mut q = ReadyQueue::new();
            for i in 0..OPS {
                q.push(
                    ReadyEntry {
                        key: key(i),
                        seq: i,
                        actor: (i % 64) as usize,
                    },
                    false,
                );
            }
            let mut acc = 0usize;
            while let Some(e) = q.steal_best() {
                acc += e.actor;
            }
            black_box(acc)
        })
    });
    g.finish();
}

/// One policy's overload-run outcome.
struct PolicyRun {
    label: String,
    firings: u64,
    tolls: usize,
    elapsed_us: u64,
    mean_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// Replay an overloaded Linear Road segment under one pool policy: few
/// workers, timetable compressed far past capacity, so the ready queues
/// genuinely back up and the ordering policy decides who waits.
fn overload_run(policy: RealtimePolicy, workload: &Workload, workers: usize, speedup: u64) -> PolicyRun {
    let run = run_linear_road_realtime_policy(Some(workers), policy, workload, speedup);
    PolicyRun {
        label: policy.label(),
        firings: run.firings,
        tolls: run.toll_count,
        elapsed_us: run.elapsed.as_micros(),
        mean_ms: run.toll_series.mean_secs() * 1e3,
        p95_ms: run.toll_series.percentile_secs(95.0) * 1e3,
        p99_ms: run.toll_series.percentile_secs(99.0) * 1e3,
    }
}

fn overload_workload(smoke: bool) -> Workload {
    // Cars report every 30 s, so the percentile estimates need a long,
    // dense trace: 300 s at 150→300 cars yields a few thousand tolls.
    Workload::generate(WorkloadConfig {
        duration_secs: if smoke { 30 } else { 300 },
        l_rating: 0.25,
        expressways: 1,
        seed: 7,
        base_initial_cars: if smoke { 60 } else { 600 },
        base_final_cars: if smoke { 120 } else { 1_200 },
        accident_every_secs: None,
        accident_duration_secs: 0,
    })
}

fn main() {
    let _ = criterion::take_results();
    let mut c = Criterion::default();
    bench_ready_queue(&mut c);
    let results = criterion::take_results();

    let smoke = criterion::is_test_mode();
    // Overload segment: 1 worker, timetable compressed 400x — arrivals
    // outrun service, so toll tuples queue behind the stats path unless
    // the policy reorders them.
    let workers = 1;
    let speedup = if smoke { 100 } else { 1_000 };
    let workload = overload_workload(smoke);
    println!("\noverload segment ({workers} worker(s), {speedup}x timetable):");
    println!(
        "{:<10}  {:>10}  {:>8}  {:>12}  {:>9}  {:>9}  {:>9}",
        "policy", "firings", "tolls", "elapsed_us", "mean_ms", "p95_ms", "p99_ms"
    );
    let mut runs: Vec<PolicyRun> = Vec::new();
    for policy in RealtimePolicy::all() {
        let started = Instant::now();
        let run = overload_run(policy, &workload, workers, speedup);
        println!(
            "{:<10}  {:>10}  {:>8}  {:>12}  {:>9.2}  {:>9.2}  {:>9.2}   ({:.1}s wall)",
            run.label,
            run.firings,
            run.tolls,
            run.elapsed_us,
            run.mean_ms,
            run.p95_ms,
            run.p99_ms,
            started.elapsed().as_secs_f64()
        );
        runs.push(run);
    }
    if smoke {
        println!("smoke mode (--test): benches ran once each, skipping BENCH_pr4.json");
        return;
    }

    let p95 = |label: &str| -> f64 {
        runs.iter()
            .find(|r| r.label == label)
            .map(|r| r.p95_ms)
            .unwrap_or(f64::NAN)
    };
    let fifo_p95 = p95("fifo");
    let best_priority_p95 = p95("edf").min(p95("qbs:1000"));
    let improvement = 1.0 - best_priority_p95 / fifo_p95;
    println!(
        "\nbest priority-policy p95 vs fifo: {best_priority_p95:.2}ms vs {fifo_p95:.2}ms \
         ({:.0}% lower)",
        improvement * 100.0
    );

    let mut json = String::from("{\n  \"pr\": 4,\n  \"benches\": [\n");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {}, \"iters\": {}}}",
            r.name, r.mean_ns, r.iters
        ));
    }
    json.push_str("\n  ],\n  \"overload\": {\n");
    json.push_str(&format!(
        "    \"workers\": {workers},\n    \"arrival_speedup\": {speedup},\n    \"policies\": [\n"
    ));
    for (i, r) in runs.iter().enumerate() {
        if i > 0 {
            json.push_str(",\n");
        }
        json.push_str(&format!(
            "      {{\"policy\": \"{}\", \"firings\": {}, \"tolls\": {}, \"elapsed_us\": {}, \
             \"mean_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}",
            r.label, r.firings, r.tolls, r.elapsed_us, r.mean_ms, r.p95_ms, r.p99_ms
        ));
    }
    json.push_str(&format!(
        "\n    ],\n    \"best_priority_p95_over_fifo\": {:.3}\n  }}\n}}\n",
        best_priority_p95 / fifo_p95
    ));
    let path =
        std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_pr4.json");
    std::fs::write(&path, json).expect("write BENCH_pr4.json");
    println!("wrote {}", path.display());
    assert!(
        best_priority_p95 <= 0.8 * fifo_p95,
        "a priority policy must cut p95 toll response by >= 20% vs FIFO under overload \
         (fifo {fifo_p95:.2}ms, best priority {best_priority_p95:.2}ms)"
    );
}
