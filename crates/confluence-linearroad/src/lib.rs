//! # confluence-linearroad
//!
//! The Linear Road benchmark (Arasu et al., VLDB 2004) as a continuous
//! workflow — the evaluation workload of the CONFLuEnCE/STAFiLOS paper
//! (its Appendix A): variable tolling with accident detection and alerts,
//! per-segment traffic statistics, and toll calculation/notification,
//! backed by the `confluence-relstore` relational store.
//!
//! * [`model`] — position reports, toll notifications, the toll formula;
//! * [`gen`] — the workload generator (Figure 5's 0.5-expressway ramp);
//! * [`tables`] — the relational tables and their queries;
//! * [`actors`] — the domain actors of Figures 10–15;
//! * [`workflow`] — assembly of the two-level workflow hierarchy;
//! * [`spec`] — the same workflow in the declarative spec language;
//! * [`golden`] — an engine-independent reference implementation;
//! * [`metrics`] — response-time series and thrash detection;
//! * [`cost`] — calibrated virtual-time cost models.

pub mod actors;
pub mod cost;
pub mod gen;
pub mod golden;
pub mod metrics;
pub mod model;
pub mod spec;
pub mod tables;
pub mod workflow;

pub use gen::{Workload, WorkloadConfig};
pub use metrics::ResponseSeries;
pub use model::{PositionReport, TollNotification};
pub use workflow::{build, LinearRoad, LrOptions};
