//! The Linear Road data model.
//!
//! Linear Road simulates a variable-tolling system for the motor-vehicle
//! expressways of a fictional metropolitan area (paper Appendix A; Arasu
//! et al., VLDB 2004). The stream consists of car **position reports**:
//! every car reports its position every 30 seconds, including its
//! expressway, direction, lane, segment, absolute position, and speed.

use confluence_core::error::Result;
use confluence_core::time::Timestamp;
use confluence_core::token::Token;

/// Seconds between consecutive position reports of one car.
pub const REPORT_INTERVAL_SECS: u64 = 30;
/// Segments per expressway direction.
pub const SEGMENTS: i64 = 100;
/// Feet per segment (one mile).
pub const SEGMENT_FEET: i64 = 5280;
/// Number of travel lanes (0 = entry, 1..=3 travel, 4 = exit).
pub const EXIT_LANE: i64 = 4;
/// Tolls apply when the latest average velocity is below this (mph).
pub const TOLL_LAV_THRESHOLD: f64 = 40.0;
/// Tolls apply when the previous minute had more cars than this.
pub const TOLL_CAR_THRESHOLD: i64 = 50;
/// An accident affects this many segments upstream of it.
pub const ACCIDENT_RANGE_SEGS: i64 = 4;
/// LAV is the average over this many past minutes.
pub const LAV_WINDOW_MINUTES: i64 = 5;

/// A car position report (stream record type 0).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PositionReport {
    /// Report time, in seconds since the start of the run.
    pub time: i64,
    /// Car identifier.
    pub carid: i64,
    /// Current speed in mph.
    pub speed: f64,
    /// Expressway id.
    pub xway: i64,
    /// Lane (0 entry, 1–3 travel, 4 exit).
    pub lane: i64,
    /// Direction (0 = increasing position, 1 = decreasing).
    pub dir: i64,
    /// Segment number (0..SEGMENTS).
    pub seg: i64,
    /// Absolute position in feet.
    pub pos: i64,
}

impl PositionReport {
    /// The report's minute number (for segment statistics).
    pub fn minute(&self) -> i64 {
        self.time / 60
    }

    /// Whether the car is in the exit lane (excluded from accident
    /// detection and notification).
    pub fn in_exit_lane(&self) -> bool {
        self.lane == EXIT_LANE
    }

    /// Encode as a workflow record token.
    pub fn to_token(&self) -> Token {
        Token::record()
            .field("time", self.time)
            .field("carid", self.carid)
            .field("speed", self.speed)
            .field("xway", self.xway)
            .field("lane", self.lane)
            .field("dir", self.dir)
            .field("seg", self.seg)
            .field("pos", self.pos)
            .build()
    }

    /// Decode from a workflow record token.
    pub fn from_token(token: &Token) -> Result<PositionReport> {
        Ok(PositionReport {
            time: token.int_field("time")?,
            carid: token.int_field("carid")?,
            speed: token.float_field("speed")?,
            xway: token.int_field("xway")?,
            lane: token.int_field("lane")?,
            dir: token.int_field("dir")?,
            seg: token.int_field("seg")?,
            pos: token.int_field("pos")?,
        })
    }

    /// The stream timestamp at which this report enters the system.
    pub fn arrival(&self) -> Timestamp {
        Timestamp::from_secs(self.time as u64)
    }
}

/// A toll notification produced by the workflow output.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TollNotification {
    /// Notified car.
    pub carid: i64,
    /// Report time that triggered the notification.
    pub time: i64,
    /// Segment the car just entered.
    pub seg: i64,
    /// The toll charged (0 when conditions do not hold).
    pub toll: f64,
}

impl TollNotification {
    /// Encode as a record token.
    pub fn to_token(&self) -> Token {
        Token::record()
            .field("carid", self.carid)
            .field("time", self.time)
            .field("seg", self.seg)
            .field("toll", self.toll)
            .build()
    }

    /// Decode from a record token.
    pub fn from_token(token: &Token) -> Result<TollNotification> {
        Ok(TollNotification {
            carid: token.int_field("carid")?,
            time: token.int_field("time")?,
            seg: token.int_field("seg")?,
            toll: token.float_field("toll")?,
        })
    }
}

/// The variable-toll formula: `2·(cars − 50)²` when the segment was slow
/// and busy and has no accident nearby, else 0.
pub fn toll_formula(lav: Option<f64>, cars: Option<i64>, accident_nearby: bool) -> f64 {
    match (lav, cars) {
        (Some(lav), Some(cars))
            if lav < TOLL_LAV_THRESHOLD && cars > TOLL_CAR_THRESHOLD && !accident_nearby =>
        {
            2.0 * ((cars - TOLL_CAR_THRESHOLD) as f64).powi(2)
        }
        _ => 0.0,
    }
}

/// Whether a car at `seg` traveling `dir` is in the notification range of
/// an accident at `acc_seg` (the paper's SQL range check).
pub fn accident_in_range(dir: i64, seg: i64, acc_seg: i64) -> bool {
    if dir == 1 {
        seg <= acc_seg + ACCIDENT_RANGE_SEGS && seg >= acc_seg
    } else {
        seg >= acc_seg - ACCIDENT_RANGE_SEGS && seg <= acc_seg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> PositionReport {
        PositionReport {
            time: 95,
            carid: 42,
            speed: 57.5,
            xway: 0,
            lane: 2,
            dir: 0,
            seg: 17,
            pos: 17 * SEGMENT_FEET + 100,
        }
    }

    #[test]
    fn token_round_trip() {
        let r = report();
        let t = r.to_token();
        assert_eq!(PositionReport::from_token(&t).unwrap(), r);
        assert!(PositionReport::from_token(&Token::Int(1)).is_err());
    }

    #[test]
    fn derived_fields() {
        let r = report();
        assert_eq!(r.minute(), 1);
        assert!(!r.in_exit_lane());
        assert_eq!(r.arrival(), Timestamp::from_secs(95));
        let mut exiting = r;
        exiting.lane = EXIT_LANE;
        assert!(exiting.in_exit_lane());
    }

    #[test]
    fn toll_notification_round_trip() {
        let n = TollNotification {
            carid: 1,
            time: 2,
            seg: 3,
            toll: 128.0,
        };
        assert_eq!(TollNotification::from_token(&n.to_token()).unwrap(), n);
    }

    #[test]
    fn toll_formula_cases() {
        // Slow + busy + no accident → charged.
        assert_eq!(toll_formula(Some(30.0), Some(60), false), 200.0);
        // Fast segment → free.
        assert_eq!(toll_formula(Some(50.0), Some(60), false), 0.0);
        // Few cars → free.
        assert_eq!(toll_formula(Some(30.0), Some(50), false), 0.0);
        // Accident nearby → free (cars should exit instead).
        assert_eq!(toll_formula(Some(30.0), Some(60), true), 0.0);
        // Missing statistics → free.
        assert_eq!(toll_formula(None, Some(60), false), 0.0);
        assert_eq!(toll_formula(Some(30.0), None, false), 0.0);
    }

    #[test]
    fn accident_range_matches_paper_sql() {
        // dir=0: affected segments are [acc−4, acc].
        assert!(accident_in_range(0, 10, 10));
        assert!(accident_in_range(0, 6, 10));
        assert!(!accident_in_range(0, 5, 10));
        assert!(!accident_in_range(0, 11, 10));
        // dir=1: affected segments are [acc, acc+4].
        assert!(accident_in_range(1, 10, 10));
        assert!(accident_in_range(1, 14, 10));
        assert!(!accident_in_range(1, 15, 10));
        assert!(!accident_in_range(1, 9, 10));
    }
}
