//! The relational tables backing the Linear Road workflow.
//!
//! The paper's implementation "requires the support of a relational
//! database to store statistics on the road congestion as well as the
//! recent accidents detected" (Appendix A). Three tables:
//!
//! * `segment_cars(xway, dir, seg, minute, cars)` — cars present per
//!   segment per minute (toll formula input `numOfCars`);
//! * `minute_speeds(xway, dir, seg, minute, avg_speed)` — per-minute
//!   average speed per segment; LAV is the average of the last five;
//! * `accidents(xway, dir, seg, pos, time, car1, car2)` — detected
//!   accidents with detection time.

use confluence_core::error::Result;
use confluence_relstore::expr::{col, lit};
use confluence_relstore::{Agg, Schema, StoreHandle, Value, ValueType};

use crate::model::{accident_in_range, ACCIDENT_RANGE_SEGS, LAV_WINDOW_MINUTES};

/// Create the three Linear Road tables (with their indexes) in a store.
pub fn create_tables(store: &StoreHandle) -> Result<()> {
    store.write(|s| -> Result<()> {
        s.create_table(
            "segment_cars",
            Schema::builder()
                .column("xway", ValueType::Int)
                .column("dir", ValueType::Int)
                .column("seg", ValueType::Int)
                .column("minute", ValueType::Int)
                .column("cars", ValueType::Int)
                .primary_key(&["xway", "dir", "seg", "minute"])
                .build()?,
        )?;
        s.create_table(
            "minute_speeds",
            Schema::builder()
                .column("xway", ValueType::Int)
                .column("dir", ValueType::Int)
                .column("seg", ValueType::Int)
                .column("minute", ValueType::Int)
                .column("avg_speed", ValueType::Float)
                .primary_key(&["xway", "dir", "seg", "minute"])
                .build()?,
        )?;
        s.create_table(
            "accidents",
            Schema::builder()
                .column("xway", ValueType::Int)
                .column("dir", ValueType::Int)
                .column("seg", ValueType::Int)
                .column("pos", ValueType::Int)
                .column("time", ValueType::Int)
                .column("car1", ValueType::Int)
                .column("car2", ValueType::Int)
                .primary_key(&["xway", "dir", "pos", "time"])
                .build()?,
        )?;
        s.table_mut("segment_cars")?.create_index(&["xway", "dir", "seg"])?;
        // The LAV query is `eq(xway,dir,seg) AND minute BETWEEN m−5 AND
        // m−1`: an ordered composite index serves it with a range scan.
        s.table_mut("minute_speeds")?
            .create_ordered_index(&["xway", "dir", "seg"], "minute")?;
        // Accident recency checks range on detection time per direction.
        s.table_mut("accidents")?
            .create_ordered_index(&["xway", "dir"], "time")?;
        Ok(())
    })
}

/// Upsert the car count of a segment-minute.
pub fn write_segment_cars(
    store: &StoreHandle,
    xway: i64,
    dir: i64,
    seg: i64,
    minute: i64,
    cars: i64,
) -> Result<()> {
    store.write(|s| {
        s.table_mut("segment_cars")?.upsert(vec![
            xway.into(),
            dir.into(),
            seg.into(),
            minute.into(),
            cars.into(),
        ])?;
        Ok(())
    })
}

/// Upsert the average speed of a segment-minute.
pub fn write_minute_speed(
    store: &StoreHandle,
    xway: i64,
    dir: i64,
    seg: i64,
    minute: i64,
    avg_speed: f64,
) -> Result<()> {
    store.write(|s| {
        s.table_mut("minute_speeds")?.upsert(vec![
            xway.into(),
            dir.into(),
            seg.into(),
            minute.into(),
            avg_speed.into(),
        ])?;
        Ok(())
    })
}

/// Record a detected accident.
#[allow(clippy::too_many_arguments)]
pub fn insert_accident(
    store: &StoreHandle,
    xway: i64,
    dir: i64,
    seg: i64,
    pos: i64,
    time: i64,
    car1: i64,
    car2: i64,
) -> Result<bool> {
    store.write(|s| {
        let t = s.table_mut("accidents")?;
        // The same stalled pair re-triggers detection on every further
        // report; keep one row per (xway, dir, pos) accident episode.
        let existing = t.select(Some(
            &col("xway")
                .eq(lit(xway))
                .and(col("dir").eq(lit(dir)))
                .and(col("pos").eq(lit(pos)))
                .and(col("time").gt(lit(time - 300))),
        ))?;
        if !existing.is_empty() {
            return Ok(false);
        }
        t.insert(vec![
            xway.into(),
            dir.into(),
            seg.into(),
            pos.into(),
            time.into(),
            car1.into(),
            car2.into(),
        ])?;
        Ok(true)
    })
}

/// Cars in the segment during `minute` (the toll formula's `numOfCars`).
pub fn cars_in_segment(
    store: &StoreHandle,
    xway: i64,
    dir: i64,
    seg: i64,
    minute: i64,
) -> Result<Option<i64>> {
    store.read(|s| {
        let row = s.table("segment_cars")?.get(&[
            xway.into(),
            dir.into(),
            seg.into(),
            minute.into(),
        ]);
        Ok(match row {
            Some(r) => Some(r[4].as_int()?),
            None => None,
        })
    })
}

/// Latest Average Velocity: the mean of the per-minute average speeds over
/// the five minutes before `minute` (`None` when no statistics exist yet).
pub fn lav(store: &StoreHandle, xway: i64, dir: i64, seg: i64, minute: i64) -> Result<Option<f64>> {
    store.read(|s| {
        let pred = col("xway")
            .eq(lit(xway))
            .and(col("dir").eq(lit(dir)))
            .and(col("seg").eq(lit(seg)))
            .and(col("minute").between(lit(minute - LAV_WINDOW_MINUTES), lit(minute - 1)));
        let v = s
            .table("minute_speeds")?
            .aggregate(Some(&pred), &Agg::Avg("avg_speed".into()))?;
        Ok(match v {
            Value::Null => None,
            other => Some(other.as_float()?),
        })
    })
}

/// Whether a recent accident (within the last 2 minutes) lies in the
/// notification range of a car at `seg` traveling `dir` — the paper's toll
/// query subcondition, and the accident-notification check.
pub fn accident_nearby(
    store: &StoreHandle,
    xway: i64,
    dir: i64,
    seg: i64,
    time: i64,
) -> Result<Option<i64>> {
    store.read(|s| {
        let pred = col("xway")
            .eq(lit(xway))
            .and(col("dir").eq(lit(dir)))
            .and(col("time").ge(lit(time - 120)))
            .and(col("seg").between(
                lit(seg - ACCIDENT_RANGE_SEGS),
                lit(seg + ACCIDENT_RANGE_SEGS),
            ));
        let rows = s.table("accidents")?.select(Some(&pred))?;
        for r in rows {
            let acc_seg = r[2].as_int()?;
            if accident_in_range(dir, seg, acc_seg) {
                return Ok(Some(acc_seg));
            }
        }
        Ok(None)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> StoreHandle {
        let h = StoreHandle::new();
        create_tables(&h).unwrap();
        h
    }

    #[test]
    fn tables_created_once() {
        let h = store();
        assert!(create_tables(&h).is_err(), "double create rejected");
        let mut names = h.read(|s| {
            s.table_names()
                .iter()
                .map(|s| s.to_string())
                .collect::<Vec<_>>()
        });
        names.sort();
        assert_eq!(names, vec!["accidents", "minute_speeds", "segment_cars"]);
    }

    #[test]
    fn segment_cars_round_trip_and_upsert() {
        let h = store();
        write_segment_cars(&h, 0, 0, 7, 3, 55).unwrap();
        assert_eq!(cars_in_segment(&h, 0, 0, 7, 3).unwrap(), Some(55));
        write_segment_cars(&h, 0, 0, 7, 3, 60).unwrap();
        assert_eq!(cars_in_segment(&h, 0, 0, 7, 3).unwrap(), Some(60));
        assert_eq!(cars_in_segment(&h, 0, 0, 7, 4).unwrap(), None);
    }

    #[test]
    fn lav_averages_last_five_minutes() {
        let h = store();
        for (minute, speed) in [(1, 30.0), (2, 40.0), (3, 50.0)] {
            write_minute_speed(&h, 0, 0, 7, minute, speed).unwrap();
        }
        // At minute 4: minutes −1..3 → mean(30, 40, 50) = 40.
        assert_eq!(lav(&h, 0, 0, 7, 4).unwrap(), Some(40.0));
        // At minute 8: minutes 3..7 → only minute 3 (50).
        assert_eq!(lav(&h, 0, 0, 7, 8).unwrap(), Some(50.0));
        // At minute 20: nothing in range.
        assert_eq!(lav(&h, 0, 0, 7, 20).unwrap(), None);
        // Other segment: nothing.
        assert_eq!(lav(&h, 0, 0, 9, 4).unwrap(), None);
    }

    #[test]
    fn accident_insert_dedup_and_range_query() {
        let h = store();
        assert!(insert_accident(&h, 0, 0, 10, 52_900, 100, 1, 2).unwrap());
        // Re-detection of the same episode is deduplicated.
        assert!(!insert_accident(&h, 0, 0, 10, 52_900, 130, 1, 2).unwrap());
        // dir=0 cars in segments [6, 10] are in range.
        assert_eq!(accident_nearby(&h, 0, 0, 8, 150).unwrap(), Some(10));
        assert_eq!(accident_nearby(&h, 0, 0, 10, 150).unwrap(), Some(10));
        assert_eq!(accident_nearby(&h, 0, 0, 5, 150).unwrap(), None);
        assert_eq!(accident_nearby(&h, 0, 0, 11, 150).unwrap(), None);
        // Wrong direction: unaffected.
        assert_eq!(accident_nearby(&h, 0, 1, 8, 150).unwrap(), None);
        // Stale accidents (older than 2 minutes) no longer notify.
        assert_eq!(accident_nearby(&h, 0, 0, 8, 400).unwrap(), None);
    }
}
