//! QoS metrics: response-time series, thrash detection, rendering.
//!
//! The paper's Figures 6–8 plot the response time measured at the
//! TollNotification actor against run time, and its analysis identifies
//! the *thrash point* — the moment a scheduler's response time departs for
//! good (the offered rate has passed the sustainable capacity).

use confluence_core::telemetry::{HistogramSnapshot, LatencyHistogram};
use confluence_core::time::{Micros, Timestamp};

/// A response-time series: `(observation time, response time)` samples.
#[derive(Debug, Clone, Default)]
pub struct ResponseSeries {
    samples: Vec<(Timestamp, Micros)>,
}

/// One time bucket of a series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bucket {
    /// Bucket start, in seconds of run time.
    pub start_secs: u64,
    /// Mean response time within the bucket, in seconds.
    pub mean_response_secs: f64,
    /// Samples in the bucket.
    pub count: usize,
}

impl ResponseSeries {
    /// Build from raw samples (any order).
    pub fn new(mut samples: Vec<(Timestamp, Micros)>) -> Self {
        samples.sort_by_key(|(at, _)| *at);
        ResponseSeries { samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Mean response time in seconds over the whole run.
    pub fn mean_secs(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let total: u64 = self.samples.iter().map(|(_, l)| l.as_micros()).sum();
        total as f64 / self.samples.len() as f64 / 1_000_000.0
    }

    /// Mean response time in seconds over samples observed before
    /// `cutoff_secs` of run time — the pre-saturation comparison the
    /// paper's discussion of scheduler quality rests on.
    pub fn mean_secs_before(&self, cutoff_secs: u64) -> f64 {
        let cutoff = Timestamp::from_secs(cutoff_secs);
        let mut total = 0u64;
        let mut n = 0u64;
        for (at, lat) in &self.samples {
            if *at < cutoff {
                total += lat.as_micros();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            total as f64 / n as f64 / 1_000_000.0
        }
    }

    /// The p-th percentile (0–100) response time in seconds.
    pub fn percentile_secs(&self, p: f64) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut lats: Vec<u64> = self.samples.iter().map(|(_, l)| l.as_micros()).collect();
        lats.sort_unstable();
        let idx = ((p / 100.0) * (lats.len() - 1) as f64).round() as usize;
        lats[idx.min(lats.len() - 1)] as f64 / 1_000_000.0
    }

    /// Mean response time per `bucket_secs` bucket — the Figure 6–8 curve.
    pub fn bucketed(&self, bucket_secs: u64) -> Vec<Bucket> {
        let mut sums: Vec<(u64, usize)> = Vec::new();
        for (at, lat) in &self.samples {
            let b = (at.as_micros() / 1_000_000 / bucket_secs) as usize;
            if sums.len() <= b {
                sums.resize(b + 1, (0, 0));
            }
            sums[b].0 += lat.as_micros();
            sums[b].1 += 1;
        }
        sums.iter()
            .enumerate()
            .map(|(b, &(sum, count))| Bucket {
                start_secs: b as u64 * bucket_secs,
                mean_response_secs: if count == 0 {
                    0.0
                } else {
                    sum as f64 / count as f64 / 1_000_000.0
                },
                count,
            })
            .collect()
    }

    /// The thrash point: the start of the first `sustain` consecutive
    /// buckets whose mean response time exceeds `threshold_secs`, with the
    /// series never recovering below the threshold afterwards. `None`
    /// when the scheduler kept up for the whole run.
    pub fn thrash_point(&self, bucket_secs: u64, threshold_secs: f64, sustain: usize) -> Option<u64> {
        let buckets = self.bucketed(bucket_secs);
        // Last bucket below threshold (with data) — everything after it is
        // saturated for good.
        let mut candidate: Option<usize> = None;
        let mut run = 0usize;
        for (i, b) in buckets.iter().enumerate() {
            if b.count == 0 {
                continue;
            }
            if b.mean_response_secs > threshold_secs {
                run += 1;
                if run == 1 {
                    candidate = Some(i);
                }
            } else {
                run = 0;
                candidate = None;
            }
        }
        if run >= sustain {
            candidate.map(|i| buckets[i].start_secs)
        } else {
            None
        }
    }

    /// Fold the series into the engine's fixed-bucket latency histogram
    /// (the same representation the telemetry recorder exports), so
    /// benchmark response times and engine-collected tuple latencies are
    /// directly comparable and share the Prometheus export path.
    pub fn to_histogram(&self) -> HistogramSnapshot {
        let hist = LatencyHistogram::new();
        for (_, lat) in &self.samples {
            hist.record(*lat);
        }
        hist.snapshot()
    }

    /// Render the bucketed curve as aligned text rows (`time  response`),
    /// the textual analog of the paper's figures.
    pub fn render(&self, bucket_secs: u64) -> String {
        let mut out = String::from("time(s)  response(s)  samples\n");
        for b in self.bucketed(bucket_secs) {
            out.push_str(&format!(
                "{:>7} {:>12.3} {:>8}\n",
                b.start_secs, b.mean_response_secs, b.count
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(at_s: u64, lat_ms: u64) -> (Timestamp, Micros) {
        (Timestamp::from_secs(at_s), Micros::from_millis(lat_ms))
    }

    #[test]
    fn basic_statistics() {
        let s = ResponseSeries::new(vec![sample(1, 100), sample(2, 300), sample(3, 200)]);
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        assert!((s.mean_secs() - 0.2).abs() < 1e-9);
        assert!((s.percentile_secs(100.0) - 0.3).abs() < 1e-9);
        assert!((s.percentile_secs(0.0) - 0.1).abs() < 1e-9);
        assert_eq!(ResponseSeries::default().mean_secs(), 0.0);
        assert_eq!(ResponseSeries::default().percentile_secs(50.0), 0.0);
    }

    #[test]
    fn mean_before_cutoff() {
        let s = ResponseSeries::new(vec![sample(1, 100), sample(50, 100), sample(99, 10_000)]);
        assert!((s.mean_secs_before(60) - 0.1).abs() < 1e-9);
        assert!(s.mean_secs() > 1.0);
        assert_eq!(s.mean_secs_before(0), 0.0);
    }

    #[test]
    fn bucketing_averages_within_buckets() {
        let s = ResponseSeries::new(vec![
            sample(5, 100),
            sample(8, 300),
            sample(25, 1_000),
        ]);
        let buckets = s.bucketed(10);
        assert_eq!(buckets.len(), 3);
        assert_eq!(buckets[0].count, 2);
        assert!((buckets[0].mean_response_secs - 0.2).abs() < 1e-9);
        assert_eq!(buckets[1].count, 0);
        assert_eq!(buckets[2].count, 1);
    }

    #[test]
    fn thrash_point_requires_sustained_saturation() {
        // Healthy until t=60, then latency departs for good.
        let mut samples = Vec::new();
        for t in 0..6 {
            samples.push(sample(t * 10, 200));
        }
        for t in 6..12 {
            samples.push(sample(t * 10, 5_000 + t * 1_000));
        }
        let s = ResponseSeries::new(samples);
        assert_eq!(s.thrash_point(10, 4.0, 3), Some(60));
        // A temporary spike does not count as thrash.
        let spike = ResponseSeries::new(vec![
            sample(0, 100),
            sample(10, 9_000),
            sample(20, 100),
            sample(30, 100),
        ]);
        assert_eq!(spike.thrash_point(10, 4.0, 2), None);
        // Never saturating → None.
        let calm = ResponseSeries::new(vec![sample(0, 100), sample(10, 150)]);
        assert_eq!(calm.thrash_point(10, 4.0, 1), None);
    }

    #[test]
    fn histogram_bridge_matches_series() {
        let s = ResponseSeries::new(vec![sample(1, 100), sample(2, 300), sample(3, 200)]);
        let h = s.to_histogram();
        assert_eq!(h.count, 3);
        assert_eq!(h.sum_micros, 600_000);
        assert_eq!(h.max_micros, 300_000);
        // The mean agrees with the series' own statistic.
        assert!((h.mean().as_micros() as f64 / 1e6 - s.mean_secs()).abs() < 1e-6);
        assert_eq!(ResponseSeries::default().to_histogram().count, 0);
    }

    #[test]
    fn render_produces_rows() {
        let s = ResponseSeries::new(vec![sample(5, 100)]);
        let text = s.render(10);
        assert!(text.contains("time(s)"));
        assert_eq!(text.lines().count(), 2);
    }
}
