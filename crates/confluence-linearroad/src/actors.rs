//! The Linear Road domain actors (paper Appendix A, Figures 10–15).

use std::collections::BTreeSet;
use std::sync::Arc;

use parking_lot::Mutex;

use confluence_core::actor::{Actor, FireContext, IoSignature};
use confluence_core::error::Result;
use confluence_core::time::{Micros, Timestamp};
use confluence_core::token::Token;
use confluence_core::window::Window;
use confluence_relstore::StoreHandle;

use crate::model::{toll_formula, PositionReport, TollNotification};
use crate::tables;

/// Detects stopped cars: a car reporting the same location in 4
/// consecutive position reports is considered stopped; the first of those
/// reports is forwarded (Figure 11). Input window semantics:
/// `{Size: 4, Step: 1, Group-by: carid}`.
pub struct StoppedCarDetector;

impl StoppedCarDetector {
    /// Evaluate one window (shared with the composite sub-workflow form).
    pub fn evaluate(window: &Window) -> Result<Option<Token>> {
        if window.len() < 4 {
            return Ok(None);
        }
        let reports: Vec<PositionReport> = window
            .tokens()
            .map(PositionReport::from_token)
            .collect::<Result<_>>()?;
        let first = reports[0];
        if reports.iter().all(|r| r.pos == first.pos && r.dir == first.dir) {
            Ok(Some(first.to_token()))
        } else {
            Ok(None)
        }
    }
}

impl Actor for StoppedCarDetector {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            if let Some(t) = Self::evaluate(&w)? {
                ctx.emit(0, t);
            }
        }
        Ok(())
    }
}

/// Detects accidents: two stopped-car reports for the same position with
/// different car ids, not in an exit lane (Figure 12). Input window
/// semantics: `{Size: 2, Step: 1, Group-by: position}`.
pub struct AccidentDetector;

impl AccidentDetector {
    /// Evaluate one window; returns the accident record token.
    pub fn evaluate(window: &Window) -> Result<Option<Token>> {
        if window.len() < 2 {
            return Ok(None);
        }
        let a = PositionReport::from_token(&window.events[0].token)?;
        let b = PositionReport::from_token(&window.events[1].token)?;
        if a.carid != b.carid && !a.in_exit_lane() && !b.in_exit_lane() && a.pos == b.pos {
            Ok(Some(
                Token::record()
                    .field("xway", a.xway)
                    .field("dir", a.dir)
                    .field("seg", a.seg)
                    .field("pos", a.pos)
                    .field("time", a.time.max(b.time))
                    .field("car1", a.carid)
                    .field("car2", b.carid)
                    .build(),
            ))
        } else {
            Ok(None)
        }
    }
}

impl Actor for AccidentDetector {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            if let Some(t) = Self::evaluate(&w)? {
                ctx.emit(0, t);
            }
        }
        Ok(())
    }
}

/// Records detected accidents into the relational store (the paper's
/// `Insert Accident` actor: constructs the INSERT and submits it).
pub struct AccidentRecorder {
    store: StoreHandle,
}

impl AccidentRecorder {
    /// Recorder writing to `store`.
    pub fn new(store: StoreHandle) -> Self {
        AccidentRecorder { store }
    }
}

impl Actor for AccidentRecorder {
    fn signature(&self) -> IoSignature {
        IoSignature::sink("in")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for t in w.tokens() {
                tables::insert_accident(
                    &self.store,
                    t.int_field("xway")?,
                    t.int_field("dir")?,
                    t.int_field("seg")?,
                    t.int_field("pos")?,
                    t.int_field("time")?,
                    t.int_field("car1")?,
                    t.int_field("car2")?,
                )?;
            }
        }
        Ok(())
    }
}

/// For each position report, checks the store for an accident within four
/// segments downstream and emits an alert (Figure 13). The application
/// requires the alert within 5 seconds of the position report.
pub struct AccidentNotifier {
    store: StoreHandle,
}

impl AccidentNotifier {
    /// Notifier reading from `store`.
    pub fn new(store: StoreHandle) -> Self {
        AccidentNotifier { store }
    }
}

impl Actor for AccidentNotifier {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for t in w.tokens() {
                let r = PositionReport::from_token(t)?;
                if r.in_exit_lane() {
                    continue;
                }
                if let Some(acc_seg) =
                    tables::accident_nearby(&self.store, r.xway, r.dir, r.seg, r.time)?
                {
                    ctx.emit(
                        0,
                        Token::record()
                            .field("carid", r.carid)
                            .field("time", r.time)
                            .field("seg", r.seg)
                            .field("accident_seg", acc_seg)
                            .build(),
                    );
                }
            }
        }
        Ok(())
    }
}

/// Per-car per-segment average speed over one minute (Figure 14, `Avgsv`).
/// Input window semantics: `{Size: 1 min, Step: 1 min, Group-by: carid,
/// xway, dir, seg}`.
pub struct CarSpeedAvg;

impl Actor for CarSpeedAvg {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            if w.is_empty() {
                continue;
            }
            let first = PositionReport::from_token(&w.events[0].token)?;
            let mut sum = 0.0;
            for t in w.tokens() {
                sum += t.float_field("speed")?;
            }
            ctx.emit(
                0,
                Token::record()
                    .field("xway", first.xway)
                    .field("dir", first.dir)
                    .field("seg", first.seg)
                    .field("minute", first.minute())
                    .field("carid", first.carid)
                    .field("avg_speed", sum / w.len() as f64)
                    .build(),
            );
        }
        Ok(())
    }
}

/// Per-segment average of the car averages for one minute (Figure 14,
/// `Avgs`). Input window semantics: `{Size: 1 min, Step: 1 min, Group-by:
/// xway, dir, seg}` over `Avgsv` outputs.
pub struct SegmentSpeedAvg;

impl Actor for SegmentSpeedAvg {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            if w.is_empty() {
                continue;
            }
            let first = &w.events[0].token;
            let mut sum = 0.0;
            for t in w.tokens() {
                sum += t.float_field("avg_speed")?;
            }
            ctx.emit(
                0,
                Token::record()
                    .field("xway", first.int_field("xway")?)
                    .field("dir", first.int_field("dir")?)
                    .field("seg", first.int_field("seg")?)
                    .field("minute", first.int_field("minute")?)
                    .field("avg_speed", sum / w.len() as f64)
                    .build(),
            );
        }
        Ok(())
    }
}

/// Writes per-minute segment speeds into the store.
pub struct MinuteSpeedWriter {
    store: StoreHandle,
}

impl MinuteSpeedWriter {
    /// Writer into `store`.
    pub fn new(store: StoreHandle) -> Self {
        MinuteSpeedWriter { store }
    }
}

impl Actor for MinuteSpeedWriter {
    fn signature(&self) -> IoSignature {
        IoSignature::sink("in")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for t in w.tokens() {
                tables::write_minute_speed(
                    &self.store,
                    t.int_field("xway")?,
                    t.int_field("dir")?,
                    t.int_field("seg")?,
                    t.int_field("minute")?,
                    t.float_field("avg_speed")?,
                )?;
            }
        }
        Ok(())
    }
}

/// Counts the distinct cars present in a segment during one minute
/// (Figure 15, `cars`). Input window semantics: `{Size: 1 min, Step: 1
/// min, Group-by: xway, dir, seg}`.
pub struct CarCounter;

impl Actor for CarCounter {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            if w.is_empty() {
                continue;
            }
            let first = PositionReport::from_token(&w.events[0].token)?;
            let mut cars: BTreeSet<i64> = BTreeSet::new();
            for t in w.tokens() {
                cars.insert(t.int_field("carid")?);
            }
            ctx.emit(
                0,
                Token::record()
                    .field("xway", first.xway)
                    .field("dir", first.dir)
                    .field("seg", first.seg)
                    .field("minute", first.minute())
                    .field("cars", cars.len() as i64)
                    .build(),
            );
        }
        Ok(())
    }
}

/// Writes per-minute segment car counts into the store.
pub struct SegmentCarsWriter {
    store: StoreHandle,
}

impl SegmentCarsWriter {
    /// Writer into `store`.
    pub fn new(store: StoreHandle) -> Self {
        SegmentCarsWriter { store }
    }
}

impl Actor for SegmentCarsWriter {
    fn signature(&self) -> IoSignature {
        IoSignature::sink("in")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for t in w.tokens() {
                tables::write_segment_cars(
                    &self.store,
                    t.int_field("xway")?,
                    t.int_field("dir")?,
                    t.int_field("seg")?,
                    t.int_field("minute")?,
                    t.int_field("cars")?,
                )?;
            }
        }
        Ok(())
    }
}

/// Computes the toll when a car crosses into a new segment, using the
/// store's segment statistics (the paper's SQL toll query). Input window
/// semantics: `{Size: 2, Step: 1, Group-by: carid}`.
pub struct TollCalculator {
    store: StoreHandle,
    cost: Option<Micros>,
}

impl TollCalculator {
    /// Calculator reading from `store`.
    pub fn new(store: StoreHandle) -> Self {
        TollCalculator { store, cost: None }
    }

    /// Add an artificial service time per consumed window (a blocking
    /// sleep, modelling a toll lookup against a slow external service),
    /// for scaling experiments where the real query cost is too small to
    /// dominate the run. Because the stall blocks instead of burning CPU,
    /// keyed replicas overlap their stalls and sharded throughput scales
    /// with the replica count even on a single core.
    pub fn with_cost(mut self, cost: Micros) -> Self {
        self.cost = Some(cost);
        self
    }

    fn stall(&self) {
        if let Some(cost) = self.cost {
            std::thread::sleep(std::time::Duration::from_micros(cost.as_micros()));
        }
    }
}

impl Actor for TollCalculator {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            self.stall();
            if w.len() < 2 {
                continue;
            }
            let prev = PositionReport::from_token(&w.events[0].token)?;
            let cur = PositionReport::from_token(&w.events[1].token)?;
            if prev.seg == cur.seg {
                continue;
            }
            let minute = cur.minute();
            let cars =
                tables::cars_in_segment(&self.store, cur.xway, cur.dir, cur.seg, minute - 1)?;
            let lav = tables::lav(&self.store, cur.xway, cur.dir, cur.seg, minute)?;
            let accident =
                tables::accident_nearby(&self.store, cur.xway, cur.dir, cur.seg, cur.time)?;
            let toll = toll_formula(lav, cars, accident.is_some());
            ctx.emit(
                0,
                TollNotification {
                    carid: cur.carid,
                    time: cur.time,
                    seg: cur.seg,
                    toll,
                }
                .to_token(),
            );
        }
        Ok(())
    }

    fn replicate(&self) -> Option<Box<dyn Actor>> {
        // Toll state lives per-car in the input window and in the shared
        // store (reads only), so replicas over a carid-keyed split are safe.
        Some(Box::new(TollCalculator {
            store: self.store.clone(),
            cost: self.cost,
        }))
    }
}

/// A received notification with its QoS measurements.
#[derive(Debug, Clone)]
pub struct NotifiedItem {
    /// Director time at receipt.
    pub at: Timestamp,
    /// Response time relative to the triggering external event.
    pub latency: Micros,
    /// The notification payload.
    pub token: Token,
}

/// Handle to a [`NotificationSink`]'s storage: the workflow output where
/// the paper measures response time (TollNotification /
/// AccidentNotificationOut).
#[derive(Clone, Default)]
pub struct NotificationOutput {
    items: Arc<Mutex<Vec<NotifiedItem>>>,
}

impl NotificationOutput {
    /// A fresh output probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// The sink actor feeding this output.
    pub fn actor(&self) -> NotificationSink {
        NotificationSink {
            items: self.items.clone(),
        }
    }

    /// Everything received.
    pub fn items(&self) -> Vec<NotifiedItem> {
        self.items.lock().clone()
    }

    /// Number of notifications received.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether nothing was received.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(receipt second, response time)` samples, for time-series plots.
    pub fn latency_samples(&self) -> Vec<(Timestamp, Micros)> {
        self.items.lock().iter().map(|i| (i.at, i.latency)).collect()
    }

    /// Mean response time, if any notifications arrived.
    pub fn mean_latency(&self) -> Option<Micros> {
        let items = self.items.lock();
        if items.is_empty() {
            return None;
        }
        let total: u64 = items.iter().map(|i| i.latency.as_micros()).sum();
        Some(Micros(total / items.len() as u64))
    }
}

/// The sink actor behind [`NotificationOutput`].
pub struct NotificationSink {
    items: Arc<Mutex<Vec<NotifiedItem>>>,
}

impl Actor for NotificationSink {
    fn signature(&self) -> IoSignature {
        IoSignature::sink("in")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        let now = ctx.now();
        while let Some(w) = ctx.get(0) {
            let mut items = self.items.lock();
            for event in &w.events {
                items.push(NotifiedItem {
                    at: now,
                    latency: event.latency_at(now),
                    token: event.token.clone(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_core::event::CwEvent;
    use confluence_core::testing::MockContext;

    fn report(carid: i64, time: i64, seg: i64, pos: i64, speed: f64) -> PositionReport {
        PositionReport {
            time,
            carid,
            speed,
            xway: 0,
            lane: 2,
            dir: 0,
            seg,
            pos,
        }
    }

    fn window_of(reports: &[PositionReport]) -> Window {
        Window {
            group: Token::Unit,
            events: reports
                .iter()
                .map(|r| CwEvent::external(r.to_token(), r.arrival()))
                .collect(),
            formed_at: Timestamp::ZERO,
            timed_out: false,
        }
    }

    #[test]
    fn stopped_car_detected_on_four_same_positions() {
        let stopped = [
            report(1, 0, 5, 26_400, 0.0),
            report(1, 30, 5, 26_400, 0.0),
            report(1, 60, 5, 26_400, 0.0),
            report(1, 90, 5, 26_400, 0.0),
        ];
        let out = StoppedCarDetector::evaluate(&window_of(&stopped)).unwrap();
        assert!(out.is_some());
        assert_eq!(out.unwrap().int_field("time").unwrap(), 0, "first report");
        // Moving car → no detection.
        let moving = [
            report(1, 0, 5, 26_400, 60.0),
            report(1, 30, 5, 29_040, 60.0),
            report(1, 60, 6, 31_680, 60.0),
            report(1, 90, 6, 34_320, 60.0),
        ];
        assert!(StoppedCarDetector::evaluate(&window_of(&moving))
            .unwrap()
            .is_none());
        // Short window (flush) → no detection.
        assert!(StoppedCarDetector::evaluate(&window_of(&stopped[..2]))
            .unwrap()
            .is_none());
    }

    #[test]
    fn accident_needs_two_distinct_cars() {
        let a = report(1, 0, 5, 26_400, 0.0);
        let b = report(2, 30, 5, 26_400, 0.0);
        let acc = AccidentDetector::evaluate(&window_of(&[a, b])).unwrap();
        let acc = acc.expect("two distinct stopped cars collide");
        assert_eq!(acc.int_field("car1").unwrap(), 1);
        assert_eq!(acc.int_field("car2").unwrap(), 2);
        assert_eq!(acc.int_field("seg").unwrap(), 5);
        // Same car twice: not an accident.
        assert!(AccidentDetector::evaluate(&window_of(&[a, a]))
            .unwrap()
            .is_none());
        // Exit lane excluded.
        let mut exit_a = a;
        exit_a.lane = crate::model::EXIT_LANE;
        let mut exit_b = b;
        exit_b.lane = crate::model::EXIT_LANE;
        assert!(AccidentDetector::evaluate(&window_of(&[exit_a, exit_b]))
            .unwrap()
            .is_none());
    }

    #[test]
    fn recorder_and_notifier_round_trip_through_store() {
        let store = StoreHandle::new();
        tables::create_tables(&store).unwrap();
        let a = report(1, 100, 10, 52_900, 0.0);
        let b = report(2, 100, 10, 52_900, 0.0);
        let acc = AccidentDetector::evaluate(&window_of(&[a, b]))
            .unwrap()
            .unwrap();

        let mut rec = AccidentRecorder::new(store.clone());
        let mut ctx = MockContext::new(1).at(Timestamp::from_secs(100));
        ctx.push_token(0, acc, Timestamp::from_secs(100));
        rec.fire(&mut ctx).unwrap();

        // A car approaching the accident (dir 0, seg 8) is notified.
        let mut notifier = AccidentNotifier::new(store.clone());
        let mut ctx = MockContext::new(1).at(Timestamp::from_secs(110));
        ctx.push_token(0, report(7, 110, 8, 44_000, 55.0).to_token(), Timestamp::from_secs(110));
        notifier.fire(&mut ctx).unwrap();
        assert_eq!(ctx.emitted_on(0).len(), 1);
        let alert = &ctx.emitted_on(0)[0];
        assert_eq!(alert.int_field("carid").unwrap(), 7);
        assert_eq!(alert.int_field("accident_seg").unwrap(), 10);

        // A car past the accident is not notified.
        let mut ctx = MockContext::new(1).at(Timestamp::from_secs(110));
        ctx.push_token(0, report(8, 110, 11, 58_100, 55.0).to_token(), Timestamp::from_secs(110));
        notifier.fire(&mut ctx).unwrap();
        assert!(ctx.emitted_on(0).is_empty());
    }

    #[test]
    fn car_speed_avg_emits_minute_average() {
        let mut actor = CarSpeedAvg;
        let mut ctx = MockContext::new(1);
        let w = window_of(&[
            report(1, 60, 5, 26_400, 50.0),
            report(1, 90, 5, 27_000, 60.0),
        ]);
        ctx.push_window(0, w);
        actor.fire(&mut ctx).unwrap();
        let out = &ctx.emitted_on(0)[0];
        assert_eq!(out.float_field("avg_speed").unwrap(), 55.0);
        assert_eq!(out.int_field("minute").unwrap(), 1);
        assert_eq!(out.int_field("carid").unwrap(), 1);
    }

    #[test]
    fn segment_speed_avg_averages_car_averages() {
        let mut actor = SegmentSpeedAvg;
        let mut ctx = MockContext::new(1);
        let mk = |car: i64, v: f64| {
            Token::record()
                .field("xway", 0)
                .field("dir", 0)
                .field("seg", 5)
                .field("minute", 2)
                .field("carid", car)
                .field("avg_speed", v)
                .build()
        };
        ctx.push_window(
            0,
            Window {
                group: Token::Unit,
                events: vec![
                    CwEvent::external(mk(1, 30.0), Timestamp::from_secs(120)),
                    CwEvent::external(mk(2, 50.0), Timestamp::from_secs(121)),
                ],
                formed_at: Timestamp::from_secs(180),
                timed_out: false,
            },
        );
        actor.fire(&mut ctx).unwrap();
        let out = &ctx.emitted_on(0)[0];
        assert_eq!(out.float_field("avg_speed").unwrap(), 40.0);
        assert_eq!(out.int_field("minute").unwrap(), 2);
    }

    #[test]
    fn car_counter_counts_distinct() {
        let mut actor = CarCounter;
        let mut ctx = MockContext::new(1);
        let w = window_of(&[
            report(1, 60, 5, 26_400, 50.0),
            report(2, 70, 5, 26_500, 55.0),
            report(1, 90, 5, 27_000, 60.0),
        ]);
        ctx.push_window(0, w);
        actor.fire(&mut ctx).unwrap();
        let out = &ctx.emitted_on(0)[0];
        assert_eq!(out.int_field("cars").unwrap(), 2, "car 1 counted once");
    }

    #[test]
    fn toll_charged_on_segment_change_with_bad_stats() {
        let store = StoreHandle::new();
        tables::create_tables(&store).unwrap();
        // Minute 2 stats for segment 6: slow (30 mph) and busy (60 cars).
        tables::write_segment_cars(&store, 0, 0, 6, 2, 60).unwrap();
        for m in [0, 1, 2] {
            tables::write_minute_speed(&store, 0, 0, 6, m, 30.0).unwrap();
        }
        let mut toll = TollCalculator::new(store.clone());
        let mut ctx = MockContext::new(1).at(Timestamp::from_secs(185));
        // Car crosses from segment 5 into 6 at t=185 (minute 3).
        let w = window_of(&[
            report(9, 150, 5, 31_000, 30.0),
            report(9, 185, 6, 32_000, 30.0),
        ]);
        ctx.push_window(0, w);
        toll.fire(&mut ctx).unwrap();
        let out = TollNotification::from_token(&ctx.emitted_on(0)[0]).unwrap();
        assert_eq!(out.carid, 9);
        assert_eq!(out.seg, 6);
        assert_eq!(out.toll, 200.0, "2·(60−50)²");
        // No segment change → no notification.
        let mut ctx = MockContext::new(1).at(Timestamp::from_secs(200));
        ctx.push_window(
            0,
            window_of(&[
                report(9, 185, 6, 32_000, 30.0),
                report(9, 215, 6, 33_000, 30.0),
            ]),
        );
        toll.fire(&mut ctx).unwrap();
        assert!(ctx.emitted_on(0).is_empty());
    }

    #[test]
    fn toll_zero_when_accident_nearby() {
        let store = StoreHandle::new();
        tables::create_tables(&store).unwrap();
        tables::write_segment_cars(&store, 0, 0, 6, 2, 60).unwrap();
        tables::write_minute_speed(&store, 0, 0, 6, 2, 30.0).unwrap();
        tables::insert_accident(&store, 0, 0, 7, 37_000, 170, 1, 2).unwrap();
        let mut toll = TollCalculator::new(store);
        let mut ctx = MockContext::new(1).at(Timestamp::from_secs(185));
        ctx.push_window(
            0,
            window_of(&[
                report(9, 150, 5, 31_000, 30.0),
                report(9, 185, 6, 32_000, 30.0),
            ]),
        );
        toll.fire(&mut ctx).unwrap();
        let out = TollNotification::from_token(&ctx.emitted_on(0)[0]).unwrap();
        assert_eq!(out.toll, 0.0, "accident at seg 7 covers segs 3..7 for dir 0... seg 6 in range");
    }

    #[test]
    fn notification_output_records_latency() {
        let out = NotificationOutput::new();
        let mut sink = out.actor();
        let mut ctx = MockContext::new(1).at(Timestamp(2_000_000));
        ctx.push_token(0, Token::Int(1), Timestamp(1_500_000));
        sink.fire(&mut ctx).unwrap();
        assert_eq!(out.len(), 1);
        assert!(!out.is_empty());
        assert_eq!(out.items()[0].latency, Micros(500_000));
        assert_eq!(out.mean_latency(), Some(Micros(500_000)));
        assert_eq!(out.latency_samples()[0].0, Timestamp(2_000_000));
        assert_eq!(NotificationOutput::new().mean_latency(), None);
    }

    #[test]
    fn minute_writers_persist() {
        let store = StoreHandle::new();
        tables::create_tables(&store).unwrap();
        let mut w1 = MinuteSpeedWriter::new(store.clone());
        let mut ctx = MockContext::new(1);
        ctx.push_token(
            0,
            Token::record()
                .field("xway", 0)
                .field("dir", 0)
                .field("seg", 3)
                .field("minute", 1)
                .field("avg_speed", 42.0)
                .build(),
            Timestamp::ZERO,
        );
        w1.fire(&mut ctx).unwrap();
        assert_eq!(tables::lav(&store, 0, 0, 3, 2).unwrap(), Some(42.0));

        let mut w2 = SegmentCarsWriter::new(store.clone());
        let mut ctx = MockContext::new(1);
        ctx.push_token(
            0,
            Token::record()
                .field("xway", 0)
                .field("dir", 0)
                .field("seg", 3)
                .field("minute", 1)
                .field("cars", 77)
                .build(),
            Timestamp::ZERO,
        );
        w2.fire(&mut ctx).unwrap();
        assert_eq!(tables::cars_in_segment(&store, 0, 0, 3, 1).unwrap(), Some(77));
    }
}
