//! Calibrated virtual-time cost models for the Linear Road actors.
//!
//! The paper measures wall-clock costs of Kepler's off-the-shelf actors on
//! its own testbed; in virtual time we model them. The constants below are
//! calibrated so that the *shape* of the paper's Figure 8 reproduces:
//!
//! * total service demand per position report for the STAFiLOS executor
//!   ≈ 6.8 ms → capacity ≈ 147 updates/s → with the Figure 5 ramp
//!   (10 → 200 updates/s over 600 s) saturation around t ≈ 430 s (the
//!   paper observes ~440 s at ~160 updates/s);
//! * the simulated thread-based baseline pays a context switch per firing
//!   and synchronization per event, pushing demand to ≈ 8.5 ms →
//!   capacity ≈ 118 updates/s → saturation around t ≈ 340 s (the paper
//!   observes ~320 s at ~120 updates/s).
//!
//! The dominant costs are the store-backed actors (toll calculation and
//! accident notification issue relational queries per report), mirroring
//! the paper's observation that its off-the-shelf actors lack the
//! performance optimizations of CQ operators.

use confluence_core::time::Micros;
use confluence_sched::cost::{TableCostModel, ThreadOverheadCost};

/// Per-actor cost table for the STAFiLOS (cooperative) executor.
pub fn staf_cost_model() -> TableCostModel {
    TableCostModel::uniform(Micros(150), Micros(20))
        .with_actor("source", Micros(30), Micros(15))
        .with_actor("StoppedCarDetection", Micros(900), Micros(10))
        .with_actor("AccidentDetection", Micros(350), Micros(10))
        .with_actor("InsertAccident", Micros(400), Micros(10))
        .with_actor("AccidentNotification", Micros(1_800), Micros(10))
        .with_actor("AccidentNotificationOut", Micros(120), Micros(5))
        .with_actor("Avgsv", Micros(350), Micros(40))
        .with_actor("Avgs", Micros(300), Micros(30))
        .with_actor("SpeedWriter", Micros(180), Micros(10))
        .with_actor("cars", Micros(350), Micros(40))
        .with_actor("CarsWriter", Micros(180), Micros(10))
        .with_actor("TollCalculation", Micros(3_900), Micros(10))
        .with_actor("TollNotification", Micros(150), Micros(5))
}

/// The thread-based (PNCWF) baseline: the same work plus thread overheads.
///
/// Parameters: 420 µs context switch per firing, 150 µs synchronization
/// per event moved, effective parallelism 1.0 (the paper's thread-based
/// director loses its 8-core advantage to contention — its measured
/// capacity is *below* the single-threaded cooperative executor's, which
/// is the headline result of Figure 8).
pub fn pncwf_cost_model() -> ThreadOverheadCost<TableCostModel> {
    ThreadOverheadCost::new(staf_cost_model(), Micros(420), Micros(130), 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_sched::cost::CostModel;

    #[test]
    fn toll_calculation_dominates() {
        let m = staf_cost_model();
        let toll = m.firing_cost(0, "TollCalculation", 2, 1);
        let writer = m.firing_cost(0, "SpeedWriter", 1, 0);
        assert!(toll > writer * 10);
    }

    #[test]
    fn pncwf_costs_strictly_higher() {
        let staf = staf_cost_model();
        let pncwf = pncwf_cost_model();
        for name in ["source", "TollCalculation", "Avgsv", "TollNotification"] {
            let a = staf.firing_cost(0, name, 2, 1);
            let b = pncwf.firing_cost(0, name, 2, 1);
            assert!(b > a, "{name}: {b:?} must exceed {a:?}");
        }
    }

    #[test]
    fn unknown_actor_uses_default() {
        let m = staf_cost_model();
        assert_eq!(m.firing_cost(0, "whatever", 1, 0), Micros(170));
    }
}
