//! The golden model: a direct, single-pass reference implementation of the
//! Linear Road semantics, independent of the workflow engine.
//!
//! Integration tests run the continuous workflow at sub-saturation rates
//! and compare its outputs against this model. The comparison tolerates
//! boundary races that the real system has too (a toll computed from a
//! segment statistic an instant before the statistics writer committed the
//! new minute), so agreement is asserted as a fraction, not exact.

use std::collections::{BTreeMap, HashMap};

use crate::model::{accident_in_range, toll_formula, PositionReport, TollNotification};
use crate::gen::Workload;

/// A detected accident in the golden model.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GoldenAccident {
    /// The accident row's `time` column: the first stopped report's time
    /// (the engine forwards the first of the four identical reports).
    pub row_time: i64,
    /// When the detection pipeline can know about it: the confirming
    /// (fourth) report's time.
    pub detected_at: i64,
    /// Expressway.
    pub xway: i64,
    /// Direction.
    pub dir: i64,
    /// Segment.
    pub seg: i64,
    /// Exact position.
    pub pos: i64,
}

/// Reference outputs for a workload.
#[derive(Debug, Clone, Default)]
pub struct GoldenResult {
    /// Expected toll notifications, one per segment crossing, in stream
    /// order.
    pub tolls: Vec<TollNotification>,
    /// Detected accidents.
    pub accidents: Vec<GoldenAccident>,
    /// Expected accident alerts as `(carid, time)` pairs.
    pub alerts: Vec<(i64, i64)>,
}

impl GoldenResult {
    /// Index the tolls by `(carid, time)` for comparison.
    pub fn toll_index(&self) -> HashMap<(i64, i64), f64> {
        self.tolls
            .iter()
            .map(|t| ((t.carid, t.time), t.toll))
            .collect()
    }
}

/// Compute the reference outputs for a workload.
pub fn compute(workload: &Workload) -> GoldenResult {
    let reports = &workload.reports;

    // --- Segment statistics (exact, per minute) ---------------------------
    // (xway, dir, seg, minute) → per-car speed sums and counts.
    type SegMinute = (i64, i64, i64, i64);
    let mut car_speeds: BTreeMap<SegMinute, HashMap<i64, (f64, u32)>> = BTreeMap::new();
    for r in reports {
        let entry = car_speeds
            .entry((r.xway, r.dir, r.seg, r.minute()))
            .or_default();
        let (sum, n) = entry.entry(r.carid).or_insert((0.0, 0));
        *sum += r.speed;
        *n += 1;
    }
    // Per segment-minute: distinct car count and mean of per-car means.
    let mut seg_cars: HashMap<SegMinute, i64> = HashMap::new();
    let mut seg_speed: HashMap<SegMinute, f64> = HashMap::new();
    for (key, cars) in &car_speeds {
        seg_cars.insert(*key, cars.len() as i64);
        let mean_of_means: f64 = cars
            .values()
            .map(|(sum, n)| sum / *n as f64)
            .sum::<f64>()
            / cars.len() as f64;
        seg_speed.insert(*key, mean_of_means);
    }
    let lav = |xway: i64, dir: i64, seg: i64, minute: i64| -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0;
        for m in (minute - crate::model::LAV_WINDOW_MINUTES)..minute {
            if let Some(v) = seg_speed.get(&(xway, dir, seg, m)) {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    };

    // --- Accident detection ------------------------------------------------
    // A car is stopped once 4 consecutive reports share a position; an
    // accident exists once two distinct cars are stopped at one position.
    let mut consecutive: HashMap<i64, (i64, i64, u32, PositionReport)> = HashMap::new(); // car → (pos, dir, run, first-of-run)
    let mut stopped_at: HashMap<(i64, i64, i64), Vec<(i64, i64)>> = HashMap::new(); // (xway,dir,pos) → (car, first_time)
    let mut accidents: Vec<GoldenAccident> = Vec::new();
    let mut last_accident_at: HashMap<(i64, i64, i64), i64> = HashMap::new();
    for r in reports {
        let entry = consecutive
            .entry(r.carid)
            .or_insert((r.pos, r.dir, 0, *r));
        if entry.0 == r.pos && entry.1 == r.dir {
            entry.2 += 1;
        } else {
            *entry = (r.pos, r.dir, 1, *r);
        }
        if entry.2 >= 4 && !r.in_exit_lane() {
            let key = (r.xway, r.dir, r.pos);
            let first_time = entry.3.time;
            let cars = stopped_at.entry(key).or_default();
            if !cars.iter().any(|(c, _)| *c == r.carid) {
                cars.push((r.carid, first_time));
            }
            if cars.len() >= 2 {
                // The engine stores the max of the two forwarded (first
                // stopped) reports' times in the accident row, and
                // deduplicates episodes within a 300 s horizon.
                let row_time = cars.iter().map(|(_, t)| *t).max().expect("two cars");
                let fresh = last_accident_at
                    .get(&key)
                    .map(|&t| row_time - t >= 300)
                    .unwrap_or(true);
                if fresh {
                    last_accident_at.insert(key, row_time);
                    accidents.push(GoldenAccident {
                        row_time,
                        detected_at: r.time,
                        xway: r.xway,
                        dir: r.dir,
                        seg: r.seg,
                        pos: r.pos,
                    });
                }
            }
        }
    }

    let accident_nearby = |xway: i64, dir: i64, seg: i64, time: i64| -> bool {
        accidents.iter().any(|a| {
            a.xway == xway
                && a.dir == dir
                // The pipeline can only know once the fourth report landed…
                && a.detected_at <= time
                // …and the engine's recency filter runs on the row time.
                && a.row_time >= time - 120
                && accident_in_range(dir, seg, a.seg)
        })
    };

    // --- Alerts -------------------------------------------------------------
    let mut alerts = Vec::new();
    for r in reports {
        if !r.in_exit_lane() && accident_nearby(r.xway, r.dir, r.seg, r.time) {
            alerts.push((r.carid, r.time));
        }
    }

    // --- Tolls ---------------------------------------------------------------
    let mut prev_seg: HashMap<i64, i64> = HashMap::new();
    let mut tolls = Vec::new();
    for r in reports {
        let crossed = match prev_seg.get(&r.carid) {
            Some(&s) => s != r.seg,
            None => false,
        };
        prev_seg.insert(r.carid, r.seg);
        if !crossed {
            continue;
        }
        let minute = r.minute();
        let cars = seg_cars.get(&(r.xway, r.dir, r.seg, minute - 1)).copied();
        let lav_v = lav(r.xway, r.dir, r.seg, minute);
        let toll = toll_formula(lav_v, cars, accident_nearby(r.xway, r.dir, r.seg, r.time));
        tolls.push(TollNotification {
            carid: r.carid,
            time: r.time,
            seg: r.seg,
            toll,
        });
    }

    GoldenResult {
        tolls,
        accidents,
        alerts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadConfig;

    #[test]
    fn golden_detects_scheduled_accidents() {
        let w = Workload::generate(WorkloadConfig::tiny());
        let g = compute(&w);
        // tiny schedules accident pairs every 50 s; confirmation needs 4
        // reports (90 s), so the t=50 pair confirms at t=140 within the
        // 180 s run.
        assert!(!g.accidents.is_empty(), "scheduled accidents detected");
        for a in &g.accidents {
            assert!(a.detected_at >= 50 + 90, "4th report confirms, got {}", a.detected_at);
            assert!(a.row_time <= a.detected_at - 90, "row carries the first report's time");
        }
        assert!(!g.alerts.is_empty(), "cars near the accident get alerts");
    }

    #[test]
    fn golden_tolls_only_on_segment_change() {
        let w = Workload::generate(WorkloadConfig::tiny());
        let g = compute(&w);
        assert!(!g.tolls.is_empty());
        // No car is tolled twice at the same time.
        let idx = g.toll_index();
        assert_eq!(idx.len(), g.tolls.len());
    }

    #[test]
    fn no_accidents_config_produces_no_alerts() {
        let w = Workload::generate(WorkloadConfig {
            accident_every_secs: None,
            ..WorkloadConfig::tiny()
        });
        let g = compute(&w);
        assert!(g.accidents.is_empty());
        assert!(g.alerts.is_empty());
    }

    #[test]
    fn deterministic() {
        let w = Workload::generate(WorkloadConfig::tiny());
        let a = compute(&w);
        let b = compute(&w);
        assert_eq!(a.tolls, b.tolls);
        assert_eq!(a.accidents, b.accidents);
        assert_eq!(a.alerts, b.alerts);
    }
}
