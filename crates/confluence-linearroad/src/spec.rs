//! The Linear Road workflow as a declarative specification.
//!
//! The same Figure-10 topology as [`crate::workflow::build`], written in
//! the `confluence-core::spec` language and instantiated through an actor
//! registry — demonstrating the specification/execution decoupling at the
//! benchmark's full scale. (The spec form uses flat detection actors; the
//! composite sub-workflow variant is constructed programmatically.)

use confluence_core::error::Result;
use confluence_core::graph::Workflow;
use confluence_core::spec::{parse, ActorRegistry};
use confluence_relstore::StoreHandle;

use crate::actors::{
    AccidentDetector, AccidentNotifier, AccidentRecorder, CarCounter, CarSpeedAvg,
    MinuteSpeedWriter, NotificationOutput, SegmentCarsWriter, SegmentSpeedAvg, StoppedCarDetector,
    TollCalculator,
};
use crate::gen::Workload;
use crate::tables;

/// The Figure-10 workflow, in the specification language.
pub const LINEAR_ROAD_SPEC: &str = r#"
workflow linear-road {
    actor source   = position_feed()

    # --- accidents ------------------------------------------------------
    actor StoppedCarDetection      = stopped_car_detector()
    actor AccidentDetection        = accident_detector()
    actor InsertAccident           = accident_recorder()
    actor AccidentNotification     = accident_notifier()
    actor AccidentNotificationOut  = accident_output()

    connect source.out -> StoppedCarDetection.in
        window tuples(4, 1) group_by(carid)
    connect StoppedCarDetection.out -> AccidentDetection.in
        window tuples(2, 1) group_by(xway, dir, pos)
    connect AccidentDetection.out -> InsertAccident.in
    connect source.out -> AccidentNotification.in
        window each
    connect AccidentNotification.out -> AccidentNotificationOut.in

    # --- segment statistics ----------------------------------------------
    actor Avgsv       = car_speed_avg()
    actor Avgs        = segment_speed_avg()
    actor SpeedWriter = minute_speed_writer()
    actor cars        = car_counter()
    actor CarsWriter  = segment_cars_writer()

    connect source.out -> Avgsv.in
        window time(60s, 60s) group_by(carid, xway, dir, seg)
    connect Avgsv.out -> Avgs.in
        window time(60s, 60s) group_by(xway, dir, seg)
    connect Avgs.out -> SpeedWriter.in
    connect source.out -> cars.in
        window time(60s, 60s) group_by(xway, dir, seg)
    connect cars.out -> CarsWriter.in

    # --- tolls -------------------------------------------------------------
    actor TollCalculation  = toll_calculator()
    actor TollNotification = toll_output()

    connect source.out -> TollCalculation.in
        window tuples(2, 1) group_by(carid)
    connect TollCalculation.out -> TollNotification.in

    # Table 3 priorities: outputs 5, statistics/detection 10.
    priority TollCalculation         = 5
    priority TollNotification        = 5
    priority AccidentNotification    = 5
    priority AccidentNotificationOut = 5
    priority StoppedCarDetection     = 10
    priority AccidentDetection       = 10
    priority InsertAccident          = 10
    priority Avgsv                   = 10
    priority Avgs                    = 10
    priority SpeedWriter             = 10
    priority cars                    = 10
    priority CarsWriter              = 10
}
"#;

/// Build the Linear Road workflow by parsing [`LINEAR_ROAD_SPEC`].
///
/// Returns the same observable handles as [`crate::workflow::build`].
pub fn build_from_spec(workload: &Workload) -> Result<crate::workflow::LinearRoad> {
    let store = StoreHandle::new();
    tables::create_tables(&store)?;
    let toll_output = NotificationOutput::new();
    let accident_output = NotificationOutput::new();

    let mut reg = ActorRegistry::new();
    {
        let schedule = std::sync::Mutex::new(Some(workload.schedule()));
        reg.register("position_feed", move |_| {
            let data = schedule.lock().unwrap().take().unwrap_or_default();
            Ok(Box::new(confluence_core::actors::TimedSource::new(data)))
        });
        reg.register("stopped_car_detector", |_| Ok(Box::new(StoppedCarDetector)));
        reg.register("accident_detector", |_| Ok(Box::new(AccidentDetector)));
        let s = store.clone();
        reg.register("accident_recorder", move |_| {
            Ok(Box::new(AccidentRecorder::new(s.clone())))
        });
        let s = store.clone();
        reg.register("accident_notifier", move |_| {
            Ok(Box::new(AccidentNotifier::new(s.clone())))
        });
        let out = accident_output.clone();
        reg.register("accident_output", move |_| Ok(Box::new(out.actor())));
        reg.register("car_speed_avg", |_| Ok(Box::new(CarSpeedAvg)));
        reg.register("segment_speed_avg", |_| Ok(Box::new(SegmentSpeedAvg)));
        let s = store.clone();
        reg.register("minute_speed_writer", move |_| {
            Ok(Box::new(MinuteSpeedWriter::new(s.clone())))
        });
        reg.register("car_counter", |_| Ok(Box::new(CarCounter)));
        let s = store.clone();
        reg.register("segment_cars_writer", move |_| {
            Ok(Box::new(SegmentCarsWriter::new(s.clone())))
        });
        let s = store.clone();
        reg.register("toll_calculator", move |_| {
            Ok(Box::new(TollCalculator::new(s.clone())))
        });
        let out = toll_output.clone();
        reg.register("toll_output", move |_| Ok(Box::new(out.actor())));
    }

    let workflow: Workflow = parse(LINEAR_ROAD_SPEC, &reg)?;
    Ok(crate::workflow::LinearRoad {
        workflow,
        store,
        toll_output,
        accident_output,
        shedder: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadConfig;
    use crate::workflow::{build, LrOptions};
    use confluence_core::director::Director;
    use confluence_core::time::Micros;
    use confluence_sched::cost::TableCostModel;
    use confluence_sched::policies::FifoScheduler;
    use confluence_sched::ScwfDirector;

    #[test]
    fn spec_topology_matches_programmatic_build() {
        let w = Workload::generate(WorkloadConfig::tiny());
        let from_spec = build_from_spec(&w).unwrap();
        let programmatic = build(
            &w,
            &LrOptions {
                composite_subworkflows: false,
                ..LrOptions::default()
            },
        )
        .unwrap();
        assert_eq!(
            from_spec.workflow.actor_count(),
            programmatic.workflow.actor_count()
        );
        assert_eq!(
            from_spec.workflow.channels().len(),
            programmatic.workflow.channels().len()
        );
        for id in from_spec.workflow.actor_ids() {
            let name = &from_spec.workflow.node(id).name;
            let other = programmatic
                .workflow
                .find(name)
                .unwrap_or_else(|| panic!("actor {name} missing from programmatic build"));
            assert_eq!(
                from_spec.workflow.node(id).priority,
                programmatic.workflow.node(other).priority,
                "priority mismatch for {name}"
            );
        }
    }

    #[test]
    fn spec_workflow_runs_and_matches_programmatic_outputs() {
        let w = Workload::generate(WorkloadConfig::tiny());
        let cost = || Box::new(TableCostModel::uniform(Micros(20), Micros(2)));

        let mut a = build_from_spec(&w).unwrap();
        ScwfDirector::virtual_time(Box::new(FifoScheduler::new(5)), cost())
            .run(&mut a.workflow)
            .unwrap();

        let mut b = build(
            &w,
            &LrOptions {
                composite_subworkflows: false,
                ..LrOptions::default()
            },
        )
        .unwrap();
        ScwfDirector::virtual_time(Box::new(FifoScheduler::new(5)), cost())
            .run(&mut b.workflow)
            .unwrap();

        assert_eq!(a.toll_output.len(), b.toll_output.len());
        assert_eq!(a.accident_output.len(), b.accident_output.len());
    }
}
