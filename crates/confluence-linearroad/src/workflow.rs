//! The Linear Road continuous workflow (paper Appendix A, Figure 10).
//!
//! Two levels of hierarchy: the top level wires the major tasks under a
//! continuous-workflow director (STAFiLOS SCWF or the thread-based PNCWF);
//! selected tasks (detecting stopped cars, detecting accidents) are
//! sub-workflows wrapped in composite actors governed by DDF directors —
//! their consumption/production rates are fluid (decision points).
//!
//! Three areas: accidents (detection + notification), segment statistics
//! (LAV + car counts), and tolls (calculation + notification).

use confluence_core::actor::IoSignature;
use confluence_core::actors::FnActor;
use confluence_core::actors::TimedSource;
use confluence_core::director::composite::{CompositeActor, InjectHandle, InnerDirector};
use confluence_core::error::Result;
use confluence_core::graph::{Shard, Workflow, WorkflowBuilder};
use confluence_core::time::Micros;
use confluence_core::window::{GroupBy, WindowSpec};
use confluence_relstore::StoreHandle;
use confluence_sched::shedding::{LoadShedder, ShedderHandle};

use crate::actors::{
    AccidentDetector, AccidentNotifier, AccidentRecorder, CarCounter, CarSpeedAvg,
    MinuteSpeedWriter, NotificationOutput, SegmentCarsWriter, SegmentSpeedAvg, StoppedCarDetector,
    TollCalculator,
};
use crate::gen::Workload;
use crate::tables;

/// Construction options.
#[derive(Debug, Clone)]
pub struct LrOptions {
    /// Wrap stopped-car and accident detection in composite sub-workflows
    /// (the paper's two-level hierarchy). `false` uses flat actors —
    /// functionally identical, useful for ablations.
    pub composite_subworkflows: bool,
    /// Insert an adaptive load shedder after the source targeting this
    /// response time (paper §4.3: integrated sources can be tuned to shed
    /// load under overloading situations). `None` = no shedding.
    pub shed_target: Option<confluence_core::time::Micros>,
    /// Compress the workload timetable by this factor (arrival timestamps
    /// are divided by it), so real-time directors replay a long trace in a
    /// fraction of its wall-clock duration. `1` replays in real time.
    pub arrival_speedup: u64,
    /// Shard `TollCalculation` by `carid` into this many replicas behind a
    /// generated splitter and ordered merge (see
    /// [`confluence_core::shard`]). `None` (or `Some(1)`) keeps the single
    /// toll actor.
    pub shard_toll: Option<usize>,
    /// Artificial service time per toll-calculation firing (a blocking
    /// sleep; see [`TollCalculator::with_cost`]), for scaling experiments
    /// where the real per-firing cost is negligible.
    pub toll_cost: Option<Micros>,
}

impl Default for LrOptions {
    fn default() -> Self {
        LrOptions {
            composite_subworkflows: true,
            shed_target: None,
            arrival_speedup: 1,
            shard_toll: None,
            toll_cost: None,
        }
    }
}

/// The assembled benchmark: workflow plus its observable outputs.
pub struct LinearRoad {
    /// The top-level workflow, ready for any director.
    pub workflow: Workflow,
    /// The shared relational store.
    pub store: StoreHandle,
    /// TollNotification output (where the paper measures response time).
    pub toll_output: NotificationOutput,
    /// AccidentNotificationOut output.
    pub accident_output: NotificationOutput,
    /// Load-shedder diagnostics, when shedding was requested.
    pub shedder: Option<ShedderHandle>,
}

/// Build the Linear Road workflow over a generated workload.
pub fn build(workload: &Workload, opts: &LrOptions) -> Result<LinearRoad> {
    let store = StoreHandle::new();
    tables::create_tables(&store)?;
    let toll_output = NotificationOutput::new();
    let accident_output = NotificationOutput::new();

    let mut b = WorkflowBuilder::new("linear-road");
    let mut schedule = workload.schedule();
    if opts.arrival_speedup > 1 {
        for (at, _) in &mut schedule {
            *at = confluence_core::time::Timestamp(at.as_micros() / opts.arrival_speedup);
        }
    }
    let real_source = b.add_actor("source", TimedSource::new(schedule));
    // With shedding enabled, every consumer hangs off the shedder instead
    // of the raw source.
    let (source, shedder) = match opts.shed_target {
        Some(target) => {
            let (shed, handle) = LoadShedder::new(target);
            let shed_id = b.add_actor("LoadShedder", shed);
            b.connect(real_source, "out", shed_id, "in")?;
            (shed_id, Some(handle))
        }
        None => (real_source, None),
    };

    // --- Accident detection and notification ------------------------------
    let stopped = if opts.composite_subworkflows {
        b.add_boxed_actor("StoppedCarDetection", Box::new(stopped_car_composite()?))
    } else {
        b.add_actor("StoppedCarDetection", StoppedCarDetector)
    };
    let detect = if opts.composite_subworkflows {
        b.add_boxed_actor("AccidentDetection", Box::new(accident_composite()?))
    } else {
        b.add_actor("AccidentDetection", AccidentDetector)
    };
    let insert = b.add_actor("InsertAccident", AccidentRecorder::new(store.clone()));
    let notify = b.add_actor("AccidentNotification", AccidentNotifier::new(store.clone()));
    let notify_out = b.add_actor("AccidentNotificationOut", accident_output.actor());

    // Stopped cars: the last 4 reports of each car.
    b.connect_windowed(
        source,
        "out",
        stopped,
        "in",
        WindowSpec::tuples(4, 1).group_by(GroupBy::fields(&["carid"])),
    )?;
    // Accidents: two stopped-car reports at the same position.
    b.connect_windowed(
        stopped,
        "out",
        detect,
        "in",
        WindowSpec::tuples(2, 1).group_by(GroupBy::fields(&["xway", "dir", "pos"])),
    )?;
    b.connect(detect, "out", insert, "in")?;
    b.connect_windowed(source, "out", notify, "in", WindowSpec::each_event())?;
    b.connect(notify, "out", notify_out, "in")?;

    // --- Segment statistics ------------------------------------------------
    let avgsv = b.add_actor("Avgsv", CarSpeedAvg);
    let avgs = b.add_actor("Avgs", SegmentSpeedAvg);
    let speed_writer = b.add_actor("SpeedWriter", MinuteSpeedWriter::new(store.clone()));
    let cars = b.add_actor("cars", CarCounter);
    let cars_writer = b.add_actor("CarsWriter", SegmentCarsWriter::new(store.clone()));
    let minute = Micros::from_secs(60);
    b.connect_windowed(
        source,
        "out",
        avgsv,
        "in",
        WindowSpec::time(minute, minute)
            .group_by(GroupBy::fields(&["carid", "xway", "dir", "seg"])),
    )?;
    b.connect_windowed(
        avgsv,
        "out",
        avgs,
        "in",
        WindowSpec::time(minute, minute).group_by(GroupBy::fields(&["xway", "dir", "seg"])),
    )?;
    b.connect(avgs, "out", speed_writer, "in")?;
    b.connect_windowed(
        source,
        "out",
        cars,
        "in",
        WindowSpec::time(minute, minute).group_by(GroupBy::fields(&["xway", "dir", "seg"])),
    )?;
    b.connect(cars, "out", cars_writer, "in")?;

    // --- Toll calculation and notification ----------------------------------
    let mut toll_actor = TollCalculator::new(store.clone());
    if let Some(cost) = opts.toll_cost {
        toll_actor = toll_actor.with_cost(cost);
    }
    let toll = b.add_actor("TollCalculation", toll_actor);
    let toll_out = b.add_actor("TollNotification", toll_output.actor());
    b.connect_windowed(
        source,
        "out",
        toll,
        "in",
        WindowSpec::tuples(2, 1).group_by(GroupBy::fields(&["carid"])),
    )?;
    b.connect(toll, "out", toll_out, "in")?;
    if let Some(n) = opts.shard_toll {
        // The toll window groups by carid, so a carid-keyed split keeps
        // every window whole on one replica; the generated merge restores
        // global dispatch order at the notification output.
        b.shard(toll, Shard::by_fields(&["carid"]).replicas(n))?;
    }

    // Designer priorities (paper Table 3): 5 for the actors handling the
    // immediate output of the workflow, 10 for statistics maintenance and
    // accident detection.
    b.set_priority(toll, 5);
    b.set_priority(toll_out, 5);
    b.set_priority(notify, 5);
    b.set_priority(notify_out, 5);
    b.set_priority(stopped, 10);
    b.set_priority(detect, 10);
    b.set_priority(insert, 10);
    b.set_priority(avgsv, 10);
    b.set_priority(avgs, 10);
    b.set_priority(speed_writer, 10);
    b.set_priority(cars, 10);
    b.set_priority(cars_writer, 10);

    // Note: the shedder keeps the default priority on purpose — queueing
    // delay in *its* input is the congestion signal it sheds on.

    Ok(LinearRoad {
        workflow: b.build()?,
        store,
        toll_output,
        accident_output,
        shedder,
    })
}

/// The stopped-car detection sub-workflow (Figure 11): a composite whose
/// inner graph re-chunks injected tokens into 4-report windows and runs
/// the comparison under a DDF director.
fn stopped_car_composite() -> Result<CompositeActor> {
    let entry = InjectHandle::new();
    let exit = confluence_core::actors::Collector::new();
    let mut ib = WorkflowBuilder::new("stopped-car-subworkflow");
    let src = ib.add_actor("entry", entry.source());
    let cmp = ib.add_actor(
        "compare-positions",
        FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
            if let Some(t) = StoppedCarDetector::evaluate(w)? {
                emit(0, t);
            }
            Ok(())
        }),
    );
    let k = ib.add_actor("exit", exit.actor());
    // The outer window is {4, 1}: each firing injects 4 reports, which the
    // inner consuming 4-window reassembles.
    ib.connect_windowed(src, "out", cmp, "in", WindowSpec::tuples(4, 4).delete_used(true))?;
    ib.connect(cmp, "out", k, "in")?;
    CompositeActor::new(
        IoSignature::transform("in", "out"),
        ib.build()?,
        InnerDirector::Ddf,
        vec![entry],
        vec![exit],
    )
}

/// The accident detection sub-workflow (Figure 12): inner 2-windows over
/// injected stopped-car reports, compared under DDF.
fn accident_composite() -> Result<CompositeActor> {
    let entry = InjectHandle::new();
    let exit = confluence_core::actors::Collector::new();
    let mut ib = WorkflowBuilder::new("accident-subworkflow");
    let src = ib.add_actor("entry", entry.source());
    let cmp = ib.add_actor(
        "compare-cars",
        FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
            if let Some(t) = AccidentDetector::evaluate(w)? {
                emit(0, t);
            }
            Ok(())
        }),
    );
    let k = ib.add_actor("exit", exit.actor());
    ib.connect_windowed(src, "out", cmp, "in", WindowSpec::tuples(2, 2).delete_used(true))?;
    ib.connect(cmp, "out", k, "in")?;
    CompositeActor::new(
        IoSignature::transform("in", "out"),
        ib.build()?,
        InnerDirector::Ddf,
        vec![entry],
        vec![exit],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::WorkloadConfig;

    #[test]
    fn builds_with_and_without_composites() {
        let w = Workload::generate(WorkloadConfig::tiny());
        for composite in [true, false] {
            let lr = build(
                &w,
                &LrOptions {
                    composite_subworkflows: composite,
                    ..LrOptions::default()
                },
            )
            .unwrap();
            assert_eq!(lr.workflow.actor_count(), 13);
            let toll = lr.workflow.find("TollCalculation").unwrap();
            assert_eq!(lr.workflow.node(toll).priority, 5);
            let stats = lr.workflow.find("Avgsv").unwrap();
            assert_eq!(lr.workflow.node(stats).priority, 10);
            assert_eq!(lr.workflow.sources().len(), 1);
        }
    }

    #[test]
    fn sharded_toll_expands_behind_split_and_merge() {
        let w = Workload::generate(WorkloadConfig::tiny());
        let lr = build(
            &w,
            &LrOptions {
                shard_toll: Some(3),
                ..LrOptions::default()
            },
        )
        .unwrap();
        // 13 base actors: the toll slot becomes the splitter, plus 3
        // replicas and the merge.
        assert_eq!(lr.workflow.actor_count(), 17);
        let groups = lr.workflow.shard_groups();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].base, "TollCalculation");
        assert_eq!(groups[0].replicas.len(), 3);
        // Replicas inherit the toll priority (paper Table 3: 5).
        for &rid in &groups[0].replicas {
            assert_eq!(lr.workflow.node(rid).priority, 5);
        }
    }

    #[test]
    fn source_fans_out_to_four_areas() {
        let w = Workload::generate(WorkloadConfig::tiny());
        let lr = build(&w, &LrOptions::default()).unwrap();
        let src = lr.workflow.find("source").unwrap();
        let downstream = lr.workflow.downstream_actors(src);
        assert_eq!(
            downstream.len(),
            5,
            "stopped cars, accident notify, avgsv, cars, toll"
        );
    }
}
