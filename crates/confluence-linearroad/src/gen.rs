//! The Linear Road workload generator.
//!
//! The paper uses the workload generator from the Linear Road site to
//! produce car position reports for 0.5 expressways over 600 seconds
//! (Figure 5: the input rate ramps from ~10 to ~200 updates/second). That
//! generator (the MIT traffic simulator) is not redistributable, so this
//! module synthesizes an equivalent trip-level workload: cars enter the
//! expressway at a linearly increasing population, report every 30
//! seconds, move according to their speed, and scheduled accident pairs
//! stop in a travel lane for several reporting intervals (which is what
//! the accident-detection pipeline keys on). See DESIGN.md's substitution
//! notes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use confluence_core::time::Timestamp;
use confluence_core::token::Token;

use crate::model::{PositionReport, EXIT_LANE, REPORT_INTERVAL_SECS, SEGMENTS, SEGMENT_FEET};

/// The congested "downtown" band of the expressway: traffic concentrates
/// here and moves slowly, so the variable-toll conditions (more than 50
/// cars per segment-minute, LAV below 40 mph) genuinely arise — as they
/// do in the Linear Road simulator's congested stretches.
pub const HOT_BAND: std::ops::Range<i64> = 40..60;

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Run length in seconds (the paper uses 600).
    pub duration_secs: u64,
    /// L-rating: fraction of a full expressway's traffic (paper: 0.5).
    pub l_rating: f64,
    /// Number of expressways. Car population scales linearly with it and
    /// cars are assigned an `xway` uniformly at random; `1` reproduces the
    /// single-expressway streams byte-for-byte (no extra RNG draws).
    pub expressways: usize,
    /// RNG seed (runs are fully deterministic given the config).
    pub seed: u64,
    /// Car population at t = 0 for L = 1.0 (scaled by `l_rating`).
    pub base_initial_cars: usize,
    /// Car population at t = duration for L = 1.0 (scaled by `l_rating`).
    pub base_final_cars: usize,
    /// Schedule an accident pair every this many seconds (`None` = no accidents).
    pub accident_every_secs: Option<u64>,
    /// How long crashed cars keep reporting from the same spot.
    pub accident_duration_secs: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        // Calibrated to Figure 5: with L = 0.5 the report rate ramps from
        // ~10/s (300 cars) to ~200/s (6000 cars) over 600 s.
        WorkloadConfig {
            duration_secs: 600,
            l_rating: 0.5,
            expressways: 1,
            seed: 0xC0FFEE,
            base_initial_cars: 600,
            base_final_cars: 12_000,
            accident_every_secs: Some(90),
            accident_duration_secs: 150,
        }
    }
}

impl WorkloadConfig {
    /// The paper's configuration: L = 0.5, 600 seconds.
    pub fn paper() -> Self {
        Self::default()
    }

    /// A miniature configuration for tests (seconds-scale, light load).
    pub fn tiny() -> Self {
        WorkloadConfig {
            // Long enough for an accident scheduled at t=50 to confirm
            // (fourth report at t=140).
            duration_secs: 180,
            l_rating: 0.05,
            expressways: 1,
            seed: 7,
            base_initial_cars: 600,
            base_final_cars: 2_000,
            accident_every_secs: Some(50),
            accident_duration_secs: 150,
        }
    }
}

/// A generated workload: the position-report stream plus bookkeeping.
#[derive(Debug, Clone)]
pub struct Workload {
    /// All reports, ascending by time (ties by car id).
    pub reports: Vec<PositionReport>,
    /// The configuration that produced it.
    pub config: WorkloadConfig,
}

impl Workload {
    /// Generate deterministically from a configuration.
    pub fn generate(config: WorkloadConfig) -> Workload {
        let mut rng = StdRng::seed_from_u64(config.seed);
        let lanes = config.expressways.max(1);
        let scale = config.l_rating * lanes as f64;
        let initial = (config.base_initial_cars as f64 * scale).round() as usize;
        let final_ = (config.base_final_cars as f64 * scale).round() as usize;
        let duration = config.duration_secs as i64;
        let mut reports: Vec<PositionReport> = Vec::new();
        let mut next_carid: i64 = 1;
        // Expressway assignment, drawn only in multi-expressway runs so the
        // single-expressway stream stays byte-identical across versions.
        let pick_xway = |rng: &mut StdRng| -> i64 {
            if lanes > 1 {
                rng.gen_range(0..lanes as i64)
            } else {
                0
            }
        };

        // One car's journey: reports every 30 s from `entry` until the run
        // ends or it leaves the expressway. Most cars head for the
        // downtown band, where everyone crawls.
        let drive = |rng: &mut StdRng,
                     carid: i64,
                     xway: i64,
                     entry: i64,
                     out: &mut Vec<PositionReport>| {
            let dir = rng.gen_range(0..2i64);
            let free_speed: f64 = rng.gen_range(48.0..75.0);
            let jam_speed: f64 = rng.gen_range(18.0..38.0);
            let lane = rng.gen_range(1..EXIT_LANE);
            let downtown_bound = rng.gen_bool(0.65);
            let start_seg = if downtown_bound {
                // Enter a few segments upstream of the band so the car
                // drives into the congestion.
                let offset = rng.gen_range(0..12);
                if dir == 0 {
                    (HOT_BAND.start - offset).max(0)
                } else {
                    (HOT_BAND.end + offset).min(SEGMENTS - 1)
                }
            } else {
                rng.gen_range(0..SEGMENTS)
            };
            let mut pos = start_seg * SEGMENT_FEET + rng.gen_range(0..SEGMENT_FEET);
            let mut t = entry;
            while t <= duration {
                let seg = (pos / SEGMENT_FEET).clamp(0, SEGMENTS - 1);
                let base = if HOT_BAND.contains(&seg) {
                    jam_speed
                } else {
                    free_speed
                };
                let speed = (base + rng.gen_range(-5.0..5.0)).max(8.0);
                out.push(PositionReport {
                    time: t,
                    carid,
                    speed,
                    xway,
                    lane,
                    dir,
                    seg,
                    pos,
                });
                // Feet covered in 30 s at `speed` mph: speed · 44.
                let delta = (speed * 44.0) as i64;
                pos += if dir == 0 { delta } else { -delta };
                if !(0..SEGMENTS * SEGMENT_FEET).contains(&pos) {
                    break; // left the expressway
                }
                t += REPORT_INTERVAL_SECS as i64;
            }
        };

        // Initial population: phases staggered across the report interval.
        for _ in 0..initial {
            let entry = rng.gen_range(0..REPORT_INTERVAL_SECS as i64);
            let id = next_carid;
            next_carid += 1;
            let xway = pick_xway(&mut rng);
            drive(&mut rng, id, xway, entry, &mut reports);
        }
        // Ramp: evenly spaced entries reaching `final_` cars at the end.
        let extra = final_.saturating_sub(initial);
        for k in 0..extra {
            let entry = ((k as f64 + rng.gen_range(0.0..1.0)) * duration as f64 / extra.max(1) as f64)
                as i64;
            let id = next_carid;
            next_carid += 1;
            let xway = pick_xway(&mut rng);
            drive(&mut rng, id, xway, entry.min(duration), &mut reports);
        }

        // Scheduled accidents: two cars stopped at the same position in a
        // travel lane, reporting zero speed for the accident duration.
        if let Some(every) = config.accident_every_secs {
            let mut t = every as i64;
            while t < duration {
                let seg = rng.gen_range(5..SEGMENTS - 5);
                let pos = seg * SEGMENT_FEET + rng.gen_range(0..SEGMENT_FEET);
                let dir = rng.gen_range(0..2i64);
                let lane = rng.gen_range(1..EXIT_LANE);
                let xway = pick_xway(&mut rng);
                for _ in 0..2 {
                    let carid = next_carid;
                    next_carid += 1;
                    let mut rt = t;
                    while rt <= (t + config.accident_duration_secs as i64).min(duration) {
                        reports.push(PositionReport {
                            time: rt,
                            carid,
                            speed: 0.0,
                            xway,
                            lane,
                            dir,
                            seg,
                            pos,
                        });
                        rt += REPORT_INTERVAL_SECS as i64;
                    }
                }
                t += every as i64;
            }
        }

        reports.sort_by_key(|r| (r.time, r.carid));
        Workload { reports, config }
    }

    /// The arrival schedule for a [`confluence_core::actors::TimedSource`].
    pub fn schedule(&self) -> Vec<(Timestamp, Token)> {
        self.reports
            .iter()
            .map(|r| (r.arrival(), r.to_token()))
            .collect()
    }

    /// Input rate in updates/second, averaged over `bucket_secs` buckets —
    /// the series plotted in Figure 5.
    pub fn rate_series(&self, bucket_secs: u64) -> Vec<(u64, f64)> {
        let mut counts: Vec<u64> = Vec::new();
        for r in &self.reports {
            let b = r.time as u64 / bucket_secs;
            if counts.len() <= b as usize {
                counts.resize(b as usize + 1, 0);
            }
            counts[b as usize] += 1;
        }
        counts
            .iter()
            .enumerate()
            .map(|(b, &c)| (b as u64 * bucket_secs, c as f64 / bucket_secs as f64))
            .collect()
    }

    /// Total number of reports.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = Workload::generate(WorkloadConfig::tiny());
        let b = Workload::generate(WorkloadConfig::tiny());
        assert_eq!(a.reports, b.reports);
        assert!(!a.is_empty());
    }

    #[test]
    fn reports_sorted_and_within_bounds() {
        let w = Workload::generate(WorkloadConfig::tiny());
        for pair in w.reports.windows(2) {
            assert!(pair[0].time <= pair[1].time);
        }
        for r in &w.reports {
            assert!(r.time >= 0 && r.time <= 180);
            assert!((0..SEGMENTS).contains(&r.seg));
            assert!(r.pos >= 0 && r.pos < SEGMENTS * SEGMENT_FEET);
            assert!((0..2).contains(&r.dir));
            assert!((1..=3).contains(&r.lane), "travel lanes only");
            assert!(r.speed >= 0.0);
        }
    }

    #[test]
    fn cars_report_every_thirty_seconds() {
        let w = Workload::generate(WorkloadConfig::tiny());
        let car = w.reports[0].carid;
        let times: Vec<i64> = w
            .reports
            .iter()
            .filter(|r| r.carid == car)
            .map(|r| r.time)
            .collect();
        assert!(times.len() >= 2);
        for pair in times.windows(2) {
            assert_eq!(pair[1] - pair[0], REPORT_INTERVAL_SECS as i64);
        }
    }

    #[test]
    fn rate_ramps_up_like_figure_5() {
        let w = Workload::generate(WorkloadConfig::paper());
        let series = w.rate_series(30);
        let early: f64 = series[..4].iter().map(|(_, r)| r).sum::<f64>() / 4.0;
        let late_window = &series[series.len() - 5..series.len() - 1];
        let late: f64 = late_window.iter().map(|(_, r)| r).sum::<f64>() / 4.0;
        assert!(early > 5.0 && early < 40.0, "early rate ≈10–20/s, got {early}");
        assert!(late > 120.0 && late < 280.0, "late rate ≈200/s, got {late}");
        assert!(late > early * 4.0, "rate must ramp substantially");
    }

    #[test]
    fn accidents_produce_stopped_pairs() {
        let w = Workload::generate(WorkloadConfig::tiny());
        // Find zero-speed reports; there must be pairs of cars sharing a
        // position with ≥ 4 consecutive reports each.
        let stopped: Vec<&PositionReport> =
            w.reports.iter().filter(|r| r.speed == 0.0).collect();
        assert!(!stopped.is_empty(), "tiny config schedules accidents");
        use std::collections::HashMap;
        let mut by_pos: HashMap<(i64, i64), Vec<i64>> = HashMap::new();
        for r in &stopped {
            let cars = by_pos.entry((r.pos, r.dir)).or_default();
            if !cars.contains(&r.carid) {
                cars.push(r.carid);
            }
        }
        assert!(
            by_pos.values().any(|cars| cars.len() >= 2),
            "at least one two-car accident"
        );
        // Each crashed car reports at least 4 times from the same spot.
        let car = stopped[0].carid;
        let n = stopped.iter().filter(|r| r.carid == car).count();
        assert!(n >= 4, "crashed car reports ≥4 times, got {n}");
    }

    #[test]
    fn downtown_band_is_congested_and_slow() {
        let w = Workload::generate(WorkloadConfig::paper());
        // Mean speed inside the band is jammed; outside it flows.
        let (mut in_sum, mut in_n, mut out_sum, mut out_n) = (0.0, 0u64, 0.0, 0u64);
        for r in &w.reports {
            if HOT_BAND.contains(&r.seg) {
                in_sum += r.speed;
                in_n += 1;
            } else {
                out_sum += r.speed;
                out_n += 1;
            }
        }
        let in_mean = in_sum / in_n as f64;
        let out_mean = out_sum / out_n as f64;
        assert!(in_mean < 40.0, "band mean {in_mean:.1} must be jammed");
        assert!(out_mean > 45.0, "free-flow mean {out_mean:.1}");
        // Some band segment-minute exceeds the 50-car toll threshold late
        // in the run.
        use std::collections::{HashMap, HashSet};
        let mut cars: HashMap<(i64, i64, i64), HashSet<i64>> = HashMap::new();
        for r in &w.reports {
            if HOT_BAND.contains(&r.seg) && r.time >= 300 {
                cars.entry((r.dir, r.seg, r.minute()))
                    .or_default()
                    .insert(r.carid);
            }
        }
        let max = cars.values().map(|s| s.len()).max().unwrap_or(0);
        assert!(max > 50, "peak band occupancy {max} must cross the threshold");
    }

    #[test]
    fn multi_expressway_scales_and_partitions() {
        let one = Workload::generate(WorkloadConfig::tiny());
        assert!(one.reports.iter().all(|r| r.xway == 0));
        let two = Workload::generate(WorkloadConfig {
            expressways: 2,
            ..WorkloadConfig::tiny()
        });
        // Both expressways carry traffic and total volume roughly doubles.
        for xw in 0..2 {
            assert!(
                two.reports.iter().any(|r| r.xway == xw),
                "expressway {xw} has traffic"
            );
        }
        assert!(two.reports.iter().all(|r| (0..2).contains(&r.xway)));
        let ratio = two.len() as f64 / one.len() as f64;
        assert!(
            (1.6..=2.4).contains(&ratio),
            "2 expressways ≈ 2x the reports, got {ratio:.2}x"
        );
    }

    #[test]
    fn l_rating_scales_volume() {
        let half = Workload::generate(WorkloadConfig {
            accident_every_secs: None,
            ..WorkloadConfig::tiny()
        });
        let double = Workload::generate(WorkloadConfig {
            l_rating: 0.1,
            accident_every_secs: None,
            ..WorkloadConfig::tiny()
        });
        assert!(double.len() as f64 > half.len() as f64 * 1.5);
    }
}
