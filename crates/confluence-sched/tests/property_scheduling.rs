//! Property tests of the STAFiLOS framework: conservation and liveness
//! across all policies — every event a source releases is delivered to
//! every sink exactly once, no matter which policy schedules the actors or
//! what the costs are.

use proptest::prelude::*;

use confluence_core::actors::{Collector, TimedSource};
use confluence_core::director::Director;
use confluence_core::graph::WorkflowBuilder;
use confluence_core::time::{Micros, Timestamp};
use confluence_core::token::Token;
use confluence_sched::cost::TableCostModel;
use confluence_sched::policies::{
    EdfScheduler, FifoScheduler, OsThreadScheduler, QbsScheduler, RbScheduler, RrScheduler,
};
use confluence_sched::{Scheduler, ScwfDirector};

/// Workload: (arrival µs, payload) pairs.
fn arrivals() -> impl Strategy<Value = Vec<(u64, i64)>> {
    prop::collection::vec((0u64..100_000, 0i64..1_000_000), 1..120)
}

fn make_policy(which: u8, quantum: u64) -> Box<dyn Scheduler> {
    match which % 6 {
        0 => Box::new(FifoScheduler::new(5)),
        1 => Box::new(QbsScheduler::new(quantum.max(1), 5)),
        2 => Box::new(RrScheduler::new(quantum.max(1), 5)),
        3 => Box::new(RbScheduler::new()),
        4 => Box::new(EdfScheduler::new(Micros(quantum.max(1)), 5)),
        _ => Box::new(OsThreadScheduler::new()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Conservation: a diamond workflow delivers every source event to
    /// both sinks exactly once under every policy and any cost scale.
    #[test]
    fn every_policy_conserves_events(
        mut events in arrivals(),
        which in 0u8..6,
        quantum in 1u64..50_000,
        cost_us in 0u64..2_000,
    ) {
        events.sort();
        let schedule: Vec<(Timestamp, Token)> = events
            .iter()
            .map(|(t, v)| (Timestamp(*t), Token::Int(*v)))
            .collect();
        let left = Collector::new();
        let right = Collector::new();
        let mut b = WorkflowBuilder::new("diamond");
        let s = b.add_actor("src", TimedSource::new(schedule));
        let k1 = b.add_actor("left", left.actor());
        let k2 = b.add_actor("right", right.actor());
        b.connect(s, "out", k1, "in").unwrap();
        b.connect(s, "out", k2, "in").unwrap();
        b.set_priority(k1, 5);
        b.set_priority(k2, 25);
        let mut wf = b.build().unwrap();

        let policy = make_policy(which, quantum);
        let cost = TableCostModel::uniform(Micros(cost_us), Micros(1));
        let mut d = ScwfDirector::virtual_time(policy, Box::new(cost));
        d.run(&mut wf).unwrap();

        let mut expected: Vec<i64> = events.iter().map(|(_, v)| *v).collect();
        expected.sort_unstable();
        for c in [&left, &right] {
            let mut got: Vec<i64> = c.tokens().iter().map(|t| t.as_int().unwrap()).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "policy {} lost or duplicated events", which % 5);
        }
    }

    /// Per-source FIFO order is preserved through any policy: a sink sees
    /// one source's events in their arrival order.
    #[test]
    fn per_source_order_preserved(
        mut events in arrivals(),
        which in 0u8..6,
        quantum in 1u64..50_000,
    ) {
        events.sort();
        events.dedup_by_key(|(t, _)| *t);
        let schedule: Vec<(Timestamp, Token)> = events
            .iter()
            .map(|(t, v)| (Timestamp(*t), Token::Int(*v)))
            .collect();
        let sink = Collector::new();
        let mut b = WorkflowBuilder::new("line");
        let s = b.add_actor("src", TimedSource::new(schedule));
        let k = b.add_actor("sink", sink.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let mut d = ScwfDirector::virtual_time(
            make_policy(which, quantum),
            Box::new(TableCostModel::uniform(Micros(100), Micros(1))),
        );
        d.run(&mut wf).unwrap();
        let got: Vec<i64> = sink.tokens().iter().map(|t| t.as_int().unwrap()).collect();
        let expected: Vec<i64> = events.iter().map(|(_, v)| *v).collect();
        prop_assert_eq!(got, expected);
    }
}
