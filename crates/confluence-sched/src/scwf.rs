//! The Scheduled CWF (SCWF) director.
//!
//! The main STAFiLOS component: it interacts with the workflow model
//! (actors, ports, receivers) and enacts a pluggable scheduling policy
//! (paper §3, Figure 3). Its iteration cycle:
//!
//! 1. signal the policy (begin of iteration),
//! 2. repeatedly call `next_actor()`; for an internal actor, dequeue one
//!    ready window, place it on the actor's input port, prefire/fire the
//!    actor while timing it, route the productions (whose windows are
//!    enqueued back at the scheduler), and update the statistics module,
//! 3. when `next_actor()` returns `None`, post-fire: let the policy do its
//!    maintenance (re-quantification, period flip) and restart — or, if
//!    the workflow is quiescent, advance time to the next source arrival /
//!    window timeout.
//!
//! The director runs in **virtual time** (costs charged to a
//! [`VirtualClock`] via a [`CostModel`] — experiments finish in
//! milliseconds) or **real time** (costs measured on the wall clock).
//!
//! The execution state lives in [`ScwfCore`], a *steppable* engine:
//! [`ScwfDirector`] drives it to completion for single workflows, while
//! the multi-workflow manager ([`crate::multi`]) interleaves several cores
//! on one shared clock with per-slice budgets (the paper's two-level
//! scheduling design, §5).

use std::collections::VecDeque;
use std::sync::Arc;

use confluence_core::director::ddf::quasi_topological;
use confluence_core::director::{Director, Fabric, QueueContext, RunReport};
use confluence_core::error::Result;
use confluence_core::graph::{ActorId, Workflow};
use confluence_core::telemetry::{FireRecord, RunPhase, Telemetry};
use confluence_core::time::{Clock, Micros, Timestamp, VirtualClock, WallClock};
use confluence_core::window::Window;

use crate::cost::CostModel;
use crate::framework::{ActorInfo, Scheduler};
use crate::stats::StatsModule;

/// How the director keeps time.
pub enum TimeMode {
    /// Discrete-event execution: firing costs come from a model and are
    /// charged to a virtual clock.
    Virtual {
        /// The simulation clock (shareable across workflows).
        clock: Arc<VirtualClock>,
        /// The firing-cost model.
        cost: Box<dyn CostModel>,
    },
    /// Wall-clock execution with measured costs.
    Real {
        /// The wall clock.
        clock: Arc<WallClock>,
    },
}

impl TimeMode {
    fn now(&self) -> Timestamp {
        match self {
            TimeMode::Virtual { clock, .. } => clock.now(),
            TimeMode::Real { clock } => clock.now(),
        }
    }
}

/// Outcome of one [`ScwfCore::run_for`] slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Progress {
    /// The slice budget was exhausted; more work is immediately pending.
    BudgetExhausted,
    /// Quiescent until the given instant (next source arrival or window
    /// timeout). The caller decides how time advances.
    IdleUntil(Timestamp),
    /// The workflow completed (sources exhausted, everything drained and
    /// flushed, actors wrapped up).
    Finished,
}

/// The steppable SCWF execution engine for one workflow.
pub struct ScwfCore {
    policy: Box<dyn Scheduler>,
    mode: TimeMode,
    /// Fixed overhead charged per scheduling decision in virtual mode.
    pub scheduler_overhead: Micros,
    /// Hard stop: abandon the run once time passes this.
    pub deadline: Option<Timestamp>,
    // Execution state (built on first use).
    state: Option<ExecState>,
    report: RunReport,
    started: Option<Timestamp>,
    telemetry: Option<Telemetry>,
}

struct ExecState {
    fabric: Fabric,
    stats: StatsModule,
    queues: Vec<VecDeque<(usize, Window)>>,
    contexts: Vec<QueueContext>,
    source_ids: Vec<usize>,
    source_exhausted: Vec<bool>,
    topo: Vec<ActorId>,
    closed: bool,
    wrapped_up: bool,
}

impl ScwfCore {
    /// Virtual-time core with the given policy, cost model, and clock.
    pub fn new_virtual(
        policy: Box<dyn Scheduler>,
        cost: Box<dyn CostModel>,
        clock: Arc<VirtualClock>,
    ) -> Self {
        ScwfCore {
            policy,
            mode: TimeMode::Virtual { clock, cost },
            scheduler_overhead: Micros::ZERO,
            deadline: None,
            state: None,
            report: RunReport::default(),
            started: None,
            telemetry: None,
        }
    }

    /// Real-time core.
    pub fn new_real(policy: Box<dyn Scheduler>) -> Self {
        ScwfCore {
            policy,
            mode: TimeMode::Real {
                clock: Arc::new(WallClock::new()),
            },
            scheduler_overhead: Micros::ZERO,
            deadline: None,
            state: None,
            report: RunReport::default(),
            started: None,
            telemetry: None,
        }
    }

    /// Attach telemetry. Call before the first slice so the fabric is
    /// built observed; firing hooks always flow regardless.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = Some(telemetry);
    }

    fn should_stop(&self) -> bool {
        self.telemetry.as_ref().is_some_and(|t| t.should_stop())
    }

    /// Current time on the core's clock.
    pub fn now(&self) -> Timestamp {
        self.mode.now()
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }

    /// Statistics collected so far (None before the first slice).
    pub fn stats(&self) -> Option<&StatsModule> {
        self.state.as_ref().map(|s| &s.stats)
    }

    /// The cumulative run report.
    pub fn report(&self) -> &RunReport {
        &self.report
    }

    fn ensure_init(&mut self, workflow: &mut Workflow) -> Result<()> {
        if self.state.is_some() {
            return Ok(());
        }
        self.started = Some(self.now());
        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::Start, self.now());
        }
        let observer = self.telemetry.as_ref().map(|t| t.observer.clone());
        let fabric = Fabric::build_observed(workflow, observer)?;
        let stats = StatsModule::new(workflow);
        let n = workflow.actor_count();
        let queues: Vec<VecDeque<(usize, Window)>> = (0..n).map(|_| VecDeque::new()).collect();
        let mut contexts: Vec<QueueContext> = workflow
            .actor_ids()
            .map(|id| QueueContext::new(workflow.node(id).signature.inputs.len()))
            .collect();
        let infos: Vec<ActorInfo> = workflow
            .actor_ids()
            .map(|id| {
                let node = workflow.node(id);
                ActorInfo {
                    index: id.index(),
                    name: node.name.clone(),
                    priority: node.priority,
                    is_source: node.is_source,
                }
            })
            .collect();
        self.policy.init(&infos);
        let source_ids: Vec<usize> = workflow.sources().iter().map(|i| i.index()).collect();
        let source_exhausted = vec![false; n];
        for id in workflow.actor_ids() {
            let ctx = &mut contexts[id.index()];
            ctx.set_now(self.now());
            workflow.node_mut(id).actor_mut().initialize(ctx)?;
            let (emissions, _) = ctx.take_emissions();
            self.report.events_routed += fabric.route(id, emissions, None, self.now())?;
        }
        let topo = quasi_topological(workflow);
        self.state = Some(ExecState {
            fabric,
            stats,
            queues,
            contexts,
            source_ids,
            source_exhausted,
            topo,
            closed: false,
            wrapped_up: false,
        });
        self.sync_external(workflow);
        Ok(())
    }

    /// Drain receiver inboxes into the per-actor ready queues and refresh
    /// source readiness. Call after anything that may have produced
    /// windows or advanced time.
    fn sync_external(&mut self, workflow: &Workflow) {
        let st = self.state.as_mut().expect("initialized");
        // Expired-items queues feed their handler activities (if any).
        let _ = st.fabric.route_expired(self.mode.now());
        for i in 0..st.queues.len() {
            let inbox = st.fabric.inbox(ActorId(i));
            while let Some((port, w)) = inbox.try_pop() {
                let origin = w.earliest_origin().unwrap_or(Timestamp::ZERO);
                st.queues[i].push_back((port, w));
                self.policy.on_enqueue(i, origin);
            }
        }
        let now = self.mode.now();
        for &s in &st.source_ids {
            if st.source_exhausted[s] {
                continue;
            }
            let arrival = workflow
                .node(ActorId(s))
                .peek_actor()
                .and_then(|a| a.next_arrival());
            match arrival {
                None => {
                    st.source_exhausted[s] = true;
                    self.policy.on_source_ready(s, false);
                }
                Some(t) => self.policy.on_source_ready(s, t <= now),
            }
        }
    }

    /// Run until quiescence, completion, or (if given) until `budget`
    /// microseconds of cost have been charged in this slice.
    pub fn run_for(&mut self, workflow: &mut Workflow, budget: Option<Micros>) -> Result<Progress> {
        self.ensure_init(workflow)?;
        let mut spent = Micros::ZERO;
        self.sync_external(workflow);
        loop {
            let mut fired_in_iteration = false;
            while let Some(a) = self.policy.next_actor() {
                let cost = self.fire_one(workflow, a)?;
                if cost.is_some() {
                    fired_in_iteration = true;
                }
                // Post-firing housekeeping: drain, readiness, timeouts.
                self.sync_external(workflow);
                let now = self.mode.now();
                {
                    let st = self.state.as_mut().expect("initialized");
                    if st.fabric.next_deadline().is_some_and(|d| d <= now) {
                        st.fabric.poll_all(now);
                    }
                }
                self.sync_external(workflow);
                let st = self.state.as_mut().expect("initialized");
                self.policy
                    .after_fire(a, cost.unwrap_or(Micros::ZERO), st.queues[a].len(), &st.stats);
                if let Some(c) = cost {
                    spent += c;
                }
                if let Some(limit) = self.deadline {
                    if now > limit {
                        self.finish(workflow)?;
                        return Ok(Progress::Finished);
                    }
                }
                if self.should_stop() {
                    self.finish(workflow)?;
                    return Ok(Progress::Finished);
                }
                if let Some(b) = budget {
                    if spent >= b {
                        // Pause the slice; the next run_for call determines
                        // whether work actually remains.
                        return Ok(Progress::BudgetExhausted);
                    }
                }
            }
            let reactivated = {
                let st = self.state.as_ref().expect("initialized");
                self.policy.end_iteration(&st.stats)
            };
            if fired_in_iteration || reactivated {
                continue;
            }
            // Quiescent: find the next interesting instant.
            let st = self.state.as_ref().expect("initialized");
            let next_arrival = st
                .source_ids
                .iter()
                .filter(|&&s| !st.source_exhausted[s])
                .filter_map(|&s| {
                    workflow
                        .node(ActorId(s))
                        .peek_actor()
                        .and_then(|a| a.next_arrival())
                })
                .min();
            let next_deadline = st.fabric.next_deadline();
            let wake = match (next_arrival, next_deadline) {
                (Some(a), Some(d)) => Some(a.min(d)),
                (x, None) => x,
                (None, y) => y,
            };
            if let Some(t) = wake {
                return Ok(Progress::IdleUntil(t));
            }
            let st = self.state.as_mut().expect("initialized");
            if !st.closed {
                st.closed = true;
                if let Some(t) = &self.telemetry {
                    t.observer.on_run_phase(RunPhase::Close, self.mode.now());
                }
                // Close upstream-first, one actor at a time: drain any
                // windows flushed by earlier closes, give the actor its
                // final chance to emit (outputs still open), then close.
                let topo = st.topo.clone();
                for id in topo {
                    loop {
                        self.sync_external(workflow);
                        let st = self.state.as_mut().expect("initialized");
                        if st.queues[id.0].is_empty() {
                            break;
                        }
                        self.fire_one(workflow, id.0)?;
                    }
                    let now = self.mode.now();
                    let st = self.state.as_mut().expect("initialized");
                    let ctx = &mut st.contexts[id.0];
                    ctx.set_now(now);
                    workflow.node_mut(id).actor_mut().finish(ctx)?;
                    let (emissions, trigger) = ctx.take_emissions();
                    self.report.events_routed +=
                        st.fabric.route(id, emissions, trigger.as_ref(), now)?;
                    st.fabric.close_actor_outputs(id, now)?;
                }
                self.sync_external(workflow);
                continue;
            }
            self.finish(workflow)?;
            return Ok(Progress::Finished);
        }
    }

    /// Notify the core that its clock was advanced externally (or sleep to
    /// `t` in real mode): window timeouts are evaluated and sources
    /// refreshed.
    pub fn advance_to(&mut self, workflow: &Workflow, t: Timestamp) {
        match &self.mode {
            TimeMode::Virtual { clock, .. } => clock.advance_to(t),
            TimeMode::Real { clock } => {
                let now = clock.now();
                if t > now {
                    std::thread::sleep(t.since(now).to_std());
                }
            }
        }
        if self.state.is_some() {
            let now = self.mode.now();
            {
                let st = self.state.as_mut().expect("checked");
                st.fabric.poll_all(now);
            }
            self.sync_external(workflow);
        }
    }

    /// Fire one actor; returns its cost, or `None` if the firing was
    /// skipped (prefire false / nothing queued).
    fn fire_one(&mut self, workflow: &mut Workflow, a: usize) -> Result<Option<Micros>> {
        let id = ActorId(a);
        let is_source = workflow.node(id).is_source;
        let fire_start = self.mode.now();
        let st = self.state.as_mut().expect("initialized");
        let ctx = &mut st.contexts[a];
        ctx.set_now(fire_start);
        if !is_source {
            match st.queues[a].pop_front() {
                Some((port, w)) => {
                    if st.fabric.wants_event_hooks() {
                        if let Some(t) = &self.telemetry {
                            t.observer
                                .on_dequeue(id, port, w.trigger_wave(), w.formed_at, fire_start);
                        }
                    }
                    ctx.deliver(port, w)
                }
                None => return Ok(None),
            }
        }
        if let Some(t) = &self.telemetry {
            t.observer.on_fire_start(id, fire_start);
        }
        let fired = {
            let actor = workflow.node_mut(id).actor_mut();
            if actor.prefire(ctx)? {
                actor.fire(ctx)?;
                true
            } else {
                false
            }
        };
        let ctx = &mut st.contexts[a];
        let consumed = ctx.consumed_events;
        let (emissions, trigger) = ctx.take_emissions();
        let produced = emissions.len() as u64;
        let origin = trigger.as_ref().map(|w| w.origin());
        let cost = if fired {
            match &self.mode {
                TimeMode::Virtual { clock, cost } => {
                    let c = cost.firing_cost(a, &workflow.node(id).name, consumed, produced)
                        + self.scheduler_overhead;
                    clock.advance(c);
                    c
                }
                TimeMode::Real { clock } => clock.now().since(fire_start),
            }
        } else {
            Micros::ZERO
        };
        if fired {
            self.report.firings += 1;
            st.stats.record_firing(a, cost, consumed, produced, fire_start);
        }
        // External events are stamped at the source's firing start — that
        // is when they entered the workflow; the firing cost that follows
        // is the first component of their response time. Derived events
        // are stamped at production (firing completion).
        let (parent, stamp_at) = if is_source {
            (None, fire_start)
        } else {
            (trigger, self.mode.now())
        };
        self.report.events_routed += st.fabric.route(id, emissions, parent.as_ref(), stamp_at)?;
        if let Some(t) = &self.telemetry {
            t.observer.on_fire_end(&FireRecord {
                actor: id,
                started: fire_start,
                ended: self.mode.now(),
                busy: cost,
                events_in: consumed,
                tokens_out: produced,
                origin,
                trigger: parent,
                fired,
            });
        }
        {
            let actor = workflow.node_mut(id).actor_mut();
            let ctx = &mut st.contexts[a];
            let _ = actor.postfire(ctx)?;
        }
        Ok(if fired { Some(cost) } else { None })
    }

    fn finish(&mut self, workflow: &mut Workflow) -> Result<()> {
        let st = self.state.as_mut().expect("initialized");
        if st.wrapped_up {
            return Ok(());
        }
        st.wrapped_up = true;
        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::Wrapup, self.mode.now());
        }
        for id in workflow.actor_ids() {
            workflow.node_mut(id).actor_mut().wrapup()?;
        }
        if let Some(started) = self.started {
            self.report.elapsed = self.mode.now().since(started);
        }
        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::End, self.mode.now());
        }
        Ok(())
    }
}

/// The scheduled continuous-workflow director: drives an [`ScwfCore`] to
/// completion over a single workflow.
pub struct ScwfDirector {
    core: ScwfCore,
}

impl ScwfDirector {
    /// Virtual-time director with the given policy and cost model.
    pub fn virtual_time(policy: Box<dyn Scheduler>, cost: Box<dyn CostModel>) -> Self {
        ScwfDirector {
            core: ScwfCore::new_virtual(policy, cost, Arc::new(VirtualClock::new())),
        }
    }

    /// Virtual-time director sharing a caller-provided clock.
    pub fn virtual_time_on(
        policy: Box<dyn Scheduler>,
        cost: Box<dyn CostModel>,
        clock: Arc<VirtualClock>,
    ) -> Self {
        ScwfDirector {
            core: ScwfCore::new_virtual(policy, cost, clock),
        }
    }

    /// Real-time director: costs are measured on the wall clock.
    pub fn real_time(policy: Box<dyn Scheduler>) -> Self {
        ScwfDirector {
            core: ScwfCore::new_real(policy),
        }
    }

    /// Set the per-decision scheduler overhead (virtual mode).
    pub fn with_scheduler_overhead(mut self, o: Micros) -> Self {
        self.core.scheduler_overhead = o;
        self
    }

    /// Set a hard run deadline.
    pub fn with_deadline(mut self, t: Timestamp) -> Self {
        self.core.deadline = Some(t);
        self
    }

    /// The statistics module of the last run.
    pub fn last_stats(&self) -> Option<&StatsModule> {
        self.core.stats()
    }

    /// The policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.core.policy_name()
    }

    /// The core's current time.
    pub fn now(&self) -> Timestamp {
        self.core.now()
    }
}

impl Director for ScwfDirector {
    fn run(&mut self, workflow: &mut Workflow) -> Result<RunReport> {
        loop {
            match self.core.run_for(workflow, None)? {
                Progress::Finished => break,
                Progress::IdleUntil(t) => {
                    if self.core.should_stop() {
                        self.core.finish(workflow)?;
                        break;
                    }
                    if let Some(limit) = self.core.deadline {
                        if t > limit {
                            // Nothing more can happen before the deadline.
                            self.core.finish(workflow)?;
                            break;
                        }
                    }
                    self.core.advance_to(workflow, t);
                }
                Progress::BudgetExhausted => unreachable!("no budget given"),
            }
        }
        Ok(self.core.report().clone())
    }

    fn instrument(&mut self, telemetry: Telemetry) -> bool {
        self.core.set_telemetry(telemetry);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::policies::fifo::FifoScheduler;
    use confluence_core::actors::{Collector, LatencyProbe, TimedSource, VecSource};
    use confluence_core::graph::WorkflowBuilder;
    use confluence_core::token::Token;
    use confluence_core::window::WindowSpec;

    fn fifo() -> Box<dyn Scheduler> {
        Box::new(FifoScheduler::new(5))
    }

    #[test]
    fn virtual_time_charges_costs() {
        let probe = LatencyProbe::new();
        let mut b = WorkflowBuilder::new("vt");
        let s = b.add_actor(
            "src",
            TimedSource::new(vec![
                (Timestamp(0), Token::Int(1)),
                (Timestamp(1_000), Token::Int(2)),
            ]),
        );
        let k = b.add_actor("probe", probe.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let cost = TableCostModel::uniform(Micros(100), Micros::ZERO);
        let mut d = ScwfDirector::virtual_time(fifo(), Box::new(cost));
        let report = d.run(&mut wf).unwrap();
        assert_eq!(probe.len(), 2);
        // Origin = source firing start; the probe samples at the start of
        // its own firing, after the source's 100µs cost was charged.
        let samples = probe.samples();
        assert_eq!(samples[0].latency, Micros(100));
        assert!(report.firings >= 4);
        assert!(d.last_stats().is_some());
        let stats = d.last_stats().unwrap();
        assert!(stats.actor(1).invocations >= 2);
    }

    #[test]
    fn quiescent_clock_jumps_to_next_arrival() {
        let probe = LatencyProbe::new();
        let mut b = WorkflowBuilder::new("jump");
        let s = b.add_actor(
            "src",
            TimedSource::new(vec![(Timestamp(1_000_000), Token::Int(1))]),
        );
        let k = b.add_actor("probe", probe.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let cost = TableCostModel::uniform(Micros(10), Micros::ZERO);
        let mut d = ScwfDirector::virtual_time(fifo(), Box::new(cost));
        d.run(&mut wf).unwrap();
        let samples = probe.samples();
        assert_eq!(samples.len(), 1);
        // The event was processed shortly after its arrival at t=1s, not
        // at t=0 — and the run did not take 1s of wall time.
        assert!(samples[0].at >= Timestamp(1_000_000));
        assert!(samples[0].latency < Micros(1_000));
    }

    #[test]
    fn overload_shows_growing_latency() {
        // Arrivals every 100µs; service takes 300µs per event: the queue
        // grows and response time climbs — the thrash mechanic.
        let probe = LatencyProbe::new();
        let schedule: Vec<(Timestamp, Token)> = (0..50)
            .map(|i| (Timestamp(i * 100), Token::Int(i as i64)))
            .collect();
        let mut b = WorkflowBuilder::new("overload");
        let s = b.add_actor("src", TimedSource::new(schedule));
        let k = b.add_actor("probe", probe.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let cost = TableCostModel::uniform(Micros::ZERO, Micros::ZERO)
            .with_actor("probe", Micros(300), Micros::ZERO);
        let mut d = ScwfDirector::virtual_time(fifo(), Box::new(cost));
        d.run(&mut wf).unwrap();
        let samples = probe.samples();
        assert_eq!(samples.len(), 50);
        let first = samples[0].latency;
        let last = samples.last().unwrap().latency;
        assert!(
            last.as_micros() > first.as_micros() + 5_000,
            "latency should grow under overload: first={first}, last={last}"
        );
    }

    #[test]
    fn deadline_bounds_the_run() {
        let probe = LatencyProbe::new();
        let schedule: Vec<(Timestamp, Token)> = (0..1000)
            .map(|i| (Timestamp(i * 1_000), Token::Int(i as i64)))
            .collect();
        let mut b = WorkflowBuilder::new("bounded");
        let s = b.add_actor("src", TimedSource::new(schedule));
        let k = b.add_actor("probe", probe.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let cost = TableCostModel::uniform(Micros(10), Micros::ZERO);
        let mut d = ScwfDirector::virtual_time(fifo(), Box::new(cost))
            .with_deadline(Timestamp(100_000));
        d.run(&mut wf).unwrap();
        assert!(probe.len() < 1000, "run stopped early");
        assert!(probe.len() > 50);
    }

    #[test]
    fn windows_and_flush_under_scwf() {
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("win");
        let s = b.add_actor("src", VecSource::new((0..5).map(Token::Int).collect()));
        let agg = b.add_actor(
            "agg",
            confluence_core::actors::FnActor::new(
                confluence_core::actor::IoSignature::transform("in", "out"),
                |w, emit| {
                    emit(0, Token::Int(w.len() as i64));
                    Ok(())
                },
            ),
        );
        let k = b.add_actor("sink", c.actor());
        b.connect_windowed(s, "out", agg, "in", WindowSpec::tuples(2, 2))
            .unwrap();
        b.connect(agg, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let cost = TableCostModel::uniform(Micros(1), Micros::ZERO);
        ScwfDirector::virtual_time(fifo(), Box::new(cost))
            .run(&mut wf)
            .unwrap();
        // Two full 2-windows plus the flushed 1-window.
        assert_eq!(
            c.tokens(),
            vec![Token::Int(2), Token::Int(2), Token::Int(1)]
        );
    }

    #[test]
    fn real_time_mode_works() {
        let probe = LatencyProbe::new();
        let mut b = WorkflowBuilder::new("rt");
        let s = b.add_actor("src", VecSource::new(vec![Token::Int(1)]));
        let k = b.add_actor("probe", probe.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let mut d = ScwfDirector::real_time(fifo());
        assert_eq!(d.policy_name(), "FIFO");
        d.run(&mut wf).unwrap();
        assert_eq!(probe.len(), 1);
    }

    #[test]
    fn real_time_mode_sleeps_to_arrivals() {
        // Arrivals 5 ms apart: the idle branch must sleep the wall clock
        // forward rather than spin or jump.
        let probe = LatencyProbe::new();
        let schedule: Vec<(Timestamp, Token)> = (0..4)
            .map(|i| (Timestamp::from_millis(i * 5), Token::Int(i as i64)))
            .collect();
        let mut b = WorkflowBuilder::new("rt-sleep");
        let s = b.add_actor("src", TimedSource::new(schedule));
        let k = b.add_actor("probe", probe.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let started = std::time::Instant::now();
        ScwfDirector::real_time(fifo()).run(&mut wf).unwrap();
        assert_eq!(probe.len(), 4);
        assert!(
            started.elapsed() >= std::time::Duration::from_millis(15),
            "run must take at least the schedule span"
        );
    }

    #[test]
    fn stepped_execution_with_budget() {
        let probe = LatencyProbe::new();
        let schedule: Vec<(Timestamp, Token)> = (0..20)
            .map(|i| (Timestamp(i), Token::Int(i as i64)))
            .collect();
        let mut b = WorkflowBuilder::new("stepped");
        let s = b.add_actor("src", TimedSource::new(schedule));
        let k = b.add_actor("probe", probe.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let clock = Arc::new(VirtualClock::new());
        let cost = TableCostModel::uniform(Micros(100), Micros::ZERO);
        let mut core = ScwfCore::new_virtual(fifo(), Box::new(cost), clock);
        let mut slices = 0;
        loop {
            slices += 1;
            match core.run_for(&mut wf, Some(Micros(300))).unwrap() {
                Progress::Finished => break,
                Progress::IdleUntil(t) => core.advance_to(&wf, t),
                Progress::BudgetExhausted => { /* next slice */ }
            }
            assert!(slices < 1_000, "must terminate");
        }
        assert_eq!(probe.len(), 20);
        assert!(slices > 3, "budget forced multiple slices");
    }
}
