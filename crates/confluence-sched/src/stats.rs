//! The actor statistics module.
//!
//! STAFiLOS exposes runtime statistics to the abstract scheduler so policy
//! implementors can make smart resource-allocation decisions (paper §3):
//! per-invocation cost, input and output rates, and selectivity, all
//! updated dynamically with each actor invocation. On top of the local
//! statistics it derives the *global* cost and selectivity of Sharaf et
//! al. \[28\] — aggregated over every downstream path to a workflow output —
//! which the Rate-Based scheduler's priority `Pr(A) = S_A / C_A` uses.

use confluence_core::graph::Workflow;
use confluence_core::telemetry::estimator;
use confluence_core::time::{Micros, Timestamp};

/// Running statistics for one actor.
#[derive(Debug, Clone, Default)]
pub struct ActorStats {
    /// Completed invocations.
    pub invocations: u64,
    /// Total execution cost across invocations.
    pub total_cost: Micros,
    /// Cost of the most recent invocation.
    pub last_cost: Micros,
    /// Events consumed (inputs).
    pub events_in: u64,
    /// Events produced (outputs).
    pub events_out: u64,
    /// Time of first recorded activity.
    pub first_seen: Option<Timestamp>,
    /// Time of last recorded activity.
    pub last_seen: Option<Timestamp>,
}

impl ActorStats {
    /// Mean cost per invocation, in microseconds (0 before any firing).
    pub fn mean_cost(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.total_cost.as_micros() as f64 / self.invocations as f64
        }
    }

    /// Selectivity: events produced per event consumed (1.0 before any
    /// input, the neutral assumption).
    pub fn selectivity(&self) -> f64 {
        if self.events_in == 0 {
            1.0
        } else {
            self.events_out as f64 / self.events_in as f64
        }
    }

    /// Input rate in events/second over the observed activity span.
    pub fn input_rate(&self) -> f64 {
        self.rate(self.events_in)
    }

    /// Output rate in events/second over the observed activity span.
    pub fn output_rate(&self) -> f64 {
        self.rate(self.events_out)
    }

    fn rate(&self, events: u64) -> f64 {
        match (self.first_seen, self.last_seen) {
            (Some(a), Some(b)) if b > a => {
                events as f64 / b.since(a).as_secs_f64()
            }
            _ => 0.0,
        }
    }

    /// Mean cost per consumed event, in microseconds (falls back to mean
    /// invocation cost when nothing was consumed yet).
    pub fn cost_per_event(&self) -> f64 {
        if self.events_in == 0 {
            self.mean_cost()
        } else {
            self.total_cost.as_micros() as f64 / self.events_in as f64
        }
    }
}

/// Statistics for all actors of one workflow, plus topology-aware derived
/// metrics.
#[derive(Debug)]
pub struct StatsModule {
    stats: Vec<ActorStats>,
    /// Downstream actor ids per actor (from the workflow topology).
    downstream: Vec<Vec<usize>>,
}

impl StatsModule {
    /// A module for the given workflow.
    pub fn new(workflow: &Workflow) -> Self {
        let stats = vec![ActorStats::default(); workflow.actor_count()];
        let downstream = workflow
            .actor_ids()
            .map(|id| {
                workflow
                    .downstream_actors(id)
                    .into_iter()
                    .map(|d| d.index())
                    .collect()
            })
            .collect();
        StatsModule { stats, downstream }
    }

    /// Number of actors tracked.
    pub fn len(&self) -> usize {
        self.stats.len()
    }

    /// Whether the module tracks no actors.
    pub fn is_empty(&self) -> bool {
        self.stats.is_empty()
    }

    /// Statistics of one actor.
    pub fn actor(&self, idx: usize) -> &ActorStats {
        &self.stats[idx]
    }

    /// Record one completed invocation.
    pub fn record_firing(
        &mut self,
        idx: usize,
        cost: Micros,
        consumed: u64,
        produced: u64,
        at: Timestamp,
    ) {
        let s = &mut self.stats[idx];
        s.invocations += 1;
        s.total_cost += cost;
        s.last_cost = cost;
        s.events_in += consumed;
        s.events_out += produced;
        if s.first_seen.is_none() {
            s.first_seen = Some(at);
        }
        s.last_seen = Some(at);
    }

    /// Global selectivity of an actor per Sharaf et al. \[28\]: the expected
    /// number of workflow *outputs* eventually produced per event consumed
    /// by this actor — the product of selectivities along each downstream
    /// path, summed over paths when the actor feeds multiple branches.
    /// Terminal actors are output operators: every event they consume is a
    /// result delivered to the user (selectivity 1 in the Sharaf et al.
    /// accounting). The propagation itself is the shared
    /// [`estimator`] core, also used by the wall-clock executor's
    /// `LiveStats`, so simulator and executor rank actors identically.
    pub fn global_selectivity(&self, idx: usize) -> f64 {
        estimator::global_selectivity(idx, &|i| self.stats[i].selectivity(), &self.downstream)
    }

    /// Global average cost per event at an actor per \[28\]: the work this
    /// event and its descendants will require through the rest of the
    /// workflow — own cost per event plus downstream cost weighted by the
    /// actor's selectivity, summed over downstream paths for shared actors.
    pub fn global_cost(&self, idx: usize) -> f64 {
        estimator::global_cost(
            idx,
            &|i| self.stats[i].cost_per_event(),
            &|i| self.stats[i].selectivity(),
            &self.downstream,
        )
    }

    /// Render the per-actor runtime statistics as an aligned text table —
    /// the observability surface the paper's statistics module gives
    /// scheduler developers. `names[i]` labels actor `i`.
    pub fn render(&self, names: &[String]) -> String {
        let mut out = format!(
            "{:<24} {:>9} {:>11} {:>10} {:>10} {:>7} {:>9} {:>9}\n",
            "actor", "firings", "mean(µs)", "in ev/s", "out ev/s", "sel", "gSel", "gCost(µs)"
        );
        for i in 0..self.len() {
            let s = self.actor(i);
            let name = names.get(i).map(String::as_str).unwrap_or("?");
            out.push_str(&format!(
                "{:<24} {:>9} {:>11.1} {:>10.1} {:>10.1} {:>7.3} {:>9.3} {:>9.1}\n",
                name,
                s.invocations,
                s.mean_cost(),
                s.input_rate(),
                s.output_rate(),
                s.selectivity(),
                self.global_selectivity(i),
                self.global_cost(i),
            ));
        }
        out
    }

    /// The Rate-Based (Highest Rate) dynamic priority
    /// `Pr(A) = S_A / C_A` — global output per unit of processing time.
    /// Infinite before any cost is observed, so fresh actors get probed
    /// early.
    pub fn rate_priority(&self, idx: usize) -> f64 {
        estimator::rate_priority(
            idx,
            &|i| self.stats[i].cost_per_event(),
            &|i| self.stats[i].selectivity(),
            &self.downstream,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_core::actor::{Actor, FireContext, IoSignature};
    use confluence_core::actors::VecSource;
    use confluence_core::error::Result;
    use confluence_core::graph::WorkflowBuilder;

    struct Pass;
    impl Actor for Pass {
        fn signature(&self) -> IoSignature {
            IoSignature::transform("in", "out")
        }
        fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
            Ok(())
        }
    }
    struct Sink;
    impl Actor for Sink {
        fn signature(&self) -> IoSignature {
            IoSignature::sink("in")
        }
        fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
            Ok(())
        }
    }

    /// src → a → sink, plus src → b → sink2 (two paths from src).
    fn two_path_workflow() -> Workflow {
        let mut b = WorkflowBuilder::new("stats");
        let s = b.add_actor("src", VecSource::new(vec![]));
        let a = b.add_actor("a", Pass);
        let b2 = b.add_actor("b", Pass);
        let k1 = b.add_actor("k1", Sink);
        let k2 = b.add_actor("k2", Sink);
        b.connect(s, "out", a, "in").unwrap();
        b.connect(s, "out", b2, "in").unwrap();
        b.connect(a, "out", k1, "in").unwrap();
        b.connect(b2, "out", k2, "in").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn local_statistics_accumulate() {
        let wf = two_path_workflow();
        let mut m = StatsModule::new(&wf);
        assert_eq!(m.len(), 5);
        assert!(!m.is_empty());
        m.record_firing(1, Micros(100), 2, 1, Timestamp(0));
        m.record_firing(1, Micros(300), 2, 3, Timestamp(2_000_000));
        let s = m.actor(1);
        assert_eq!(s.invocations, 2);
        assert_eq!(s.mean_cost(), 200.0);
        assert_eq!(s.last_cost, Micros(300));
        assert_eq!(s.selectivity(), 1.0);
        assert_eq!(s.input_rate(), 2.0, "4 events over 2 seconds");
        assert_eq!(s.output_rate(), 2.0);
        assert_eq!(s.cost_per_event(), 100.0);
    }

    #[test]
    fn defaults_before_any_firing() {
        let s = ActorStats::default();
        assert_eq!(s.mean_cost(), 0.0);
        assert_eq!(s.selectivity(), 1.0);
        assert_eq!(s.input_rate(), 0.0);
        assert_eq!(s.cost_per_event(), 0.0);
    }

    #[test]
    fn global_selectivity_multiplies_down_paths_and_sums_over_branches() {
        let wf = two_path_workflow();
        let mut m = StatsModule::new(&wf);
        m.record_firing(1, Micros(10), 4, 2, Timestamp(1)); // a: sel 0.5
        m.record_firing(2, Micros(10), 4, 4, Timestamp(1)); // b: sel 1.0
        m.record_firing(3, Micros(10), 2, 0, Timestamp(1)); // k1 (output)
        m.record_firing(4, Micros(10), 4, 0, Timestamp(1)); // k2 (output)
        // Terminal actors deliver results: global selectivity 1.
        assert_eq!(m.global_selectivity(3), 1.0);
        // a: own 0.5 × k1(1) = 0.5.
        assert_eq!(m.global_selectivity(1), 0.5);
        // src: own sel 1.0 (no input yet) × (a + b) = 0.5 + 1.0.
        assert_eq!(m.global_selectivity(0), 1.5);
    }

    #[test]
    fn global_cost_adds_weighted_downstream_work() {
        let wf = two_path_workflow();
        let mut m = StatsModule::new(&wf);
        m.record_firing(1, Micros(100), 10, 5, Timestamp(1)); // a: 10/ev, sel .5
        m.record_firing(2, Micros(200), 10, 10, Timestamp(1)); // b: 20/ev, sel 1
        m.record_firing(3, Micros(50), 10, 0, Timestamp(1)); // k1: 5/ev
        m.record_firing(4, Micros(100), 10, 0, Timestamp(1)); // k2: 10/ev
        // a: 10 + 0.5·5 = 12.5; b: 20 + 1·10 = 30.
        assert_eq!(m.global_cost(1), 12.5);
        assert_eq!(m.global_cost(2), 30.0);
        // src consumed nothing: cost_per_event falls back to mean cost 0,
        // sel 1 → 0 + 1·(12.5 + 30) = 42.5.
        assert_eq!(m.global_cost(0), 42.5);
    }

    #[test]
    fn render_produces_a_row_per_actor() {
        let wf = two_path_workflow();
        let mut m = StatsModule::new(&wf);
        m.record_firing(1, Micros(100), 2, 1, Timestamp(0));
        let names: Vec<String> = ["src", "a", "b", "k1", "k2"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let text = m.render(&names);
        assert_eq!(text.lines().count(), 6, "header + 5 actors");
        assert!(text.contains("src"));
        assert!(text.contains("gCost"));
    }

    #[test]
    fn rate_priority_prefers_cheap_productive_actors() {
        let wf = two_path_workflow();
        let mut m = StatsModule::new(&wf);
        m.record_firing(1, Micros(100), 10, 10, Timestamp(1)); // cheap, productive
        m.record_firing(2, Micros(1_000), 10, 10, Timestamp(1)); // expensive
        m.record_firing(3, Micros(10), 10, 10, Timestamp(1));
        m.record_firing(4, Micros(10), 10, 10, Timestamp(1));
        assert!(m.rate_priority(1) > m.rate_priority(2));
        // Unfired actors are infinitely attractive (probe-first).
        let fresh = StatsModule::new(&wf);
        assert_eq!(fresh.rate_priority(0), f64::INFINITY);
    }
}
