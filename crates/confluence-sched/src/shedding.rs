//! Load shedding under overload (paper §4.3 discussion; refs [26, 27]).
//!
//! The paper notes that integrated stream sources can be tuned to shed
//! load under overload. [`LoadShedder`] is a self-managing shedding
//! operator placed right after a source: it watches the age of passing
//! events (how long after their external arrival they reach it — a direct
//! congestion signal in both real and virtual time) and adapts a drop
//! ratio to keep that age near a target. Dropping is deterministic
//! (error-diffusion on the ratio), so runs are reproducible.

use std::sync::Arc;

use parking_lot::Mutex;

use confluence_core::actor::{Actor, FireContext, IoSignature};
use confluence_core::error::Result;
use confluence_core::time::Micros;

/// Counters exposed by a shedder.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShedStats {
    /// Events passed through.
    pub passed: u64,
    /// Events dropped.
    pub dropped: u64,
    /// Current drop ratio in `[0, max_ratio]`.
    pub drop_ratio: f64,
    /// Exponentially-weighted mean event age (µs).
    pub mean_age: f64,
}

impl ShedStats {
    /// Fraction of input events dropped so far.
    pub fn drop_fraction(&self) -> f64 {
        let total = self.passed + self.dropped;
        if total == 0 {
            0.0
        } else {
            self.dropped as f64 / total as f64
        }
    }
}

/// Handle for inspecting a [`LoadShedder`]'s behaviour after a run.
#[derive(Clone, Default)]
pub struct ShedderHandle {
    stats: Arc<Mutex<ShedStats>>,
}

impl ShedderHandle {
    /// Snapshot of the counters.
    pub fn stats(&self) -> ShedStats {
        *self.stats.lock()
    }
}

/// Adaptive random-drop load shedding operator.
pub struct LoadShedder {
    target_age: Micros,
    /// Ratio adjustment per observation batch.
    step: f64,
    /// Upper bound on the drop ratio.
    max_ratio: f64,
    ratio: f64,
    accumulator: f64,
    ewma_age: f64,
    stats: Arc<Mutex<ShedStats>>,
}

impl LoadShedder {
    /// A shedder keeping event age near `target_age`. Returns the actor
    /// and its inspection handle.
    pub fn new(target_age: Micros) -> (Self, ShedderHandle) {
        let handle = ShedderHandle::default();
        (
            LoadShedder {
                target_age,
                step: 0.05,
                max_ratio: 0.9,
                ratio: 0.0,
                accumulator: 0.0,
                ewma_age: 0.0,
                stats: handle.stats.clone(),
            },
            handle,
        )
    }

    /// Override the adjustment step.
    pub fn with_step(mut self, step: f64) -> Self {
        self.step = step.clamp(0.001, 0.5);
        self
    }

    /// Override the maximum drop ratio.
    pub fn with_max_ratio(mut self, r: f64) -> Self {
        self.max_ratio = r.clamp(0.0, 1.0);
        self
    }
}

impl Actor for LoadShedder {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        let now = ctx.now();
        let mut passed = 0u64;
        let mut dropped = 0u64;
        while let Some(w) = ctx.get(0) {
            for event in &w.events {
                let age = event.latency_at(now).as_micros() as f64;
                // EWMA congestion estimate.
                self.ewma_age = if self.ewma_age == 0.0 {
                    age
                } else {
                    0.9 * self.ewma_age + 0.1 * age
                };
                if self.ewma_age > self.target_age.as_micros() as f64 {
                    self.ratio = (self.ratio + self.step).min(self.max_ratio);
                } else {
                    self.ratio = (self.ratio - self.step).max(0.0);
                }
                // Error-diffusion drop decision: deterministic, hits the
                // ratio exactly in the long run.
                self.accumulator += self.ratio;
                if self.accumulator >= 1.0 {
                    self.accumulator -= 1.0;
                    dropped += 1;
                } else {
                    passed += 1;
                    ctx.emit(0, event.token.clone());
                }
            }
        }
        let mut s = self.stats.lock();
        s.passed += passed;
        s.dropped += dropped;
        s.drop_ratio = self.ratio;
        s.mean_age = self.ewma_age;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_core::testing::MockContext;
    use confluence_core::time::Timestamp;
    use confluence_core::token::Token;

    #[test]
    fn no_shedding_when_fresh() {
        let (mut shed, handle) = LoadShedder::new(Micros(1_000));
        let mut ctx = MockContext::new(1).at(Timestamp(100));
        for i in 0..50 {
            ctx.push_token(0, Token::Int(i), Timestamp(95)); // age 5µs
        }
        shed.fire(&mut ctx).unwrap();
        let s = handle.stats();
        assert_eq!(s.dropped, 0);
        assert_eq!(s.passed, 50);
        assert_eq!(s.drop_fraction(), 0.0);
        assert_eq!(ctx.emitted_on(0).len(), 50);
    }

    #[test]
    fn sheds_under_congestion() {
        let (mut shed, handle) = LoadShedder::new(Micros(10));
        let mut ctx = MockContext::new(1).at(Timestamp(1_000_000));
        for i in 0..200 {
            // Events are a full second old: massive congestion.
            ctx.push_token(0, Token::Int(i), Timestamp(0));
        }
        shed.fire(&mut ctx).unwrap();
        let s = handle.stats();
        assert!(s.dropped > 50, "should shed heavily: {s:?}");
        assert!(s.passed > 0, "max ratio keeps some flow: {s:?}");
        assert!(s.drop_ratio > 0.5);
        assert!(s.mean_age > 100_000.0);
    }

    #[test]
    fn recovers_when_congestion_clears() {
        let (shed, handle) = LoadShedder::new(Micros(100));
        let mut shed = shed.with_step(0.2);
        let mut ctx = MockContext::new(1).at(Timestamp(10_000));
        for i in 0..20 {
            ctx.push_token(0, Token::Int(i), Timestamp(0)); // old
        }
        shed.fire(&mut ctx).unwrap();
        assert!(handle.stats().drop_ratio > 0.0);
        // Fresh events arrive; the EWMA decays and the ratio relaxes.
        let mut ctx2 = MockContext::new(1).at(Timestamp(20_000));
        for i in 0..200 {
            ctx2.push_token(0, Token::Int(i), Timestamp(19_999));
        }
        shed.fire(&mut ctx2).unwrap();
        assert_eq!(handle.stats().drop_ratio, 0.0, "ratio fully relaxed");
    }
}
