//! # confluence-sched — STAFiLOS
//!
//! **STreAm FLOw Scheduling for Continuous Workflows**: an integrated
//! scheduling framework inside CONFLuEnCE (paper §3). Instead of
//! implementing one scheduling policy per director, STAFiLOS provides a
//! generic, pluggable **Scheduled CWF director** ([`scwf::ScwfDirector`])
//! enacted by any policy implementing the abstract scheduler interface
//! ([`framework::Scheduler`]), backed by a runtime statistics module
//! ([`stats::StatsModule`]) exposing per-actor cost, input/output rates,
//! and selectivity.
//!
//! Shipped policies (paper §3.1): Quantum Priority Based
//! ([`policies::QbsScheduler`]), Round-Robin ([`policies::RrScheduler`]),
//! Rate-Based / Highest Rate ([`policies::RbScheduler`]) — plus a FIFO
//! baseline and the simulated thread-based PNCWF baseline
//! ([`policies::OsThreadScheduler`]).
//!
//! The director runs in real time or in **virtual time** (a discrete-event
//! mode where firing costs come from a [`cost::CostModel`]), which is how
//! the Linear Road experiments of the paper are regenerated in
//! milliseconds instead of 600-second wall-clock runs.
//!
//! Extensions beyond the paper's evaluation (its §5 future work):
//! multi-workflow two-level scheduling ([`multi`]) and load shedding
//! ([`shedding`]).

pub mod cost;
pub mod framework;
pub mod multi;
pub mod policies;
pub mod scwf;
pub mod shedding;
pub mod stats;

pub use cost::{CostModel, FreeCost, TableCostModel, ThreadOverheadCost};
pub use framework::{ActorInfo, ActorState, Scheduler};
pub use policies::{EdfScheduler, FifoScheduler, OsThreadScheduler, QbsScheduler, RbScheduler, RrScheduler};
pub use scwf::ScwfDirector;
pub use stats::{ActorStats, StatsModule};
