//! Multiple-workflow execution: two-level scheduling (paper §5, Figure 9).
//!
//! At the low level each workflow's director enacts its own local
//! scheduling policy; at the top level a global scheduler manages the
//! workflow instances according to a CPU-capacity distribution policy,
//! allocating execution slices to each instance's `Manager` and switching
//! between them with `initialize()` / `pause()` / `resume()` / `stop()` —
//! the same control surface the paper's ConnectionController exposes for
//! externally managing running workflows.
//!
//! All instances share one virtual clock: a slice consumed by workflow A
//! delays workflow B, exactly like contending workflows on one node.

use std::sync::Arc;

use confluence_core::director::RunReport;
use confluence_core::error::{Error, Result};
use confluence_core::graph::Workflow;
use confluence_core::telemetry::Telemetry;
use confluence_core::time::{Micros, Timestamp, VirtualClock};

use crate::cost::CostModel;
use crate::framework::Scheduler;
use crate::scwf::{Progress, ScwfCore};

/// Lifecycle state of one managed workflow instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerState {
    /// Eligible for execution slices.
    Running,
    /// Temporarily not scheduled (resume() to continue).
    Paused,
    /// Permanently stopped by the controller.
    Stopped,
    /// Ran to natural completion.
    Finished,
}

/// One workflow instance under global management (the paper's `Manager`).
pub struct WorkflowManager {
    /// Instance name.
    pub name: String,
    workflow: Workflow,
    core: ScwfCore,
    state: ManagerState,
    /// CPU share weight (slices are proportional to this).
    pub share: u32,
    pending_wake: Option<Timestamp>,
}

impl WorkflowManager {
    /// Current lifecycle state.
    pub fn state(&self) -> ManagerState {
        self.state
    }

    /// The instance's cumulative run report.
    pub fn report(&self) -> &RunReport {
        self.core.report()
    }

    /// Local policy name.
    pub fn policy_name(&self) -> &'static str {
        self.core.policy_name()
    }

    /// Attach telemetry to this instance: firing and routing hooks flow to
    /// the observer; a stop request finishes the instance at the next
    /// firing boundary. Attach before the first slice so the instance's
    /// fabric is built observed.
    pub fn instrument(&mut self, telemetry: Telemetry) {
        self.core.set_telemetry(telemetry);
    }
}

/// The global scheduler plus connection controller: runs several workflow
/// instances on one shared (virtual) CPU with weighted slices.
pub struct MultiWorkflowExecutor {
    clock: Arc<VirtualClock>,
    managers: Vec<WorkflowManager>,
    /// Base execution slice granted per unit of share, in microseconds of
    /// virtual cost.
    pub base_slice: Micros,
}

impl MultiWorkflowExecutor {
    /// An executor with the given base slice.
    pub fn new(base_slice: Micros) -> Self {
        MultiWorkflowExecutor {
            clock: Arc::new(VirtualClock::new()),
            managers: Vec::new(),
            base_slice: Micros(base_slice.as_micros().max(1)),
        }
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> Arc<VirtualClock> {
        self.clock.clone()
    }

    /// Register a workflow with its local policy, cost model, and CPU
    /// share. Returns its instance index.
    pub fn add_workflow(
        &mut self,
        name: impl Into<String>,
        workflow: Workflow,
        policy: Box<dyn Scheduler>,
        cost: Box<dyn CostModel>,
        share: u32,
    ) -> usize {
        let core = ScwfCore::new_virtual(policy, cost, self.clock.clone());
        self.managers.push(WorkflowManager {
            name: name.into(),
            workflow,
            core,
            state: ManagerState::Running,
            share: share.max(1),
            pending_wake: None,
        });
        self.managers.len() - 1
    }

    /// Access a managed instance.
    pub fn manager(&self, idx: usize) -> &WorkflowManager {
        &self.managers[idx]
    }

    /// Number of managed instances.
    pub fn len(&self) -> usize {
        self.managers.len()
    }

    /// Whether no instances are registered.
    pub fn is_empty(&self) -> bool {
        self.managers.is_empty()
    }

    /// Pause an instance (it keeps its queues; no slices until resume).
    pub fn pause(&mut self, idx: usize) -> Result<()> {
        let m = self
            .managers
            .get_mut(idx)
            .ok_or_else(|| Error::Scheduler(format!("no workflow instance {idx}")))?;
        if m.state == ManagerState::Running {
            m.state = ManagerState::Paused;
        }
        Ok(())
    }

    /// Resume a paused instance.
    pub fn resume(&mut self, idx: usize) -> Result<()> {
        let m = self
            .managers
            .get_mut(idx)
            .ok_or_else(|| Error::Scheduler(format!("no workflow instance {idx}")))?;
        if m.state == ManagerState::Paused {
            m.state = ManagerState::Running;
        }
        Ok(())
    }

    /// Attach telemetry to an instance (call before `run()` so the
    /// instance's fabric is built observed).
    pub fn instrument(&mut self, idx: usize, telemetry: Telemetry) -> Result<()> {
        let m = self
            .managers
            .get_mut(idx)
            .ok_or_else(|| Error::Scheduler(format!("no workflow instance {idx}")))?;
        m.instrument(telemetry);
        Ok(())
    }

    /// Permanently stop an instance.
    pub fn stop(&mut self, idx: usize) -> Result<()> {
        let m = self
            .managers
            .get_mut(idx)
            .ok_or_else(|| Error::Scheduler(format!("no workflow instance {idx}")))?;
        if m.state != ManagerState::Finished {
            m.state = ManagerState::Stopped;
        }
        Ok(())
    }

    /// Run every instance to completion (or stop/pause), interleaving
    /// weighted slices. Paused instances are skipped but keep the clock
    /// moving for the others.
    pub fn run(&mut self) -> Result<()> {
        loop {
            let mut any_progress = false;
            for m in self.managers.iter_mut() {
                if m.state != ManagerState::Running {
                    continue;
                }
                let budget = Micros(self.base_slice.as_micros() * m.share as u64);
                match m.core.run_for(&mut m.workflow, Some(budget))? {
                    Progress::BudgetExhausted => {
                        m.pending_wake = None;
                        any_progress = true;
                    }
                    Progress::IdleUntil(t) => {
                        m.pending_wake = Some(t);
                    }
                    Progress::Finished => {
                        m.state = ManagerState::Finished;
                        m.pending_wake = None;
                        any_progress = true;
                    }
                }
            }
            let runnable = self
                .managers
                .iter()
                .filter(|m| m.state == ManagerState::Running)
                .count();
            if runnable == 0 {
                return Ok(());
            }
            if any_progress {
                continue;
            }
            // Every running instance is idle: advance the shared clock to
            // the earliest wake and notify everyone.
            let wake = self
                .managers
                .iter()
                .filter(|m| m.state == ManagerState::Running)
                .filter_map(|m| m.pending_wake)
                .min();
            match wake {
                Some(t) => {
                    for m in self.managers.iter_mut() {
                        if m.state == ManagerState::Running {
                            m.core.advance_to(&m.workflow, t);
                        }
                    }
                }
                None => {
                    // Idle instances with no wake time cannot exist
                    // (run_for closes and finishes them), but guard anyway.
                    return Ok(());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::TableCostModel;
    use crate::policies::FifoScheduler;
    use confluence_core::actors::{LatencyProbe, TimedSource};
    use confluence_core::graph::WorkflowBuilder;
    use confluence_core::token::Token;

    fn stream_workflow(n: u64, period: u64) -> (Workflow, LatencyProbe) {
        let probe = LatencyProbe::new();
        let schedule: Vec<(Timestamp, Token)> = (0..n)
            .map(|i| (Timestamp(i * period), Token::Int(i as i64)))
            .collect();
        let mut b = WorkflowBuilder::new("stream");
        let s = b.add_actor("src", TimedSource::new(schedule));
        let k = b.add_actor("probe", probe.actor());
        b.connect(s, "out", k, "in").unwrap();
        (b.build().unwrap(), probe)
    }

    fn fifo() -> Box<dyn Scheduler> {
        Box::new(FifoScheduler::new(5))
    }

    fn cost(per_firing: u64) -> Box<dyn CostModel> {
        Box::new(TableCostModel::uniform(Micros(per_firing), Micros::ZERO))
    }

    #[test]
    fn two_workflows_complete_on_shared_clock() {
        let mut exec = MultiWorkflowExecutor::new(Micros(500));
        let (wf1, p1) = stream_workflow(20, 1_000);
        let (wf2, p2) = stream_workflow(10, 2_000);
        let a = exec.add_workflow("one", wf1, fifo(), cost(100), 1);
        let b = exec.add_workflow("two", wf2, fifo(), cost(100), 1);
        exec.run().unwrap();
        assert_eq!(exec.manager(a).state(), ManagerState::Finished);
        assert_eq!(exec.manager(b).state(), ManagerState::Finished);
        assert_eq!(p1.len(), 20);
        assert_eq!(p2.len(), 10);
        assert_eq!(exec.len(), 2);
        assert!(!exec.is_empty());
    }

    #[test]
    fn shares_skew_latency_under_contention() {
        // Both workflows are overloaded; the high-share instance should
        // see materially lower response times.
        let mut exec = MultiWorkflowExecutor::new(Micros(1_000));
        let (wf1, p1) = stream_workflow(200, 100);
        let (wf2, p2) = stream_workflow(200, 100);
        exec.add_workflow("favored", wf1, fifo(), cost(150), 8);
        exec.add_workflow("starved", wf2, fifo(), cost(150), 1);
        exec.run().unwrap();
        let m1 = p1.mean_latency().unwrap();
        let m2 = p2.mean_latency().unwrap();
        assert!(
            m1 < m2,
            "favored ({m1}) should beat starved ({m2}) under contention"
        );
    }

    #[test]
    fn pause_and_resume_control() {
        let mut exec = MultiWorkflowExecutor::new(Micros(500));
        let (wf1, p1) = stream_workflow(5, 100);
        let idx = exec.add_workflow("w", wf1, fifo(), cost(10), 1);
        exec.pause(idx).unwrap();
        // A paused-only population terminates immediately (no runnable).
        exec.run().unwrap();
        assert_eq!(p1.len(), 0);
        assert_eq!(exec.manager(idx).state(), ManagerState::Paused);
        exec.resume(idx).unwrap();
        exec.run().unwrap();
        assert_eq!(p1.len(), 5);
        assert_eq!(exec.manager(idx).state(), ManagerState::Finished);
    }

    #[test]
    fn stop_is_permanent() {
        let mut exec = MultiWorkflowExecutor::new(Micros(500));
        let (wf1, p1) = stream_workflow(5, 100);
        let idx = exec.add_workflow("w", wf1, fifo(), cost(10), 1);
        exec.stop(idx).unwrap();
        exec.resume(idx).unwrap(); // no-op on stopped
        exec.run().unwrap();
        assert_eq!(exec.manager(idx).state(), ManagerState::Stopped);
        assert_eq!(p1.len(), 0);
        assert!(exec.pause(99).is_err());
    }
}
