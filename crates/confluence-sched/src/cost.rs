//! Cost models: what one actor firing costs in virtual time.
//!
//! The paper measures wall-clock costs on its own hardware; running the
//! engine in virtual time requires an explicit model of per-firing cost.
//! The model is also the calibration point for the simulated thread-based
//! baseline (see [`ThreadOverheadCost`] and DESIGN.md's substitution
//! notes).

use std::collections::HashMap;

use confluence_core::time::Micros;

/// Computes the virtual-time cost of one actor firing.
pub trait CostModel: Send {
    /// Cost of a firing of `actor` (by index and name) that consumed
    /// `consumed` events and produced `produced` events.
    fn firing_cost(&self, actor: usize, name: &str, consumed: u64, produced: u64) -> Micros;
}

/// Per-actor fixed + per-event linear cost, with a default for unlisted
/// actors.
#[derive(Debug, Clone)]
pub struct TableCostModel {
    default_fixed: Micros,
    default_per_event: Micros,
    per_actor: HashMap<String, (Micros, Micros)>,
}

impl TableCostModel {
    /// A model where every firing costs `fixed + per_event × consumed`.
    pub fn uniform(fixed: Micros, per_event: Micros) -> Self {
        TableCostModel {
            default_fixed: fixed,
            default_per_event: per_event,
            per_actor: HashMap::new(),
        }
    }

    /// Override the cost of one actor (matched by name).
    pub fn with_actor(mut self, name: &str, fixed: Micros, per_event: Micros) -> Self {
        self.per_actor.insert(name.to_string(), (fixed, per_event));
        self
    }
}

impl CostModel for TableCostModel {
    fn firing_cost(&self, _actor: usize, name: &str, consumed: u64, produced: u64) -> Micros {
        let (fixed, per_event) = self
            .per_actor
            .get(name)
            .copied()
            .unwrap_or((self.default_fixed, self.default_per_event));
        // Work scales with whichever side of the firing moved more events
        // (sources consume nothing but pay for what they emit).
        fixed + per_event * consumed.max(produced).max(1)
    }
}

/// Wraps a base model with the overheads of thread-per-actor execution:
/// a context switch per firing and synchronization cost per event, divided
/// by an effective-parallelism factor (how much real speedup the thread
/// pool extracts despite contention).
///
/// This is the virtual-time model of the PNCWF baseline. The paper's
/// measurement — the thread-based director thrashing at ~120 updates/s
/// where the cooperative STAFiLOS schedulers sustain ~160 — reflects
/// per-event thread wake/switch overhead outweighing the parallelism of
/// the 8-core machine; the defaults here are calibrated to that ratio and
/// recorded in EXPERIMENTS.md.
pub struct ThreadOverheadCost<M> {
    inner: M,
    /// Cost of one context switch (charged per firing).
    pub context_switch: Micros,
    /// Synchronization/wake cost charged per event moved.
    pub sync_per_event: Micros,
    /// Effective parallel speedup (≥ 1.0).
    pub effective_parallelism: f64,
}

impl<M: CostModel> ThreadOverheadCost<M> {
    /// Wrap `inner` with the given overhead parameters.
    pub fn new(inner: M, context_switch: Micros, sync_per_event: Micros, effective_parallelism: f64) -> Self {
        assert!(effective_parallelism >= 1.0);
        ThreadOverheadCost {
            inner,
            context_switch,
            sync_per_event,
            effective_parallelism,
        }
    }
}

impl<M: CostModel> CostModel for ThreadOverheadCost<M> {
    fn firing_cost(&self, actor: usize, name: &str, consumed: u64, produced: u64) -> Micros {
        let base = self.inner.firing_cost(actor, name, consumed, produced);
        let overhead = self.context_switch
            + self.sync_per_event * (consumed + produced).max(1);
        let total = base.as_micros() + overhead.as_micros();
        Micros((total as f64 / self.effective_parallelism).round() as u64)
    }
}

/// Zero-cost model (pure functional runs where time is irrelevant).
#[derive(Debug, Clone, Copy, Default)]
pub struct FreeCost;

impl CostModel for FreeCost {
    fn firing_cost(&self, _actor: usize, _name: &str, _consumed: u64, _produced: u64) -> Micros {
        Micros::ZERO
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_model_applies_defaults_and_overrides() {
        let m = TableCostModel::uniform(Micros(10), Micros(2)).with_actor("big", Micros(100), Micros(5));
        assert_eq!(m.firing_cost(0, "anything", 3, 0), Micros(16));
        assert_eq!(m.firing_cost(0, "big", 2, 0), Micros(110));
        // consumed=0 still costs one event's worth (source firings).
        assert_eq!(m.firing_cost(0, "anything", 0, 1), Micros(12));
    }

    #[test]
    fn thread_overhead_inflates_and_scales() {
        let base = TableCostModel::uniform(Micros(100), Micros::ZERO);
        let m = ThreadOverheadCost::new(base, Micros(20), Micros(10), 2.0);
        // (100 + 20 + 10·2)/2 = 70
        assert_eq!(m.firing_cost(0, "x", 1, 1), Micros(70));
    }

    #[test]
    #[should_panic]
    fn parallelism_below_one_rejected() {
        let _ = ThreadOverheadCost::new(FreeCost, Micros(1), Micros(1), 0.5);
    }

    #[test]
    fn free_cost_is_zero() {
        assert_eq!(FreeCost.firing_cost(0, "x", 10, 10), Micros::ZERO);
    }
}
