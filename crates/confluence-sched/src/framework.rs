//! The Abstract Scheduler interface of STAFiLOS.
//!
//! The Scheduled CWF director is schedule-independent: a scheduling policy
//! implementing [`Scheduler`] is plugged into it. The framework maintains,
//! per actor, a queue of ready windows (held by the director), a state
//! (ACTIVE / WAITING / INACTIVE, Table 2), and two priority queues — one
//! for active actors and one for waiting actors — ordered by a comparator
//! the policy provides. The director signals the scheduler through the
//! hooks below at each stage of its iteration cycle (Figure 3).

use confluence_core::time::{Micros, Timestamp};

use crate::stats::StatsModule;

/// Actor scheduling states (paper §3, Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActorState {
    /// Can be considered for firing in the current iteration.
    Active,
    /// Waiting for something within the scheduler (quantum refresh, next
    /// period) before it can run again.
    Waiting,
    /// Has no events to process.
    Inactive,
}

/// Static description of one actor, given to the policy at initialization.
#[derive(Debug, Clone)]
pub struct ActorInfo {
    /// Index within the workflow.
    pub index: usize,
    /// Actor name (for diagnostics).
    pub name: String,
    /// Designer-assigned priority (lower = more urgent; QBS uses this).
    pub priority: i32,
    /// Whether the actor is a source. Source actors are treated
    /// independently of the rest to regulate the inflow of data.
    pub is_source: bool,
}

/// A pluggable scheduling policy for the Scheduled CWF director.
///
/// ### Contract with the director
///
/// * [`Scheduler::on_enqueue`] — one window became ready for `actor`
///   (called once per window, with the window's earliest wave-origin
///   timestamp so deadline-aware policies can order by staleness).
/// * [`Scheduler::on_source_ready`] — `actor` (a source) has/hasn't a due
///   arrival; called whenever readiness changes.
/// * [`Scheduler::next_actor`] — pick the next actor to fire; `None` ends
///   the director iteration (the director then calls
///   [`Scheduler::end_iteration`] for maintenance such as
///   re-quantification, and restarts or advances time).
/// * [`Scheduler::after_fire`] — the chosen actor fired with the given
///   cost; `remaining` is the number of windows still queued for it.
///   Internal actors consume exactly one window per firing.
pub trait Scheduler: Send {
    /// Policy name (for reports).
    fn name(&self) -> &'static str;

    /// Reset and learn the actor population.
    fn init(&mut self, actors: &[ActorInfo]);

    /// A window became ready for `actor`; `origin` is the earliest
    /// external-event timestamp among the window's events.
    fn on_enqueue(&mut self, actor: usize, origin: Timestamp);

    /// Source readiness changed (a timetable arrival became due, or the
    /// source exhausted).
    fn on_source_ready(&mut self, actor: usize, ready: bool);

    /// Choose the next actor to fire.
    fn next_actor(&mut self) -> Option<usize>;

    /// Record the outcome of the firing of `actor`.
    fn after_fire(&mut self, actor: usize, cost: Micros, remaining: usize, stats: &StatsModule);

    /// End-of-iteration maintenance (re-quantification, period flip,
    /// priority recomputation). Returns `true` if the maintenance made any
    /// actor runnable again — the director then starts a new iteration
    /// immediately instead of advancing time.
    fn end_iteration(&mut self, stats: &StatsModule) -> bool;

    /// Current state of an actor (Table 2), for inspection and tests.
    fn state(&self, actor: usize) -> ActorState;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn actor_state_is_comparable() {
        assert_eq!(ActorState::Active, ActorState::Active);
        assert_ne!(ActorState::Active, ActorState::Waiting);
    }

    #[test]
    fn actor_info_is_cloneable() {
        let i = ActorInfo {
            index: 1,
            name: "x".into(),
            priority: 5,
            is_source: true,
        };
        let j = i.clone();
        assert_eq!(j.index, 1);
        assert_eq!(j.name, "x");
        assert_eq!(j.priority, 5);
        assert!(j.is_source);
    }
}
