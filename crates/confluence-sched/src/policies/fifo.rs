//! FIFO policy: fire actors in window-arrival order.
//!
//! Not one of the paper's case studies, but the natural baseline inside
//! the framework: windows are served globally in the order they formed.
//! Source actors are scheduled every `source_interval` internal firings
//! (and whenever nothing else is runnable).

use std::collections::VecDeque;

use confluence_core::time::{Micros, Timestamp};

use crate::framework::{ActorInfo, ActorState, Scheduler};
use crate::stats::StatsModule;

/// Global window-arrival-order scheduling.
pub struct FifoScheduler {
    source_interval: u64,
    order: VecDeque<usize>,
    ready: Vec<usize>,
    is_source: Vec<bool>,
    source_ready: Vec<bool>,
    sources: Vec<usize>,
    source_rr: usize,
    internal_since_source: u64,
}

impl FifoScheduler {
    /// FIFO with a source firing every `source_interval` internal firings.
    pub fn new(source_interval: u64) -> Self {
        FifoScheduler {
            source_interval: source_interval.max(1),
            order: VecDeque::new(),
            ready: Vec::new(),
            is_source: Vec::new(),
            source_ready: Vec::new(),
            sources: Vec::new(),
            source_rr: 0,
            internal_since_source: 0,
        }
    }

    fn pick_source(&mut self) -> Option<usize> {
        if self.sources.is_empty() {
            return None;
        }
        for k in 0..self.sources.len() {
            let s = self.sources[(self.source_rr + k) % self.sources.len()];
            if self.source_ready[s] {
                self.source_rr = (self.source_rr + k + 1) % self.sources.len();
                return Some(s);
            }
        }
        None
    }
}

impl Scheduler for FifoScheduler {
    fn name(&self) -> &'static str {
        "FIFO"
    }

    fn init(&mut self, actors: &[ActorInfo]) {
        let n = actors.len();
        self.order.clear();
        self.ready = vec![0; n];
        self.is_source = vec![false; n];
        self.source_ready = vec![false; n];
        self.sources.clear();
        self.source_rr = 0;
        self.internal_since_source = 0;
        for a in actors {
            self.is_source[a.index] = a.is_source;
            if a.is_source {
                self.sources.push(a.index);
            }
        }
    }

    fn on_enqueue(&mut self, actor: usize, _origin: Timestamp) {
        self.ready[actor] += 1;
        self.order.push_back(actor);
    }

    fn on_source_ready(&mut self, actor: usize, ready: bool) {
        self.source_ready[actor] = ready;
    }

    fn next_actor(&mut self) -> Option<usize> {
        if self.internal_since_source >= self.source_interval {
            if let Some(s) = self.pick_source() {
                self.internal_since_source = 0;
                return Some(s);
            }
        }
        if let Some(a) = self.order.pop_front() {
            self.internal_since_source += 1;
            return Some(a);
        }
        self.pick_source()
    }

    fn after_fire(&mut self, actor: usize, _cost: Micros, remaining: usize, _stats: &StatsModule) {
        if !self.is_source[actor] {
            self.ready[actor] = remaining;
        }
    }

    fn end_iteration(&mut self, _stats: &StatsModule) -> bool {
        false
    }

    fn state(&self, actor: usize) -> ActorState {
        if self.is_source[actor] {
            if self.source_ready[actor] {
                ActorState::Active
            } else {
                ActorState::Waiting
            }
        } else if self.ready[actor] > 0 {
            ActorState::Active
        } else {
            ActorState::Inactive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infos() -> Vec<ActorInfo> {
        vec![
            ActorInfo {
                index: 0,
                name: "src".into(),
                priority: 20,
                is_source: true,
            },
            ActorInfo {
                index: 1,
                name: "a".into(),
                priority: 20,
                is_source: false,
            },
            ActorInfo {
                index: 2,
                name: "b".into(),
                priority: 20,
                is_source: false,
            },
        ]
    }

    fn stats() -> StatsModule {
        // A stats module over an empty workflow is fine for policy tests.
        use confluence_core::graph::WorkflowBuilder;
        StatsModule::new(&WorkflowBuilder::new("empty").build().unwrap())
    }

    #[test]
    fn serves_windows_in_arrival_order() {
        let mut f = FifoScheduler::new(100);
        f.init(&infos());
        f.on_enqueue(2, Timestamp::ZERO);
        f.on_enqueue(1, Timestamp::ZERO);
        f.on_enqueue(2, Timestamp::ZERO);
        assert_eq!(f.next_actor(), Some(2));
        assert_eq!(f.next_actor(), Some(1));
        assert_eq!(f.next_actor(), Some(2));
        assert_eq!(f.next_actor(), None);
    }

    #[test]
    fn interleaves_sources_by_interval() {
        let mut f = FifoScheduler::new(2);
        f.init(&infos());
        f.on_source_ready(0, true);
        for _ in 0..4 {
            f.on_enqueue(1, Timestamp::ZERO);
        }
        assert_eq!(f.next_actor(), Some(1));
        assert_eq!(f.next_actor(), Some(1));
        // Two internal firings done: the source gets its slot.
        assert_eq!(f.next_actor(), Some(0));
        assert_eq!(f.next_actor(), Some(1));
    }

    #[test]
    fn falls_back_to_source_when_idle() {
        let mut f = FifoScheduler::new(100);
        f.init(&infos());
        assert_eq!(f.next_actor(), None);
        f.on_source_ready(0, true);
        assert_eq!(f.next_actor(), Some(0));
    }

    #[test]
    fn states_reflect_readiness() {
        let mut f = FifoScheduler::new(5);
        f.init(&infos());
        let s = stats();
        assert_eq!(f.state(1), ActorState::Inactive);
        f.on_enqueue(1, Timestamp::ZERO);
        assert_eq!(f.state(1), ActorState::Active);
        let a = f.next_actor().unwrap();
        f.after_fire(a, Micros(10), 0, &s);
        assert_eq!(f.state(1), ActorState::Inactive);
        assert_eq!(f.state(0), ActorState::Waiting);
        f.on_source_ready(0, true);
        assert_eq!(f.state(0), ActorState::Active);
        assert!(!f.end_iteration(&s));
    }
}
