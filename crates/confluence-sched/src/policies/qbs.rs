//! The Quantum Priority Based Scheduler (QBS), paper §3.1.1.
//!
//! Largely based on the Linux O(1) process scheduler. The workflow
//! designer assigns actor priorities; the scheduler converts them into
//! quanta of execution allowance (Equation 1):
//!
//! ```text
//! q = (40 − p) ·  b   for p ≥ 20
//! q = (40 − p) · 4b   for p < 20
//! ```
//!
//! where `p` is the priority (lower = more urgent), `b` the basic quantum,
//! and `q` the allowance in microseconds granted at each re-quantification.
//!
//! Actors with ready events split into *active* (positive quantum) and
//! *waiting* (non-positive quantum). Active actors are served in ascending
//! priority order, FIFO within a class. When every actor with events has
//! exhausted its quantum, the scheduler re-quantifies and swaps the
//! queues; a deeply negative quantum can survive one re-quantification
//! (the actor stays waiting). An actor that drains its queue turns
//! inactive, its quantum preserved until new events arrive.
//!
//! Source actors are scheduled independently, at regular intervals (one
//! source firing every `source_interval` internal invocations), to
//! regulate the inflow of data.

use std::collections::{BTreeMap, VecDeque};

use confluence_core::time::{Micros, Timestamp};

use crate::framework::{ActorInfo, ActorState, Scheduler};
use crate::stats::StatsModule;

/// Quantum Priority Based scheduling.
pub struct QbsScheduler {
    /// Basic quantum `b` in microseconds.
    pub basic_quantum: u64,
    /// One source firing per this many internal firings.
    pub source_interval: u64,
    priority: Vec<i32>,
    quantum: Vec<i64>,
    ready: Vec<usize>,
    state: Vec<ActorState>,
    is_source: Vec<bool>,
    /// Active internal actors: priority class → FIFO queue.
    active: BTreeMap<i32, VecDeque<usize>>,
    in_active: Vec<bool>,
    sources: Vec<usize>,
    source_ready: Vec<bool>,
    source_rr: usize,
    internal_since_source: u64,
}

impl QbsScheduler {
    /// QBS with basic quantum `b` (µs) and the given source interval.
    pub fn new(basic_quantum: u64, source_interval: u64) -> Self {
        QbsScheduler {
            // A zero basic quantum would make re-quantification diverge.
            basic_quantum: basic_quantum.max(1),
            source_interval: source_interval.max(1),
            priority: Vec::new(),
            quantum: Vec::new(),
            ready: Vec::new(),
            state: Vec::new(),
            is_source: Vec::new(),
            active: BTreeMap::new(),
            in_active: Vec::new(),
            sources: Vec::new(),
            source_ready: Vec::new(),
            source_rr: 0,
            internal_since_source: 0,
        }
    }

    /// Equation 1: the quantum allotted to priority `p` per
    /// re-quantification (delegates to the shared estimator core so the
    /// wall-clock Quantum pool policy uses the identical allotments).
    pub fn allotment(&self, p: i32) -> i64 {
        confluence_core::telemetry::estimator::qbs_allotment(p, self.basic_quantum)
    }

    fn activate(&mut self, a: usize) {
        if !self.in_active[a] {
            self.active.entry(self.priority[a]).or_default().push_back(a);
            self.in_active[a] = true;
        }
        self.state[a] = ActorState::Active;
    }

    fn pop_active(&mut self) -> Option<usize> {
        let (&p, _) = self.active.iter().find(|(_, q)| !q.is_empty())?;
        let q = self.active.get_mut(&p).expect("found above");
        let a = q.pop_front().expect("non-empty");
        if q.is_empty() {
            self.active.remove(&p);
        }
        self.in_active[a] = false;
        Some(a)
    }

    fn pick_source(&mut self) -> Option<usize> {
        for k in 0..self.sources.len() {
            let s = self.sources[(self.source_rr + k) % self.sources.len()];
            if self.source_ready[s] {
                self.source_rr = (self.source_rr + k + 1) % self.sources.len();
                return Some(s);
            }
        }
        None
    }

    /// Current quantum of an actor (µs, may be negative). For tests and
    /// diagnostics.
    pub fn quantum_of(&self, a: usize) -> i64 {
        self.quantum[a]
    }
}

impl Scheduler for QbsScheduler {
    fn name(&self) -> &'static str {
        "QBS"
    }

    fn init(&mut self, actors: &[ActorInfo]) {
        let n = actors.len();
        self.priority = vec![20; n];
        self.quantum = vec![0; n];
        self.ready = vec![0; n];
        self.state = vec![ActorState::Inactive; n];
        self.is_source = vec![false; n];
        self.active.clear();
        self.in_active = vec![false; n];
        self.sources.clear();
        self.source_ready = vec![false; n];
        self.source_rr = 0;
        self.internal_since_source = 0;
        for a in actors {
            self.priority[a.index] = a.priority;
            self.quantum[a.index] = self.allotment(a.priority);
            self.is_source[a.index] = a.is_source;
            if a.is_source {
                self.sources.push(a.index);
            }
        }
    }

    fn on_enqueue(&mut self, actor: usize, _origin: Timestamp) {
        self.ready[actor] += 1;
        if self.is_source[actor] {
            return;
        }
        if self.state[actor] == ActorState::Inactive {
            // Quantum was preserved while inactive; re-evaluate the state.
            if self.quantum[actor] > 0 {
                self.activate(actor);
            } else {
                self.state[actor] = ActorState::Waiting;
            }
        }
    }

    fn on_source_ready(&mut self, actor: usize, ready: bool) {
        self.source_ready[actor] = ready;
    }

    fn next_actor(&mut self) -> Option<usize> {
        if self.internal_since_source >= self.source_interval {
            if let Some(s) = self.pick_source() {
                self.internal_since_source = 0;
                return Some(s);
            }
        }
        if let Some(a) = self.pop_active() {
            self.internal_since_source += 1;
            return Some(a);
        }
        self.pick_source()
    }

    fn after_fire(&mut self, actor: usize, cost: Micros, remaining: usize, _stats: &StatsModule) {
        if self.is_source[actor] {
            return;
        }
        self.ready[actor] = remaining;
        self.quantum[actor] -= cost.as_micros() as i64;
        if remaining == 0 {
            self.state[actor] = ActorState::Inactive;
        } else if self.quantum[actor] > 0 {
            self.activate(actor);
        } else {
            self.state[actor] = ActorState::Waiting;
        }
    }

    fn end_iteration(&mut self, _stats: &StatsModule) -> bool {
        // Re-quantification (per the Linux-style accounting the paper
        // bases QBS on): every actor holding events receives a fresh
        // allotment *on top of* its remaining quantum. An actor that the
        // priority order kept from running therefore accumulates
        // allowance across re-quantification periods — which is exactly
        // the paper's explanation for small basic quanta hurting: low-
        // priority actors accumulate quantum (and events) and, when their
        // turn comes, starve the high-priority output actors.
        let waiting_with_events: Vec<usize> = (0..self.state.len())
            .filter(|&a| self.state[a] == ActorState::Waiting && self.ready[a] > 0)
            .collect();
        // Event-less waiters fall back to inactive (quantum preserved).
        for a in 0..self.state.len() {
            if self.state[a] == ActorState::Waiting && self.ready[a] == 0 {
                self.quantum[a] += self.allotment(self.priority[a]);
                self.state[a] = ActorState::Inactive;
            }
        }
        if waiting_with_events.is_empty() {
            return false;
        }
        let mut any_active = false;
        // Deeply negative quanta may need several rounds; each round
        // strictly increases the quantum, so this terminates.
        while !any_active {
            for &a in &waiting_with_events {
                if self.state[a] != ActorState::Waiting {
                    continue;
                }
                self.quantum[a] += self.allotment(self.priority[a]);
                if self.quantum[a] > 0 {
                    self.activate(a);
                    any_active = true;
                }
            }
        }
        // Accumulation for actors already runnable (they keep their spot
        // in the active queue).
        for a in 0..self.state.len() {
            if self.state[a] == ActorState::Active
                && !self.is_source[a]
                && self.ready[a] > 0
                && !waiting_with_events.contains(&a)
            {
                self.quantum[a] += self.allotment(self.priority[a]);
            }
        }
        true
    }

    fn state(&self, actor: usize) -> ActorState {
        if self.is_source[actor] {
            if self.source_ready[actor] {
                ActorState::Active
            } else {
                ActorState::Waiting
            }
        } else {
            self.state[actor]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infos() -> Vec<ActorInfo> {
        vec![
            ActorInfo {
                index: 0,
                name: "src".into(),
                priority: 20,
                is_source: true,
            },
            ActorInfo {
                index: 1,
                name: "urgent".into(),
                priority: 5,
                is_source: false,
            },
            ActorInfo {
                index: 2,
                name: "normal".into(),
                priority: 10,
                is_source: false,
            },
            ActorInfo {
                index: 3,
                name: "lazy".into(),
                priority: 25,
                is_source: false,
            },
        ]
    }

    fn stats() -> StatsModule {
        use confluence_core::graph::WorkflowBuilder;
        StatsModule::new(&WorkflowBuilder::new("empty").build().unwrap())
    }

    #[test]
    fn equation_1_allotments() {
        let q = QbsScheduler::new(500, 5);
        // p ≥ 20 → (40−p)·b; p < 20 → (40−p)·4b.
        assert_eq!(q.allotment(20), 20 * 500);
        assert_eq!(q.allotment(25), 15 * 500);
        assert_eq!(q.allotment(19), 21 * 4 * 500);
        assert_eq!(q.allotment(5), 35 * 4 * 500);
    }

    #[test]
    fn serves_by_ascending_priority_fifo_within_class() {
        let mut q = QbsScheduler::new(500, 100);
        q.init(&infos());
        q.on_enqueue(3, Timestamp::ZERO);
        q.on_enqueue(2, Timestamp::ZERO);
        q.on_enqueue(1, Timestamp::ZERO);
        q.on_enqueue(2, Timestamp::ZERO);
        let s = stats();
        // urgent (5) first, then normal (10), then lazy (25).
        assert_eq!(q.next_actor(), Some(1));
        q.after_fire(1, Micros(1), 0, &s);
        assert_eq!(q.next_actor(), Some(2));
        q.after_fire(2, Micros(1), 1, &s);
        assert_eq!(q.next_actor(), Some(2), "still has events + quantum");
        q.after_fire(2, Micros(1), 0, &s);
        assert_eq!(q.next_actor(), Some(3));
        q.after_fire(3, Micros(1), 0, &s);
        assert_eq!(q.next_actor(), None);
    }

    #[test]
    fn quantum_exhaustion_moves_to_waiting_and_requantifies() {
        let mut q = QbsScheduler::new(10, 100); // tiny quanta
        q.init(&infos());
        let s = stats();
        q.on_enqueue(3, Timestamp::ZERO); // lazy: allotment (40-25)·10 = 150µs
        assert_eq!(q.state(3), ActorState::Active);
        let a = q.next_actor().unwrap();
        // Burn far more than the quantum.
        q.after_fire(a, Micros(1_000), 3, &s);
        assert_eq!(q.state(3), ActorState::Waiting);
        assert_eq!(q.next_actor(), None, "nothing active");
        // Re-quantification may need several allotments (deep negative),
        // but must eventually reactivate.
        assert!(q.end_iteration(&s));
        assert_eq!(q.state(3), ActorState::Active);
        assert!(q.quantum_of(3) > 0);
    }

    #[test]
    fn drained_actor_goes_inactive_preserving_quantum() {
        let mut q = QbsScheduler::new(500, 100);
        q.init(&infos());
        let s = stats();
        q.on_enqueue(2, Timestamp::ZERO);
        let a = q.next_actor().unwrap();
        q.after_fire(a, Micros(100), 0, &s);
        assert_eq!(q.state(2), ActorState::Inactive);
        let quantum = q.quantum_of(2);
        q.on_enqueue(2, Timestamp::ZERO);
        assert_eq!(q.state(2), ActorState::Active);
        assert_eq!(q.quantum_of(2), quantum, "quantum preserved while inactive");
    }

    #[test]
    fn inactive_with_spent_quantum_becomes_waiting_on_new_events() {
        let mut q = QbsScheduler::new(10, 100);
        q.init(&infos());
        let s = stats();
        q.on_enqueue(3, Timestamp::ZERO);
        let a = q.next_actor().unwrap();
        q.after_fire(a, Micros(10_000), 0, &s); // drained AND overspent
        assert_eq!(q.state(3), ActorState::Inactive);
        q.on_enqueue(3, Timestamp::ZERO);
        assert_eq!(
            q.state(3),
            ActorState::Waiting,
            "Table 2: events + negative quantum → WAITING"
        );
    }

    #[test]
    fn sources_fire_at_regular_intervals() {
        let mut q = QbsScheduler::new(500, 2);
        q.init(&infos());
        q.on_source_ready(0, true);
        for _ in 0..6 {
            q.on_enqueue(2, Timestamp::ZERO);
        }
        let s = stats();
        let mut picks = Vec::new();
        for _ in 0..6 {
            let a = q.next_actor().unwrap();
            picks.push(a);
            q.after_fire(a, Micros(1), 3, &s);
        }
        // Pattern: two internals, then the source, repeating.
        assert_eq!(picks[2], 0);
        assert_eq!(picks[5], 0);
        assert!(picks[0] != 0 && picks[1] != 0);
    }

    #[test]
    fn low_priority_actors_are_starvation_free() {
        // A continuously-busy high-priority actor cannot starve a
        // low-priority one forever: the high class exhausts its quantum,
        // re-quantification runs, and the low class gets CPU.
        let mut q = QbsScheduler::new(100, 1_000_000);
        q.init(&infos());
        let s = stats();
        q.on_enqueue(1, Timestamp::ZERO); // urgent (p=5), always has work
        q.on_enqueue(3, Timestamp::ZERO); // lazy (p=25), one window queued
        let mut low_ran = false;
        for _ in 0..10_000 {
            match q.next_actor() {
                Some(1) => {
                    // The urgent actor burns CPU and always refills.
                    q.after_fire(1, Micros(1_000), 1, &s);
                }
                Some(3) => {
                    low_ran = true;
                    break;
                }
                Some(_) => unreachable!("no other actor has work"),
                None => {
                    // Iteration boundary: re-quantify and continue.
                    q.end_iteration(&s);
                }
            }
        }
        assert!(low_ran, "the low-priority actor must eventually run");
    }

    /// Fig. 7 regression: at a large basic quantum (b = 5000µs) the
    /// Equation-1 allotments dwarf per-window firing costs, so a busy
    /// high-priority actor never exhausts its quantum mid-burst and QBS
    /// degenerates to *strict priority* — the urgent class monopolizes
    /// the scheduler until its burst drains. A small quantum forces the
    /// exhaustion/re-quantification interleaving that is the whole point
    /// of QBS. This pins the divergence between the b=5000 and small-b
    /// curves of Figure 7.
    #[test]
    fn fig7_large_quantum_degenerates_to_strict_priority() {
        // Serve a 100-window urgent burst (~1ms per window) next to one
        // queued low-priority window; count urgent fires before the
        // low-priority actor first gets the CPU.
        let urgent_fires_before_lazy = |basic_quantum: u64| -> usize {
            let mut q = QbsScheduler::new(basic_quantum, 1_000_000);
            q.init(&infos());
            let s = stats();
            q.on_enqueue(1, Timestamp::ZERO); // urgent, p=5
            q.on_enqueue(3, Timestamp::ZERO); // lazy, p=25
            let mut remaining = 100usize;
            let mut fires = 0usize;
            loop {
                match q.next_actor() {
                    Some(1) => {
                        remaining -= 1;
                        fires += 1;
                        q.after_fire(1, Micros(1_000), remaining, &s);
                    }
                    Some(3) => return fires,
                    Some(_) => unreachable!("no other actor has work"),
                    None => assert!(q.end_iteration(&s), "work remains"),
                }
            }
        };
        // b=5000µs: allotment (40−5)·4·5000 = 700ms ≫ the 100ms burst,
        // so the quantum never runs out and the lazy actor waits for the
        // entire burst — strict priority.
        assert_eq!(urgent_fires_before_lazy(5_000), 100);
        // b=100µs: allotment 14ms = 14 fires, then exhaustion hands the
        // CPU to the lazy actor mid-burst.
        assert_eq!(urgent_fires_before_lazy(100), 14);
    }

    #[test]
    fn idle_scheduler_still_offers_ready_source() {
        let mut q = QbsScheduler::new(500, 5);
        q.init(&infos());
        assert_eq!(q.next_actor(), None);
        q.on_source_ready(0, true);
        assert_eq!(q.next_actor(), Some(0));
        assert_eq!(q.state(0), ActorState::Active);
        q.on_source_ready(0, false);
        assert_eq!(q.state(0), ActorState::Waiting);
    }
}
