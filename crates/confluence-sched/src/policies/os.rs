//! The simulated thread-based (PNCWF) baseline.
//!
//! The real PNCWF director (one OS thread per actor, scheduling delegated
//! to the operating system) lives in `confluence-core` and runs on the
//! wall clock. For virtual-time experiments we model it inside the SCWF
//! executor: the OS wakes whichever thread's data arrived first, so window
//! service order is global arrival order (FIFO), sources run freely
//! (interval 1 — their threads are woken as soon as data is available),
//! and every firing pays thread overheads via
//! [`crate::cost::ThreadOverheadCost`]. The overhead parameters are the
//! calibration knob documented in EXPERIMENTS.md.

use confluence_core::time::{Micros, Timestamp};

use crate::framework::{ActorInfo, ActorState, Scheduler};
use crate::stats::StatsModule;

use super::fifo::FifoScheduler;

/// Arrival-order scheduling that models OS thread wakeup order.
pub struct OsThreadScheduler {
    inner: FifoScheduler,
}

impl OsThreadScheduler {
    /// The thread-based baseline model.
    pub fn new() -> Self {
        OsThreadScheduler {
            // Sources' threads are never held back by the engine: they are
            // serviced between every internal firing.
            inner: FifoScheduler::new(1),
        }
    }
}

impl Default for OsThreadScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for OsThreadScheduler {
    fn name(&self) -> &'static str {
        "PNCWF"
    }

    fn init(&mut self, actors: &[ActorInfo]) {
        self.inner.init(actors);
    }

    fn on_enqueue(&mut self, actor: usize, origin: Timestamp) {
        self.inner.on_enqueue(actor, origin);
    }

    fn on_source_ready(&mut self, actor: usize, ready: bool) {
        self.inner.on_source_ready(actor, ready);
    }

    fn next_actor(&mut self) -> Option<usize> {
        self.inner.next_actor()
    }

    fn after_fire(&mut self, actor: usize, cost: Micros, remaining: usize, stats: &StatsModule) {
        self.inner.after_fire(actor, cost, remaining, stats);
    }

    fn end_iteration(&mut self, stats: &StatsModule) -> bool {
        self.inner.end_iteration(stats)
    }

    fn state(&self, actor: usize) -> ActorState {
        self.inner.state(actor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn behaves_like_eager_fifo() {
        let mut s = OsThreadScheduler::new();
        assert_eq!(s.name(), "PNCWF");
        s.init(&[
            ActorInfo {
                index: 0,
                name: "src".into(),
                priority: 20,
                is_source: true,
            },
            ActorInfo {
                index: 1,
                name: "a".into(),
                priority: 20,
                is_source: false,
            },
        ]);
        s.on_source_ready(0, true);
        s.on_enqueue(1, Timestamp::ZERO);
        s.on_enqueue(1, Timestamp::ZERO);
        // Interval 1: internal, source, internal, ...
        assert_eq!(s.next_actor(), Some(1));
        assert_eq!(s.next_actor(), Some(0));
        assert_eq!(s.next_actor(), Some(1));
        assert_eq!(s.state(1), ActorState::Active);
    }
}
