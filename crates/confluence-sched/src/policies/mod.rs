//! Concrete scheduling policies for the STAFiLOS framework.
//!
//! Case studies from the paper (§3.1): the Quantum Priority Based
//! scheduler ([`qbs::QbsScheduler`]), the traditional fair Round-Robin
//! scheduler ([`rr::RrScheduler`]), and the Rate-Based scheduler from the
//! continuous-query literature ([`rb::RbScheduler`]) — plus a plain FIFO
//! policy ([`fifo::FifoScheduler`]), the simulated thread-based baseline
//! ([`os::OsThreadScheduler`]), and an earliest-deadline-first extension
//! ([`edf::EdfScheduler`]).

pub mod edf;
pub mod fifo;
pub mod os;
pub mod qbs;
pub mod rb;
pub mod rr;

pub use edf::EdfScheduler;
pub use fifo::FifoScheduler;
pub use os::OsThreadScheduler;
pub use qbs::QbsScheduler;
pub use rb::RbScheduler;
pub use rr::RrScheduler;
