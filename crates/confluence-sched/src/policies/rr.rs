//! The Round-Robin scheduler (RR), paper §3.1.2.
//!
//! At each scheduling period every active actor receives a time slice
//! (quantum) and actors process their available events in round-robin
//! order. An actor that drains its events turns inactive and gives up its
//! remaining slice; one that exhausts its slice waits for the next period.
//! New events arriving within the period are processed if the actor still
//! has slice left; an inactive actor receiving events gets a fresh slice
//! and joins the end of the round-robin queue.
//!
//! Sources are scheduled at regular intervals like in QBS.

use std::collections::VecDeque;

use confluence_core::time::{Micros, Timestamp};

use crate::framework::{ActorInfo, ActorState, Scheduler};
use crate::stats::StatsModule;

/// Fair round-robin with per-period time slices.
pub struct RrScheduler {
    /// The time slice granted per period, in microseconds.
    pub slice: u64,
    /// One source firing per this many internal firings.
    pub source_interval: u64,
    remaining: Vec<i64>,
    ready: Vec<usize>,
    state: Vec<ActorState>,
    is_source: Vec<bool>,
    queue: VecDeque<usize>,
    in_queue: Vec<bool>,
    sources: Vec<usize>,
    source_ready: Vec<bool>,
    source_rr: usize,
    internal_since_source: u64,
}

impl RrScheduler {
    /// RR with the given slice (µs) and source interval.
    pub fn new(slice: u64, source_interval: u64) -> Self {
        RrScheduler {
            slice: slice.max(1),
            source_interval: source_interval.max(1),
            remaining: Vec::new(),
            ready: Vec::new(),
            state: Vec::new(),
            is_source: Vec::new(),
            queue: VecDeque::new(),
            in_queue: Vec::new(),
            sources: Vec::new(),
            source_ready: Vec::new(),
            source_rr: 0,
            internal_since_source: 0,
        }
    }

    fn enqueue_rr(&mut self, a: usize) {
        if !self.in_queue[a] {
            self.queue.push_back(a);
            self.in_queue[a] = true;
        }
        self.state[a] = ActorState::Active;
    }

    fn pick_source(&mut self) -> Option<usize> {
        for k in 0..self.sources.len() {
            let s = self.sources[(self.source_rr + k) % self.sources.len()];
            if self.source_ready[s] {
                self.source_rr = (self.source_rr + k + 1) % self.sources.len();
                return Some(s);
            }
        }
        None
    }

    /// Remaining slice of an actor (µs; may be negative). For tests.
    pub fn slice_of(&self, a: usize) -> i64 {
        self.remaining[a]
    }
}

impl Scheduler for RrScheduler {
    fn name(&self) -> &'static str {
        "RR"
    }

    fn init(&mut self, actors: &[ActorInfo]) {
        let n = actors.len();
        self.remaining = vec![self.slice as i64; n];
        self.ready = vec![0; n];
        self.state = vec![ActorState::Inactive; n];
        self.is_source = vec![false; n];
        self.queue.clear();
        self.in_queue = vec![false; n];
        self.sources.clear();
        self.source_ready = vec![false; n];
        self.source_rr = 0;
        self.internal_since_source = 0;
        for a in actors {
            self.is_source[a.index] = a.is_source;
            if a.is_source {
                self.sources.push(a.index);
            }
        }
    }

    fn on_enqueue(&mut self, actor: usize, _origin: Timestamp) {
        self.ready[actor] += 1;
        if self.is_source[actor] {
            return;
        }
        if self.state[actor] == ActorState::Inactive {
            // Fresh slice; joins the end of the round-robin queue.
            self.remaining[actor] = self.slice as i64;
            self.enqueue_rr(actor);
        }
    }

    fn on_source_ready(&mut self, actor: usize, ready: bool) {
        self.source_ready[actor] = ready;
    }

    fn next_actor(&mut self) -> Option<usize> {
        if self.internal_since_source >= self.source_interval {
            if let Some(s) = self.pick_source() {
                self.internal_since_source = 0;
                return Some(s);
            }
        }
        while let Some(a) = self.queue.pop_front() {
            self.in_queue[a] = false;
            if self.state[a] == ActorState::Active && self.ready[a] > 0 {
                self.internal_since_source += 1;
                return Some(a);
            }
        }
        self.pick_source()
    }

    fn after_fire(&mut self, actor: usize, cost: Micros, remaining: usize, _stats: &StatsModule) {
        if self.is_source[actor] {
            return;
        }
        self.ready[actor] = remaining;
        self.remaining[actor] -= cost.as_micros() as i64;
        if remaining == 0 {
            // Drained: inactive, gives up the rest of the slice.
            self.state[actor] = ActorState::Inactive;
        } else if self.remaining[actor] > 0 {
            self.enqueue_rr(actor);
        } else {
            self.state[actor] = ActorState::Waiting;
        }
    }

    fn end_iteration(&mut self, _stats: &StatsModule) -> bool {
        // New period: every waiting actor gets a fresh slice.
        let mut any = false;
        for a in 0..self.state.len() {
            if self.state[a] == ActorState::Waiting {
                self.remaining[a] = self.slice as i64;
                if self.ready[a] > 0 {
                    self.enqueue_rr(a);
                    any = true;
                } else {
                    self.state[a] = ActorState::Inactive;
                }
            }
        }
        any
    }

    fn state(&self, actor: usize) -> ActorState {
        if self.is_source[actor] {
            if self.source_ready[actor] {
                ActorState::Active
            } else {
                ActorState::Waiting
            }
        } else {
            self.state[actor]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infos() -> Vec<ActorInfo> {
        vec![
            ActorInfo {
                index: 0,
                name: "src".into(),
                priority: 20,
                is_source: true,
            },
            ActorInfo {
                index: 1,
                name: "a".into(),
                priority: 20,
                is_source: false,
            },
            ActorInfo {
                index: 2,
                name: "b".into(),
                priority: 20,
                is_source: false,
            },
        ]
    }

    fn stats() -> StatsModule {
        use confluence_core::graph::WorkflowBuilder;
        StatsModule::new(&WorkflowBuilder::new("empty").build().unwrap())
    }

    #[test]
    fn round_robin_alternation() {
        let mut r = RrScheduler::new(1_000, 100);
        r.init(&infos());
        let s = stats();
        r.on_enqueue(1, Timestamp::ZERO);
        r.on_enqueue(1, Timestamp::ZERO);
        r.on_enqueue(2, Timestamp::ZERO);
        r.on_enqueue(2, Timestamp::ZERO);
        let mut picks = Vec::new();
        for _ in 0..4 {
            let a = r.next_actor().unwrap();
            picks.push(a);
            let left = r.ready[a] - 1;
            r.after_fire(a, Micros(10), left, &s);
        }
        assert_eq!(picks, vec![1, 2, 1, 2], "alternates between the two");
    }

    #[test]
    fn slice_exhaustion_waits_for_next_period() {
        let mut r = RrScheduler::new(100, 100);
        r.init(&infos());
        let s = stats();
        r.on_enqueue(1, Timestamp::ZERO);
        r.on_enqueue(1, Timestamp::ZERO);
        let a = r.next_actor().unwrap();
        r.after_fire(a, Micros(150), 1, &s); // overshoots the slice
        assert_eq!(r.state(1), ActorState::Waiting);
        assert_eq!(r.next_actor(), None);
        assert!(r.end_iteration(&s), "new period reactivates");
        assert_eq!(r.state(1), ActorState::Active);
        assert_eq!(r.slice_of(1), 100, "fresh slice");
    }

    #[test]
    fn drained_actor_gives_up_slice() {
        let mut r = RrScheduler::new(1_000, 100);
        r.init(&infos());
        let s = stats();
        r.on_enqueue(1, Timestamp::ZERO);
        let a = r.next_actor().unwrap();
        r.after_fire(a, Micros(10), 0, &s);
        assert_eq!(r.state(1), ActorState::Inactive);
        // New events: fresh slice, back of the queue.
        r.on_enqueue(1, Timestamp::ZERO);
        assert_eq!(r.state(1), ActorState::Active);
        assert_eq!(r.slice_of(1), 1_000);
    }

    #[test]
    fn sources_by_interval_and_fallback() {
        let mut r = RrScheduler::new(1_000, 1);
        r.init(&infos());
        r.on_source_ready(0, true);
        let s = stats();
        r.on_enqueue(1, Timestamp::ZERO);
        let first = r.next_actor().unwrap();
        assert_eq!(first, 1);
        r.after_fire(first, Micros(1), 1, &s);
        // Interval of 1: the source gets the next slot.
        assert_eq!(r.next_actor(), Some(0));
        r.after_fire(0, Micros(1), 0, &s);
        assert_eq!(r.next_actor(), Some(1));
        r.after_fire(1, Micros(1), 0, &s);
        assert_eq!(r.next_actor(), Some(0), "idle → ready source");
    }

    #[test]
    fn end_iteration_without_waiters_reports_false() {
        let mut r = RrScheduler::new(1_000, 5);
        r.init(&infos());
        assert!(!r.end_iteration(&stats()));
    }
}
