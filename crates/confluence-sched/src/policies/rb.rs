//! The Rate-Based scheduler (RB), paper §3.1.3.
//!
//! Based on the Highest Rate scheduler of Sharaf et al. \[28\] — the best
//! performing CQ scheduler with respect to average response time. Actor
//! priorities are dynamic: `Pr(A) = S_A / C_A`, the actor's *global*
//! selectivity over its *global* average cost (aggregated over downstream
//! paths when the actor feeds several branches).
//!
//! Event processing is divided into periods: events enqueued during the
//! current period are buffered and only join their actors' queues when the
//! period ends. A period ends when the active queue empties — every actor
//! has no more (current-period) events and every source has executed once.
//! Dynamic priorities are re-evaluated at each period boundary.
//!
//! Notably, RB does **not** privilege source actors (they compete on
//! priority like everything else) — which is why the paper's evaluation
//! finds its response times the worst among the STAFiLOS schedulers:
//! tokens wait longer to enter the workflow.

use confluence_core::time::{Micros, Timestamp};

use crate::framework::{ActorInfo, ActorState, Scheduler};
use crate::stats::StatsModule;

/// Highest-Rate scheduling with period-buffered admission.
pub struct RbScheduler {
    /// Events deliverable in the current period, per actor.
    current: Vec<usize>,
    /// Events buffered for the next period, per actor.
    next: Vec<usize>,
    priorities: Vec<f64>,
    fired_this_period: Vec<bool>,
    is_source: Vec<bool>,
    source_ready: Vec<bool>,
    sources: Vec<usize>,
}

impl RbScheduler {
    /// A fresh RB scheduler.
    pub fn new() -> Self {
        RbScheduler {
            current: Vec::new(),
            next: Vec::new(),
            priorities: Vec::new(),
            fired_this_period: Vec::new(),
            is_source: Vec::new(),
            source_ready: Vec::new(),
            sources: Vec::new(),
        }
    }

    fn recompute_priorities(&mut self, stats: &StatsModule) {
        for a in 0..self.priorities.len() {
            self.priorities[a] = stats.rate_priority(a);
        }
    }

    /// The current dynamic priority of an actor (for tests/diagnostics).
    pub fn priority_of(&self, a: usize) -> f64 {
        self.priorities[a]
    }
}

impl Default for RbScheduler {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for RbScheduler {
    fn name(&self) -> &'static str {
        "RB"
    }

    fn init(&mut self, actors: &[ActorInfo]) {
        let n = actors.len();
        self.current = vec![0; n];
        self.next = vec![0; n];
        self.priorities = vec![f64::INFINITY; n];
        self.fired_this_period = vec![false; n];
        self.is_source = vec![false; n];
        self.source_ready = vec![false; n];
        self.sources.clear();
        for a in actors {
            self.is_source[a.index] = a.is_source;
            if a.is_source {
                self.sources.push(a.index);
            }
        }
    }

    fn on_enqueue(&mut self, actor: usize, _origin: Timestamp) {
        // Newly enqueued events are kept in a buffer and join the actor's
        // queue once the current period is over.
        self.next[actor] += 1;
    }

    fn on_source_ready(&mut self, actor: usize, ready: bool) {
        self.source_ready[actor] = ready;
    }

    fn next_actor(&mut self) -> Option<usize> {
        // Candidates: internal actors with current-period events, plus
        // sources that have not fired this period (and have a due arrival).
        let mut best: Option<(f64, usize)> = None;
        for a in 0..self.current.len() {
            let runnable = if self.is_source[a] {
                !self.fired_this_period[a] && self.source_ready[a]
            } else {
                self.current[a] > 0
            };
            if !runnable {
                continue;
            }
            let p = self.priorities[a];
            match best {
                Some((bp, _)) if bp >= p => {}
                _ => best = Some((p, a)),
            }
        }
        best.map(|(_, a)| a)
    }

    fn after_fire(&mut self, actor: usize, _cost: Micros, _remaining: usize, _stats: &StatsModule) {
        if self.is_source[actor] {
            self.fired_this_period[actor] = true;
        } else if self.current[actor] > 0 {
            self.current[actor] -= 1;
        }
    }

    fn end_iteration(&mut self, stats: &StatsModule) -> bool {
        // Period boundary: admit the buffered events, reset source marks,
        // re-evaluate dynamic priorities.
        let mut admitted = false;
        for a in 0..self.current.len() {
            if self.next[a] > 0 {
                self.current[a] += self.next[a];
                self.next[a] = 0;
                admitted = true;
            }
        }
        for f in &mut self.fired_this_period {
            *f = false;
        }
        self.recompute_priorities(stats);
        admitted
    }

    fn state(&self, actor: usize) -> ActorState {
        if self.is_source[actor] {
            // Table 2: ACTIVE while not yet fired this period, WAITING
            // after; sources never go inactive.
            if self.fired_this_period[actor] {
                ActorState::Waiting
            } else {
                ActorState::Active
            }
        } else if self.current[actor] > 0 {
            ActorState::Active
        } else if self.next[actor] > 0 {
            ActorState::Waiting
        } else {
            ActorState::Inactive
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use confluence_core::time::Timestamp;

    fn infos() -> Vec<ActorInfo> {
        vec![
            ActorInfo {
                index: 0,
                name: "src".into(),
                priority: 20,
                is_source: true,
            },
            ActorInfo {
                index: 1,
                name: "cheap".into(),
                priority: 20,
                is_source: false,
            },
            ActorInfo {
                index: 2,
                name: "pricey".into(),
                priority: 20,
                is_source: false,
            },
        ]
    }

    /// Stats over a src→{cheap,pricey} line so global metrics exist.
    fn seeded_stats() -> StatsModule {
        use confluence_core::actor::{Actor, FireContext, IoSignature};
        use confluence_core::actors::VecSource;
        use confluence_core::error::Result;
        use confluence_core::graph::WorkflowBuilder;
        struct Sink;
        impl Actor for Sink {
            fn signature(&self) -> IoSignature {
                IoSignature::sink("in")
            }
            fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
                Ok(())
            }
        }
        let mut b = WorkflowBuilder::new("s");
        let s = b.add_actor("src", VecSource::new(vec![]));
        let c = b.add_actor("cheap", Sink);
        let p = b.add_actor("pricey", Sink);
        b.connect(s, "out", c, "in").unwrap();
        b.connect(s, "out", p, "in").unwrap();
        let wf = b.build().unwrap();
        let mut stats = StatsModule::new(&wf);
        stats.record_firing(1, Micros(10), 10, 10, Timestamp(1));
        stats.record_firing(2, Micros(1_000), 10, 10, Timestamp(1));
        stats
    }

    #[test]
    fn events_buffer_until_period_end() {
        let mut rb = RbScheduler::new();
        rb.init(&infos());
        rb.on_enqueue(1, Timestamp::ZERO);
        assert_eq!(rb.state(1), ActorState::Waiting, "buffered for next period");
        assert_eq!(rb.next_actor(), None);
        assert!(rb.end_iteration(&seeded_stats()));
        assert_eq!(rb.state(1), ActorState::Active);
        assert_eq!(rb.next_actor(), Some(1));
    }

    #[test]
    fn highest_rate_wins() {
        let stats = seeded_stats();
        let mut rb = RbScheduler::new();
        rb.init(&infos());
        rb.on_enqueue(1, Timestamp::ZERO);
        rb.on_enqueue(2, Timestamp::ZERO);
        rb.end_iteration(&stats);
        // cheap has far higher Pr = S/C.
        assert!(rb.priority_of(1) > rb.priority_of(2));
        assert_eq!(rb.next_actor(), Some(1));
        rb.after_fire(1, Micros(10), 0, &stats);
        assert_eq!(rb.next_actor(), Some(2));
        rb.after_fire(2, Micros(10), 0, &stats);
        assert_eq!(rb.next_actor(), None);
    }

    #[test]
    fn sources_fire_once_per_period() {
        let stats = seeded_stats();
        let mut rb = RbScheduler::new();
        rb.init(&infos());
        rb.on_source_ready(0, true);
        assert_eq!(rb.state(0), ActorState::Active);
        assert_eq!(rb.next_actor(), Some(0));
        rb.after_fire(0, Micros(1), 0, &stats);
        assert_eq!(rb.state(0), ActorState::Waiting);
        assert_eq!(rb.next_actor(), None, "source already fired this period");
        rb.end_iteration(&stats);
        assert_eq!(rb.state(0), ActorState::Active);
        assert_eq!(rb.next_actor(), Some(0));
    }

    #[test]
    fn unready_source_not_selected() {
        let mut rb = RbScheduler::new();
        rb.init(&infos());
        rb.on_source_ready(0, false);
        assert_eq!(rb.next_actor(), None);
    }

    #[test]
    fn mid_period_arrivals_wait() {
        let stats = seeded_stats();
        let mut rb = RbScheduler::new();
        rb.init(&infos());
        rb.on_enqueue(1, Timestamp::ZERO);
        rb.end_iteration(&stats);
        // During this period another event arrives for actor 1.
        rb.on_enqueue(1, Timestamp::ZERO);
        assert_eq!(rb.next_actor(), Some(1));
        rb.after_fire(1, Micros(1), 1, &stats);
        // Current-period count is spent; the new arrival is buffered.
        assert_eq!(rb.next_actor(), None);
        assert_eq!(rb.state(1), ActorState::Waiting);
        assert!(rb.end_iteration(&stats));
        assert_eq!(rb.next_actor(), Some(1));
    }
}
