//! An earliest-deadline-first policy (extension).
//!
//! The paper's introduction lists QoS requirements "from specifying a
//! delay target, to keeping a fraction of results below a response time
//! target, to minimizing tardiness" — but none of its three case-study
//! policies orders work by how close each event is to violating its
//! target. `EdfScheduler` does: every queued window carries a deadline
//! (its earliest wave-origin plus the delay target), and the actor whose
//! head window's deadline is earliest fires next. With a uniform target
//! this is oldest-origin-first, the greedy minimizer of maximum tardiness.
//!
//! Sources are scheduled at regular intervals like QBS/RR — a fresh
//! external event's deadline is far away by construction, so without the
//! interval the policy would starve the inflow exactly like RB does.

use std::collections::VecDeque;

use confluence_core::time::{Micros, Timestamp};

use crate::framework::{ActorInfo, ActorState, Scheduler};
use crate::stats::StatsModule;

/// Earliest-deadline-first over window origins.
pub struct EdfScheduler {
    /// The delay target added to each window's origin to form its deadline.
    pub target: Micros,
    /// One source firing per this many internal firings.
    pub source_interval: u64,
    /// Per-actor queues of origin timestamps, in delivery (FIFO) order —
    /// the director always hands the actor its oldest window first, so the
    /// head of this queue is the actor's most urgent deadline.
    origins: Vec<VecDeque<Timestamp>>,
    is_source: Vec<bool>,
    source_ready: Vec<bool>,
    sources: Vec<usize>,
    source_rr: usize,
    internal_since_source: u64,
}

impl EdfScheduler {
    /// EDF with the given delay target and source interval.
    pub fn new(target: Micros, source_interval: u64) -> Self {
        EdfScheduler {
            target,
            source_interval: source_interval.max(1),
            origins: Vec::new(),
            is_source: Vec::new(),
            source_ready: Vec::new(),
            sources: Vec::new(),
            source_rr: 0,
            internal_since_source: 0,
        }
    }

    fn pick_source(&mut self) -> Option<usize> {
        for k in 0..self.sources.len() {
            let s = self.sources[(self.source_rr + k) % self.sources.len()];
            if self.source_ready[s] {
                self.source_rr = (self.source_rr + k + 1) % self.sources.len();
                return Some(s);
            }
        }
        None
    }
}

impl Scheduler for EdfScheduler {
    fn name(&self) -> &'static str {
        "EDF"
    }

    fn init(&mut self, actors: &[ActorInfo]) {
        let n = actors.len();
        self.origins = (0..n).map(|_| VecDeque::new()).collect();
        self.is_source = vec![false; n];
        self.source_ready = vec![false; n];
        self.sources.clear();
        self.source_rr = 0;
        self.internal_since_source = 0;
        for a in actors {
            self.is_source[a.index] = a.is_source;
            if a.is_source {
                self.sources.push(a.index);
            }
        }
    }

    fn on_enqueue(&mut self, actor: usize, origin: Timestamp) {
        if !self.is_source[actor] {
            self.origins[actor].push_back(origin);
        }
    }

    fn on_source_ready(&mut self, actor: usize, ready: bool) {
        self.source_ready[actor] = ready;
    }

    fn next_actor(&mut self) -> Option<usize> {
        if self.internal_since_source >= self.source_interval {
            if let Some(s) = self.pick_source() {
                self.internal_since_source = 0;
                return Some(s);
            }
        }
        // Earliest head deadline = earliest head origin (uniform target).
        let best = self
            .origins
            .iter()
            .enumerate()
            .filter_map(|(a, q)| q.front().map(|o| (*o, a)))
            .min();
        if let Some((_, a)) = best {
            self.internal_since_source += 1;
            return Some(a);
        }
        self.pick_source()
    }

    fn after_fire(&mut self, actor: usize, _cost: Micros, remaining: usize, _stats: &StatsModule) {
        if self.is_source[actor] {
            return;
        }
        self.origins[actor].pop_front();
        // Defensive resync: the director's queue length is authoritative.
        while self.origins[actor].len() > remaining {
            self.origins[actor].pop_front();
        }
    }

    fn end_iteration(&mut self, _stats: &StatsModule) -> bool {
        false
    }

    fn state(&self, actor: usize) -> ActorState {
        if self.is_source[actor] {
            if self.source_ready[actor] {
                ActorState::Active
            } else {
                ActorState::Waiting
            }
        } else if self.origins[actor].is_empty() {
            ActorState::Inactive
        } else {
            ActorState::Active
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infos() -> Vec<ActorInfo> {
        vec![
            ActorInfo {
                index: 0,
                name: "src".into(),
                priority: 20,
                is_source: true,
            },
            ActorInfo {
                index: 1,
                name: "a".into(),
                priority: 20,
                is_source: false,
            },
            ActorInfo {
                index: 2,
                name: "b".into(),
                priority: 20,
                is_source: false,
            },
        ]
    }

    fn stats() -> StatsModule {
        use confluence_core::graph::WorkflowBuilder;
        StatsModule::new(&WorkflowBuilder::new("empty").build().unwrap())
    }

    #[test]
    fn picks_the_stalest_head_first() {
        let mut e = EdfScheduler::new(Micros::from_secs(1), 100);
        e.init(&infos());
        e.on_enqueue(1, Timestamp(500));
        e.on_enqueue(2, Timestamp(100)); // staler
        e.on_enqueue(1, Timestamp(50)); // stale but behind 500 in actor 1's FIFO
        let s = stats();
        assert_eq!(e.next_actor(), Some(2), "actor 2's head is oldest");
        e.after_fire(2, Micros(1), 0, &s);
        assert_eq!(e.next_actor(), Some(1));
        e.after_fire(1, Micros(1), 1, &s);
        assert_eq!(e.next_actor(), Some(1));
        e.after_fire(1, Micros(1), 0, &s);
        assert_eq!(e.next_actor(), None);
    }

    #[test]
    fn sources_by_interval() {
        let mut e = EdfScheduler::new(Micros::from_secs(1), 1);
        e.init(&infos());
        e.on_source_ready(0, true);
        e.on_enqueue(1, Timestamp(1));
        let s = stats();
        assert_eq!(e.next_actor(), Some(1));
        e.after_fire(1, Micros(1), 0, &s);
        assert_eq!(e.next_actor(), Some(0), "interval slot");
        e.after_fire(0, Micros(1), 0, &s);
        assert_eq!(e.next_actor(), Some(0), "idle fallback to ready source");
    }

    #[test]
    fn states() {
        let mut e = EdfScheduler::new(Micros(1), 5);
        e.init(&infos());
        assert_eq!(e.state(1), ActorState::Inactive);
        e.on_enqueue(1, Timestamp(9));
        assert_eq!(e.state(1), ActorState::Active);
        assert_eq!(e.state(0), ActorState::Waiting);
        e.on_source_ready(0, true);
        assert_eq!(e.state(0), ActorState::Active);
        assert!(!e.end_iteration(&stats()));
    }
}
