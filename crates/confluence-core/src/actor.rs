//! The actor abstraction: independent workflow components with ports.
//!
//! A workflow is a composition of independent components called *actors*.
//! Actors communicate through *ports*; the connection between an output
//! port and an input port is a *channel*. Crucially (the Kepler/Ptolemy
//! insight the paper builds on), the communication and execution semantics
//! are **not** chosen by the actor but by the workflow's *director*: the
//! same actor runs unchanged under the thread-based PNCWF director, the
//! STAFiLOS scheduled director, or the SDF/DDF sub-workflow directors.
//!
//! Actors therefore interact with the runtime only through the
//! [`FireContext`] handed to their lifecycle methods.

use crate::error::Result;
use crate::time::Timestamp;
use crate::token::Token;
use crate::window::Window;

/// Port names of an actor, declared by the actor itself.
#[derive(Debug, Clone, Default)]
pub struct IoSignature {
    /// Input port names, in port-index order.
    pub inputs: Vec<String>,
    /// Output port names, in port-index order.
    pub outputs: Vec<String>,
}

impl IoSignature {
    /// Build a signature from port name lists.
    pub fn new(inputs: &[&str], outputs: &[&str]) -> Self {
        IoSignature {
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// A source signature: no inputs, one output.
    pub fn source(output: &str) -> Self {
        Self::new(&[], &[output])
    }

    /// A sink signature: one input, no outputs.
    pub fn sink(input: &str) -> Self {
        Self::new(&[input], &[])
    }

    /// One input, one output.
    pub fn transform(input: &str, output: &str) -> Self {
        Self::new(&[input], &[output])
    }

    /// Resolve an input port name to its index.
    pub fn input_index(&self, name: &str) -> Option<usize> {
        self.inputs.iter().position(|n| n == name)
    }

    /// Resolve an output port name to its index.
    pub fn output_index(&self, name: &str) -> Option<usize> {
        self.outputs.iter().position(|n| n == name)
    }
}

/// Token consumption/production rates for synchronous dataflow scheduling.
///
/// An actor that declares rates consumes exactly `consume[i]` windows from
/// input `i` and produces exactly `produce[j]` tokens on output `j` per
/// firing; the SDF director uses these to pre-compile a static schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdfRates {
    /// Tokens consumed per firing, per input port.
    pub consume: Vec<u32>,
    /// Tokens produced per firing, per output port.
    pub produce: Vec<u32>,
}

/// The runtime interface an actor sees during a lifecycle call.
///
/// Directors implement this differently: the thread-based director blocks
/// in [`FireContext::get`]; the scheduled director pre-delivers the window
/// that triggered the firing.
pub trait FireContext {
    /// Current director time.
    fn now(&self) -> Timestamp;

    /// Take the next ready window on input port `port`.
    ///
    /// Under the thread-based director this blocks until a window forms or
    /// every upstream actor has finished (then `None`). Under scheduled
    /// directors it returns the delivered window once, then `None`.
    fn get(&mut self, port: usize) -> Option<Window>;

    /// Take the next ready window on *any* input port, with its port index.
    fn get_any(&mut self) -> Option<(usize, Window)>;

    /// Produce `token` on output port `port`. The director stamps the
    /// production with the current time and the firing's wave lineage and
    /// routes it to every connected downstream receiver.
    fn emit(&mut self, port: usize, token: Token);
}

/// A workflow component.
///
/// Lifecycle (per Kepler): `initialize` once, then iterations of
/// `prefire → fire → postfire` driven by the director, then `wrapup`.
/// All methods default to no-ops so simple actors implement only `fire`.
pub trait Actor: Send {
    /// Declared ports.
    fn signature(&self) -> IoSignature;

    /// One-time setup before execution starts.
    fn initialize(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
        Ok(())
    }

    /// Whether the actor is ready to fire this iteration. Returning `false`
    /// skips the firing (the director will retry later).
    fn prefire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(true)
    }

    /// Do one iteration of work: consume windows, emit tokens.
    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()>;

    /// Post-iteration bookkeeping. Returning `false` tells the director
    /// this actor is finished (a source that exhausted its stream).
    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(true)
    }

    /// Final chance to emit before the actor's outputs close.
    ///
    /// Called exactly once after every input has closed and every pending
    /// window has been drained, but *before* the director closes the
    /// actor's output channels — unlike [`Actor::wrapup`], emissions made
    /// here still reach downstream actors. Stateful actors (for example
    /// the sharding merge stage) use this to flush buffered results.
    fn finish(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
        Ok(())
    }

    /// One-time teardown after execution ends.
    fn wrapup(&mut self) -> Result<()> {
        Ok(())
    }

    /// Produce a fresh replica of this actor for keyed sharding.
    ///
    /// Returning `Some` declares the actor safe to replicate: each replica
    /// must compute the same results when it observes only the subset of
    /// the input stream whose key hashes to it (per-key state, or state
    /// shared through an external handle). The default `None` makes
    /// [`crate::graph::WorkflowBuilder::shard`] fail at build time rather
    /// than silently duplicating non-replicable state.
    fn replicate(&self) -> Option<Box<dyn Actor>> {
        None
    }

    /// Whether this is a source actor (no upstream; the director schedules
    /// it by time or policy instead of by data availability). Source actors
    /// are treated independently of the rest by the STAFiLOS schedulers in
    /// order to regulate the flow of data into the workflow.
    fn is_source(&self) -> bool {
        false
    }

    /// For source actors driven by a timetable: the time at which the next
    /// external event should enter the workflow. Directors running in
    /// virtual time use this to schedule source firings.
    fn next_arrival(&self) -> Option<Timestamp> {
        None
    }

    /// Fixed dataflow rates, if the actor has them (enables SDF scheduling).
    fn rates(&self) -> Option<SdfRates> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn signature_resolution() {
        let sig = IoSignature::new(&["a", "b"], &["out"]);
        assert_eq!(sig.input_index("b"), Some(1));
        assert_eq!(sig.input_index("z"), None);
        assert_eq!(sig.output_index("out"), Some(0));
        assert_eq!(sig.output_index("a"), None);
    }

    #[test]
    fn signature_shorthands() {
        let s = IoSignature::source("out");
        assert!(s.inputs.is_empty());
        assert_eq!(s.outputs, vec!["out"]);
        let k = IoSignature::sink("in");
        assert_eq!(k.inputs, vec!["in"]);
        assert!(k.outputs.is_empty());
        let t = IoSignature::transform("in", "out");
        assert_eq!((t.inputs.len(), t.outputs.len()), (1, 1));
    }

    struct Nop;
    impl Actor for Nop {
        fn signature(&self) -> IoSignature {
            IoSignature::default()
        }
        fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
            Ok(())
        }
    }

    #[test]
    fn defaults_are_sane() {
        let a = Nop;
        assert!(!a.is_source());
        assert!(a.next_arrival().is_none());
        assert!(a.rates().is_none());
    }
}
