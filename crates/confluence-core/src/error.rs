//! Error types shared across the engine.

use std::fmt;

/// Errors raised while building or executing a continuous workflow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A workflow graph was structurally invalid (dangling port, duplicate
    /// actor name, cycle where a DAG was required, ...).
    Graph(String),
    /// An actor referenced a port name or index that does not exist.
    UnknownPort(String),
    /// An actor with the given name was not found in the workflow.
    UnknownActor(String),
    /// A token had the wrong type for the operation applied to it.
    TokenType {
        /// What the operation expected (e.g. `"Int"`).
        expected: &'static str,
        /// What it actually found (variant name).
        found: &'static str,
    },
    /// A record token was missing a required field.
    MissingField(String),
    /// A window specification was inconsistent (zero size, step > size with
    /// `delete_used_events`, ...).
    Window(String),
    /// The SDF director could not solve the balance equations for the graph
    /// (inconsistent rates) or the graph is not schedulable.
    Sdf(String),
    /// An actor failed during one of its lifecycle stages.
    Actor {
        /// Actor name.
        actor: String,
        /// Lifecycle stage in which the failure happened.
        stage: &'static str,
        /// Human-readable failure description.
        message: String,
    },
    /// A director was asked to run a workflow it cannot execute
    /// (e.g. unsupported receiver kind).
    Director(String),
    /// A scheduler rejected its configuration.
    Scheduler(String),
    /// Relational-store errors surfaced through actors.
    Store(String),
    /// A bounded channel with [`crate::channel::OnFull::Error`] was full.
    ChannelFull {
        /// Destination input port index.
        port: usize,
        /// Effective capacity at the time of the overflow.
        capacity: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Graph(m) => write!(f, "workflow graph error: {m}"),
            Error::UnknownPort(p) => write!(f, "unknown port: {p}"),
            Error::UnknownActor(a) => write!(f, "unknown actor: {a}"),
            Error::TokenType { expected, found } => {
                write!(f, "token type error: expected {expected}, found {found}")
            }
            Error::MissingField(name) => write!(f, "record is missing field `{name}`"),
            Error::Window(m) => write!(f, "window specification error: {m}"),
            Error::Sdf(m) => write!(f, "SDF scheduling error: {m}"),
            Error::Actor {
                actor,
                stage,
                message,
            } => write!(f, "actor `{actor}` failed in {stage}: {message}"),
            Error::Director(m) => write!(f, "director error: {m}"),
            Error::Scheduler(m) => write!(f, "scheduler error: {m}"),
            Error::Store(m) => write!(f, "store error: {m}"),
            Error::ChannelFull { port, capacity } => {
                write!(f, "channel full: input port {port} at capacity {capacity}")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias used across the workspace.
pub type Result<T, E = Error> = std::result::Result<T, E>;

impl Error {
    /// Build an [`Error::Actor`] with less ceremony.
    pub fn actor(actor: impl Into<String>, stage: &'static str, message: impl Into<String>) -> Self {
        Error::Actor {
            actor: actor.into(),
            stage,
            message: message.into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_covers_all_variants() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::Graph("g".into()), "workflow graph error: g"),
            (Error::UnknownPort("p".into()), "unknown port: p"),
            (Error::UnknownActor("a".into()), "unknown actor: a"),
            (
                Error::TokenType {
                    expected: "Int",
                    found: "Str",
                },
                "token type error: expected Int, found Str",
            ),
            (
                Error::MissingField("x".into()),
                "record is missing field `x`",
            ),
            (Error::Window("w".into()), "window specification error: w"),
            (Error::Sdf("s".into()), "SDF scheduling error: s"),
            (
                Error::actor("a", "fire", "boom"),
                "actor `a` failed in fire: boom",
            ),
            (Error::Director("d".into()), "director error: d"),
            (Error::Scheduler("s".into()), "scheduler error: s"),
            (Error::Store("s".into()), "store error: s"),
            (
                Error::ChannelFull {
                    port: 1,
                    capacity: 64,
                },
                "channel full: input port 1 at capacity 64",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_std_error(_: &dyn std::error::Error) {}
        takes_std_error(&Error::Graph("x".into()));
    }
}
