//! Time keeping: timestamps, durations, and the clock abstraction.
//!
//! CONFLuEnCE stamps every event with a microsecond-resolution
//! [`Timestamp`]. Directors read the current time from a [`Clock`], which is
//! either the wall clock ([`WallClock`], used by the thread-based PNCWF
//! director) or a [`VirtualClock`] advanced explicitly by a discrete-event
//! executor (used by the STAFiLOS SCWF director when running experiments in
//! virtual time).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A point in time, in microseconds since an arbitrary epoch.
///
/// For wall-clock execution the epoch is the moment the clock was created;
/// for virtual execution the epoch is the start of the simulation. Using a
/// relative epoch keeps runs reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Timestamp(pub u64);

/// A span of time in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Micros(pub u64);

impl Timestamp {
    /// The zero timestamp (the epoch).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Microseconds since the epoch.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds since the epoch, as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference `self - earlier`.
    #[inline]
    pub fn since(self, earlier: Timestamp) -> Micros {
        Micros(self.0.saturating_sub(earlier.0))
    }

    /// This timestamp advanced by `d`.
    #[inline]
    pub fn plus(self, d: Micros) -> Timestamp {
        Timestamp(self.0 + d.0)
    }

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Timestamp {
        Timestamp(s * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Timestamp {
        Timestamp(ms * 1_000)
    }
}

impl Micros {
    /// Zero duration.
    pub const ZERO: Micros = Micros(0);

    /// Construct from whole seconds.
    #[inline]
    pub fn from_secs(s: u64) -> Micros {
        Micros(s * 1_000_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: u64) -> Micros {
        Micros(ms * 1_000)
    }

    /// Raw microseconds.
    #[inline]
    pub fn as_micros(self) -> u64 {
        self.0
    }

    /// Seconds as a float (for reporting).
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Convert to a `std::time::Duration` (for wall-clock sleeps).
    #[inline]
    pub fn to_std(self) -> std::time::Duration {
        std::time::Duration::from_micros(self.0)
    }
}

impl std::ops::Add<Micros> for Timestamp {
    type Output = Timestamp;
    #[inline]
    fn add(self, rhs: Micros) -> Timestamp {
        self.plus(rhs)
    }
}

impl std::ops::Add for Micros {
    type Output = Micros;
    #[inline]
    fn add(self, rhs: Micros) -> Micros {
        Micros(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for Micros {
    #[inline]
    fn add_assign(&mut self, rhs: Micros) {
        self.0 += rhs.0;
    }
}

impl std::ops::Sub for Micros {
    type Output = Micros;
    #[inline]
    fn sub(self, rhs: Micros) -> Micros {
        Micros(self.0.saturating_sub(rhs.0))
    }
}

impl std::ops::Mul<u64> for Micros {
    type Output = Micros;
    #[inline]
    fn mul(self, rhs: u64) -> Micros {
        Micros(self.0 * rhs)
    }
}

impl std::fmt::Display for Timestamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl std::fmt::Display for Micros {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}µs", self.0)
    }
}

/// Source of the current time for a director.
///
/// Implementations must be cheap and thread-safe: the thread-based director
/// reads the clock concurrently from every actor thread.
pub trait Clock: Send + Sync {
    /// The current time.
    fn now(&self) -> Timestamp;
}

/// Wall clock, anchored at the moment of construction.
#[derive(Debug)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// A wall clock whose epoch is "now".
    pub fn new() -> Self {
        WallClock {
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.origin.elapsed().as_micros() as u64)
    }
}

/// A virtual clock advanced explicitly by a discrete-event executor.
///
/// The SCWF director charges each actor firing's (measured or modeled) cost
/// to this clock, so a 600-second Linear Road run completes in milliseconds
/// of wall time while preserving all queueing behaviour.
#[derive(Debug, Default)]
pub struct VirtualClock {
    micros: AtomicU64,
}

impl VirtualClock {
    /// A virtual clock starting at the epoch.
    pub fn new() -> Self {
        VirtualClock {
            micros: AtomicU64::new(0),
        }
    }

    /// Advance the clock by `d` and return the new time.
    pub fn advance(&self, d: Micros) -> Timestamp {
        let newv = self.micros.fetch_add(d.0, Ordering::Relaxed) + d.0;
        Timestamp(newv)
    }

    /// Move the clock forward to `t`. Moving backwards is a no-op: virtual
    /// time is monotone.
    pub fn advance_to(&self, t: Timestamp) {
        self.micros.fetch_max(t.0, Ordering::Relaxed);
    }
}

impl Clock for VirtualClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.micros.load(Ordering::Relaxed))
    }
}

/// A shareable clock handle.
pub type SharedClock = Arc<dyn Clock>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_secs(2);
        assert_eq!(t.as_micros(), 2_000_000);
        assert_eq!(t.plus(Micros::from_millis(500)).as_micros(), 2_500_000);
        assert_eq!(t.since(Timestamp::from_secs(1)), Micros::from_secs(1));
        // saturating difference
        assert_eq!(Timestamp::ZERO.since(t), Micros::ZERO);
        assert_eq!((t + Micros(5)).as_micros(), 2_000_005);
    }

    #[test]
    fn micros_arithmetic() {
        let d = Micros::from_millis(3);
        assert_eq!((d + Micros(1)).as_micros(), 3_001);
        assert_eq!((d - Micros::from_millis(1)).as_micros(), 2_000);
        assert_eq!((Micros(10) - Micros(20)).as_micros(), 0);
        assert_eq!((Micros(7) * 3).as_micros(), 21);
        let mut a = Micros(1);
        a += Micros(2);
        assert_eq!(a, Micros(3));
        assert_eq!(Micros::from_secs(1).to_std(), std::time::Duration::from_secs(1));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Timestamp::from_secs(1).to_string(), "1.000000s");
        assert_eq!(Micros(42).to_string(), "42µs");
    }

    #[test]
    fn wall_clock_monotone() {
        let c = WallClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn virtual_clock_advances() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Timestamp::ZERO);
        assert_eq!(c.advance(Micros(10)), Timestamp(10));
        assert_eq!(c.now(), Timestamp(10));
        c.advance_to(Timestamp(100));
        assert_eq!(c.now(), Timestamp(100));
        // moving backwards is ignored
        c.advance_to(Timestamp(50));
        assert_eq!(c.now(), Timestamp(100));
    }

    #[test]
    fn clock_is_object_safe_and_shareable() {
        let c: SharedClock = Arc::new(VirtualClock::new());
        assert_eq!(c.now(), Timestamp::ZERO);
    }
}
