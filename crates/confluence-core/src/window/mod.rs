//! Window semantics on the active queues of activity inputs.
//!
//! A *window* sets flexible bounds on an unbounded stream of events to
//! fetch a finite, ever-changing logical bundle of events. CONFLuEnCE
//! attaches windows to the queues on activity inputs; the window operator
//! runs on the queue and produces a window whenever the attached activity
//! asks for one (or a formation timeout fires).
//!
//! Five parameters define the semantics (paper §2.1):
//!
//! 1. **size** — extent of one window (tuples, time, or a whole wave),
//! 2. **step** — how far consecutive windows advance,
//! 3. **window_formation_timeout** — how long a partial window may wait
//!    before being forced out,
//! 4. **group-by** — partition the queue into per-key sub-queues,
//! 5. **delete_used_events** — whether events used by a window are consumed
//!    (each event in at most one window) or remain available for
//!    overlapping windows.
//!
//! Combining the size/step definition with `delete_used_events` realizes
//! the hybrid window + consumption modes of Adaikkalavan & Chakravarthy
//! (ref. \[1\] of the paper): *unrestricted* (sliding, events reusable),
//! *recent* (size = step, most-recent bundle), and *continuous*
//! (`delete_used_events`, each event consumed exactly once). Expired events
//! are pushed to an expired-items queue which can optionally feed another
//! workflow activity.

mod operator;

pub use operator::WindowOperator;

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::event::CwEvent;
use crate::time::{Micros, Timestamp};
use crate::token::Token;
use crate::wave::WaveTag;

/// How a window's extent (size) or advance (step) is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Measure {
    /// A fixed number of events.
    Tuples(usize),
    /// A span of event time.
    Time(Micros),
    /// One complete wave (all events of a single external event's lineage).
    ///
    /// The paper lists wave-based windows as designed but not yet supported
    /// in CONFLuEnCE; we implement them as an extension. With a wave
    /// measure the step is implicitly one wave.
    Wave,
}

/// Group-by clause: how to partition the input queue.
#[derive(Clone, Default)]
pub enum GroupBy {
    /// No partitioning: a single queue.
    #[default]
    None,
    /// Partition by the value of the named record fields.
    Fields(Vec<Arc<str>>),
    /// Partition by an arbitrary key-extraction function.
    Key(Arc<dyn Fn(&Token) -> Token + Send + Sync>),
}

impl std::fmt::Debug for GroupBy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GroupBy::None => write!(f, "GroupBy::None"),
            GroupBy::Fields(fs) => write!(f, "GroupBy::Fields({fs:?})"),
            GroupBy::Key(_) => write!(f, "GroupBy::Key(<fn>)"),
        }
    }
}

impl GroupBy {
    /// Partition by named record fields.
    pub fn fields(names: &[&str]) -> GroupBy {
        GroupBy::Fields(names.iter().map(|n| Arc::from(*n)).collect())
    }

    /// Extract the group key of a token. Non-record tokens under
    /// `GroupBy::Fields` are an error (the Linear Road workflow always
    /// groups records).
    pub fn key_of(&self, token: &Token) -> Result<Token> {
        match self {
            GroupBy::None => Ok(Token::Unit),
            GroupBy::Fields(names) => token.project(names),
            GroupBy::Key(f) => Ok(f(token)),
        }
    }
}

/// The full five-parameter window specification attached to an input port.
#[derive(Debug, Clone)]
pub struct WindowSpec {
    /// Window extent.
    pub size: Measure,
    /// Window advance. Must use the same measure kind as `size` (tuple with
    /// tuple, time with time); ignored for wave windows.
    pub step: Measure,
    /// Formation timeout: a partial window older than this (first event
    /// age, in director time) is forced out as a short window.
    pub timeout: Option<Micros>,
    /// Queue partitioning.
    pub group_by: GroupBy,
    /// Consume events on use (continuous consumption mode).
    pub delete_used_events: bool,
}

impl WindowSpec {
    /// Sliding tuple window: `{Size: size tokens, Step: step tokens}`.
    pub fn tuples(size: usize, step: usize) -> WindowSpec {
        WindowSpec {
            size: Measure::Tuples(size),
            step: Measure::Tuples(step),
            timeout: None,
            group_by: GroupBy::None,
            delete_used_events: false,
        }
    }

    /// Sliding time window: `{Size: size, Step: step}` over event time.
    pub fn time(size: Micros, step: Micros) -> WindowSpec {
        WindowSpec {
            size: Measure::Time(size),
            step: Measure::Time(step),
            timeout: None,
            group_by: GroupBy::None,
            delete_used_events: false,
        }
    }

    /// Tumbling time window (size = step) — the Linear Road
    /// `{Size: 1 minute, Step: 1 minute}` shape.
    pub fn tumbling_time(size: Micros) -> WindowSpec {
        Self::time(size, size)
    }

    /// Wave window: one window per complete wave.
    pub fn wave() -> WindowSpec {
        WindowSpec {
            size: Measure::Wave,
            step: Measure::Wave,
            timeout: None,
            group_by: GroupBy::None,
            delete_used_events: true,
        }
    }

    /// Degenerate per-event window (`{Size: 1 token, Step: 1 token}`,
    /// consumed) — what a plain streaming input reduces to.
    pub fn each_event() -> WindowSpec {
        let mut spec = Self::tuples(1, 1);
        spec.delete_used_events = true;
        spec
    }

    /// The *unrestricted* hybrid window/consumption mode of Adaikkalavan &
    /// Chakravarthy (paper ref. \[1\]): a sliding window whose events remain
    /// available to every overlapping window.
    pub fn unrestricted_tuples(size: usize, step: usize) -> WindowSpec {
        Self::tuples(size, step)
    }

    /// The *recent* mode of ref. \[1\]: each firing sees the most recent
    /// bundle of `size` events (slide by one, nothing consumed).
    pub fn recent_tuples(size: usize) -> WindowSpec {
        Self::tuples(size, 1)
    }

    /// The *continuous* mode of ref. \[1\]: disjoint bundles, every event
    /// used exactly once and then consumed.
    pub fn continuous_tuples(size: usize) -> WindowSpec {
        Self::tuples(size, size).delete_used(true)
    }

    /// Set the group-by clause.
    pub fn group_by(mut self, g: GroupBy) -> WindowSpec {
        self.group_by = g;
        self
    }

    /// Set the group-by clause to record-field projection.
    pub fn group_by_fields(self, names: &[&str]) -> WindowSpec {
        self.group_by(GroupBy::fields(names))
    }

    /// Set the formation timeout.
    pub fn with_timeout(mut self, t: Micros) -> WindowSpec {
        self.timeout = Some(t);
        self
    }

    /// Set the delete-used-events (continuous consumption) flag.
    pub fn delete_used(mut self, yes: bool) -> WindowSpec {
        self.delete_used_events = yes;
        self
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        match (self.size, self.step) {
            (Measure::Tuples(s), Measure::Tuples(p)) => {
                if s == 0 {
                    return Err(Error::Window("window size must be positive".into()));
                }
                if p == 0 {
                    return Err(Error::Window("window step must be positive".into()));
                }
            }
            (Measure::Time(s), Measure::Time(p)) => {
                if s == Micros::ZERO {
                    return Err(Error::Window("window size must be positive".into()));
                }
                if p == Micros::ZERO {
                    return Err(Error::Window("window step must be positive".into()));
                }
            }
            (Measure::Wave, _) => {}
            (size, step) => {
                return Err(Error::Window(format!(
                    "size and step must use the same measure (got {size:?} / {step:?})"
                )));
            }
        }
        Ok(())
    }
}

/// A produced window: the logical bundle of events handed to an actor's
/// `fire()`.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Group key this window was formed under (`Token::Unit` when ungrouped).
    pub group: Token,
    /// The events, in arrival order.
    pub events: Vec<CwEvent>,
    /// Director time at which the window was produced.
    pub formed_at: Timestamp,
    /// Whether the window was forced out short by a formation timeout.
    pub timed_out: bool,
}

impl Window {
    /// Number of events in the window.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the window carries no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Iterate the payload tokens in arrival order.
    pub fn tokens(&self) -> impl Iterator<Item = &Token> {
        self.events.iter().map(|e| &e.token)
    }

    /// The most recent event of the window.
    pub fn latest(&self) -> Option<&CwEvent> {
        self.events.last()
    }

    /// The wave that triggered the window's completion: the wave-tag of
    /// the latest event. Productions from firing on this window join this
    /// wave.
    pub fn trigger_wave(&self) -> Option<&WaveTag> {
        self.latest().map(|e| &e.wave)
    }

    /// The earliest origin timestamp among the window's events — the
    /// reference point for "how stale is the oldest input of this firing".
    pub fn earliest_origin(&self) -> Option<Timestamp> {
        self.events.iter().map(|e| e.origin()).min()
    }
}

#[cfg(test)]
mod spec_tests {
    use super::*;

    #[test]
    fn constructors_and_validation() {
        assert!(WindowSpec::tuples(4, 1).validate().is_ok());
        assert!(WindowSpec::time(Micros::from_secs(60), Micros::from_secs(60))
            .validate()
            .is_ok());
        assert!(WindowSpec::tumbling_time(Micros::from_secs(60)).validate().is_ok());
        assert!(WindowSpec::wave().validate().is_ok());
        assert!(WindowSpec::each_event().validate().is_ok());
        assert!(WindowSpec::tuples(0, 1).validate().is_err());
        assert!(WindowSpec::tuples(1, 0).validate().is_err());
        assert!(WindowSpec::time(Micros::ZERO, Micros(1)).validate().is_err());
        assert!(WindowSpec::time(Micros(1), Micros::ZERO).validate().is_err());
        let mixed = WindowSpec {
            size: Measure::Tuples(1),
            step: Measure::Time(Micros(1)),
            timeout: None,
            group_by: GroupBy::None,
            delete_used_events: false,
        };
        assert!(mixed.validate().is_err());
    }

    #[test]
    fn consumption_mode_constructors() {
        let u = WindowSpec::unrestricted_tuples(4, 2);
        assert!(!u.delete_used_events);
        assert_eq!((u.size, u.step), (Measure::Tuples(4), Measure::Tuples(2)));
        let r = WindowSpec::recent_tuples(4);
        assert_eq!(r.step, Measure::Tuples(1));
        assert!(!r.delete_used_events);
        let c = WindowSpec::continuous_tuples(4);
        assert_eq!((c.size, c.step), (Measure::Tuples(4), Measure::Tuples(4)));
        assert!(c.delete_used_events);
    }

    #[test]
    fn builder_methods() {
        let spec = WindowSpec::tuples(2, 1)
            .group_by_fields(&["carid"])
            .with_timeout(Micros::from_secs(5))
            .delete_used(true);
        assert!(matches!(spec.group_by, GroupBy::Fields(_)));
        assert_eq!(spec.timeout, Some(Micros::from_secs(5)));
        assert!(spec.delete_used_events);
    }

    #[test]
    fn group_key_extraction() {
        let tok = Token::record().field("carid", 7).field("speed", 60).build();
        assert_eq!(GroupBy::None.key_of(&tok).unwrap(), Token::Unit);
        let g = GroupBy::fields(&["carid"]);
        assert_eq!(
            g.key_of(&tok).unwrap(),
            Token::record().field("carid", 7).build()
        );
        let custom = GroupBy::Key(Arc::new(|t: &Token| {
            Token::Int(t.int_field("carid").unwrap_or(0) % 2)
        }));
        assert_eq!(custom.key_of(&tok).unwrap(), Token::Int(1));
        assert!(g.key_of(&Token::Int(3)).is_err());
    }

    #[test]
    fn group_by_debug_is_informative() {
        assert_eq!(format!("{:?}", GroupBy::None), "GroupBy::None");
        assert!(format!("{:?}", GroupBy::fields(&["a"])).contains("a"));
        let k = GroupBy::Key(Arc::new(|_| Token::Unit));
        assert_eq!(format!("{k:?}"), "GroupBy::Key(<fn>)");
    }

    #[test]
    fn window_accessors() {
        use crate::event::CwEvent;
        let w = Window {
            group: Token::Unit,
            events: vec![
                CwEvent::external(Token::Int(1), Timestamp(10)),
                CwEvent::external(Token::Int(2), Timestamp(5)),
            ],
            formed_at: Timestamp(20),
            timed_out: false,
        };
        assert_eq!(w.len(), 2);
        assert!(!w.is_empty());
        assert_eq!(w.tokens().cloned().collect::<Vec<_>>(), vec![Token::Int(1), Token::Int(2)]);
        assert_eq!(w.latest().unwrap().token, Token::Int(2));
        assert_eq!(w.trigger_wave().unwrap().origin(), Timestamp(5));
        assert_eq!(w.earliest_origin(), Some(Timestamp(5)));
        let empty = Window {
            group: Token::Unit,
            events: vec![],
            formed_at: Timestamp(0),
            timed_out: true,
        };
        assert!(empty.is_empty());
        assert!(empty.latest().is_none());
        assert!(empty.earliest_origin().is_none());
    }
}
