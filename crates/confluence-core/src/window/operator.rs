//! The window operator: runs on an input queue, forms windows.
//!
//! One [`WindowOperator`] is attached to each windowed input port. Events
//! are pushed in arrival order; the operator partitions them into per-group
//! queues, forms windows according to the [`WindowSpec`], appends produced
//! windows to a ready queue, and pushes events that slide out of scope (or
//! are consumed under `delete_used_events`) to the expired-items queue.

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::error::Result;
use crate::event::CwEvent;
use crate::time::{Micros, Timestamp};
use crate::token::Token;
use crate::wave::WaveTracker;

use super::{Measure, Window, WindowSpec};

/// Window-forming state machine for one input port.
#[derive(Debug)]
pub struct WindowOperator {
    spec: WindowSpec,
    kind: Kind,
    groups: HashMap<Token, GroupState>,
    /// Group keys in first-arrival order, for deterministic flushing.
    group_order: Vec<Token>,
    ready: VecDeque<Window>,
    expired: VecDeque<CwEvent>,
    pending: usize,
    /// Incremental deadline index: poll time → groups due at that time.
    /// Keeps [`WindowOperator::next_deadline`] O(1) and
    /// [`WindowOperator::poll`] proportional to the *due* groups only —
    /// essential when group-by fans out to thousands of queues.
    deadline_index: BTreeMap<Timestamp, Vec<Token>>,
    group_deadline: HashMap<Token, Timestamp>,
}

#[derive(Debug, Clone, Copy)]
enum Kind {
    Tuples { size: usize, step: usize },
    Time { size: u64, step: u64 },
    Wave,
}

#[derive(Debug)]
enum GroupState {
    Tuples(TupleGroup),
    Time(TimeGroup),
    Wave(WaveGroup),
}

#[derive(Debug, Default)]
struct TupleGroup {
    /// Buffered events; the front event has logical sequence `front_seq`.
    events: VecDeque<CwEvent>,
    /// Sequence number of the front of `events`.
    front_seq: u64,
    /// Total events ever pushed (next event's sequence number).
    next_seq: u64,
    /// Sequence at which the next window starts.
    next_start: u64,
}

#[derive(Debug, Default)]
struct TimeGroup {
    /// Buffered events, kept sorted by event timestamp.
    events: VecDeque<CwEvent>,
    /// Highest event time observed (arrival watermark).
    watermark: u64,
    /// Index of the next window to close: window k covers `[k*step, k*step+size)`.
    next_k: u64,
}

#[derive(Debug, Default)]
struct WaveGroup {
    /// Per-wave trackers and buffered events, keyed by wave origin.
    waves: BTreeMap<Timestamp, (WaveTracker, Vec<CwEvent>)>,
}

impl WindowOperator {
    /// Build an operator for a validated spec.
    pub fn new(spec: WindowSpec) -> Result<Self> {
        spec.validate()?;
        let kind = match (spec.size, spec.step) {
            (Measure::Tuples(size), Measure::Tuples(step)) => Kind::Tuples { size, step },
            (Measure::Time(size), Measure::Time(step)) => Kind::Time {
                size: size.as_micros(),
                step: step.as_micros(),
            },
            (Measure::Wave, _) => Kind::Wave,
            _ => unreachable!("validate() rejects mixed measures"),
        };
        Ok(WindowOperator {
            spec,
            kind,
            groups: HashMap::new(),
            group_order: Vec::new(),
            ready: VecDeque::new(),
            expired: VecDeque::new(),
            pending: 0,
            deadline_index: BTreeMap::new(),
            group_deadline: HashMap::new(),
        })
    }

    /// The specification this operator implements.
    pub fn spec(&self) -> &WindowSpec {
        &self.spec
    }

    /// Push one event (arrival time = director time `now`). Any windows the
    /// event completes are appended to the ready queue; returns how many.
    pub fn push(&mut self, event: CwEvent, now: Timestamp) -> Result<usize> {
        let key = self.spec.group_by.key_of(&event.token)?;
        if !self.groups.contains_key(&key) {
            let fresh = match self.kind {
                Kind::Tuples { .. } => GroupState::Tuples(TupleGroup::default()),
                Kind::Time { .. } => GroupState::Time(TimeGroup::default()),
                Kind::Wave => GroupState::Wave(WaveGroup::default()),
            };
            self.groups.insert(key.clone(), fresh);
            self.group_order.push(key.clone());
        }
        let produced_before = self.ready.len();
        let kind = self.kind;
        let delete_used = self.spec.delete_used_events;
        let group = self.groups.get_mut(&key).expect("group inserted above");
        let mut out = Emitted {
            ready: &mut self.ready,
            expired: &mut self.expired,
            pending_delta: 0,
        };
        match (group, kind) {
            (GroupState::Tuples(g), Kind::Tuples { size, step }) => {
                g.push(event, key.clone(), size, step, delete_used, now, &mut out);
            }
            (GroupState::Time(g), Kind::Time { size, step }) => {
                g.push(event, key.clone(), size, step, delete_used, now, &mut out);
            }
            (GroupState::Wave(g), Kind::Wave) => {
                g.push(event, key.clone(), now, &mut out);
            }
            _ => unreachable!("group state kind matches operator kind"),
        }
        self.pending = (self.pending as i64 + 1 + out.pending_delta) as usize;
        self.refresh_deadline(&key);
        Ok(self.ready.len() - produced_before)
    }

    /// Per-group poll: close what is due for one group at `now`.
    fn poll_group(&mut self, key: &Token, now: Timestamp) {
        let kind = self.kind;
        let delete_used = self.spec.delete_used_events;
        let timeout = self.spec.timeout;
        let Some(group) = self.groups.get_mut(key) else {
            return;
        };
        let mut out = Emitted {
            ready: &mut self.ready,
            expired: &mut self.expired,
            pending_delta: 0,
        };
        match (group, kind) {
            (GroupState::Tuples(g), Kind::Tuples { size, step }) => {
                g.poll(key.clone(), size, step, delete_used, timeout, now, &mut out);
            }
            (GroupState::Time(g), Kind::Time { size, step }) => {
                g.advance_watermark(key.clone(), now.as_micros(), size, step, delete_used, now, &mut out);
            }
            (GroupState::Wave(g), Kind::Wave) => {
                g.poll(key.clone(), timeout, now, &mut out);
            }
            _ => unreachable!(),
        }
        self.pending = (self.pending as i64 + out.pending_delta) as usize;
    }

    /// Earliest poll time at which one group could produce.
    fn group_deadline_of(&self, key: &Token) -> Option<Timestamp> {
        let timeout = self.spec.timeout;
        let group = self.groups.get(key)?;
        match (group, self.kind) {
            (GroupState::Tuples(g), Kind::Tuples { .. }) => {
                let t = timeout?;
                let from = (g.next_start.saturating_sub(g.front_seq)) as usize;
                g.events.get(from).map(|e| e.timestamp.plus(t))
            }
            (GroupState::Time(g), Kind::Time { size, step }) => {
                let first = g.events.front()?;
                // Close time of the first non-empty window still open.
                let ts = first.timestamp.as_micros();
                let k_lo = if ts < size { 0 } else { (ts - size) / step + 1 };
                let k = g.next_k.max(k_lo);
                let mut best = Timestamp(k * step + size);
                if let Some(t) = timeout {
                    best = best.min(first.timestamp.plus(t));
                }
                Some(best)
            }
            (GroupState::Wave(g), Kind::Wave) => {
                let t = timeout?;
                g.waves
                    .values()
                    .filter_map(|(_, events)| events.first())
                    .map(|e| e.timestamp.plus(t))
                    .min()
            }
            _ => unreachable!(),
        }
    }

    /// Recompute one group's entry in the deadline index.
    fn refresh_deadline(&mut self, key: &Token) {
        let new = self.group_deadline_of(key);
        let old = self.group_deadline.get(key).copied();
        if new == old {
            return;
        }
        if let Some(old) = old {
            if let Some(keys) = self.deadline_index.get_mut(&old) {
                keys.retain(|k| k != key);
                if keys.is_empty() {
                    self.deadline_index.remove(&old);
                }
            }
            self.group_deadline.remove(key);
        }
        if let Some(new) = new {
            self.deadline_index.entry(new).or_default().push(key.clone());
            self.group_deadline.insert(key.clone(), new);
        }
    }

    /// Advance director time: close any windows whose boundary or formation
    /// timeout has passed. Returns how many windows were produced.
    ///
    /// For time windows this treats `now` as a watermark (processing time
    /// drives event-time closure, which is exact in virtual-time runs where
    /// sources release events at their timestamps). For tuple and wave
    /// windows only the explicit formation timeout applies.
    pub fn poll(&mut self, now: Timestamp) -> usize {
        let produced_before = self.ready.len();
        loop {
            let due: Option<Timestamp> = self
                .deadline_index
                .keys()
                .next()
                .copied()
                .filter(|t| *t <= now);
            let Some(t) = due else { break };
            let keys = self.deadline_index.remove(&t).expect("first key exists");
            for key in &keys {
                self.group_deadline.remove(key);
            }
            for key in keys {
                self.poll_group(&key, now);
                self.refresh_deadline(&key);
            }
        }
        self.ready.len() - produced_before
    }

    /// The earliest director time at which [`WindowOperator::poll`] could
    /// produce a window, if any events are buffered. Directors register a
    /// "window timeout event" at this time (paper §3, TM Windowed Receiver).
    pub fn next_deadline(&self) -> Option<Timestamp> {
        self.deadline_index.keys().next().copied()
    }

    /// End-of-stream: force every buffered event out in final windows.
    ///
    /// Tuple and wave groups emit their remainders as short (`timed_out`)
    /// windows; time groups close every window containing buffered events
    /// (their content is final once the stream ends, so they are not marked
    /// timed-out). Returns how many windows were produced.
    pub fn flush(&mut self, now: Timestamp) -> usize {
        let produced_before = self.ready.len();
        let kind = self.kind;
        let delete_used = self.spec.delete_used_events;
        for key in &self.group_order {
            let Some(group) = self.groups.get_mut(key) else {
                continue;
            };
            let mut out = Emitted {
                ready: &mut self.ready,
                expired: &mut self.expired,
                pending_delta: 0,
            };
            match (group, kind) {
                (GroupState::Tuples(g), Kind::Tuples { .. }) => {
                    loop {
                        let from = (g.next_start.saturating_sub(g.front_seq)) as usize;
                        if from >= g.events.len() {
                            break;
                        }
                        let events: Vec<CwEvent> = g.events.iter().skip(from).cloned().collect();
                        let count = events.len();
                        out.emit(key.clone(), events, now, true);
                        g.next_start += count as u64;
                        while g.front_seq < g.next_start {
                            match g.events.pop_front() {
                                Some(ev) => {
                                    out.expire(ev);
                                    g.front_seq += 1;
                                }
                                None => {
                                    g.front_seq = g.next_start;
                                    break;
                                }
                            }
                        }
                    }
                }
                (GroupState::Time(g), Kind::Time { size, step }) => {
                    if let Some(last) = g.events.back() {
                        let last_ts = last.timestamp.as_micros();
                        // Close through the last window containing the last
                        // buffered event.
                        let k_hi = last_ts / step;
                        let final_watermark = k_hi * step + size;
                        g.advance_watermark(
                            key.clone(),
                            final_watermark,
                            size,
                            step,
                            delete_used,
                            now,
                            &mut out,
                        );
                        // Whatever remains buffered can never be emitted
                        // again (stream is over): expire it.
                        while let Some(ev) = g.events.pop_front() {
                            out.expire(ev);
                        }
                    }
                }
                (GroupState::Wave(g), Kind::Wave) => {
                    let origins: Vec<Timestamp> = g.waves.keys().copied().collect();
                    for origin in origins {
                        let (_, events) = g.waves.remove(&origin).expect("key collected");
                        out.pending_delta -= events.len() as i64;
                        out.emit(key.clone(), events, now, true);
                    }
                }
                _ => unreachable!(),
            }
            self.pending = (self.pending as i64 + out.pending_delta) as usize;
        }
        // Everything buffered has been emitted or expired: no deadlines
        // remain.
        self.deadline_index.clear();
        self.group_deadline.clear();
        self.ready.len() - produced_before
    }

    /// Take the next ready window, if any.
    pub fn pop_window(&mut self) -> Option<Window> {
        self.ready.pop_front()
    }

    /// Number of formed windows awaiting consumption.
    pub fn ready_len(&self) -> usize {
        self.ready.len()
    }

    /// Number of events buffered in group queues (not yet in any emitted
    /// window for consuming specs).
    pub fn pending_events(&self) -> usize {
        self.pending
    }

    /// Drain the expired-items queue (optionally handled by another
    /// workflow activity).
    pub fn drain_expired(&mut self) -> Vec<CwEvent> {
        self.expired.drain(..).collect()
    }

    /// Number of expired events awaiting drainage.
    pub fn expired_len(&self) -> usize {
        self.expired.len()
    }
}

/// Emission sink threaded through group-state methods.
struct Emitted<'a> {
    ready: &'a mut VecDeque<Window>,
    expired: &'a mut VecDeque<CwEvent>,
    /// Net change to the operator's pending-event count produced by the
    /// call (removals are negative), excluding the pushed event itself.
    pending_delta: i64,
}

impl Emitted<'_> {
    fn emit(&mut self, group: Token, events: Vec<CwEvent>, now: Timestamp, timed_out: bool) {
        self.ready.push_back(Window {
            group,
            events,
            formed_at: now,
            timed_out,
        });
    }

    fn expire(&mut self, event: CwEvent) {
        self.expired.push_back(event);
        self.pending_delta -= 1;
    }
}

impl TupleGroup {
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        event: CwEvent,
        key: Token,
        size: usize,
        step: usize,
        delete_used: bool,
        now: Timestamp,
        out: &mut Emitted<'_>,
    ) {
        self.events.push_back(event);
        self.next_seq += 1;
        self.try_emit(key, size, step, delete_used, now, out);
    }

    /// Emit every full window currently formable.
    fn try_emit(
        &mut self,
        key: Token,
        size: usize,
        step: usize,
        delete_used: bool,
        now: Timestamp,
        out: &mut Emitted<'_>,
    ) {
        // The next window covers sequences [next_start, next_start + size).
        while self.next_seq >= self.next_start + size as u64 {
            let from = (self.next_start - self.front_seq) as usize;
            let events: Vec<CwEvent> = self
                .events
                .iter()
                .skip(from)
                .take(size)
                .cloned()
                .collect();
            out.emit(key.clone(), events, now, false);
            self.advance(size, step, delete_used, out);
        }
    }

    fn advance(&mut self, size: usize, step: usize, delete_used: bool, out: &mut Emitted<'_>) {
        let hop = if delete_used { step.max(size) } else { step } as u64;
        self.next_start += hop;
        while self.front_seq < self.next_start {
            if let Some(ev) = self.events.pop_front() {
                out.expire(ev);
                self.front_seq += 1;
            } else {
                // No buffered events below next_start (short/timed-out
                // window advanced past the whole buffer).
                self.front_seq = self.next_start;
                break;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn poll(
        &mut self,
        key: Token,
        size: usize,
        step: usize,
        delete_used: bool,
        timeout: Option<Micros>,
        now: Timestamp,
        out: &mut Emitted<'_>,
    ) {
        let Some(timeout) = timeout else { return };
        // A partial window times out when its first event has waited too long.
        loop {
            let from = (self.next_start.saturating_sub(self.front_seq)) as usize;
            let Some(first) = self.events.get(from) else {
                return;
            };
            if now < first.timestamp.plus(timeout) {
                return;
            }
            let available = self.events.len() - from;
            if available >= size {
                // A full window is formable; emit it normally.
                self.try_emit(key.clone(), size, step, delete_used, now, out);
                continue;
            }
            let events: Vec<CwEvent> = self.events.iter().skip(from).cloned().collect();
            let count = events.len();
            out.emit(key.clone(), events, now, true);
            // Advance past everything emitted so the same short window is
            // not re-emitted on the next poll.
            self.next_start += count as u64;
            while self.front_seq < self.next_start {
                if let Some(ev) = self.events.pop_front() {
                    out.expire(ev);
                    self.front_seq += 1;
                } else {
                    self.front_seq = self.next_start;
                    break;
                }
            }
        }
    }
}

impl TimeGroup {
    #[allow(clippy::too_many_arguments)]
    fn push(
        &mut self,
        event: CwEvent,
        key: Token,
        size: u64,
        step: u64,
        delete_used: bool,
        now: Timestamp,
        out: &mut Emitted<'_>,
    ) {
        let ts = event.timestamp.as_micros();
        if ts < self.next_k * step {
            // Late event: every window it could join has already closed.
            out.expire(event);
            // (The pushed event was counted as +1 pending by the caller;
            // expire() balances it back out.)
            return;
        }
        // Insert keeping the buffer sorted by event time (arrivals are
        // near-sorted, so this is cheap).
        let pos = self
            .events
            .iter()
            .rposition(|e| e.timestamp.as_micros() <= ts)
            .map(|p| p + 1)
            .unwrap_or(0);
        self.events.insert(pos, event);
        self.advance_watermark(key, ts, size, step, delete_used, now, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn advance_watermark(
        &mut self,
        key: Token,
        watermark: u64,
        size: u64,
        step: u64,
        delete_used: bool,
        now: Timestamp,
        out: &mut Emitted<'_>,
    ) {
        self.watermark = self.watermark.max(watermark);
        // Close every window whose end has passed the watermark.
        loop {
            let lo = self.next_k * step;
            let hi = lo + size;
            if hi > self.watermark {
                break;
            }
            match self.events.front() {
                None => {
                    // Every closable window is empty: skip them all at once.
                    self.next_k = (self.watermark - size) / step + 1;
                    break;
                }
                Some(front) => {
                    let fts = front.timestamp.as_micros();
                    if fts >= hi {
                        // Current window is empty (buffer is sorted): jump
                        // to the first window containing the front event.
                        let k_lo = if fts < size { 0 } else { (fts - size) / step + 1 };
                        debug_assert!(k_lo > self.next_k);
                        self.next_k = k_lo;
                        continue;
                    }
                }
            }
            let events: Vec<CwEvent> = self
                .events
                .iter()
                .filter(|e| {
                    let t = e.timestamp.as_micros();
                    t >= lo && t < hi
                })
                .cloned()
                .collect();
            if !events.is_empty() {
                out.emit(key.clone(), events, now, false);
            }
            self.next_k += if delete_used {
                // Consumed events may not appear in a later window: hop a
                // whole window's worth of steps.
                size.div_ceil(step)
            } else {
                1
            };
            // Expire events no future window can cover.
            let cutoff = self.next_k * step;
            while self
                .events
                .front()
                .is_some_and(|e| e.timestamp.as_micros() < cutoff)
            {
                let ev = self.events.pop_front().expect("checked front");
                out.expire(ev);
            }
        }
    }
}

impl WaveGroup {
    fn push(&mut self, event: CwEvent, key: Token, now: Timestamp, out: &mut Emitted<'_>) {
        let origin = event.wave.origin();
        let entry = self
            .waves
            .entry(origin)
            .or_insert_with(|| (WaveTracker::new(), Vec::new()));
        entry.0.observe(&event.wave);
        entry.1.push(event);
        if entry.0.is_complete() {
            let (_, events) = self.waves.remove(&origin).expect("entry exists");
            out.pending_delta -= events.len() as i64;
            out.emit(key, events, now, false);
        }
    }

    fn poll(&mut self, key: Token, timeout: Option<Micros>, now: Timestamp, out: &mut Emitted<'_>) {
        let Some(timeout) = timeout else { return };
        let stale: Vec<Timestamp> = self
            .waves
            .iter()
            .filter(|(_, (_, events))| {
                events
                    .first()
                    .is_some_and(|e| now >= e.timestamp.plus(timeout))
            })
            .map(|(o, _)| *o)
            .collect();
        for origin in stale {
            let (_, events) = self.waves.remove(&origin).expect("collected above");
            out.pending_delta -= events.len() as i64;
            out.emit(key.clone(), events, now, true);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::{GroupBy, WindowSpec};

    fn ev(val: i64, ts: u64) -> CwEvent {
        CwEvent::external(Token::Int(val), Timestamp(ts))
    }

    fn rec_ev(car: i64, val: i64, ts: u64) -> CwEvent {
        CwEvent::external(
            Token::record().field("carid", car).field("v", val).build(),
            Timestamp(ts),
        )
    }

    fn values(w: &Window) -> Vec<i64> {
        w.tokens().map(|t| t.as_int().unwrap()).collect()
    }

    #[test]
    fn sliding_tuple_window() {
        // {Size: 4, Step: 1} — the stopped-car detection shape.
        let mut op = WindowOperator::new(WindowSpec::tuples(4, 1)).unwrap();
        for i in 0..4 {
            op.push(ev(i, i as u64), Timestamp(i as u64)).unwrap();
        }
        let w = op.pop_window().expect("first window after 4 events");
        assert_eq!(values(&w), vec![0, 1, 2, 3]);
        assert!(op.pop_window().is_none());
        op.push(ev(4, 4), Timestamp(4)).unwrap();
        let w = op.pop_window().expect("window slides by 1");
        assert_eq!(values(&w), vec![1, 2, 3, 4]);
        // Sliding by one expires exactly one event per window.
        assert_eq!(op.drain_expired().len(), 2);
    }

    #[test]
    fn tumbling_tuple_window_with_delete_used() {
        let spec = WindowSpec::tuples(2, 1).delete_used(true);
        let mut op = WindowOperator::new(spec).unwrap();
        for i in 0..6 {
            op.push(ev(i, i as u64), Timestamp(i as u64)).unwrap();
        }
        // delete_used consumes whole windows: [0,1], [2,3], [4,5].
        assert_eq!(values(&op.pop_window().unwrap()), vec![0, 1]);
        assert_eq!(values(&op.pop_window().unwrap()), vec![2, 3]);
        assert_eq!(values(&op.pop_window().unwrap()), vec![4, 5]);
        assert!(op.pop_window().is_none());
        assert_eq!(op.pending_events(), 0);
        assert_eq!(op.expired_len(), 6);
    }

    #[test]
    fn each_event_window() {
        let mut op = WindowOperator::new(WindowSpec::each_event()).unwrap();
        let n = op.push(ev(7, 1), Timestamp(1)).unwrap();
        assert_eq!(n, 1);
        let w = op.pop_window().unwrap();
        assert_eq!(values(&w), vec![7]);
        assert_eq!(op.pending_events(), 0);
    }

    #[test]
    fn grouped_tuple_windows() {
        // {Size: 2, Step: 1, Group-by: carid} — toll-calculation shape.
        let spec = WindowSpec::tuples(2, 1).group_by(GroupBy::fields(&["carid"]));
        let mut op = WindowOperator::new(spec).unwrap();
        op.push(rec_ev(1, 10, 0), Timestamp(0)).unwrap();
        op.push(rec_ev(2, 20, 1), Timestamp(1)).unwrap();
        assert!(op.pop_window().is_none(), "one event per car: no window");
        op.push(rec_ev(1, 11, 2), Timestamp(2)).unwrap();
        let w = op.pop_window().expect("car 1 has two reports");
        assert_eq!(w.group, Token::record().field("carid", 1).build());
        assert_eq!(
            w.tokens().map(|t| t.int_field("v").unwrap()).collect::<Vec<_>>(),
            vec![10, 11]
        );
        op.push(rec_ev(2, 21, 3), Timestamp(3)).unwrap();
        let w = op.pop_window().expect("car 2 has two reports");
        assert_eq!(w.group, Token::record().field("carid", 2).build());
    }

    #[test]
    fn group_key_error_propagates() {
        let spec = WindowSpec::tuples(1, 1).group_by(GroupBy::fields(&["x"]));
        let mut op = WindowOperator::new(spec).unwrap();
        assert!(op.push(ev(1, 0), Timestamp(0)).is_err());
    }

    #[test]
    fn tuple_timeout_produces_short_window() {
        let spec = WindowSpec::tuples(4, 4).with_timeout(Micros(100));
        let mut op = WindowOperator::new(spec).unwrap();
        op.push(ev(1, 10), Timestamp(10)).unwrap();
        op.push(ev(2, 20), Timestamp(20)).unwrap();
        assert_eq!(op.poll(Timestamp(50)), 0, "timeout not reached");
        assert_eq!(op.next_deadline(), Some(Timestamp(110)));
        assert_eq!(op.poll(Timestamp(110)), 1, "forced short window");
        let w = op.pop_window().unwrap();
        assert!(w.timed_out);
        assert_eq!(values(&w), vec![1, 2]);
        // The short window advanced past its events: no re-emission.
        assert_eq!(op.poll(Timestamp(500)), 0);
        assert_eq!(op.pending_events(), 0);
    }

    #[test]
    fn tuple_timeout_prefers_full_window() {
        let spec = WindowSpec::tuples(2, 2).with_timeout(Micros(100));
        let mut op = WindowOperator::new(spec).unwrap();
        op.push(ev(1, 0), Timestamp(0)).unwrap();
        op.push(ev(2, 1), Timestamp(1)).unwrap();
        // Window already emitted by push; poll after timeout adds nothing.
        assert_eq!(op.ready_len(), 1);
        assert_eq!(op.poll(Timestamp(1000)), 0);
    }

    #[test]
    fn tumbling_time_window() {
        // {Size: 1 min, Step: 1 min} — segment-statistics shape (µs scaled
        // down to 100 for the test).
        let mut op = WindowOperator::new(WindowSpec::time(Micros(100), Micros(100))).unwrap();
        op.push(ev(1, 10), Timestamp(10)).unwrap();
        op.push(ev(2, 60), Timestamp(60)).unwrap();
        assert!(op.pop_window().is_none(), "window [0,100) still open");
        op.push(ev(3, 120), Timestamp(120)).unwrap();
        let w = op.pop_window().expect("event at 120 closes [0,100)");
        assert_eq!(values(&w), vec![1, 2]);
        op.push(ev(4, 205), Timestamp(205)).unwrap();
        let w = op.pop_window().expect("event at 205 closes [100,200)");
        assert_eq!(values(&w), vec![3]);
    }

    #[test]
    fn sliding_time_window_overlap() {
        // size 100, step 50 → event at t=60 appears in windows [0,100) and [50,150).
        let mut op = WindowOperator::new(WindowSpec::time(Micros(100), Micros(50))).unwrap();
        op.push(ev(1, 60), Timestamp(60)).unwrap();
        op.push(ev(2, 160), Timestamp(160)).unwrap();
        let w1 = op.pop_window().expect("[0,100) closed at watermark 160");
        assert_eq!(values(&w1), vec![1]);
        let w2 = op.pop_window().expect("[50,150) closed at watermark 160");
        assert_eq!(values(&w2), vec![1]);
        assert!(op.pop_window().is_none());
    }

    #[test]
    fn time_window_delete_used_consumes() {
        let spec = WindowSpec::time(Micros(100), Micros(50)).delete_used(true);
        let mut op = WindowOperator::new(spec).unwrap();
        op.push(ev(1, 60), Timestamp(60)).unwrap();
        op.push(ev(2, 160), Timestamp(160)).unwrap();
        let w1 = op.pop_window().expect("[0,100) closes");
        assert_eq!(values(&w1), vec![1]);
        assert!(
            op.pop_window().is_none(),
            "delete_used: event 1 consumed, window [50,150) skipped"
        );
    }

    #[test]
    fn time_window_poll_closes_by_clock() {
        let mut op = WindowOperator::new(WindowSpec::tumbling_time(Micros(100))).unwrap();
        op.push(ev(1, 10), Timestamp(10)).unwrap();
        assert_eq!(op.next_deadline(), Some(Timestamp(100)));
        assert_eq!(op.poll(Timestamp(99)), 0);
        assert_eq!(op.poll(Timestamp(100)), 1, "clock reaching boundary closes window");
        let w = op.pop_window().unwrap();
        assert_eq!(values(&w), vec![1]);
    }

    #[test]
    fn time_window_late_event_expires() {
        let mut op = WindowOperator::new(WindowSpec::tumbling_time(Micros(100))).unwrap();
        op.push(ev(1, 150), Timestamp(150)).unwrap();
        op.poll(Timestamp(200)); // closes [100,200) → window with event 1
        assert_eq!(op.pop_window().map(|w| values(&w)), Some(vec![1]));
        op.push(ev(9, 50), Timestamp(201)).unwrap();
        assert_eq!(op.pop_window(), None);
        let expired = op.drain_expired();
        assert_eq!(expired.len(), 2, "consumed event 1 + late event 9");
        assert_eq!(op.pending_events(), 0);
    }

    #[test]
    fn time_window_empty_windows_skipped() {
        let mut op = WindowOperator::new(WindowSpec::tumbling_time(Micros(10))).unwrap();
        op.push(ev(1, 5), Timestamp(5)).unwrap();
        op.push(ev(2, 1000), Timestamp(1000)).unwrap();
        // Only the two non-empty windows emit; the ~98 empty ones are skipped.
        assert_eq!(op.ready_len(), 1);
        assert_eq!(values(&op.pop_window().unwrap()), vec![1]);
        op.poll(Timestamp(1010));
        assert_eq!(values(&op.pop_window().unwrap()), vec![2]);
        assert!(op.pop_window().is_none());
    }

    #[test]
    fn wave_window_completes_on_last_marks() {
        use crate::wave::WaveTag;
        let mut op = WindowOperator::new(WindowSpec::wave()).unwrap();
        let root = WaveTag::external(Timestamp(5));
        let e1 = CwEvent::derived(Token::Int(1), Timestamp(6), &root, 1, false);
        let e2 = CwEvent::derived(Token::Int(2), Timestamp(7), &root, 2, true);
        op.push(e1, Timestamp(6)).unwrap();
        assert!(op.pop_window().is_none());
        op.push(e2, Timestamp(7)).unwrap();
        let w = op.pop_window().expect("wave complete");
        assert_eq!(values(&w), vec![1, 2]);
        assert_eq!(op.pending_events(), 0);
    }

    #[test]
    fn wave_window_timeout_flushes_incomplete_wave() {
        use crate::wave::WaveTag;
        let spec = WindowSpec::wave().with_timeout(Micros(50));
        let mut op = WindowOperator::new(spec).unwrap();
        let root = WaveTag::external(Timestamp(5));
        let e1 = CwEvent::derived(Token::Int(1), Timestamp(6), &root, 1, false);
        op.push(e1, Timestamp(6)).unwrap();
        assert_eq!(op.next_deadline(), Some(Timestamp(56)));
        assert_eq!(op.poll(Timestamp(56)), 1);
        let w = op.pop_window().unwrap();
        assert!(w.timed_out);
        assert_eq!(values(&w), vec![1]);
    }

    #[test]
    fn interleaved_waves_form_separate_windows() {
        let mut op = WindowOperator::new(WindowSpec::wave()).unwrap();
        // Two external events, each its own wave of one.
        op.push(ev(1, 10), Timestamp(10)).unwrap();
        op.push(ev(2, 20), Timestamp(20)).unwrap();
        assert_eq!(op.ready_len(), 2);
        assert_eq!(values(&op.pop_window().unwrap()), vec![1]);
        assert_eq!(values(&op.pop_window().unwrap()), vec![2]);
    }

    #[test]
    fn pending_and_ready_counters() {
        let mut op = WindowOperator::new(WindowSpec::tuples(3, 3)).unwrap();
        op.push(ev(1, 0), Timestamp(0)).unwrap();
        op.push(ev(2, 1), Timestamp(1)).unwrap();
        assert_eq!(op.pending_events(), 2);
        assert_eq!(op.ready_len(), 0);
        op.push(ev(3, 2), Timestamp(2)).unwrap();
        assert_eq!(op.ready_len(), 1);
        // step == size without delete_used expires the whole window content.
        assert_eq!(op.pending_events(), 0);
    }

    #[test]
    fn flush_forces_out_tuple_remainders() {
        let spec = WindowSpec::tuples(4, 4).group_by(GroupBy::fields(&["carid"]));
        let mut op = WindowOperator::new(spec).unwrap();
        op.push(rec_ev(1, 10, 0), Timestamp(0)).unwrap();
        op.push(rec_ev(2, 20, 1), Timestamp(1)).unwrap();
        op.push(rec_ev(1, 11, 2), Timestamp(2)).unwrap();
        assert_eq!(op.ready_len(), 0);
        assert_eq!(op.flush(Timestamp(10)), 2, "one short window per group");
        let w1 = op.pop_window().unwrap();
        let w2 = op.pop_window().unwrap();
        assert!(w1.timed_out && w2.timed_out);
        assert_eq!(w1.len() + w2.len(), 3);
        assert_eq!(op.pending_events(), 0);
        // Flushing again is a no-op.
        assert_eq!(op.flush(Timestamp(11)), 0);
    }

    #[test]
    fn flush_closes_time_windows() {
        let mut op = WindowOperator::new(WindowSpec::tumbling_time(Micros(100))).unwrap();
        op.push(ev(1, 10), Timestamp(10)).unwrap();
        op.push(ev(2, 110), Timestamp(110)).unwrap();
        assert_eq!(op.ready_len(), 1, "[0,100) closed by watermark");
        assert_eq!(op.flush(Timestamp(120)), 1, "[100,200) forced closed");
        op.pop_window().unwrap();
        let w = op.pop_window().unwrap();
        assert_eq!(values(&w), vec![2]);
        assert!(!w.timed_out, "end-of-stream content is final");
        assert_eq!(op.pending_events(), 0);
    }

    #[test]
    fn flush_emits_incomplete_waves() {
        use crate::wave::WaveTag;
        let mut op = WindowOperator::new(WindowSpec::wave()).unwrap();
        let root = WaveTag::external(Timestamp(5));
        op.push(
            CwEvent::derived(Token::Int(1), Timestamp(6), &root, 1, false),
            Timestamp(6),
        )
        .unwrap();
        assert_eq!(op.flush(Timestamp(10)), 1);
        assert!(op.pop_window().unwrap().timed_out);
    }

    #[test]
    fn deadline_none_when_empty_or_no_timeout() {
        let op = WindowOperator::new(WindowSpec::tuples(4, 1)).unwrap();
        assert_eq!(op.next_deadline(), None);
        let mut op = WindowOperator::new(WindowSpec::tuples(4, 1).with_timeout(Micros(10))).unwrap();
        assert_eq!(op.next_deadline(), None);
        op.push(ev(1, 3), Timestamp(3)).unwrap();
        assert_eq!(op.next_deadline(), Some(Timestamp(13)));
    }
}
