//! Timestamped, wave-stamped events: the unit of data in a continuous
//! workflow.
//!
//! Raw [`Token`]s are encapsulated into [`CwEvent`]s when they enter a
//! receiver, as dictated by the timekeeping components: each event carries
//! the time it was produced and its [`WaveTag`] lineage. The timestamp of
//! the wave's initiating external event (`event.wave.origin()`) is what QoS
//! metrics such as response time are measured against.

use crate::time::Timestamp;
use crate::token::Token;
use crate::wave::WaveTag;

/// A token wrapped with timing and lineage metadata.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CwEvent {
    /// The payload.
    pub token: Token,
    /// When this event was produced (stamped by the director's clock).
    pub timestamp: Timestamp,
    /// Lineage: which external event this derives from, and how.
    pub wave: WaveTag,
}

impl CwEvent {
    /// An external event entering the system at `ts`: it initiates a new
    /// wave whose tag is its own timestamp.
    pub fn external(token: Token, ts: Timestamp) -> Self {
        CwEvent {
            token,
            timestamp: ts,
            wave: WaveTag::external(ts),
        }
    }

    /// An internal event derived from `parent`'s wave: the `index`-th
    /// (1-based) event produced by one firing, `last` marking the firing's
    /// final production.
    pub fn derived(token: Token, produced_at: Timestamp, parent: &WaveTag, index: u32, last: bool) -> Self {
        CwEvent {
            token,
            timestamp: produced_at,
            wave: parent.child(index, last),
        }
    }

    /// Timestamp of the initiating external event — the reference point for
    /// response-time (latency) measurements.
    pub fn origin(&self) -> Timestamp {
        self.wave.origin()
    }

    /// Age of this event's wave at time `now` (response time if measured at
    /// an output actor).
    pub fn latency_at(&self, now: Timestamp) -> crate::time::Micros {
        now.since(self.origin())
    }
}

/// Stamps the productions of a single actor firing with consecutive wave
/// serial numbers, marking the last one.
///
/// Directors buffer a firing's emissions, then run them through a
/// `WaveStamper` once the firing completes (only then is the last
/// production known).
#[derive(Debug)]
pub struct WaveStamper {
    parent: WaveTag,
}

impl WaveStamper {
    /// Stamper for productions triggered by an event of wave `parent`.
    pub fn new(parent: WaveTag) -> Self {
        WaveStamper { parent }
    }

    /// Stamp `tokens` as the complete production set of one firing,
    /// produced at `now`. The final token is marked last-of-firing.
    pub fn stamp_all(&self, tokens: Vec<Token>, now: Timestamp) -> Vec<CwEvent> {
        let n = tokens.len();
        tokens
            .into_iter()
            .enumerate()
            .map(|(i, token)| {
                CwEvent::derived(token, now, &self.parent, (i + 1) as u32, i + 1 == n)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Micros;

    #[test]
    fn external_event_initiates_wave() {
        let e = CwEvent::external(Token::Int(1), Timestamp(100));
        assert_eq!(e.origin(), Timestamp(100));
        assert_eq!(e.timestamp, Timestamp(100));
        assert_eq!(e.wave.depth(), 0);
    }

    #[test]
    fn derived_event_extends_wave() {
        let root = CwEvent::external(Token::Unit, Timestamp(5));
        let d = CwEvent::derived(Token::Int(9), Timestamp(20), &root.wave, 2, true);
        assert_eq!(d.origin(), Timestamp(5)); // origin is inherited
        assert_eq!(d.timestamp, Timestamp(20)); // production time is new
        assert_eq!(d.wave.depth(), 1);
        assert!(d.wave.on_last_spine());
    }

    #[test]
    fn latency_measures_against_wave_origin() {
        let root = CwEvent::external(Token::Unit, Timestamp(1_000));
        let d = CwEvent::derived(Token::Unit, Timestamp(4_000), &root.wave, 1, true);
        assert_eq!(d.latency_at(Timestamp(6_000)), Micros(5_000));
    }

    #[test]
    fn stamper_numbers_and_marks_last() {
        let root = WaveTag::external(Timestamp(1));
        let stamper = WaveStamper::new(root);
        let events = stamper.stamp_all(
            vec![Token::Int(1), Token::Int(2), Token::Int(3)],
            Timestamp(10),
        );
        assert_eq!(events.len(), 3);
        let tags: Vec<String> = events.iter().map(|e| e.wave.to_string()).collect();
        assert_eq!(tags, vec!["t1.1", "t1.2", "t1.3!"]);
        assert!(events.iter().all(|e| e.timestamp == Timestamp(10)));
    }

    #[test]
    fn stamper_empty_production() {
        let stamper = WaveStamper::new(WaveTag::external(Timestamp(1)));
        assert!(stamper.stamp_all(vec![], Timestamp(2)).is_empty());
    }
}
