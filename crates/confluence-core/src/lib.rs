//! # confluence-core
//!
//! The Continuous Workflow (CWf) model at the heart of **CONFLuEnCE**, the
//! CONtinuous workFLow ExeCution Engine (Neophytou, Chrysanthis, Labrinidis;
//! SIGMOD 2011 / SWEET 2013), reimplemented as a Rust library.
//!
//! A continuous workflow is always active: it continuously integrates and
//! reacts to internal streams of events and external streams of updates, at
//! the same time and in any part of the workflow network. The model achieves
//! this with:
//!
//! * **active queues** on activity inputs supporting **windows** and
//!   **waves** (flexible bounds on unbounded streams, synchronization of
//!   multiple streams) — [`window`], [`wave`], [`receiver`];
//! * **pipelined concurrent execution** of sequential activities —
//!   [`director`];
//! * **push communication** from external stream sources — [`actors`].
//!
//! Actors, ports, channels, and directors follow the Kepler/Ptolemy
//! decoupling: a workflow is specified once ([`graph`]) and executed under
//! different models of computation (the directors: thread-based PNCWF, SDF,
//! DDF, DE — and, in the `confluence-sched` crate, the STAFiLOS scheduled
//! director).

pub mod actor;
pub mod actors;
pub mod channel;
pub mod director;
pub mod engine;
pub mod testing;
pub mod error;
pub mod event;
pub mod graph;
pub mod receiver;
pub mod shard;
pub mod spec;
pub mod telemetry;
pub mod time;
pub mod token;
pub mod wave;
pub mod window;

pub use actor::{Actor, FireContext, IoSignature};
pub use channel::{ChannelPolicy, OnFull};
pub use engine::{Engine, ExecConfig, RunHandle, StopCondition};
pub use error::{Error, Result};
pub use event::CwEvent;
pub use graph::{ActorId, Endpoint, PortSel, Shard, ShardGroup, Workflow, WorkflowBuilder};
pub use telemetry::{MetricsRecorder, MetricsSnapshot, Observer, RunPhase, Telemetry};
pub use time::{Clock, Micros, SharedClock, Timestamp, VirtualClock, WallClock};
pub use token::Token;
pub use wave::WaveTag;
pub use window::{GroupBy, Measure, Window, WindowOperator, WindowSpec};
