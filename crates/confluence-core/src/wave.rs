//! Waves and wave-tags: event lineage for stream synchronization.
//!
//! A *wave* is the set of internal events associated with one external
//! event. When external event `e_i` (timestamp `t_i`) enters the system it
//! initiates a wave; processing any event of the wave produces events that
//! join the wave with hierarchical wave-tags `t_i.1, t_i.2, ..., t_i.n`
//! (and sub-waves `t_i.3.1, ...`). The last event produced at each level is
//! marked, which lets a downstream task synchronize all the events belonging
//! to a single wave (see [`WaveTracker`]).

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;

use crate::time::Timestamp;

/// One level of a hierarchical wave-tag: the serial number of the event
/// among its siblings, plus the "last sibling" mark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WaveStep {
    /// 1-based serial number among the events produced by one firing.
    pub index: u32,
    /// Whether this was the last event produced by that firing.
    pub last: bool,
}

/// A hierarchical wave-tag, e.g. `t_i.3.1`.
///
/// `origin` is the timestamp of the external event that initiated the wave;
/// `path` holds the per-level serial numbers. An external event's own tag
/// has an empty path.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct WaveTag {
    origin: Timestamp,
    path: Vec<WaveStep>,
}

impl WaveTag {
    /// Tag for an external event entering the system at `origin`.
    pub fn external(origin: Timestamp) -> Self {
        WaveTag {
            origin,
            path: Vec::new(),
        }
    }

    /// The timestamp of the wave's initiating external event.
    pub fn origin(&self) -> Timestamp {
        self.origin
    }

    /// Nesting depth: 0 for the external event itself.
    pub fn depth(&self) -> usize {
        self.path.len()
    }

    /// The per-level steps.
    pub fn path(&self) -> &[WaveStep] {
        &self.path
    }

    /// Tag of the `index`-th (1-based) event produced while processing the
    /// event carrying `self`; `last` marks the final event of that firing.
    pub fn child(&self, index: u32, last: bool) -> WaveTag {
        debug_assert!(index >= 1, "wave serial numbers are 1-based");
        let mut path = Vec::with_capacity(self.path.len() + 1);
        path.extend_from_slice(&self.path);
        path.push(WaveStep { index, last });
        WaveTag {
            origin: self.origin,
            path,
        }
    }

    /// Whether two tags belong to the same wave (same initiating event).
    pub fn same_wave(&self, other: &WaveTag) -> bool {
        self.origin == other.origin
    }

    /// Whether `self` is a strict ancestor of `other` in the wave hierarchy.
    pub fn is_ancestor_of(&self, other: &WaveTag) -> bool {
        self.origin == other.origin
            && self.path.len() < other.path.len()
            && other.path[..self.path.len()]
                .iter()
                .zip(&self.path)
                .all(|(a, b)| a.index == b.index)
    }

    /// Whether every level of this tag carries the last-sibling mark — i.e.
    /// this event is on the "rightmost spine" of the wave tree. If events
    /// are produced in serial-number order, the final event of the whole
    /// wave is exactly the rightmost-spine leaf.
    pub fn on_last_spine(&self) -> bool {
        self.path.iter().all(|s| s.last)
    }

    /// Tag of the event whose processing produced this one: the path with
    /// its final step removed. `None` for external events (depth 0).
    pub fn parent(&self) -> Option<WaveTag> {
        if self.path.is_empty() {
            return None;
        }
        Some(WaveTag {
            origin: self.origin,
            path: self.path[..self.path.len() - 1].to_vec(),
        })
    }

    /// Parse the [`Display`](fmt::Display) rendering back into a tag:
    /// `t<origin_µs>` followed by zero or more `.<serial>` steps, each
    /// optionally suffixed `!` for the last-sibling mark. Round-trips
    /// `tag.to_string()` exactly.
    pub fn parse(s: &str) -> Option<WaveTag> {
        let rest = s.strip_prefix('t')?;
        let mut parts = rest.split('.');
        let origin_str = parts.next()?;
        if origin_str.is_empty() || !origin_str.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        let origin = Timestamp(origin_str.parse().ok()?);
        let mut path = Vec::new();
        for part in parts {
            let (num, last) = match part.strip_suffix('!') {
                Some(n) => (n, true),
                None => (part, false),
            };
            if num.is_empty() || !num.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            let index: u32 = num.parse().ok()?;
            if index == 0 {
                return None; // serial numbers are 1-based
            }
            path.push(WaveStep { index, last });
        }
        Some(WaveTag { origin, path })
    }
}

impl std::str::FromStr for WaveTag {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        WaveTag::parse(s).ok_or_else(|| format!("malformed wave-tag {s:?}"))
    }
}

impl PartialOrd for WaveTag {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for WaveTag {
    /// Waves order by origin timestamp, then lexicographically by path —
    /// the order in which a serial execution would have produced the events.
    fn cmp(&self, other: &Self) -> Ordering {
        self.origin.cmp(&other.origin).then_with(|| {
            for (a, b) in self.path.iter().zip(&other.path) {
                match a.index.cmp(&b.index) {
                    Ordering::Equal => continue,
                    non_eq => return non_eq,
                }
            }
            self.path.len().cmp(&other.path.len())
        })
    }
}

impl fmt::Display for WaveTag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.origin.as_micros())?;
        for step in &self.path {
            write!(f, ".{}", step.index)?;
            if step.last {
                write!(f, "!")?;
            }
        }
        Ok(())
    }
}

/// Detects the completion of a single wave from the tags a consumer
/// observes.
///
/// Feed every received tag of one wave into [`WaveTracker::observe`]; the
/// tracker reports completion once it can prove that every event of the
/// wave (every leaf of the wave tree that flows to this consumer) has been
/// seen. The proof uses the last-sibling marks: a node's child count is
/// known once its last-marked child (or a descendant of it) is observed,
/// and a node is complete when all its children have arrived and every
/// child that spawned a sub-wave is itself complete.
#[derive(Debug, Default)]
pub struct WaveTracker {
    root: Node,
    observed: usize,
}

#[derive(Debug, Default)]
struct Node {
    /// Total number of children, known once a last-marked child is seen.
    expected: Option<u32>,
    /// Children by serial number.
    children: BTreeMap<u32, Node>,
    /// Whether the event with this exact tag arrived (leaf arrival).
    arrived: bool,
}

impl Node {
    fn complete(&self) -> bool {
        match self.expected {
            // A node with no known child count is complete only if the
            // event itself arrived as a leaf (no sub-wave spawned from it).
            None => self.arrived && self.children.is_empty(),
            // Serial numbers are 1-based, so a known count is at least 1.
            Some(n) => (1..=n).all(|i| self.children.get(&i).is_some_and(Node::complete)),
        }
    }
}

impl WaveTracker {
    /// New tracker for a single wave.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of tags observed so far.
    pub fn observed(&self) -> usize {
        self.observed
    }

    /// Record a received tag. Panics in debug builds if tags from different
    /// waves are mixed (callers partition by `origin` first).
    pub fn observe(&mut self, tag: &WaveTag) {
        self.observed += 1;
        let mut node = &mut self.root;
        for step in tag.path() {
            if step.last {
                node.expected = Some(step.index);
            }
            node = node.children.entry(step.index).or_default();
        }
        node.arrived = true;
    }

    /// Whether the wave is provably complete at this consumer.
    ///
    /// The external event itself (empty path) counts as a wave of one event.
    pub fn is_complete(&self) -> bool {
        if self.observed == 0 {
            return false;
        }
        if self.root.expected.is_none() {
            // Only the external event arrived un-expanded.
            return self.root.arrived && self.root.children.is_empty();
        }
        self.root.complete()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ext(us: u64) -> WaveTag {
        WaveTag::external(Timestamp(us))
    }

    #[test]
    fn external_tag_basics() {
        let t = ext(42);
        assert_eq!(t.origin(), Timestamp(42));
        assert_eq!(t.depth(), 0);
        assert!(t.on_last_spine()); // vacuously
        assert_eq!(t.to_string(), "t42");
    }

    #[test]
    fn child_tags_extend_the_path() {
        let t = ext(1);
        let c = t.child(3, false);
        assert_eq!(c.depth(), 1);
        assert_eq!(c.path()[0], WaveStep { index: 3, last: false });
        let g = c.child(1, true);
        assert_eq!(g.depth(), 2);
        assert_eq!(g.to_string(), "t1.3.1!");
        assert!(t.same_wave(&g));
        assert!(!t.same_wave(&ext(2)));
    }

    #[test]
    fn ancestor_relation() {
        let t = ext(1);
        let a = t.child(2, false);
        let b = a.child(1, true);
        assert!(t.is_ancestor_of(&a));
        assert!(t.is_ancestor_of(&b));
        assert!(a.is_ancestor_of(&b));
        assert!(!b.is_ancestor_of(&a));
        assert!(!a.is_ancestor_of(&t.child(3, false).child(9, false)));
        assert!(!a.is_ancestor_of(&a.clone()));
    }

    #[test]
    fn last_spine_detection() {
        let t = ext(1);
        assert!(t.child(2, true).on_last_spine());
        assert!(t.child(2, true).child(5, true).on_last_spine());
        assert!(!t.child(2, true).child(5, false).on_last_spine());
        assert!(!t.child(2, false).child(5, true).on_last_spine());
    }

    #[test]
    fn ordering_matches_serial_production_order() {
        let t = ext(1);
        let mut tags = [
            t.child(2, false),
            t.clone(),
            t.child(1, false).child(2, true),
            t.child(1, false),
            ext(0),
        ];
        tags.sort();
        assert_eq!(
            tags.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
            vec!["t0", "t1", "t1.1", "t1.1.2!", "t1.2"]
        );
    }

    #[test]
    fn parse_round_trips_display() {
        let tags = [
            ext(0),
            ext(42),
            ext(1).child(3, false).child(1, true),
            ext(10).child(2, true),
            ext(7).child(1, true).child(4, false).child(2, true),
        ];
        for tag in &tags {
            let s = tag.to_string();
            let parsed = WaveTag::parse(&s).unwrap_or_else(|| panic!("parse {s:?}"));
            assert_eq!(&parsed, tag, "round-trip of {s}");
            assert_eq!(parsed.to_string(), s);
        }
        // FromStr is the same parser.
        let t: WaveTag = "t1.3.1!".parse().unwrap();
        assert_eq!(t, ext(1).child(3, false).child(1, true));
    }

    #[test]
    fn parse_rejects_malformed_tags() {
        for bad in ["", "t", "x42", "t1.", "t1..2", "t1.0", "t1.a", "t1.2!!", "42", "t-1"] {
            assert!(WaveTag::parse(bad).is_none(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn parent_strips_the_last_step() {
        let t = ext(5);
        assert_eq!(t.parent(), None);
        let c = t.child(2, false).child(1, true);
        assert_eq!(c.parent(), Some(t.child(2, false)));
        assert_eq!(c.parent().unwrap().parent(), Some(t.clone()));
    }

    #[test]
    fn tracker_single_external_event() {
        let mut tr = WaveTracker::new();
        assert!(!tr.is_complete());
        tr.observe(&ext(1));
        assert!(tr.is_complete());
        assert_eq!(tr.observed(), 1);
    }

    #[test]
    fn tracker_flat_wave() {
        // One firing produced 3 events; wave complete when all arrive.
        let t = ext(1);
        let mut tr = WaveTracker::new();
        tr.observe(&t.child(1, false));
        assert!(!tr.is_complete());
        tr.observe(&t.child(3, true));
        assert!(!tr.is_complete()); // #2 still missing, but count now known
        tr.observe(&t.child(2, false));
        assert!(tr.is_complete());
    }

    #[test]
    fn tracker_out_of_order_arrival() {
        let t = ext(7);
        let mut tr = WaveTracker::new();
        tr.observe(&t.child(2, true));
        tr.observe(&t.child(1, false));
        assert!(tr.is_complete());
    }

    #[test]
    fn tracker_nested_subwave() {
        // t.1, t.2! where t.1 spawned a sub-wave t.1.1, t.1.2!
        let t = ext(1);
        let mut tr = WaveTracker::new();
        tr.observe(&t.child(2, true));
        tr.observe(&t.child(1, false).child(1, false));
        assert!(!tr.is_complete()); // t.1's sub-wave not finished
        tr.observe(&t.child(1, false).child(2, true));
        assert!(tr.is_complete());
    }

    #[test]
    fn tracker_subwave_without_leaf_parent() {
        // The consumer never sees t.1 itself, only its descendants — that
        // still proves t.1's subtree once the last-marked child arrives.
        let t = ext(3);
        let mut tr = WaveTracker::new();
        tr.observe(&t.child(1, true).child(1, true));
        assert!(tr.is_complete());
    }

    #[test]
    fn tracker_incomplete_when_subwave_undetermined() {
        // t.1 arrived as a leaf, but the sibling count is unknown (no
        // last-marked sibling yet) → cannot conclude.
        let t = ext(1);
        let mut tr = WaveTracker::new();
        tr.observe(&t.child(1, false));
        assert!(!tr.is_complete());
    }
}
