//! Pluggable ready-queue policies for the pool executor.
//!
//! The paper's STAFiLOS layer replaces Kepler's OS-delegated scheduling
//! with workflow-aware policies (§3: FIFO, Rate-Based, EDF, quantum-based
//! round-robin). `confluence-sched` reproduces those policies in virtual
//! time; this module ports them to the *wall-clock* pool executor, where
//! the ready "queue" is per-worker and work-stealing. Each worker owns a
//! [`ReadyQueue`] — a binary min-heap of [`ReadyEntry`] keys plus a LIFO
//! slot for cache-warm reruns — and a [`PoolPolicy`] maps a ready actor to
//! its priority key at push/pop time:
//!
//! * [`Fifo`] — key 0 for everyone; the push sequence number alone orders
//!   the heap, reproducing the PR 3 deque behavior (control policy);
//! * [`RateBased`] — key from the cached `gSel/gCost` output-rate
//!   priority ([`LiveStats`]), higher rate first (Sharaf et al., as in
//!   the simulator's RB policy);
//! * [`OldestWave`] — EDF on wave origins: key is the origin timestamp of
//!   the oldest window pending at the actor's inbox, oldest first;
//! * [`Quantum`] — stride scheduling over the QBS allotments of
//!   Equation 1: each firing advances the actor's pass by
//!   `cost/allotment(priority)`, lowest pass first, so per-time-unit
//!   attention is proportional to the designer-assigned allotment.
//!
//! Keys are *advisory snapshots*: entries are keyed at push time and
//! lazily re-keyed on pop ([`ReadyQueue::pop_with`]), so a stale heap
//! never needs a global re-sort. Stealing takes the victim's *best* heap
//! entry ([`ReadyQueue::steal_best`]), never its LIFO slot — the thief
//! helps with the victim's most urgent work instead of its cache-warm
//! tail.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::graph::Workflow;
use crate::telemetry::{estimator, LiveStats};
use crate::time::{Micros, Timestamp};

/// One ready actor in a worker's queue. Ordered by `(key, seq)`: lower
/// key is more urgent, and the monotone push sequence number breaks ties
/// in arrival order (which makes key-0 policies exactly FIFO).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadyEntry {
    /// Policy priority key; lower runs first.
    pub key: u64,
    /// Monotone push sequence number (tie-break, FIFO within a key).
    pub seq: u64,
    /// Actor index.
    pub actor: usize,
}

impl Ord for ReadyEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.key, self.seq, self.actor).cmp(&(other.key, other.seq, other.actor))
    }
}

impl PartialOrd for ReadyEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// On pop, at most this many stale heads are re-keyed and re-inserted
/// before the current head is taken as-is. Bounds pop latency when many
/// keys drifted at once; staleness then corrects over subsequent pops.
const REKEY_BUDGET: usize = 3;

/// Consecutive pops the LIFO slot may win before it is forced through
/// the heap, so one backlogged actor re-queueing itself cannot starve
/// higher-priority heap entries on its worker.
const LIFO_STREAK_MAX: u32 = 3;

/// One worker's ready set: a binary min-heap over [`ReadyEntry`] plus an
/// optional LIFO slot. The slot holds the worker's most recent self-push
/// (an actor re-queued right after it ran) so the next pop re-runs it
/// while its state is cache-warm; everything else merges into the heap.
#[derive(Default)]
pub struct ReadyQueue {
    lifo: Option<ReadyEntry>,
    lifo_streak: u32,
    heap: BinaryHeap<Reverse<ReadyEntry>>,
}

impl ReadyQueue {
    /// An empty queue.
    pub fn new() -> Self {
        ReadyQueue::default()
    }

    /// Entries currently queued (heap plus LIFO slot).
    pub fn len(&self) -> usize {
        self.heap.len() + usize::from(self.lifo.is_some())
    }

    /// Whether nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.lifo.is_none() && self.heap.is_empty()
    }

    /// Queue an entry. With `hot` set the entry takes the LIFO slot
    /// (displacing any previous occupant into the heap); otherwise it
    /// goes straight into the heap.
    pub fn push(&mut self, entry: ReadyEntry, hot: bool) {
        if hot {
            if let Some(prev) = self.lifo.replace(entry) {
                self.heap.push(Reverse(prev));
            }
        } else {
            self.heap.push(Reverse(entry));
        }
    }

    /// Take the most urgent entry: the LIFO slot if occupied, else the
    /// heap minimum after lazy re-keying. `rekey` returns the *current*
    /// key for an actor; a head whose fresh key no longer wins is pushed
    /// back under it (at most [`REKEY_BUDGET`] times) so stale snapshots
    /// cannot leapfrog genuinely urgent work.
    pub fn pop_with(&mut self, mut rekey: impl FnMut(usize) -> u64) -> Option<ReadyEntry> {
        if let Some(e) = self.lifo.take() {
            if self.lifo_streak < LIFO_STREAK_MAX || self.heap.is_empty() {
                self.lifo_streak += 1;
                return Some(e);
            }
            // The slot has monopolized this worker: demote its occupant to
            // the heap and serve queued priorities first.
            self.heap.push(Reverse(e));
        }
        self.lifo_streak = 0;
        for _ in 0..REKEY_BUDGET {
            let Reverse(head) = self.heap.pop()?;
            let fresh = rekey(head.actor);
            if fresh <= head.key {
                return Some(head);
            }
            let updated = ReadyEntry { key: fresh, ..head };
            match self.heap.peek() {
                Some(&Reverse(next)) if updated > next => self.heap.push(Reverse(updated)),
                _ => return Some(updated),
            }
        }
        self.heap.pop().map(|Reverse(e)| e)
    }

    /// Steal the victim's best *heap* entry. The LIFO slot is never
    /// stolen: it is the victim's cache-warm continuation and the victim
    /// is about to pop it.
    pub fn steal_best(&mut self) -> Option<ReadyEntry> {
        self.heap.pop().map(|Reverse(e)| e)
    }
}

/// Everything a policy may consult when keying one ready actor.
pub struct PolicyView<'a> {
    /// Current wall-clock time.
    pub now: Timestamp,
    /// Whether the actor is a source.
    pub is_source: bool,
    /// Origin timestamp of the oldest window pending at the actor's
    /// inbox (`None` when empty or for sources).
    pub oldest_origin: Option<Timestamp>,
    /// Live statistics sampler (EMA costs, selectivities, cached rates).
    pub live: &'a LiveStats,
}

/// A ready-queue ordering policy for the pool executor. Implementations
/// are shared across workers and keyed on the push/pop hot path, so
/// [`PoolPolicy::key`] must be cheap (atomic loads, no locks held long).
pub trait PoolPolicy: Send + Sync {
    /// Stable lower-case policy name (CSV/CLI label).
    fn name(&self) -> &'static str;

    /// Size per-run state for the workflow about to execute. Called once
    /// before any worker starts.
    fn prepare(&self, workflow: &Workflow) {
        let _ = workflow;
    }

    /// Priority key for a ready actor; lower runs first. Ties run in
    /// push order.
    fn key(&self, actor: usize, view: &PolicyView<'_>) -> u64;

    /// A firing of `actor` completed at wall cost `cost`.
    fn on_fire(&self, actor: usize, cost: Micros) {
        let _ = (actor, cost);
    }

    /// Whether the executor should feed the [`LiveStats`] sampler for
    /// this policy (skipped for static policies to keep them zero-cost).
    fn needs_stats(&self) -> bool {
        false
    }

    /// Whether self-pushes may use the LIFO slot. Strict-order policies
    /// return `false`: a slot-hit would run the newest entry first.
    fn use_lifo_slot(&self) -> bool {
        true
    }
}

/// Arrival-order control policy: every key is 0, so the sequence number
/// alone orders the heap — exactly the PR 3 deque behavior. No LIFO slot
/// and no statistics feeding, so it doubles as the overhead baseline.
#[derive(Debug, Default, Clone, Copy)]
pub struct Fifo;

impl PoolPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }
    fn key(&self, _actor: usize, _view: &PolicyView<'_>) -> u64 {
        0
    }
    fn use_lifo_slot(&self) -> bool {
        false
    }
}

/// Rate-Based priority (Sharaf et al., the simulator's RB policy): rank
/// by the cached global output rate `Pr(A) = gSel(A)/gCost(A)` from
/// [`LiveStats`]. Sources key at 0 — inflow pacing belongs to the
/// arrival timetable, not the ready queue (the wall-clock port drops the
/// paper's source-interval regulation).
#[derive(Debug, Default, Clone, Copy)]
pub struct RateBased;

/// Key scale for inverting an output rate into a lower-is-better key.
const RATE_KEY_SCALE: f64 = 1e15;

impl PoolPolicy for RateBased {
    fn name(&self) -> &'static str {
        "rb"
    }
    fn key(&self, actor: usize, view: &PolicyView<'_>) -> u64 {
        if view.is_source {
            return 0;
        }
        let rate = view.live.rate_priority(actor);
        if rate.is_infinite() {
            // Unmeasured actors rank first, as in the simulator.
            return 0;
        }
        // Saturating float→int cast caps vanishing rates at u64::MAX.
        (RATE_KEY_SCALE / (rate + 1e-9)) as u64
    }
    fn needs_stats(&self) -> bool {
        true
    }
}

/// Earliest-deadline-first on wave origins: the key is the origin
/// timestamp (µs) of the oldest window pending at the actor's inbox, so
/// the tuple that has been in the system longest is served first.
/// Sources (and empty inboxes) key at `now` — their next tuple is born
/// now, so any backlogged internal work outranks them under load.
#[derive(Debug, Default, Clone, Copy)]
pub struct OldestWave;

impl PoolPolicy for OldestWave {
    fn name(&self) -> &'static str {
        "edf"
    }
    fn key(&self, _actor: usize, view: &PolicyView<'_>) -> u64 {
        if view.is_source {
            return view.now.as_micros();
        }
        view.oldest_origin.unwrap_or(view.now).as_micros()
    }
}

/// Pass increments are scaled by this factor before dividing by the
/// allotment so integer passes keep sub-allotment resolution.
const STRIDE_SCALE: u128 = 1_000_000;

#[derive(Default)]
struct QuantumState {
    /// QBS allotment per actor (µs of attention per scheduling round).
    allotments: Vec<u64>,
    /// Stride pass per actor: total charged cost scaled by 1/allotment.
    passes: Vec<AtomicU64>,
}

/// Stride-scheduling port of the paper's Quantum-Based round-robin: each
/// actor's time allotment comes from Equation 1
/// ([`estimator::qbs_allotment`], `(40−p)·b`, quadrupled for p < 20),
/// and every firing advances the actor's *pass* by
/// `cost·SCALE/allotment`. The ready queue runs the lowest pass first,
/// so over time each actor receives worker attention proportional to its
/// allotment — the work-stealing analogue of the simulator's QBS queues,
/// without a central round-robin iteration.
pub struct Quantum {
    basic_quantum: u64,
    state: RwLock<QuantumState>,
}

impl Quantum {
    /// Stride scheduler over Equation 1 allotments with basic quantum
    /// `b` µs (clamped to at least 1).
    pub fn new(basic_quantum: u64) -> Self {
        Quantum {
            basic_quantum: basic_quantum.max(1),
            state: RwLock::new(QuantumState::default()),
        }
    }

    /// The configured basic quantum `b`, µs.
    pub fn basic_quantum(&self) -> u64 {
        self.basic_quantum
    }
}

impl Default for Quantum {
    /// The experiments' default basic quantum (1 ms).
    fn default() -> Self {
        Quantum::new(1_000)
    }
}

impl PoolPolicy for Quantum {
    fn name(&self) -> &'static str {
        "qbs"
    }
    fn prepare(&self, workflow: &Workflow) {
        let mut st = self.state.write();
        st.allotments = workflow
            .actor_ids()
            .map(|id| estimator::qbs_allotment(workflow.node(id).priority, self.basic_quantum).max(1) as u64)
            .collect();
        st.passes = (0..st.allotments.len()).map(|_| AtomicU64::new(0)).collect();
    }
    fn key(&self, actor: usize, _view: &PolicyView<'_>) -> u64 {
        let st = self.state.read();
        st.passes.get(actor).map_or(0, |p| p.load(Ordering::Relaxed))
    }
    fn on_fire(&self, actor: usize, cost: Micros) {
        let st = self.state.read();
        let (Some(pass), Some(&allot)) = (st.passes.get(actor), st.allotments.get(actor)) else {
            return;
        };
        let stride = (cost.as_micros().max(1) as u128 * STRIDE_SCALE / allot as u128) as u64;
        pass.fetch_add(stride, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(key: u64, seq: u64, actor: usize) -> ReadyEntry {
        ReadyEntry { key, seq, actor }
    }

    fn stats1() -> LiveStats {
        LiveStats::with_downstream(vec![vec![]])
    }

    fn view(live: &LiveStats) -> PolicyView<'_> {
        PolicyView {
            now: Timestamp(500),
            is_source: false,
            oldest_origin: Some(Timestamp(100)),
            live,
        }
    }

    #[test]
    fn key_zero_entries_pop_in_push_order() {
        let mut q = ReadyQueue::new();
        for (seq, actor) in [(0, 7), (1, 3), (2, 9)] {
            q.push(e(0, seq, actor), false);
        }
        let order: Vec<usize> = std::iter::from_fn(|| q.pop_with(|_| 0)).map(|x| x.actor).collect();
        assert_eq!(order, vec![7, 3, 9], "key 0 ⇒ pure FIFO");
    }

    #[test]
    fn lower_keys_pop_first_and_steal_takes_the_best() {
        let mut q = ReadyQueue::new();
        q.push(e(30, 0, 1), false);
        q.push(e(10, 1, 2), false);
        q.push(e(20, 2, 3), false);
        assert_eq!(q.steal_best().unwrap().actor, 2, "thief gets the minimum");
        // Lazy re-key: fresh keys are 10·actor, so actor 1 (fresh 10) now
        // beats the stale head actor 3 (fresh 30).
        assert_eq!(q.pop_with(|a| a as u64 * 10).unwrap().actor, 1);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn lifo_slot_wins_pop_but_is_never_stolen() {
        let mut q = ReadyQueue::new();
        q.push(e(1, 0, 5), false);
        q.push(e(99, 1, 6), true);
        assert_eq!(q.len(), 2);
        assert_eq!(q.steal_best().unwrap().actor, 5, "steal skips the slot");
        assert_eq!(q.pop_with(|_| 0).unwrap().actor, 6, "slot wins the pop");
        assert!(q.is_empty());
        // A hot push displaces the previous occupant into the heap.
        q.push(e(5, 2, 7), true);
        q.push(e(1, 3, 8), true);
        assert_eq!(q.pop_with(|_| u64::MAX).unwrap().actor, 8);
        assert_eq!(q.pop_with(|k| k as u64).unwrap().actor, 7);
    }

    #[test]
    fn stale_heads_are_rekeyed_on_pop() {
        let mut q = ReadyQueue::new();
        q.push(e(1, 0, 1), false); // stale: current key is really 50
        q.push(e(10, 1, 2), false);
        let fresh = |a: usize| if a == 1 { 50 } else { 10 };
        assert_eq!(q.pop_with(fresh).unwrap().actor, 2, "rekeyed head loses");
        let got = q.pop_with(fresh).unwrap();
        assert_eq!((got.actor, got.key), (1, 50), "comes back out re-keyed");
    }

    #[test]
    fn lifo_streak_is_bounded_when_the_heap_has_work() {
        let mut q = ReadyQueue::new();
        q.push(e(0, 0, 9), false); // urgent heap entry
        // A self-requeueing actor keeps re-taking the slot...
        for i in 0..LIFO_STREAK_MAX {
            q.push(e(100, 1 + i as u64, 1), true);
            assert_eq!(q.pop_with(|_| 0).unwrap().actor, 1);
        }
        // ...until the streak cap forces the heap entry through.
        q.push(e(100, 50, 1), true);
        assert_eq!(q.pop_with(|_| 0).unwrap().actor, 9, "streak capped");
        assert_eq!(q.pop_with(|_| 100).unwrap().actor, 1, "demoted, not lost");
        // With an empty heap the slot may streak forever.
        for i in 0..LIFO_STREAK_MAX * 3 {
            q.push(e(100, 60 + i as u64, 1), true);
            assert_eq!(q.pop_with(|_| 0).unwrap().actor, 1);
        }
    }

    #[test]
    fn rekey_budget_bounds_the_pop_loop() {
        let mut q = ReadyQueue::new();
        for a in 0..5 {
            q.push(e(a, a, a as usize), false);
        }
        // Every rekey claims "worse than everything": the loop must still
        // terminate and return some entry.
        assert!(q.pop_with(|_| u64::MAX - 1).is_some());
        assert_eq!(q.len(), 4, "nothing is lost to the budget");
    }

    #[test]
    fn fifo_policy_is_inert() {
        let live = stats1();
        let p = Fifo;
        assert_eq!(p.key(0, &view(&live)), 0);
        assert!(!p.use_lifo_slot());
        assert!(!p.needs_stats());
        assert_eq!(p.name(), "fifo");
    }

    #[test]
    fn oldest_wave_keys_by_origin_and_sources_by_now() {
        let live = stats1();
        let p = OldestWave;
        assert_eq!(p.key(0, &view(&live)), 100, "pending origin µs");
        let src = PolicyView {
            is_source: true,
            ..view(&live)
        };
        assert_eq!(p.key(0, &src), 500, "sources key at now");
        let empty = PolicyView {
            oldest_origin: None,
            ..view(&live)
        };
        assert_eq!(p.key(0, &empty), 500, "empty inbox keys at now");
    }

    #[test]
    fn rate_based_ranks_high_rates_first() {
        let live = LiveStats::with_downstream(vec![vec![1], vec![]]);
        // 1 (terminal): 5µs/ev → Pr 0.2; 0: 10µs/ev, sel 0.5 → Pr 0.04.
        live.record_fire(0, Micros(100), 10, 5, None);
        live.record_fire(1, Micros(50), 10, 0, None);
        live.refresh_rate_priorities();
        let p = RateBased;
        let v = PolicyView {
            now: Timestamp(0),
            is_source: false,
            oldest_origin: None,
            live: &live,
        };
        assert!(p.key(1, &v) < p.key(0, &v), "higher rate ⇒ lower key");
        let src = PolicyView {
            is_source: true,
            ..v
        };
        assert_eq!(p.key(0, &src), 0, "sources bypass rate ranking");
        assert!(p.needs_stats());
    }

    #[test]
    fn quantum_passes_advance_inversely_to_allotment() {
        use crate::actors::{Collector, VecSource};
        use crate::graph::WorkflowBuilder;
        use crate::token::Token;
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("q");
        let s = b.add_actor("src", VecSource::new(vec![Token::Int(1)]));
        let k = b.add_actor("sink", c.actor());
        b.connect(s, "out", k, "in").unwrap();
        b.set_priority(s, 5); // allotment (40−5)·4·b = 140·b
        b.set_priority(k, 30); // allotment (40−30)·b = 10·b
        let wf = b.build().unwrap();
        let p = Quantum::new(1_000);
        p.prepare(&wf);
        let live = LiveStats::new(&wf);
        let v = PolicyView {
            now: Timestamp(0),
            is_source: false,
            oldest_origin: None,
            live: &live,
        };
        assert_eq!(p.key(0, &v), 0);
        p.on_fire(0, Micros(1_000));
        p.on_fire(1, Micros(1_000));
        let high = p.key(0, &v);
        let low = p.key(1, &v);
        assert!(high < low, "bigger allotment ⇒ smaller stride");
        assert_eq!(low / high, 14, "strides scale as the allotment ratio");
    }
}
