//! The pooled work-stealing continuous-workflow executor.
//!
//! The paper's PNCWF director inherits Kepler's thread-per-actor model,
//! which leaves scheduling entirely to the operating system and
//! oversubscribes cores as soon as the actor count exceeds the machine
//! (the Linear Road hierarchy alone instantiates over a dozen actors).
//! [`PoolDirector`] keeps the same continuous-workflow semantics but runs
//! every actor as a *task* over a fixed pool of N worker threads:
//!
//! * each worker owns a policy-ordered ready queue (a priority heap plus
//!   a cache-warm LIFO slot, see
//!   [`pool_policy`](super::pool_policy)) and steals the *best* entry
//!   from other workers' heaps when its own runs dry;
//! * the ordering is pluggable ([`PoolDirector::with_policy`]): FIFO (the
//!   control), Rate-Based, EDF-on-wave-origins, and stride-scheduled
//!   quantum allotments — the STAFiLOS §3 policies in wall-clock form;
//! * an actor becomes ready when a window forms on one of its receivers —
//!   the inbox raises an [`InboxWaker`] callback instead of waking a
//!   parked actor thread;
//! * timed-window deadlines are served by one shared timer thread over a
//!   deadline heap, not per-actor condvar waits;
//! * `Block` backpressure parks the *task*: a full port hands the event
//!   back ([`Fabric::try_deliver`]), the producing task is re-enqueued
//!   when the destination inbox frees space, and the artificial-deadlock
//!   detector (Parks) runs on the timer thread.
//!
//! The run spawns exactly N worker threads plus the timer thread,
//! independent of the actor count.

use std::cell::Cell;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Weak};
use std::thread;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::actor::Actor;
use crate::channel::OnFull;
use crate::error::{Error, Result};
use crate::event::CwEvent;
use crate::graph::{ActorId, PortRef, Workflow};
use crate::receiver::{ActorInbox, InboxWaker};
use crate::telemetry::{FireRecord, LiveStats, RunPhase, Telemetry, WorkerMetrics};
use crate::time::{Micros, SharedClock, Timestamp, WallClock};
use crate::wave::WaveTag;

use super::pool_policy::{Fifo, PolicyView, PoolPolicy, ReadyEntry, ReadyQueue};
use super::{Director, Fabric, QueueContext, RunReport, TryDeliver, RELIEF_PATIENCE};

/// Idle workers and the timer re-check their wait conditions at least this
/// often (bounds missed-notify latency and cooperative-stop latency).
const POOL_POLL: Duration = Duration::from_millis(10);

/// Idle-source backoff matching the threaded director's 1 ms sleep.
const SOURCE_BACKOFF: Micros = Micros(1_000);

// Per-actor readiness states (one atomic per actor).
const IDLE: u8 = 0;
const QUEUED: u8 = 1;
const RUNNING: u8 = 2;
const RERUN: u8 = 3;

thread_local! {
    /// Index of the pool worker running on this thread (`usize::MAX` off
    /// the pool). Pushes from a worker go to its own deque; pushes from
    /// anywhere else round-robin across the deques.
    static WORKER_ID: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// N workers over per-worker policy-ordered ready queues with best-entry
/// stealing; one timer thread.
pub struct PoolDirector {
    workers: usize,
    clock: SharedClock,
    telemetry: Option<Telemetry>,
    policy: Arc<dyn PoolPolicy>,
}

impl Default for PoolDirector {
    fn default() -> Self {
        Self::new()
    }
}

impl PoolDirector {
    /// A pool sized to the machine (`available_parallelism`), on the wall
    /// clock, with FIFO ready queues.
    pub fn new() -> Self {
        let workers = thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        PoolDirector {
            workers,
            clock: Arc::new(WallClock::new()),
            telemetry: None,
            policy: Arc::new(Fifo),
        }
    }

    /// Override the worker count (clamped to at least 1).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// A pool on a caller-supplied clock (tests).
    pub fn with_clock(mut self, clock: SharedClock) -> Self {
        self.clock = clock;
        self
    }

    /// Order the ready queues by `policy` instead of FIFO.
    pub fn with_policy(self, policy: impl PoolPolicy + 'static) -> Self {
        self.with_policy_arc(Arc::new(policy))
    }

    /// Shared-handle variant of [`PoolDirector::with_policy`], for
    /// policies chosen at runtime.
    pub fn with_policy_arc(mut self, policy: Arc<dyn PoolPolicy>) -> Self {
        self.policy = policy;
        self
    }

    /// The configured worker count.
    pub fn worker_count(&self) -> usize {
        self.workers
    }

    /// The active ready-queue policy's name.
    pub fn policy_name(&self) -> &'static str {
        self.policy.name()
    }
}

/// Scheduling state shared by wakers, workers, and the timer: everything
/// needed to decide *who runs next*, with no reference to the actors
/// themselves (so inbox wakers can hold it without keeping the run alive).
struct WakeHub {
    /// One policy-ordered ready queue per worker.
    queues: Vec<Mutex<ReadyQueue>>,
    /// Ready-queue ordering policy.
    policy: Arc<dyn PoolPolicy>,
    /// Live statistics the priority keys are computed from.
    live: Arc<LiveStats>,
    /// Whether firings feed [`WakeHub::live`] (policy asked for stats).
    feed_stats: bool,
    /// Whether self-pushes may take the LIFO slot (policy choice).
    use_lifo: bool,
    /// Clock the priority keys timestamp against.
    clock: SharedClock,
    /// Per-actor source flag (sources are keyed specially).
    is_source: Vec<bool>,
    /// Per-actor inbox handles for oldest-pending-origin lookups. Weak:
    /// the hub outlives the run inside inbox wakers and must not keep
    /// the fabric alive.
    inboxes: Vec<Weak<ActorInbox>>,
    /// Monotone push sequence (FIFO tie-break within a priority key).
    seq: AtomicU64,
    /// Per-actor readiness state machine (IDLE/QUEUED/RUNNING/RERUN).
    states: Vec<AtomicU8>,
    /// Per-destination-actor list of writer tasks parked on a full port.
    space_waiters: Vec<Mutex<Vec<usize>>>,
    /// Parked writer registrations outstanding (relief trigger gate).
    waiting_writers: AtomicUsize,
    /// Round-robin cursor for pushes from off-pool threads.
    next_queue: AtomicUsize,
    shutdown: AtomicBool,
    idle_lock: Mutex<()>,
    idle_cond: Condvar,
    /// Pending timed-window / source-arrival deadlines: (µs, actor).
    timer: Mutex<BinaryHeap<std::cmp::Reverse<(u64, usize)>>>,
    timer_lock: Mutex<()>,
    timer_cond: Condvar,
    // Per-worker counters for WorkerMetrics.
    fires: Vec<AtomicU64>,
    steals: Vec<AtomicU64>,
    queue_max: Vec<AtomicU64>,
}

impl WakeHub {
    fn new(
        workers: usize,
        policy: Arc<dyn PoolPolicy>,
        live: Arc<LiveStats>,
        clock: SharedClock,
        is_source: Vec<bool>,
        inboxes: Vec<Weak<ActorInbox>>,
    ) -> Self {
        let actors = inboxes.len();
        WakeHub {
            queues: (0..workers).map(|_| Mutex::new(ReadyQueue::new())).collect(),
            feed_stats: policy.needs_stats(),
            use_lifo: policy.use_lifo_slot(),
            policy,
            live,
            clock,
            is_source,
            inboxes,
            seq: AtomicU64::new(0),
            states: (0..actors).map(|_| AtomicU8::new(IDLE)).collect(),
            space_waiters: (0..actors).map(|_| Mutex::new(Vec::new())).collect(),
            waiting_writers: AtomicUsize::new(0),
            next_queue: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            idle_lock: Mutex::new(()),
            idle_cond: Condvar::new(),
            timer: Mutex::new(BinaryHeap::new()),
            timer_lock: Mutex::new(()),
            timer_cond: Condvar::new(),
            fires: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            steals: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            queue_max: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Mark `actor` ready, enqueueing it unless it is already queued (or
    /// running, in which case it is flagged for a re-run).
    fn schedule(&self, actor: usize) {
        let st = &self.states[actor];
        loop {
            match st.compare_exchange(IDLE, QUEUED, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    self.push(actor, false);
                    return;
                }
                Err(QUEUED) | Err(RERUN) => return,
                Err(_running) => {
                    if st
                        .compare_exchange(RUNNING, RERUN, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        return;
                    }
                    // The runner moved on between our two CASes; retry.
                }
            }
        }
    }

    /// Current policy key for `actor` (push time and lazy re-key on pop).
    fn key_of(&self, actor: usize) -> u64 {
        let oldest_origin = self.inboxes[actor]
            .upgrade()
            .and_then(|inbox| inbox.oldest_origin());
        let view = PolicyView {
            now: self.clock.now(),
            is_source: self.is_source[actor],
            oldest_origin,
            live: &self.live,
        };
        self.policy.key(actor, &view)
    }

    /// Queue `actor` on this worker's queue (or round-robin from off-pool
    /// threads). `hot` marks a self-push right after the actor ran, which
    /// may take the cache-warm LIFO slot if the policy allows it.
    fn push(&self, actor: usize, hot: bool) {
        let w = WORKER_ID.with(|c| c.get());
        let idx = if w < self.queues.len() {
            w
        } else {
            self.next_queue.fetch_add(1, Ordering::Relaxed) % self.queues.len()
        };
        let entry = ReadyEntry {
            key: self.key_of(actor),
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            actor,
        };
        let depth = {
            let mut q = self.queues[idx].lock();
            q.push(entry, hot && self.use_lifo);
            q.len() as u64
        };
        self.queue_max[idx].fetch_max(depth, Ordering::Relaxed);
        self.idle_cond.notify_one();
    }

    /// Pop ready work for worker `w`: its own best entry first (LIFO slot,
    /// then the heap minimum with lazy re-keying), then steal the *best*
    /// heap entry from the other workers. Returns `(actor, stolen)`.
    fn pop(&self, w: usize) -> Option<(usize, bool)> {
        if let Some(e) = self.queues[w].lock().pop_with(|a| self.key_of(a)) {
            return Some((e.actor, false));
        }
        let n = self.queues.len();
        for i in 1..n {
            let victim = (w + i) % n;
            if let Some(e) = self.queues[victim].lock().steal_best() {
                return Some((e.actor, true));
            }
        }
        None
    }

    fn wait_for_work(&self) {
        let mut g = self.idle_lock.lock();
        self.idle_cond.wait_for(&mut g, POOL_POLL);
    }

    /// Park `writer` until `dest_actor`'s inbox frees space.
    fn add_space_waiter(&self, dest_actor: usize, writer: usize) {
        let mut ws = self.space_waiters[dest_actor].lock();
        if !ws.contains(&writer) {
            ws.push(writer);
            self.waiting_writers.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Space freed on `dest_actor`'s inbox: reschedule its parked writers.
    fn notify_space(&self, dest_actor: usize) {
        if self.waiting_writers.load(Ordering::Relaxed) == 0 {
            return;
        }
        let woken = std::mem::take(&mut *self.space_waiters[dest_actor].lock());
        if woken.is_empty() {
            return;
        }
        self.waiting_writers.fetch_sub(woken.len(), Ordering::Relaxed);
        for writer in woken {
            self.schedule(writer);
        }
    }

    fn register_deadline(&self, at: Timestamp, actor: usize) {
        self.timer
            .lock()
            .push(std::cmp::Reverse((at.as_micros(), actor)));
        self.timer_cond.notify_all();
    }

    fn timer_wait(&self, d: Duration) {
        let mut g = self.timer_lock.lock();
        self.timer_cond.wait_for(&mut g, d);
    }

    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.idle_cond.notify_all();
        self.timer_cond.notify_all();
    }
}

/// Inbox hook: window formation schedules the owning actor; freed space
/// reschedules writers parked on it.
struct PoolWaker {
    hub: Arc<WakeHub>,
    actor: usize,
}

impl InboxWaker for PoolWaker {
    fn on_ready(&self) {
        self.hub.schedule(self.actor);
    }
    fn on_space(&self) {
        self.hub.notify_space(self.actor);
    }
}

/// One actor's task: the actor itself plus the firing state that survives
/// across task suspensions (parked deliveries, deferred postfire).
struct TaskState {
    actor: Box<dyn Actor>,
    ctx: QueueContext,
    id: ActorId,
    is_source: bool,
    finalized: bool,
    /// Stamped events not yet admitted (the tail of a firing whose
    /// delivery parked on a full `Block` port).
    pending_out: VecDeque<(PortRef, CwEvent)>,
    /// When the task first parked on the event at the head of
    /// `pending_out` (block-time telemetry).
    block_since: Option<Instant>,
    /// A firing completed but its `postfire` was deferred past a parked
    /// delivery.
    needs_postfire: bool,
}

enum StepOutcome {
    /// More work may be immediately available: run again.
    Requeue,
    /// Nothing to do until a wakeup (window, space, or deadline).
    Idle,
    /// Parked on a full `Block` port; a space waiter is registered.
    Parked,
    /// The actor is done: wrap up and close outputs.
    Finish,
}

struct PoolShared {
    hub: Arc<WakeHub>,
    fabric: Arc<Fabric>,
    clock: SharedClock,
    tele: Option<Telemetry>,
    tasks: Vec<Mutex<TaskState>>,
    is_source: Vec<bool>,
    /// Whether any port needs the task-parking delivery path.
    has_block_ports: bool,
    live: AtomicUsize,
    firings: AtomicU64,
    routed: AtomicU64,
    first_error: Mutex<Option<Error>>,
}

impl PoolShared {
    fn record_error(&self, e: Error) {
        let mut slot = self.first_error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }

    fn should_stop(&self) -> bool {
        self.tele.as_ref().is_some_and(|t| t.should_stop())
    }
}

impl Director for PoolDirector {
    fn run(&mut self, workflow: &mut Workflow) -> Result<RunReport> {
        let observer = self.telemetry.as_ref().map(|t| t.observer.clone());
        let fabric = Arc::new(Fabric::build_observed(workflow, observer)?);
        // Task-parking semantics: a full Block port hands the event back
        // (try_deliver) instead of blocking an OS thread, so the fabric's
        // own thread-blocking path stays off.
        fabric.set_blocking(false);
        let n_actors = workflow.actor_count();
        let workers = self.workers.max(1);
        self.policy.prepare(workflow);
        let live = Arc::new(LiveStats::new(workflow));
        let source_flags: Vec<bool> = workflow
            .actor_ids()
            .map(|id| workflow.node(id).is_source)
            .collect();
        let inbox_handles: Vec<Weak<ActorInbox>> = workflow
            .actor_ids()
            .map(|id| Arc::downgrade(fabric.inbox(id)))
            .collect();
        let hub = Arc::new(WakeHub::new(
            workers,
            self.policy.clone(),
            live,
            self.clock.clone(),
            source_flags,
            inbox_handles,
        ));
        for id in workflow.actor_ids() {
            fabric.inbox(id).set_waker(Arc::new(PoolWaker {
                hub: hub.clone(),
                actor: id.0,
            }));
        }
        let started = self.clock.now();
        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::Start, started);
        }

        let mut tasks = Vec::with_capacity(n_actors);
        let mut is_source = Vec::with_capacity(n_actors);
        for id in workflow.actor_ids() {
            let node = workflow.node_mut(id);
            let n_inputs = node.signature.inputs.len();
            is_source.push(node.is_source);
            tasks.push(Mutex::new(TaskState {
                actor: node.take_actor(),
                ctx: QueueContext::new(n_inputs),
                id,
                is_source: node.is_source,
                finalized: false,
                pending_out: VecDeque::new(),
                block_since: None,
                needs_postfire: false,
            }));
        }
        let shared = Arc::new(PoolShared {
            hub: hub.clone(),
            fabric: fabric.clone(),
            clock: self.clock.clone(),
            tele: self.telemetry.clone(),
            tasks,
            is_source,
            has_block_ports: fabric.has_block_ports(),
            live: AtomicUsize::new(n_actors),
            firings: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            first_error: Mutex::new(None),
        });

        // Sequential initialization on the caller thread (the threaded
        // director initializes on each actor thread; the order here is
        // deterministic instead).
        for a in 0..n_actors {
            let mut task = shared.tasks[a].lock();
            let now = self.clock.now();
            task.ctx.set_now(now);
            let TaskState { actor, ctx, .. } = &mut *task;
            let init = actor.initialize(ctx).and_then(|()| {
                let (init_emissions, _) = ctx.take_emissions();
                let n = fabric.route(ActorId(a), init_emissions, None, self.clock.now())?;
                shared.routed.fetch_add(n, Ordering::Relaxed);
                Ok(())
            });
            if let Err(e) = init {
                shared.record_error(e);
                finalize_task(&shared, &mut task, false);
            }
        }

        if shared.live.load(Ordering::Acquire) > 0 {
            for a in 0..n_actors {
                hub.schedule(a);
            }
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let shared = shared.clone();
                let handle = thread::Builder::new()
                    .name(format!("cwf-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .map_err(|e| Error::Director(format!("failed to spawn pool worker: {e}")))?;
                handles.push(handle);
            }
            let timer = {
                let shared = shared.clone();
                thread::Builder::new()
                    .name("cwf-pool-timer".to_string())
                    .spawn(move || timer_loop(&shared))
                    .map_err(|e| Error::Director(format!("failed to spawn pool timer: {e}")))?
            };
            for handle in handles {
                handle
                    .join()
                    .map_err(|_| Error::Director("pool worker panicked".to_string()))?;
            }
            hub.begin_shutdown();
            timer
                .join()
                .map_err(|_| Error::Director("pool timer panicked".to_string()))?;
        } else {
            hub.begin_shutdown();
        }

        if let Some(t) = &self.telemetry {
            for w in 0..workers {
                t.observer.on_worker(&WorkerMetrics {
                    worker: w,
                    fires: hub.fires[w].load(Ordering::Relaxed),
                    steals: hub.steals[w].load(Ordering::Relaxed),
                    queue_depth: hub.queue_max[w].load(Ordering::Relaxed),
                });
            }
        }

        let shared = Arc::try_unwrap(shared)
            .map_err(|_| Error::Director("pool shared state still referenced".to_string()))?;
        for (a, task) in shared.tasks.into_iter().enumerate() {
            workflow.node_mut(ActorId(a)).return_actor(task.into_inner().actor);
        }
        let report = RunReport {
            firings: shared.firings.load(Ordering::Relaxed),
            events_routed: shared.routed.load(Ordering::Relaxed),
            elapsed: self.clock.now().since(started),
        };
        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::End, self.clock.now());
        }
        match shared.first_error.into_inner() {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    fn instrument(&mut self, telemetry: Telemetry) -> bool {
        self.telemetry = Some(telemetry);
        true
    }
}

fn worker_loop(shared: &Arc<PoolShared>, w: usize) {
    WORKER_ID.with(|c| c.set(w));
    let hub = &shared.hub;
    loop {
        match hub.pop(w) {
            Some((actor, stolen)) => {
                if stolen {
                    hub.steals[w].fetch_add(1, Ordering::Relaxed);
                }
                run_actor(shared, w, actor);
            }
            None => {
                if hub.shutdown.load(Ordering::Acquire) {
                    break;
                }
                hub.wait_for_work();
            }
        }
    }
}

/// Run one scheduled step of `actor` on worker `w`, handling the
/// readiness state machine around it.
fn run_actor(shared: &Arc<PoolShared>, w: usize, actor: usize) {
    let hub = &shared.hub;
    hub.states[actor].store(RUNNING, Ordering::Release);
    let mut task = shared.tasks[actor].lock();
    if task.finalized {
        drop(task);
        hub.states[actor].store(IDLE, Ordering::Release);
        return;
    }
    let outcome = match catch_unwind(AssertUnwindSafe(|| step(shared, w, &mut task))) {
        Ok(Ok(outcome)) => Some(outcome),
        Ok(Err(e)) => {
            shared.record_error(e);
            None
        }
        Err(_) => {
            shared.record_error(Error::Director(format!(
                "actor {} panicked during a pooled firing",
                task.id
            )));
            None
        }
    };
    match outcome {
        Some(StepOutcome::Requeue) => {
            drop(task);
            hub.states[actor].store(QUEUED, Ordering::Release);
            // A self-push right after running: cache-warm LIFO candidate.
            hub.push(actor, true);
        }
        Some(StepOutcome::Idle) | Some(StepOutcome::Parked) => {
            drop(task);
            if hub.states[actor]
                .compare_exchange(RUNNING, IDLE, Ordering::AcqRel, Ordering::Acquire)
                .is_err()
            {
                // A wakeup arrived mid-step (state is RERUN): honor it.
                hub.states[actor].store(QUEUED, Ordering::Release);
                hub.push(actor, false);
            }
        }
        Some(StepOutcome::Finish) => {
            finalize_task(shared, &mut task, true);
            drop(task);
            hub.states[actor].store(IDLE, Ordering::Release);
        }
        None => {
            finalize_task(shared, &mut task, false);
            drop(task);
            hub.states[actor].store(IDLE, Ordering::Release);
        }
    }
}

/// Wrap the actor up and close its outputs, exactly once. `run_wrapup`
/// mirrors the threaded controller: `wrapup` runs on a clean finish and is
/// skipped after an error, while `close_actor_outputs` always runs.
fn finalize_task(shared: &PoolShared, task: &mut TaskState, run_wrapup: bool) {
    if task.finalized {
        return;
    }
    task.finalized = true;
    // Anything still parked is admitted softly (blocking is off, so a full
    // Block port over-admits rather than losing the events).
    while let Some((dest, event)) = task.pending_out.pop_front() {
        if let Err(e) = shared.fabric.deliver(dest, event, shared.clock.now()) {
            shared.record_error(e);
            break;
        }
    }
    if run_wrapup {
        // The actor's final chance to emit while its outputs are still
        // open; any queued `pending_out` events went out first above.
        task.ctx.set_now(shared.clock.now());
        match task.actor.finish(&mut task.ctx) {
            Ok(()) => {
                let (emissions, trigger) = task.ctx.take_emissions();
                match shared
                    .fabric
                    .route(task.id, emissions, trigger.as_ref(), shared.clock.now())
                {
                    Ok(n) => {
                        shared.routed.fetch_add(n, Ordering::Relaxed);
                    }
                    Err(e) => shared.record_error(e),
                }
            }
            Err(e) => shared.record_error(e),
        }
        if let Err(e) = task.actor.wrapup() {
            shared.record_error(e);
        }
    }
    if let Err(e) = shared
        .fabric
        .close_actor_outputs(task.id, shared.clock.now())
    {
        shared.record_error(e);
    }
    if shared.live.fetch_sub(1, Ordering::AcqRel) == 1 {
        shared.hub.begin_shutdown();
    }
}

/// One scheduled step: resume any suspended firing, then attempt the next
/// one. Mirrors one iteration of the threaded controller's loop.
fn step(shared: &PoolShared, w: usize, task: &mut TaskState) -> Result<StepOutcome> {
    if shared.should_stop() {
        return Ok(StepOutcome::Finish);
    }
    // Resume a firing suspended mid-delivery or pre-postfire.
    if !task.pending_out.is_empty() && !flush_pending(shared, task)? {
        return Ok(StepOutcome::Parked);
    }
    if task.needs_postfire {
        task.needs_postfire = false;
        if !task.actor.postfire(&mut task.ctx)? {
            return Ok(StepOutcome::Finish);
        }
    }
    if task.is_source {
        step_source(shared, w, task)
    } else {
        step_internal(shared, w, task)
    }
}

fn step_source(shared: &PoolShared, w: usize, task: &mut TaskState) -> Result<StepOutcome> {
    let hub = &shared.hub;
    let clock = &shared.clock;
    // Pace by the source's timetable: instead of sleeping, register the
    // arrival with the shared timer and yield the worker.
    if let Some(arrival) = task.actor.next_arrival() {
        let now = clock.now();
        if arrival > now {
            hub.register_deadline(arrival, task.id.0);
            return Ok(StepOutcome::Idle);
        }
    }
    let fire_start = clock.now();
    task.ctx.set_now(fire_start);
    let mut fired = false;
    let mut emitted_any = false;
    let mut tokens_out = 0u64;
    let mut complete = true;
    if task.actor.prefire(&mut task.ctx)? {
        if let Some(t) = &shared.tele {
            t.observer.on_fire_start(task.id, fire_start);
        }
        task.actor.fire(&mut task.ctx)?;
        let (emissions, _) = task.ctx.take_emissions();
        emitted_any = !emissions.is_empty();
        tokens_out = emissions.len() as u64;
        fired = true;
        shared.firings.fetch_add(1, Ordering::Relaxed);
        hub.fires[w].fetch_add(1, Ordering::Relaxed);
        complete = deliver_emissions(shared, task, emissions, None, clock.now())?;
        let expired = shared.fabric.route_expired(clock.now())?;
        shared.routed.fetch_add(expired, Ordering::Relaxed);
    }
    if fired {
        let ended = clock.now();
        let busy = ended.since(fire_start);
        if hub.feed_stats {
            hub.live.record_fire(task.id.0, busy, 0, tokens_out, None);
        }
        hub.policy.on_fire(task.id.0, busy);
        if let Some(t) = &shared.tele {
            t.observer.on_fire_end(&FireRecord {
                actor: task.id,
                started: fire_start,
                ended,
                busy,
                events_in: 0,
                tokens_out,
                origin: None,
                trigger: None,
                fired,
            });
        }
    }
    if !complete {
        task.needs_postfire = true;
        return Ok(StepOutcome::Parked);
    }
    if !task.actor.postfire(&mut task.ctx)? {
        return Ok(StepOutcome::Finish);
    }
    if !emitted_any && matches!(task.actor.next_arrival(), None | Some(Timestamp::ZERO)) {
        // Nothing to say and no timetable to follow (idle push source):
        // back off via the timer instead of spinning on the worker.
        hub.register_deadline(clock.now().plus(SOURCE_BACKOFF), task.id.0);
        return Ok(StepOutcome::Idle);
    }
    Ok(StepOutcome::Requeue)
}

fn step_internal(shared: &PoolShared, w: usize, task: &mut TaskState) -> Result<StepOutcome> {
    let hub = &shared.hub;
    let clock = &shared.clock;
    let inbox = shared.fabric.inbox(task.id);
    match inbox.try_pop() {
        Some((port, window)) => {
            let fire_start = clock.now();
            task.ctx.set_now(fire_start);
            if shared.fabric.wants_event_hooks() {
                if let Some(t) = &shared.tele {
                    t.observer.on_dequeue(
                        task.id,
                        port,
                        window.trigger_wave(),
                        window.formed_at,
                        fire_start,
                    );
                }
            }
            task.ctx.deliver(port, window);
            let mut fired = false;
            let mut events_in = 0u64;
            let mut tokens_out = 0u64;
            let mut origin = None;
            let mut trigger_tag = None;
            let mut complete = true;
            // A prefire refusal reports neither a start nor a record — the
            // window stays pending in the context, exactly as under the
            // threaded director.
            if task.actor.prefire(&mut task.ctx)? {
                if let Some(t) = &shared.tele {
                    t.observer.on_fire_start(task.id, fire_start);
                }
                task.actor.fire(&mut task.ctx)?;
                events_in = task.ctx.consumed_events;
                let (emissions, trigger) = task.ctx.take_emissions();
                tokens_out = emissions.len() as u64;
                origin = trigger.as_ref().map(|wv| wv.origin());
                fired = true;
                shared.firings.fetch_add(1, Ordering::Relaxed);
                hub.fires[w].fetch_add(1, Ordering::Relaxed);
                complete =
                    deliver_emissions(shared, task, emissions, trigger.as_ref(), clock.now())?;
                let expired = shared.fabric.route_expired(clock.now())?;
                shared.routed.fetch_add(expired, Ordering::Relaxed);
                trigger_tag = trigger;
            }
            if fired {
                let ended = clock.now();
                let busy = ended.since(fire_start);
                if hub.feed_stats {
                    let wait = origin.map(|o| ended.since(o));
                    hub.live
                        .record_fire(task.id.0, busy, events_in, tokens_out, wait);
                }
                hub.policy.on_fire(task.id.0, busy);
                if let Some(t) = &shared.tele {
                    t.observer.on_fire_end(&FireRecord {
                        actor: task.id,
                        started: fire_start,
                        ended,
                        busy,
                        events_in,
                        tokens_out,
                        origin,
                        trigger: trigger_tag,
                        fired,
                    });
                }
            }
            if !complete {
                task.needs_postfire = true;
                return Ok(StepOutcome::Parked);
            }
            if !task.actor.postfire(&mut task.ctx)? {
                return Ok(StepOutcome::Finish);
            }
            Ok(StepOutcome::Requeue)
        }
        None => {
            if inbox.all_ports_closed() {
                // Upstream flushes happen-before the closing notification,
                // so re-check for windows pushed by the final flush.
                if inbox.is_empty() {
                    return Ok(StepOutcome::Finish);
                }
                return Ok(StepOutcome::Requeue);
            }
            if let Some(deadline) = shared
                .fabric
                .receivers(task.id)
                .iter()
                .filter_map(|r| r.next_deadline())
                .min()
            {
                hub.register_deadline(deadline, task.id.0);
            }
            Ok(StepOutcome::Idle)
        }
    }
}

/// Stamp and deliver one firing's emissions. Without `Block` ports the
/// whole batch goes through the fabric's batched route. With them, events
/// are stamped up front (so wave serials match the batched path exactly)
/// and admitted one by one; a full `Block` port parks the task with the
/// remainder queued in `pending_out`. Returns whether delivery completed.
fn deliver_emissions(
    shared: &PoolShared,
    task: &mut TaskState,
    emissions: Vec<(usize, crate::token::Token)>,
    parent: Option<&WaveTag>,
    now: Timestamp,
) -> Result<bool> {
    if emissions.is_empty() {
        return Ok(true);
    }
    if !shared.has_block_ports {
        let n = shared.fabric.route(task.id, emissions, parent, now)?;
        shared.routed.fetch_add(n, Ordering::Relaxed);
        return Ok(true);
    }
    let n = emissions.len();
    let fine = shared.fabric.wants_event_hooks();
    let mut delivered = 0u64;
    for (i, (port, token)) in emissions.into_iter().enumerate() {
        let dests = shared.fabric.route_targets(task.id, port);
        if dests.is_empty() {
            continue;
        }
        let event = match parent {
            None => CwEvent::external(token, now),
            Some(parent) => CwEvent::derived(token, now, parent, (i + 1) as u32, i + 1 == n),
        };
        if let Some(obs) = shared.fabric.observer() {
            if fine && parent.is_none() {
                obs.on_admit(task.id, &event.wave, now);
            }
            // Block never drops, so each stamped event will reach its
            // destination edge; report the edges with the route below.
            for dest in dests {
                obs.on_route_edge(task.id, dest.actor, dest.port, 1, now);
            }
        }
        delivered += dests.len() as u64;
        let (last, fanned) = dests.split_last().expect("dests is non-empty");
        for dest in fanned {
            task.pending_out.push_back((*dest, event.clone()));
        }
        task.pending_out.push_back((*last, event));
    }
    if delivered == 0 {
        return Ok(true);
    }
    // Block never drops, so every stamped event will eventually be
    // admitted: count and report the route now, deliver (possibly across
    // several task resumptions) below.
    shared.routed.fetch_add(delivered, Ordering::Relaxed);
    if let Some(obs) = shared.fabric.observer() {
        obs.on_route(task.id, delivered, now);
    }
    flush_pending(shared, task)
}

/// Admit queued stamped events until done or a full `Block` port parks
/// the task. Returns whether the queue drained.
fn flush_pending(shared: &PoolShared, task: &mut TaskState) -> Result<bool> {
    while let Some((dest, event)) = task.pending_out.pop_front() {
        let receiver = &shared.fabric.receivers(dest.actor)[dest.port];
        let is_block =
            receiver.policy().is_bounded() && receiver.policy().on_full == OnFull::Block;
        let now = shared.clock.now();
        if !is_block {
            shared.fabric.deliver(dest, event, now)?;
            continue;
        }
        match shared.fabric.try_deliver(dest, event, now)? {
            TryDeliver::Delivered(_) => {
                if let Some(since) = task.block_since.take() {
                    if let Some(obs) = shared.fabric.observer() {
                        let waited = Micros(since.elapsed().as_micros() as u64);
                        obs.on_block(dest.actor, dest.port, waited, now);
                    }
                }
            }
            TryDeliver::Full(event) => {
                task.pending_out.push_front((dest, event));
                task.block_since.get_or_insert_with(Instant::now);
                shared.hub.add_space_waiter(dest.actor.0, task.id.0);
                // Lost-wakeup guard: space may have freed between the
                // failed put and the waiter registration.
                if !receiver.is_full() {
                    continue;
                }
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// The timer thread: serves timed-window deadlines and source arrivals
/// from the shared heap, polls for cooperative stops, and runs the
/// Parks-style artificial-deadlock detector for parked writer tasks.
fn timer_loop(shared: &Arc<PoolShared>) {
    let hub = &shared.hub;
    let mut last_progress = shared.fabric.progress_counter();
    let mut stalled_since: Option<Instant> = None;
    loop {
        if hub.shutdown.load(Ordering::Acquire) {
            break;
        }
        let now = shared.clock.now();
        let mut due: Vec<usize> = Vec::new();
        {
            let mut heap = hub.timer.lock();
            while let Some(&std::cmp::Reverse((t, a))) = heap.peek() {
                if t > now.as_micros() {
                    break;
                }
                heap.pop();
                due.push(a);
            }
        }
        due.sort_unstable();
        due.dedup();
        for a in due {
            if shared.is_source[a] {
                hub.schedule(a);
                continue;
            }
            // A window-formation deadline passed: force the receivers to
            // evaluate (formed windows wake the actor through its inbox).
            shared.fabric.poll_actor(ActorId(a), now);
            match shared.fabric.route_expired(now) {
                Ok(n) => {
                    shared.routed.fetch_add(n, Ordering::Relaxed);
                }
                Err(e) => shared.record_error(e),
            }
            if let Some(next) = shared
                .fabric
                .receivers(ActorId(a))
                .iter()
                .filter_map(|r| r.next_deadline())
                .min()
            {
                hub.register_deadline(next, a);
            }
            hub.schedule(a);
        }
        if shared.should_stop() {
            for a in 0..hub.states.len() {
                hub.schedule(a);
            }
        }
        // Artificial-deadlock relief: writers parked and the whole fabric
        // frozen for RELIEF_PATIENCE — grow the smallest full Block queue
        // (its inbox then raises on_space and the writers reschedule).
        if hub.waiting_writers.load(Ordering::Relaxed) > 0 {
            let progress = shared.fabric.progress_counter();
            if progress != last_progress {
                last_progress = progress;
                stalled_since = None;
            } else {
                let since = *stalled_since.get_or_insert_with(Instant::now);
                if since.elapsed() >= RELIEF_PATIENCE {
                    shared.fabric.relieve_deadlock();
                    stalled_since = None;
                }
            }
        } else {
            last_progress = shared.fabric.progress_counter();
            stalled_since = None;
        }
        let wait = {
            let heap = hub.timer.lock();
            heap.peek()
                .map(|&std::cmp::Reverse((t, _))| {
                    Duration::from_micros(t.saturating_sub(shared.clock.now().as_micros()))
                })
                .map_or(POOL_POLL, |d| d.min(POOL_POLL))
        };
        hub.timer_wait(wait.max(Duration::from_micros(100)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{FireContext, IoSignature};
    use crate::actors::{Collector, PushSource, TimedSource, VecSource};
    use crate::graph::WorkflowBuilder;
    use crate::time::Micros;
    use crate::token::Token;
    use crate::window::{GroupBy, WindowSpec};

    struct AddOne;
    impl Actor for AddOne {
        fn signature(&self) -> IoSignature {
            IoSignature::transform("in", "out")
        }
        fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
            while let Some(w) = ctx.get(0) {
                for t in w.tokens() {
                    ctx.emit(0, Token::Int(t.as_int()? + 1));
                }
            }
            Ok(())
        }
    }

    #[test]
    fn runs_linear_pipeline_to_completion() {
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("pipeline");
        let s = b.add_actor("src", VecSource::new((0..10).map(Token::Int).collect()));
        let a = b.add_actor("inc", AddOne);
        let k = b.add_actor("sink", c.actor());
        b.connect(s, "out", a, "in").unwrap();
        b.connect(a, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let report = PoolDirector::new().with_workers(2).run(&mut wf).unwrap();
        assert_eq!(c.tokens(), (1..=10).map(Token::Int).collect::<Vec<_>>());
        assert!(report.firings >= 11);
        assert_eq!(report.events_routed, 20);
    }

    #[test]
    fn fan_out_and_merge() {
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("diamond");
        let s = b.add_actor("src", VecSource::new(vec![Token::Int(1), Token::Int(2)]));
        let a1 = b.add_actor("a1", AddOne);
        let a2 = b.add_actor("a2", AddOne);
        let u = b.add_actor("union", crate::actors::Union::new(2));
        let k = b.add_actor("sink", c.actor());
        b.connect(s, "out", a1, "in").unwrap();
        b.connect(s, "out", a2, "in").unwrap();
        b.connect(a1, "out", u, "in0").unwrap();
        b.connect(a2, "out", u, "in1").unwrap();
        b.connect(u, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        PoolDirector::new().with_workers(3).run(&mut wf).unwrap();
        let mut got: Vec<i64> = c.tokens().iter().map(|t| t.as_int().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![2, 2, 3, 3], "both branches see both tokens");
    }

    #[test]
    fn grouped_sliding_windows_under_the_pool() {
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("windows");
        let reports: Vec<Token> = vec![(1, 10), (2, 30), (1, 11), (2, 31), (1, 12)]
            .into_iter()
            .map(|(car, pos)| Token::record().field("carid", car).field("pos", pos).build())
            .collect();
        let s = b.add_actor("src", VecSource::new(reports));
        let pairs = b.add_actor(
            "pairs",
            crate::actors::FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
                if w.len() < 2 {
                    return Ok(());
                }
                let first = w.events.first().unwrap().token.int_field("pos")?;
                let last = w.events.last().unwrap().token.int_field("pos")?;
                emit(0, Token::Int(last - first));
                Ok(())
            }),
        );
        let k = b.add_actor("sink", c.actor());
        b.connect_windowed(
            s,
            "out",
            pairs,
            "in",
            WindowSpec::tuples(2, 1).group_by(GroupBy::fields(&["carid"])),
        )
        .unwrap();
        b.connect(pairs, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        PoolDirector::new().with_workers(2).run(&mut wf).unwrap();
        let mut got: Vec<i64> = c.tokens().iter().map(|t| t.as_int().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![1, 1, 1]);
    }

    #[test]
    fn timed_window_timeout_fires_under_timer_thread() {
        // A lone event in a 20ms tumbling window must come out via the
        // shared timer (no later event ever closes the window).
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("timeout");
        let s = b.add_actor("src", TimedSource::new(vec![(Timestamp(0), Token::Int(1))]));
        let agg = b.add_actor(
            "agg",
            crate::actors::FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
                emit(0, Token::Int(w.len() as i64));
                Ok(())
            }),
        );
        let k = b.add_actor("sink", c.actor());
        b.connect_windowed(
            s,
            "out",
            agg,
            "in",
            WindowSpec::tumbling_time(Micros::from_millis(20)),
        )
        .unwrap();
        b.connect(agg, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        PoolDirector::new().with_workers(1).run(&mut wf).unwrap();
        assert_eq!(c.tokens(), vec![Token::Int(1)]);
    }

    #[test]
    fn push_source_end_to_end() {
        let c = Collector::new();
        let (src, handle) = PushSource::new();
        let mut b = WorkflowBuilder::new("push");
        let s = b.add_actor("src", src);
        let k = b.add_actor("sink", c.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let producer = std::thread::spawn(move || {
            for i in 0..5 {
                handle.push(Token::Int(i));
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        PoolDirector::new().with_workers(2).run(&mut wf).unwrap();
        producer.join().unwrap();
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn actor_error_is_reported() {
        struct Boom;
        impl Actor for Boom {
            fn signature(&self) -> IoSignature {
                IoSignature::sink("in")
            }
            fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
                Err(Error::actor("boom", "fire", "deliberate"))
            }
        }
        let mut b = WorkflowBuilder::new("err");
        let s = b.add_actor("src", VecSource::new(vec![Token::Int(1)]));
        let k = b.add_actor("boom", Boom);
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let err = PoolDirector::new().with_workers(2).run(&mut wf).unwrap_err();
        assert!(matches!(err, Error::Actor { .. }));
    }

    #[test]
    fn worker_count_is_configurable() {
        let d = PoolDirector::new().with_workers(0);
        assert_eq!(d.worker_count(), 1, "clamped to at least one worker");
        let d = PoolDirector::new().with_workers(7);
        assert_eq!(d.worker_count(), 7);
    }

    #[test]
    fn every_policy_runs_the_pipeline_to_completion() {
        use super::super::pool_policy::{OldestWave, Quantum, RateBased};
        let mk = |policy: Arc<dyn super::super::pool_policy::PoolPolicy>| {
            let c = Collector::new();
            let mut b = WorkflowBuilder::new("pipeline");
            let s = b.add_actor("src", VecSource::new((0..10).map(Token::Int).collect()));
            let a = b.add_actor("inc", AddOne);
            let k = b.add_actor("sink", c.actor());
            b.set_priority(a, 10);
            b.set_priority(k, 5);
            b.connect(s, "out", a, "in").unwrap();
            b.connect(a, "out", k, "in").unwrap();
            let mut wf = b.build().unwrap();
            let mut d = PoolDirector::new().with_workers(2).with_policy_arc(policy);
            let report = d.run(&mut wf).unwrap();
            (c.tokens(), report)
        };
        for (name, policy) in [
            ("rb", Arc::new(RateBased) as Arc<dyn super::super::pool_policy::PoolPolicy>),
            ("edf", Arc::new(OldestWave)),
            ("qbs", Arc::new(Quantum::default())),
        ] {
            let (tokens, report) = mk(policy);
            assert_eq!(
                tokens,
                (1..=10).map(Token::Int).collect::<Vec<_>>(),
                "policy {name} must not reorder a linear pipeline"
            );
            assert_eq!(report.events_routed, 20, "policy {name}");
        }
    }

    #[test]
    fn policy_name_is_exposed() {
        assert_eq!(PoolDirector::new().policy_name(), "fifo");
        let d = PoolDirector::new().with_policy(super::super::pool_policy::OldestWave);
        assert_eq!(d.policy_name(), "edf");
    }
}
