//! The DE (Discrete Event) director: global timestamp order.
//!
//! Keeps a global event queue ordered by timestamp; the virtual clock
//! advances to each event's time and the receiving actor fires immediately.
//! Source firings are scheduled at the sources' declared arrival times;
//! channel deliveries may carry a fixed propagation delay. Window-formation
//! deadlines are scheduled as first-class timer events — the paper's
//! "window timeout events".

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use crate::error::Result;
use crate::event::CwEvent;
use crate::graph::{ActorId, PortRef, Workflow};
use crate::telemetry::{FireRecord, RunPhase, Telemetry};
use crate::time::{Clock, Micros, Timestamp, VirtualClock};

use super::{Director, Fabric, QueueContext, RunReport};

#[derive(Debug)]
enum Agenda {
    /// Fire a source actor.
    SourceFire(ActorId),
    /// Deliver an event to an input port.
    Deliver(PortRef, CwEvent),
    /// Evaluate window timeouts on an actor's receivers.
    Poll(ActorId),
}

struct Entry {
    time: Timestamp,
    seq: u64,
    agenda: Agenda,
}

impl PartialEq for Entry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// Event-queue driven executor in virtual time.
pub struct DeDirector {
    clock: Arc<VirtualClock>,
    /// Fixed propagation delay added to every channel delivery.
    pub channel_delay: Micros,
    telemetry: Option<Telemetry>,
}

impl Default for DeDirector {
    fn default() -> Self {
        Self::new()
    }
}

impl DeDirector {
    /// A director with zero channel delay on a fresh virtual clock.
    pub fn new() -> Self {
        DeDirector {
            clock: Arc::new(VirtualClock::new()),
            channel_delay: Micros::ZERO,
            telemetry: None,
        }
    }

    /// Add a fixed delay to every channel delivery.
    pub fn with_channel_delay(mut self, d: Micros) -> Self {
        self.channel_delay = d;
        self
    }

    /// The final virtual time after a run.
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }
}

impl Director for DeDirector {
    fn run(&mut self, workflow: &mut Workflow) -> Result<RunReport> {
        let tele = self.telemetry.clone();
        let observer = tele.as_ref().map(|t| t.observer.clone());
        let fabric = Fabric::build_observed(workflow, observer)?;
        let started = self.clock.now();
        if let Some(t) = &tele {
            t.observer.on_run_phase(RunPhase::Start, started);
        }
        let mut report = RunReport::default();
        let mut contexts: Vec<QueueContext> = workflow
            .actor_ids()
            .map(|id| QueueContext::new(workflow.node(id).signature.inputs.len()))
            .collect();
        // Snapshot of the routing table (avoids borrowing the workflow
        // while an actor is mutably borrowed).
        let routes: Vec<Vec<Vec<PortRef>>> = workflow
            .actor_ids()
            .map(|id| {
                (0..workflow.node(id).signature.outputs.len())
                    .map(|p| workflow.routes_from(id, p).to_vec())
                    .collect()
            })
            .collect();
        let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::new();
        let mut seq = 0u64;
        let push = |heap: &mut BinaryHeap<Reverse<Entry>>, time, agenda, seq: &mut u64| {
            *seq += 1;
            heap.push(Reverse(Entry {
                time,
                seq: *seq,
                agenda,
            }));
        };

        for id in workflow.actor_ids() {
            let ctx = &mut contexts[id.0];
            ctx.set_now(self.clock.now());
            workflow.node_mut(id).actor_mut().initialize(ctx)?;
            let (emissions, _) = ctx.take_emissions();
            report.events_routed += fabric.route(id, emissions, None, self.clock.now())?;
            if workflow.node(id).is_source {
                let when = workflow
                    .node(id)
                    .peek_actor()
                    .and_then(|a| a.next_arrival())
                    .unwrap_or(Timestamp::ZERO);
                push(&mut heap, when, Agenda::SourceFire(id), &mut seq);
            }
        }

        // Fire `id` on every window currently in its inbox; emissions are
        // scheduled as future deliveries.
        macro_rules! drain_inbox {
            ($id:expr) => {{
                let id: ActorId = $id;
                while let Some((port, window)) = fabric.inbox(id).try_pop() {
                    let now = self.clock.now();
                    let ctx = &mut contexts[id.0];
                    ctx.set_now(now);
                    if fabric.wants_event_hooks() {
                        if let Some(t) = &tele {
                            t.observer.on_dequeue(
                                id,
                                port,
                                window.trigger_wave(),
                                window.formed_at,
                                now,
                            );
                        }
                    }
                    if let Some(t) = &tele {
                        t.observer.on_fire_start(id, now);
                    }
                    ctx.deliver(port, window);
                    let fired = {
                        let actor = workflow.node_mut(id).actor_mut();
                        if actor.prefire(ctx)? {
                            actor.fire(ctx)?;
                            true
                        } else {
                            false
                        }
                    };
                    let mut events_in = 0u64;
                    let mut tokens_out = 0u64;
                    let mut origin = None;
                    let mut trigger_tag = None;
                    if fired {
                        report.firings += 1;
                        events_in = ctx.consumed_events;
                        let (emissions, trigger) = ctx.take_emissions();
                        tokens_out = emissions.len() as u64;
                        origin = trigger.as_ref().map(|w| w.origin());
                        let mut delivered = 0u64;
                        if !emissions.is_empty() {
                            let stamped: Vec<(usize, CwEvent)> = match trigger {
                                Some(ref p) => {
                                    let ports: Vec<usize> =
                                        emissions.iter().map(|(p, _)| *p).collect();
                                    let tokens: Vec<_> =
                                        emissions.into_iter().map(|(_, t)| t).collect();
                                    let evs = crate::event::WaveStamper::new(p.clone())
                                        .stamp_all(tokens, now);
                                    ports.into_iter().zip(evs).collect()
                                }
                                None => emissions
                                    .into_iter()
                                    .map(|(p, t)| (p, CwEvent::external(t, now)))
                                    .collect(),
                            };
                            if trigger.is_none() && fabric.wants_event_hooks() {
                                if let Some(t) = &tele {
                                    for (_, event) in &stamped {
                                        t.observer.on_admit(id, &event.wave, now);
                                    }
                                }
                            }
                            for (out_port, event) in stamped {
                                for dest in &routes[id.0][out_port] {
                                    report.events_routed += 1;
                                    delivered += 1;
                                    if let Some(t) = &tele {
                                        t.observer.on_route_edge(id, dest.actor, dest.port, 1, now);
                                    }
                                    push(
                                        &mut heap,
                                        now.plus(self.channel_delay),
                                        Agenda::Deliver(*dest, event.clone()),
                                        &mut seq,
                                    );
                                }
                            }
                        }
                        if let Some(t) = &tele {
                            // DE schedules deliveries itself instead of
                            // going through Fabric::route, so the routing
                            // hook is reported manually.
                            t.observer.on_route(id, delivered, now);
                        }
                        trigger_tag = trigger;
                    }
                    if let Some(t) = &tele {
                        let ended = self.clock.now();
                        t.observer.on_fire_end(&FireRecord {
                            actor: id,
                            started: now,
                            ended,
                            busy: ended.since(now),
                            events_in,
                            tokens_out,
                            origin,
                            trigger: trigger_tag,
                            fired,
                        });
                    }
                    let _ = workflow.node_mut(id).actor_mut().postfire(ctx)?;
                }
            }};
        }

        while let Some(Reverse(entry)) = heap.pop() {
            if tele.as_ref().is_some_and(|t| t.should_stop()) {
                break;
            }
            self.clock.advance_to(entry.time);
            match entry.agenda {
                Agenda::SourceFire(id) => {
                    let now = self.clock.now();
                    let ctx = &mut contexts[id.0];
                    ctx.set_now(now);
                    let fired = {
                        let actor = workflow.node_mut(id).actor_mut();
                        if actor.prefire(ctx)? {
                            if let Some(t) = &tele {
                                t.observer.on_fire_start(id, now);
                            }
                            actor.fire(ctx)?;
                            true
                        } else {
                            false
                        }
                    };
                    if fired {
                        report.firings += 1;
                        let (emissions, _) = ctx.take_emissions();
                        let tokens_out = emissions.len() as u64;
                        let mut delivered = 0u64;
                        for (out_port, token) in emissions {
                            let event = CwEvent::external(token, now);
                            if fabric.wants_event_hooks() {
                                if let Some(t) = &tele {
                                    t.observer.on_admit(id, &event.wave, now);
                                }
                            }
                            for dest in &routes[id.0][out_port] {
                                report.events_routed += 1;
                                delivered += 1;
                                if let Some(t) = &tele {
                                    t.observer.on_route_edge(id, dest.actor, dest.port, 1, now);
                                }
                                push(
                                    &mut heap,
                                    now.plus(self.channel_delay),
                                    Agenda::Deliver(*dest, event.clone()),
                                    &mut seq,
                                );
                            }
                        }
                        if let Some(t) = &tele {
                            t.observer.on_route(id, delivered, now);
                            t.observer.on_fire_end(&FireRecord {
                                actor: id,
                                started: now,
                                ended: now,
                                busy: Micros::ZERO,
                                events_in: 0,
                                tokens_out,
                                origin: None,
                                trigger: None,
                                fired,
                            });
                        }
                    }
                    if workflow.node_mut(id).actor_mut().postfire(ctx)? {
                        if let Some(next) = workflow
                            .node(id)
                            .peek_actor()
                            .and_then(|a| a.next_arrival())
                        {
                            let when = next.max(now);
                            push(&mut heap, when, Agenda::SourceFire(id), &mut seq);
                        }
                    }
                }
                Agenda::Deliver(dest, event) => {
                    let now = self.clock.now();
                    fabric.deliver(dest, event, now)?;
                    if let Some(deadline) =
                        fabric.receivers(dest.actor)[dest.port].next_deadline()
                    {
                        push(&mut heap, deadline, Agenda::Poll(dest.actor), &mut seq);
                    }
                    drain_inbox!(dest.actor);
                }
                Agenda::Poll(id) => {
                    let now = self.clock.now();
                    fabric.poll_actor(id, now);
                    drain_inbox!(id);
                }
            }
        }

        // End of stream: flush partial windows, upstream first.
        if let Some(t) = &tele {
            t.observer.on_run_phase(RunPhase::Close, self.clock.now());
        }
        for id in super::ddf::quasi_topological(workflow) {
            // The actor's final chance to emit while downstream ports are
            // still open: stamp the emissions and deliver them immediately
            // (the agenda loop is over, so scheduling would lose them).
            let now = self.clock.now();
            {
                let ctx = &mut contexts[id.0];
                ctx.set_now(now);
                workflow.node_mut(id).actor_mut().finish(ctx)?;
            }
            let (emissions, trigger) = contexts[id.0].take_emissions();
            if !emissions.is_empty() {
                let stamped: Vec<(usize, CwEvent)> = match trigger {
                    Some(ref p) => {
                        let ports: Vec<usize> = emissions.iter().map(|(p, _)| *p).collect();
                        let tokens: Vec<_> = emissions.into_iter().map(|(_, t)| t).collect();
                        let evs =
                            crate::event::WaveStamper::new(p.clone()).stamp_all(tokens, now);
                        ports.into_iter().zip(evs).collect()
                    }
                    None => emissions
                        .into_iter()
                        .map(|(p, t)| (p, CwEvent::external(t, now)))
                        .collect(),
                };
                for (out_port, event) in stamped {
                    for dest in &routes[id.0][out_port] {
                        report.events_routed += 1;
                        fabric.deliver(*dest, event.clone(), now)?;
                    }
                }
            }
            fabric.close_actor_outputs(id, self.clock.now())?;
            // Close-time firings schedule their deliveries on the agenda
            // like any other firing; drain it here before moving down the
            // cascade so those events reach still-open downstream ports.
            loop {
                for target in workflow.actor_ids() {
                    drain_inbox!(target);
                }
                let Some(Reverse(entry)) = heap.pop() else {
                    break;
                };
                self.clock.advance_to(entry.time);
                match entry.agenda {
                    Agenda::Deliver(dest, event) => {
                        fabric.deliver(dest, event, self.clock.now())?;
                        drain_inbox!(dest.actor);
                    }
                    Agenda::Poll(pid) => {
                        fabric.poll_actor(pid, self.clock.now());
                        drain_inbox!(pid);
                    }
                    Agenda::SourceFire(_) => {}
                }
            }
        }
        if let Some(t) = &tele {
            t.observer.on_run_phase(RunPhase::Wrapup, self.clock.now());
        }
        for id in workflow.actor_ids() {
            workflow.node_mut(id).actor_mut().wrapup()?;
        }
        report.elapsed = self.clock.now().since(started);
        if let Some(t) = &tele {
            t.observer.on_run_phase(RunPhase::End, self.clock.now());
        }
        Ok(report)
    }

    fn instrument(&mut self, telemetry: Telemetry) -> bool {
        self.telemetry = Some(telemetry);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actors::{Collector, LatencyProbe, TimedSource};
    use crate::graph::WorkflowBuilder;
    use crate::token::Token;
    use crate::window::WindowSpec;

    #[test]
    fn processes_in_timestamp_order_in_virtual_time() {
        let probe = LatencyProbe::new();
        let mut b = WorkflowBuilder::new("de");
        let s = b.add_actor(
            "src",
            TimedSource::new(vec![
                (Timestamp(100), Token::Int(1)),
                (Timestamp(300), Token::Int(2)),
            ]),
        );
        let k = b.add_actor("probe", probe.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let mut d = DeDirector::new();
        d.run(&mut wf).unwrap();
        let samples = probe.samples();
        assert_eq!(samples.len(), 2);
        // Zero-delay channels: results appear at the event times.
        assert_eq!(samples[0].at, Timestamp(100));
        assert_eq!(samples[1].at, Timestamp(300));
        assert_eq!(samples[0].latency, Micros::ZERO);
        assert_eq!(d.now(), Timestamp(300));
    }

    #[test]
    fn channel_delay_shows_in_latency() {
        let probe = LatencyProbe::new();
        let mut b = WorkflowBuilder::new("delay");
        let s = b.add_actor(
            "src",
            TimedSource::new(vec![(Timestamp(100), Token::Int(1))]),
        );
        let k = b.add_actor("probe", probe.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        DeDirector::new()
            .with_channel_delay(Micros(50))
            .run(&mut wf)
            .unwrap();
        assert_eq!(probe.samples()[0].latency, Micros(50));
    }

    #[test]
    fn time_windows_close_via_scheduled_timeouts() {
        // Tumbling 100µs windows over events at 10 and 250: the window
        // [0,100) closes when the event at 250 arrives, and [200,300)
        // closes via the scheduled window-timeout event at 300.
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("timeouts");
        let s = b.add_actor(
            "src",
            TimedSource::new(vec![
                (Timestamp(10), Token::Int(1)),
                (Timestamp(250), Token::Int(2)),
            ]),
        );
        let agg = b.add_actor(
            "agg",
            crate::actors::FnActor::new(
                crate::actor::IoSignature::transform("in", "out"),
                |w, emit| {
                    emit(0, Token::Int(w.len() as i64));
                    Ok(())
                },
            ),
        );
        let k = b.add_actor("sink", c.actor());
        b.connect_windowed(s, "out", agg, "in", WindowSpec::tumbling_time(Micros(100)))
            .unwrap();
        b.connect(agg, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        DeDirector::new().run(&mut wf).unwrap();
        assert_eq!(c.tokens(), vec![Token::Int(1), Token::Int(1)]);
    }
}
