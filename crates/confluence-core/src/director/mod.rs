//! Directors: the models of computation that execute a workflow.
//!
//! The director — not the actors — defines the execution and communication
//! model: whether communication is synchronous or buffered, what triggers a
//! firing, and how actors are scheduled. The same [`Workflow`]
//! specification runs unchanged under any director.
//!
//! This crate provides:
//!
//! * [`threaded::ThreadedDirector`] — the PNCWF continuous-workflow
//!   director: one OS thread per actor, blocking windowed reads (the
//!   paper's baseline, scheduling delegated to the operating system);
//! * [`sdf::SdfDirector`] — synchronous dataflow with a pre-compiled
//!   schedule from balance equations;
//! * [`ddf::DdfDirector`] — dynamic dataflow, data-driven;
//! * [`de::DeDirector`] — discrete-event, global timestamp order;
//! * [`taxonomy`] — the machine-readable version of the paper's Table 1.
//!
//! The STAFiLOS scheduled CWF director lives in the `confluence-sched`
//! crate and builds on the same [`Fabric`] plumbing defined here.

pub mod composite;
pub mod ddf;
pub mod de;
pub mod pool;
pub mod pool_policy;
pub mod sdf;
pub mod taxonomy;
pub mod threaded;

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::actor::FireContext;
use crate::channel::OnFull;
use crate::error::Result;
use crate::event::CwEvent;
use crate::graph::{ActorId, PortRef, Workflow};
use crate::receiver::{ActorInbox, PortReceiver, TryPut};
use crate::telemetry::{Observer, Telemetry};
use crate::time::{Micros, Timestamp};
use crate::token::Token;
use crate::wave::WaveTag;
use crate::window::Window;

/// How long a blocked writer waits on the space condvar per slice before
/// re-checking global progress.
const BLOCK_POLL: Duration = Duration::from_millis(5);

/// How long the whole fabric must make zero progress (no pushes, no pops)
/// while a writer is blocked before Parks-style relief grows a queue.
const RELIEF_PATIENCE: Duration = Duration::from_millis(50);

/// Outcome of a workflow run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Total actor firings.
    pub firings: u64,
    /// Total events routed along channels.
    pub events_routed: u64,
    /// Wall or virtual time the run spanned.
    pub elapsed: Micros,
}

/// Outcome of a non-blocking [`Fabric::try_deliver`].
#[derive(Debug)]
pub enum TryDeliver {
    /// The event was admitted (stored or resolved by a drop policy); this
    /// many windows were formed.
    Delivered(usize),
    /// The destination is a full `Block` port; the event is handed back so
    /// the producing task can park and retry on space.
    Full(CwEvent),
}

/// A model of computation executing a workflow to completion.
pub trait Director {
    /// Execute the workflow until quiescence (sources exhausted and all
    /// derived events drained).
    fn run(&mut self, workflow: &mut Workflow) -> Result<RunReport>;

    /// Attach telemetry for subsequent runs: execution hooks flow to
    /// `telemetry.observer` and the director polls `telemetry.control`
    /// at firing boundaries for cooperative stops. Returns `true` when
    /// the director honors the telemetry; the default implementation
    /// ignores it and returns `false` so third-party directors keep
    /// working unchanged.
    fn instrument(&mut self, telemetry: Telemetry) -> bool {
        let _ = telemetry;
        false
    }
}

/// The communication fabric for one workflow execution: an inbox per actor
/// and a windowed receiver per input port, plus the routing tables to move
/// stamped events between them.
pub struct Fabric {
    inboxes: Vec<Arc<ActorInbox>>,
    receivers: Vec<Vec<Arc<PortReceiver>>>,
    routes: Vec<Vec<Vec<PortRef>>>,
    /// Destination of each (actor, input port)'s expired-items queue.
    expired_routes: Vec<Vec<Option<PortRef>>>,
    has_expired_routes: bool,
    /// Telemetry sink for routing/window/expiry hooks, if instrumented.
    observer: Option<Arc<dyn Observer>>,
    /// Whether the observer asked for the per-event hooks (`on_admit`,
    /// `on_enqueue`). Cached at build time so uninstrumented and
    /// metrics-only runs skip the per-event calls entirely.
    fine: bool,
    /// Fabric-wide progress counter shared with every inbox: bumped on each
    /// push and pop. A blocked writer that sees it frozen concludes the
    /// network is artificially deadlocked (all writers blocked on full
    /// queues) and triggers relief.
    progress: Arc<AtomicU64>,
    /// Whether `Block` policies really block the calling thread (the
    /// thread-based director enables this; cooperative directors must not
    /// block their scheduling loop and admit over capacity instead).
    blocking: AtomicBool,
    /// Serializes deadlock relief so concurrent stalled writers grow one
    /// queue at a time.
    relief_lock: Mutex<()>,
}

impl Fabric {
    /// Build receivers and inboxes for every actor of the workflow.
    pub fn build(workflow: &Workflow) -> Result<Fabric> {
        Self::build_observed(workflow, None)
    }

    /// [`Fabric::build`] with an observer receiving `on_route`,
    /// `on_window_close`, and `on_expire` hooks for everything that moves
    /// through the fabric.
    pub fn build_observed(
        workflow: &Workflow,
        observer: Option<Arc<dyn Observer>>,
    ) -> Result<Fabric> {
        // Expired-queue feeders per destination port: a handler port stays
        // open until every port whose expired events feed it has closed.
        let mut expired_feeders: std::collections::HashMap<(usize, usize), usize> =
            std::collections::HashMap::new();
        for id in workflow.actor_ids() {
            for port in 0..workflow.node(id).signature.inputs.len() {
                if let Some(dest) = workflow.expired_route(id, port) {
                    *expired_feeders
                        .entry((dest.actor.index(), dest.port))
                        .or_default() += 1;
                }
            }
        }
        let progress = Arc::new(AtomicU64::new(0));
        let mut inboxes = Vec::with_capacity(workflow.actor_count());
        let mut receivers = Vec::with_capacity(workflow.actor_count());
        for id in workflow.actor_ids() {
            let node = workflow.node(id);
            let n_inputs = node.signature.inputs.len();
            let inbox = ActorInbox::new_shared(n_inputs, progress.clone());
            let mut ports = Vec::with_capacity(n_inputs);
            for port in 0..n_inputs {
                let channels = workflow.in_degree(id, port);
                let feeders = expired_feeders
                    .get(&(id.index(), port))
                    .copied()
                    .unwrap_or(0);
                let upstreams = channels + feeders;
                let receiver = Arc::new(PortReceiver::with_policy(
                    workflow.window_spec(id, port).clone(),
                    inbox.clone(),
                    port,
                    upstreams.max(1),
                    workflow.channel_policy(id, port),
                )?);
                if upstreams == 0 {
                    // Nothing will ever feed this port: close it now so the
                    // thread-based director's blocking reads can terminate.
                    receiver.upstream_closed(Timestamp::ZERO);
                }
                ports.push(receiver);
            }
            inboxes.push(inbox);
            receivers.push(ports);
        }
        let routes = workflow
            .actor_ids()
            .map(|id| {
                (0..workflow.node(id).signature.outputs.len())
                    .map(|p| workflow.routes_from(id, p).to_vec())
                    .collect()
            })
            .collect();
        let expired_routes: Vec<Vec<Option<PortRef>>> = workflow
            .actor_ids()
            .map(|id| {
                (0..workflow.node(id).signature.inputs.len())
                    .map(|p| workflow.expired_route(id, p))
                    .collect()
            })
            .collect();
        let has_expired_routes = workflow.has_expired_routes();
        let fine = observer.as_ref().is_some_and(|o| o.wants_event_hooks());
        Ok(Fabric {
            inboxes,
            receivers,
            routes,
            expired_routes,
            has_expired_routes,
            observer,
            fine,
            progress,
            blocking: AtomicBool::new(false),
            relief_lock: Mutex::new(()),
        })
    }

    /// Make `Block` channel policies really block the writing thread (PN
    /// semantics). The thread-based director enables this; cooperative
    /// directors leave it off and admit over capacity, reporting a
    /// zero-wait block instead.
    pub fn set_blocking(&self, on: bool) {
        self.blocking.store(on, Ordering::Relaxed);
    }

    /// Whether `Block` policies block the writing thread.
    pub fn blocking_enabled(&self) -> bool {
        self.blocking.load(Ordering::Relaxed)
    }

    /// The observer attached at build time, if any (directors that stamp
    /// and deliver events outside [`Fabric::route`] report through it).
    pub fn observer(&self) -> Option<&Arc<dyn Observer>> {
        self.observer.as_ref()
    }

    /// Whether the attached observer asked for per-event hooks
    /// (`on_admit`/`on_enqueue`). Directors with manual stamping paths
    /// gate their own per-event reporting on this.
    pub fn wants_event_hooks(&self) -> bool {
        self.fine
    }

    /// Report window formation on `dest` to the observer, including the
    /// destination inbox depth (the queue-length statistic schedulers key
    /// on).
    fn note_windows(&self, dest: PortRef, windows: usize, now: Timestamp) {
        if windows == 0 {
            return;
        }
        if let Some(obs) = &self.observer {
            let depth = self.inboxes[dest.actor.0].len();
            obs.on_window_close(dest.actor, dest.port, windows, depth, now);
        }
    }

    /// The single capacity-aware admission point: every event entering a
    /// receiver goes through here so channel policies apply uniformly.
    ///
    /// On a full `Block` port this blocks the calling thread (when
    /// [`Fabric::set_blocking`] is on) in short condvar slices, watching
    /// the fabric-wide progress counter; if nothing anywhere pushes or pops
    /// for [`RELIEF_PATIENCE`], the network is treated as artificially
    /// deadlocked and the smallest full queue is grown (Parks' algorithm).
    /// Drop policies shed here and report `on_shed`; completed waits report
    /// `on_block` with the time spent blocked.
    fn put_event(&self, dest: PortRef, event: CwEvent, now: Timestamp) -> Result<usize> {
        let receiver = &self.receivers[dest.actor.0][dest.port];
        // Per-event hooks need the wave past the point the event is moved
        // into the receiver; the clone is only taken when a tracer asked.
        let wave = self.fine.then(|| event.wave.clone());
        let mut event = event;
        let mut wait_started: Option<Instant> = None;
        let mut stalled_since: Option<Instant> = None;
        loop {
            match receiver.try_put(event, now)? {
                TryPut::Stored(formed) => {
                    if let (Some(start), Some(obs)) = (wait_started, &self.observer) {
                        let waited = Micros(start.elapsed().as_micros() as u64);
                        obs.on_block(dest.actor, dest.port, waited, now);
                    }
                    if let (Some(wave), Some(obs)) = (&wave, &self.observer) {
                        obs.on_enqueue(dest.actor, dest.port, wave, now);
                    }
                    self.note_windows(dest, formed, now);
                    return Ok(formed);
                }
                TryPut::Shed { dropped, windows } => {
                    if let Some(obs) = &self.observer {
                        obs.on_shed(dest.actor, dest.port, dropped, now);
                    }
                    self.note_windows(dest, windows, now);
                    return Ok(windows);
                }
                TryPut::Full(ev) => {
                    if !self.blocking_enabled() {
                        // Cooperative director: admit over capacity rather
                        // than block the scheduling loop; the zero-wait
                        // block still shows up in telemetry.
                        let formed = receiver.put(ev, now)?;
                        if let Some(obs) = &self.observer {
                            obs.on_block(dest.actor, dest.port, Micros(0), now);
                            if let Some(wave) = &wave {
                                obs.on_enqueue(dest.actor, dest.port, wave, now);
                            }
                        }
                        self.note_windows(dest, formed, now);
                        return Ok(formed);
                    }
                    event = ev;
                    wait_started.get_or_insert_with(Instant::now);
                    let seen = self.progress.load(Ordering::Relaxed);
                    let has_space = receiver.inbox().wait_for_space(
                        dest.port,
                        receiver.effective_capacity(),
                        BLOCK_POLL,
                    );
                    if has_space || self.progress.load(Ordering::Relaxed) != seen {
                        stalled_since = None;
                        continue;
                    }
                    let stalled = *stalled_since.get_or_insert_with(Instant::now);
                    if stalled.elapsed() >= RELIEF_PATIENCE {
                        self.relieve_deadlock();
                        stalled_since = None;
                    }
                }
            }
        }
    }

    /// Parks-style artificial-deadlock relief: grow the smallest full
    /// bounded `Block` queue so one writer can proceed. Serialized so
    /// concurrently stalled writers grow one queue per detection. Public
    /// so task-parking executors (the pool director) can trigger relief
    /// from their own stall detector.
    pub fn relieve_deadlock(&self) {
        let _guard = self.relief_lock.lock();
        let smallest = self
            .receivers
            .iter()
            .flatten()
            .filter(|r| r.policy().is_bounded() && r.policy().on_full == OnFull::Block)
            .filter(|r| r.is_full())
            .min_by_key(|r| r.effective_capacity());
        if let Some(r) = smallest {
            r.grow_capacity();
            // Count relief as progress so other stalled writers restart
            // their patience window instead of piling on.
            self.progress.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Deliver every port's expired events to its handler activity, if one
    /// was attached (the paper's expired-items queues). Returns how many
    /// events were routed. Cheap no-op when no handlers exist.
    pub fn route_expired(&self, now: Timestamp) -> Result<u64> {
        if !self.has_expired_routes {
            return Ok(0);
        }
        let mut routed = 0u64;
        for (a, ports) in self.expired_routes.iter().enumerate() {
            for (p, dest) in ports.iter().enumerate() {
                let Some(dest) = dest else { continue };
                let events = self.receivers[a][p].drain_expired();
                if events.is_empty() {
                    continue;
                }
                if let Some(obs) = &self.observer {
                    obs.on_expire(ActorId(a), p, events.len() as u64, now);
                }
                for event in events {
                    self.put_event(*dest, event, now)?;
                    routed += 1;
                }
            }
        }
        Ok(routed)
    }

    /// The ready-window inbox of an actor.
    pub fn inbox(&self, id: ActorId) -> &Arc<ActorInbox> {
        &self.inboxes[id.0]
    }

    /// The windowed receivers on an actor's input ports.
    pub fn receivers(&self, id: ActorId) -> &[Arc<PortReceiver>] {
        &self.receivers[id.0]
    }

    /// Stamp a firing's emissions and deliver them downstream.
    ///
    /// `parent` is the wave of the window that triggered the firing;
    /// `None` means the emissions are external events initiating new waves
    /// (source actors). Returns the number of channel deliveries.
    pub fn route(
        &self,
        from: ActorId,
        emissions: Vec<(usize, Token)>,
        parent: Option<&WaveTag>,
        now: Timestamp,
    ) -> Result<u64> {
        if emissions.is_empty() {
            return Ok(0);
        }
        // Stamp and group in a single pass: wave serial numbers are
        // assigned per emission (unrouted emissions still consume an
        // index, matching the per-event stamper), and deliveries are
        // batched by destination port so each inbox lock is taken once
        // per firing instead of once per event.
        let n = emissions.len();
        let out_routes = &self.routes[from.0];
        let mut batches: Vec<(PortRef, Vec<CwEvent>)> = Vec::new();
        let mut delivered = 0u64;
        for (i, (port, token)) in emissions.into_iter().enumerate() {
            let dests = &out_routes[port];
            if dests.is_empty() {
                continue;
            }
            let event = match parent {
                None => CwEvent::external(token, now),
                Some(parent) => CwEvent::derived(token, now, parent, (i + 1) as u32, i + 1 == n),
            };
            if self.fine && parent.is_none() {
                if let Some(obs) = &self.observer {
                    obs.on_admit(from, &event.wave, now);
                }
            }
            delivered += dests.len() as u64;
            let (last, fanned) = dests.split_last().expect("dests is non-empty");
            let mut stash = |dest: &PortRef, ev: CwEvent| match batches
                .iter_mut()
                .find(|(p, _)| p == dest)
            {
                Some((_, evs)) => evs.push(ev),
                None => batches.push((*dest, vec![ev])),
            };
            for dest in fanned {
                stash(dest, event.clone());
            }
            stash(last, event);
        }
        if delivered == 0 {
            // A firing whose emissions all hit unrouted ports produced no
            // deliveries: skip the observer callback and bookkeeping.
            return Ok(0);
        }
        for (dest, events) in batches {
            let receiver = &self.receivers[dest.actor.0][dest.port];
            let batch_len = events.len() as u64;
            if receiver.policy().is_bounded() {
                // Bounded ports keep the event-at-a-time admission path:
                // blocking, shedding, and relief are per-event decisions.
                for event in events {
                    self.put_event(dest, event, now)?;
                }
            } else {
                if self.fine {
                    if let Some(obs) = &self.observer {
                        for event in &events {
                            obs.on_enqueue(dest.actor, dest.port, &event.wave, now);
                        }
                    }
                }
                let formed = receiver.put_batch(events, now)?;
                self.note_windows(dest, formed, now);
            }
            if let Some(obs) = &self.observer {
                obs.on_route_edge(from, dest.actor, dest.port, batch_len, now);
            }
        }
        if let Some(obs) = &self.observer {
            obs.on_route(from, delivered, now);
        }
        Ok(delivered)
    }

    /// Deliver one already-stamped event to a destination port, reporting
    /// window formation to the observer. Used by directors (notably DE)
    /// that stamp and schedule deliveries themselves instead of going
    /// through [`Fabric::route`].
    pub fn deliver(&self, dest: PortRef, event: CwEvent, now: Timestamp) -> Result<usize> {
        self.put_event(dest, event, now)
    }

    /// Non-blocking admission for task-parking executors: like
    /// [`Fabric::deliver`], but a full [`OnFull::Block`] port hands the
    /// event back as [`TryDeliver::Full`] instead of parking the calling
    /// thread — the caller re-enqueues the producing *task* and retries
    /// when space frees up. Drop and error policies resolve exactly as in
    /// the blocking path.
    pub fn try_deliver(&self, dest: PortRef, event: CwEvent, now: Timestamp) -> Result<TryDeliver> {
        let receiver = &self.receivers[dest.actor.0][dest.port];
        let wave = self.fine.then(|| event.wave.clone());
        match receiver.try_put(event, now)? {
            TryPut::Stored(formed) => {
                if let (Some(wave), Some(obs)) = (&wave, &self.observer) {
                    obs.on_enqueue(dest.actor, dest.port, wave, now);
                }
                self.note_windows(dest, formed, now);
                Ok(TryDeliver::Delivered(formed))
            }
            TryPut::Shed { dropped, windows } => {
                if let Some(obs) = &self.observer {
                    obs.on_shed(dest.actor, dest.port, dropped, now);
                }
                self.note_windows(dest, windows, now);
                Ok(TryDeliver::Delivered(windows))
            }
            TryPut::Full(ev) => Ok(TryDeliver::Full(ev)),
        }
    }

    /// Current value of the fabric-wide progress counter (bumped on every
    /// inbox push and pop). Stall detectors watch it to recognize
    /// artificial deadlock.
    pub fn progress_counter(&self) -> u64 {
        self.progress.load(Ordering::Relaxed)
    }

    /// The destination ports wired to output `port` of actor `from`.
    pub fn route_targets(&self, from: ActorId, port: usize) -> &[PortRef] {
        &self.routes[from.0][port]
    }

    /// Whether any input port in the fabric is bounded with
    /// [`OnFull::Block`] (writers may have to wait for space).
    pub fn has_block_ports(&self) -> bool {
        self.receivers
            .iter()
            .flatten()
            .any(|r| r.policy().is_bounded() && r.policy().on_full == OnFull::Block)
    }

    /// Evaluate window timeouts on one actor's receivers at director time
    /// `now`, reporting formations to the observer. Returns the number of
    /// windows produced.
    pub fn poll_actor(&self, id: ActorId, now: Timestamp) -> usize {
        let mut formed = 0;
        for (port, r) in self.receivers[id.0].iter().enumerate() {
            let n = r.poll(now);
            self.note_windows(
                PortRef {
                    actor: id,
                    port,
                },
                n,
                now,
            );
            formed += n;
        }
        formed
    }

    /// Propagate "actor finished" along its output channels: each
    /// downstream receiver loses one upstream; the last closure flushes
    /// partial windows. Fully-closed ports with expired-items handlers
    /// hand their final expired events over and release the handler.
    ///
    /// Hand-over goes through the same observed admission path as live
    /// routing, so windows formed during shutdown still reach
    /// `on_window_close` and put failures surface instead of being
    /// silently dropped.
    pub fn close_actor_outputs(&self, from: ActorId, now: Timestamp) -> Result<()> {
        let mut fully_closed: Vec<PortRef> = Vec::new();
        for port_routes in &self.routes[from.0] {
            for dest in port_routes {
                if self.receivers[dest.actor.0][dest.port].upstream_closed(now) {
                    fully_closed.push(*dest);
                }
            }
        }
        // Cascade expired-queue finalization (a handler port may itself
        // have an expired handler).
        while let Some(port) = fully_closed.pop() {
            let Some(dest) = self.expired_routes[port.actor.0][port.port] else {
                continue;
            };
            let receiver = &self.receivers[port.actor.0][port.port];
            let events = receiver.drain_expired();
            if !events.is_empty() {
                if let Some(obs) = &self.observer {
                    obs.on_expire(port.actor, port.port, events.len() as u64, now);
                }
            }
            for event in events {
                self.put_event(dest, event, now)?;
            }
            if self.receivers[dest.actor.0][dest.port].upstream_closed(now) {
                fully_closed.push(dest);
            }
        }
        Ok(())
    }

    /// Evaluate window timeouts on every receiver at director time `now`.
    /// Returns the number of windows produced.
    pub fn poll_all(&self, now: Timestamp) -> usize {
        (0..self.receivers.len())
            .map(|a| self.poll_actor(ActorId(a), now))
            .sum()
    }

    /// The earliest pending window-formation deadline across the workflow.
    pub fn next_deadline(&self) -> Option<Timestamp> {
        self.receivers
            .iter()
            .flatten()
            .filter_map(|r| r.next_deadline())
            .min()
    }

    /// Total events buffered in receivers plus windows waiting in inboxes.
    pub fn backlog(&self) -> usize {
        let buffered: usize = self
            .receivers
            .iter()
            .flatten()
            .map(|r| r.pending_events())
            .sum();
        let ready: usize = self.inboxes.iter().map(|i| i.len()).sum();
        buffered + ready
    }
}

/// The standard [`FireContext`] used by cooperative directors: windows are
/// delivered before the firing; emissions are collected for the director to
/// stamp and route afterwards.
#[derive(Debug)]
pub struct QueueContext {
    now: Timestamp,
    queues: Vec<VecDeque<Window>>,
    /// Emissions collected during the firing.
    pub emitted: Vec<(usize, Token)>,
    /// Wave of the last window the actor consumed (the firing's lineage
    /// parent).
    pub trigger: Option<WaveTag>,
    /// Events consumed during the firing (for rate statistics).
    pub consumed_events: u64,
}

impl QueueContext {
    /// A context with `input_ports` delivery queues.
    pub fn new(input_ports: usize) -> Self {
        QueueContext {
            now: Timestamp::ZERO,
            queues: (0..input_ports).map(|_| VecDeque::new()).collect(),
            emitted: Vec::new(),
            trigger: None,
            consumed_events: 0,
        }
    }

    /// Set the director time reported to the actor.
    pub fn set_now(&mut self, now: Timestamp) {
        self.now = now;
    }

    /// Deliver a window to an input port ahead of a firing.
    pub fn deliver(&mut self, port: usize, window: Window) {
        self.queues[port].push_back(window);
    }

    /// Whether any delivered windows remain unconsumed.
    pub fn has_pending(&self) -> bool {
        self.queues.iter().any(|q| !q.is_empty())
    }

    /// Take the collected emissions, resetting for the next firing.
    pub fn take_emissions(&mut self) -> (Vec<(usize, Token)>, Option<WaveTag>) {
        self.consumed_events = 0;
        (std::mem::take(&mut self.emitted), self.trigger.take())
    }
}

impl FireContext for QueueContext {
    fn now(&self) -> Timestamp {
        self.now
    }

    fn get(&mut self, port: usize) -> Option<Window> {
        let w = self.queues.get_mut(port)?.pop_front()?;
        if let Some(tag) = w.trigger_wave() {
            self.trigger = Some(tag.clone());
        }
        self.consumed_events += w.len() as u64;
        Some(w)
    }

    fn get_any(&mut self) -> Option<(usize, Window)> {
        let port = self.queues.iter().position(|q| !q.is_empty())?;
        self.get(port).map(|w| (port, w))
    }

    fn emit(&mut self, port: usize, token: Token) {
        self.emitted.push((port, token));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Actor, IoSignature};
    use crate::actors::{Collector, VecSource};
    use crate::graph::WorkflowBuilder;
    use crate::window::WindowSpec;

    struct Double;
    impl Actor for Double {
        fn signature(&self) -> IoSignature {
            IoSignature::transform("in", "out")
        }
        fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
            while let Some(w) = ctx.get(0) {
                for t in w.tokens() {
                    ctx.emit(0, Token::Int(t.as_int()? * 2));
                }
            }
            Ok(())
        }
    }

    fn chain() -> (Workflow, Collector) {
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("chain");
        let s = b.add_actor("src", VecSource::new(vec![Token::Int(1), Token::Int(2)]));
        let d = b.add_actor("double", Double);
        let k = b.add_actor("sink", c.actor());
        b.connect_windowed(s, "out", d, "in", WindowSpec::each_event())
            .unwrap();
        b.connect_windowed(d, "out", k, "in", WindowSpec::each_event())
            .unwrap();
        (b.build().unwrap(), c)
    }

    #[test]
    fn fabric_builds_per_port_receivers() {
        let (wf, _c) = chain();
        let fabric = Fabric::build(&wf).unwrap();
        let d = wf.find("double").unwrap();
        assert_eq!(fabric.receivers(d).len(), 1);
        assert!(fabric.inbox(d).is_empty());
        assert_eq!(fabric.backlog(), 0);
        assert_eq!(fabric.next_deadline(), None);
    }

    #[test]
    fn route_stamps_external_events_for_sources() {
        let (wf, _c) = chain();
        let fabric = Fabric::build(&wf).unwrap();
        let s = wf.find("src").unwrap();
        let d = wf.find("double").unwrap();
        let n = fabric
            .route(s, vec![(0, Token::Int(7))], None, Timestamp(50))
            .unwrap();
        assert_eq!(n, 1);
        let (port, w) = fabric.inbox(d).try_pop().unwrap();
        assert_eq!(port, 0);
        let ev = &w.events[0];
        assert_eq!(ev.origin(), Timestamp(50));
        assert_eq!(ev.wave.depth(), 0);
    }

    #[test]
    fn route_stamps_derived_events_with_wave_children() {
        let (wf, _c) = chain();
        let fabric = Fabric::build(&wf).unwrap();
        let d = wf.find("double").unwrap();
        let k = wf.find("sink").unwrap();
        let parent = WaveTag::external(Timestamp(10));
        fabric
            .route(
                d,
                vec![(0, Token::Int(1)), (0, Token::Int(2))],
                Some(&parent),
                Timestamp(20),
            )
            .unwrap();
        let (_, w1) = fabric.inbox(k).try_pop().unwrap();
        let (_, w2) = fabric.inbox(k).try_pop().unwrap();
        assert_eq!(w1.events[0].wave.to_string(), "t10.1");
        assert_eq!(w2.events[0].wave.to_string(), "t10.2!");
        assert_eq!(w1.events[0].origin(), Timestamp(10), "origin survives");
    }

    #[test]
    fn close_propagates_and_flushes() {
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("flush");
        let s = b.add_actor("src", VecSource::new(vec![]));
        let k = b.add_actor("sink", c.actor());
        b.connect_windowed(s, "out", k, "in", WindowSpec::tuples(10, 10))
            .unwrap();
        let wf = b.build().unwrap();
        let fabric = Fabric::build(&wf).unwrap();
        let s = wf.find("src").unwrap();
        let k = wf.find("sink").unwrap();
        fabric
            .route(s, vec![(0, Token::Int(1))], None, Timestamp(1))
            .unwrap();
        assert!(fabric.inbox(k).is_empty(), "partial window not formed yet");
        fabric.close_actor_outputs(s, Timestamp(2)).unwrap();
        let (_, w) = fabric.inbox(k).try_pop().expect("flush on close");
        assert!(w.timed_out);
        assert!(fabric.inbox(k).all_ports_closed());
    }

    #[test]
    fn queue_context_tracks_trigger_and_consumption() {
        let mut ctx = QueueContext::new(2);
        ctx.set_now(Timestamp(5));
        assert_eq!(ctx.now(), Timestamp(5));
        assert!(!ctx.has_pending());
        let ev = CwEvent::external(Token::Int(1), Timestamp(3));
        let wave = ev.wave.clone();
        ctx.deliver(
            1,
            Window {
                group: Token::Unit,
                events: vec![ev],
                formed_at: Timestamp(3),
                timed_out: false,
            },
        );
        assert!(ctx.has_pending());
        let (port, w) = ctx.get_any().unwrap();
        assert_eq!((port, w.len()), (1, 1));
        assert_eq!(ctx.consumed_events, 1);
        ctx.emit(0, Token::Int(9));
        let (emissions, trigger) = ctx.take_emissions();
        assert_eq!(emissions, vec![(0, Token::Int(9))]);
        assert_eq!(trigger, Some(wave));
        assert_eq!(ctx.consumed_events, 0, "reset after take");
        assert!(ctx.get(0).is_none());
        assert!(ctx.get(9).is_none(), "out-of-range port is None");
    }
}
