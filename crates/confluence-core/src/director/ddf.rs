//! The DDF (Dynamic Dataflow) director: data-driven execution.
//!
//! No pre-compiled schedule: an actor is fired whenever a window is ready
//! on one of its inputs. Used for Linear Road sub-workflows whose
//! consumption and production rates are fluid (decision points,
//! non-constant production — paper Appendix A).

use std::sync::Arc;

use crate::error::{Error, Result};
use crate::graph::{ActorId, Workflow};
use crate::telemetry::{FireRecord, RunPhase, Telemetry};
use crate::time::{SharedClock, VirtualClock};

use super::{Director, Fabric, QueueContext, RunReport};

/// Fires any actor with ready data until the workflow quiesces.
pub struct DdfDirector {
    clock: SharedClock,
    /// Safety bound against runaway graphs (cycles that generate tokens
    /// forever). Exceeding it is an error.
    pub max_firings: u64,
    telemetry: Option<Telemetry>,
}

impl Default for DdfDirector {
    fn default() -> Self {
        Self::new()
    }
}

impl DdfDirector {
    /// A director on a fresh virtual clock.
    pub fn new() -> Self {
        DdfDirector {
            clock: Arc::new(VirtualClock::new()),
            max_firings: 1_000_000,
            telemetry: None,
        }
    }

    /// Override the runaway-firing bound.
    pub fn with_max_firings(mut self, n: u64) -> Self {
        self.max_firings = n;
        self
    }

    /// Fire `id` once with the next window from its inbox (if any).
    /// Returns whether a firing happened.
    #[allow(clippy::too_many_arguments)]
    fn fire_once(
        &self,
        workflow: &mut Workflow,
        fabric: &Fabric,
        contexts: &mut [QueueContext],
        report: &mut RunReport,
        done: &mut [bool],
        id: ActorId,
    ) -> Result<bool> {
        if done[id.0] {
            // Finished actors drop late windows.
            while fabric.inbox(id).try_pop().is_some() {}
            return Ok(false);
        }
        let Some((port, window)) = fabric.inbox(id).try_pop() else {
            return Ok(false);
        };
        let now = self.clock.now();
        let ctx = &mut contexts[id.0];
        ctx.set_now(now);
        if fabric.wants_event_hooks() {
            if let Some(t) = &self.telemetry {
                t.observer
                    .on_dequeue(id, port, window.trigger_wave(), window.formed_at, now);
            }
        }
        ctx.deliver(port, window);
        let actor = workflow.node_mut(id).actor_mut();
        if let Some(t) = &self.telemetry {
            t.observer.on_fire_start(id, now);
        }
        let mut fired = false;
        let mut events_in = 0u64;
        let mut tokens_out = 0u64;
        let mut origin = None;
        let mut trigger_tag = None;
        if actor.prefire(ctx)? {
            actor.fire(ctx)?;
            fired = true;
            report.firings += 1;
            events_in = ctx.consumed_events;
            let (emissions, trigger) = ctx.take_emissions();
            tokens_out = emissions.len() as u64;
            origin = trigger.as_ref().map(|w| w.origin());
            report.events_routed += fabric.route(id, emissions, trigger.as_ref(), now)?;
            report.events_routed += fabric.route_expired(now)?;
            trigger_tag = trigger;
        }
        if let Some(t) = &self.telemetry {
            let ended = self.clock.now();
            t.observer.on_fire_end(&FireRecord {
                actor: id,
                started: now,
                ended,
                busy: ended.since(now),
                events_in,
                tokens_out,
                origin,
                trigger: trigger_tag,
                fired,
            });
        }
        if !actor.postfire(ctx)? {
            done[id.0] = true;
        }
        Ok(true)
    }
}

impl Director for DdfDirector {
    fn run(&mut self, workflow: &mut Workflow) -> Result<RunReport> {
        let observer = self.telemetry.as_ref().map(|t| t.observer.clone());
        let fabric = Fabric::build_observed(workflow, observer)?;
        let started = self.clock.now();
        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::Start, started);
        }
        let mut report = RunReport::default();
        let mut contexts: Vec<QueueContext> = workflow
            .actor_ids()
            .map(|id| QueueContext::new(workflow.node(id).signature.inputs.len()))
            .collect();
        let mut done = vec![false; workflow.actor_count()];

        for id in workflow.actor_ids() {
            let ctx = &mut contexts[id.0];
            ctx.set_now(self.clock.now());
            workflow.node_mut(id).actor_mut().initialize(ctx)?;
            let (emissions, _) = ctx.take_emissions();
            report.events_routed += fabric.route(id, emissions, None, self.clock.now())?;
        }

        let sources = workflow.sources();
        loop {
            if self.telemetry.as_ref().is_some_and(|t| t.should_stop()) {
                break;
            }
            let mut progress = false;
            // Data-driven phase: fire every actor with ready windows.
            for id in workflow.actor_ids() {
                if workflow.node(id).is_source {
                    continue;
                }
                while self.fire_once(workflow, &fabric, &mut contexts, &mut report, &mut done, id)? {
                    progress = true;
                    if report.firings > self.max_firings {
                        return Err(Error::Director(format!(
                            "DDF exceeded max_firings={} (runaway graph?)",
                            self.max_firings
                        )));
                    }
                }
            }
            if progress {
                continue;
            }
            // Nothing data-ready: give each live source one firing.
            for &id in &sources {
                if done[id.0] {
                    continue;
                }
                let now = self.clock.now();
                let ctx = &mut contexts[id.0];
                ctx.set_now(now);
                let actor = workflow.node_mut(id).actor_mut();
                if actor.prefire(ctx)? {
                    if let Some(t) = &self.telemetry {
                        t.observer.on_fire_start(id, now);
                    }
                    actor.fire(ctx)?;
                    report.firings += 1;
                    let (emissions, _) = ctx.take_emissions();
                    let tokens_out = emissions.len() as u64;
                    report.events_routed += fabric.route(id, emissions, None, now)?;
                    if let Some(t) = &self.telemetry {
                        let ended = self.clock.now();
                        t.observer.on_fire_end(&FireRecord {
                            actor: id,
                            started: now,
                            ended,
                            busy: ended.since(now),
                            events_in: 0,
                            tokens_out,
                            origin: None,
                            trigger: None,
                            fired: true,
                        });
                    }
                    progress = true;
                }
                if !actor.postfire(ctx)? {
                    done[id.0] = true;
                    progress = true;
                }
            }
            if !progress {
                break;
            }
        }

        // Closure cascade in topological-ish order: closing an actor's
        // outputs flushes downstream partial windows, which may enable more
        // firings before those actors close in turn.
        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::Close, self.clock.now());
        }
        let order = quasi_topological(workflow);
        for id in order {
            // Drain anything enabled by earlier closes, then give the actor
            // its final chance to emit before its own outputs close.
            while self.fire_once(workflow, &fabric, &mut contexts, &mut report, &mut done, id)? {}
            let now = self.clock.now();
            let ctx = &mut contexts[id.0];
            ctx.set_now(now);
            workflow.node_mut(id).actor_mut().finish(ctx)?;
            let (emissions, trigger) = ctx.take_emissions();
            report.events_routed += fabric.route(id, emissions, trigger.as_ref(), now)?;
            fabric.close_actor_outputs(id, self.clock.now())?;
            let mut again = true;
            while again {
                again = false;
                for target in workflow.actor_ids() {
                    while self.fire_once(
                        workflow,
                        &fabric,
                        &mut contexts,
                        &mut report,
                        &mut done,
                        target,
                    )? {
                        again = true;
                    }
                }
            }
        }
        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::Wrapup, self.clock.now());
        }
        for id in workflow.actor_ids() {
            workflow.node_mut(id).actor_mut().wrapup()?;
        }
        report.elapsed = self.clock.now().since(started);
        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::End, self.clock.now());
        }
        Ok(report)
    }

    fn instrument(&mut self, telemetry: Telemetry) -> bool {
        self.telemetry = Some(telemetry);
        true
    }
}

/// Topological order where possible; actors on cycles appended afterwards
/// in id order.
pub fn quasi_topological(workflow: &Workflow) -> Vec<ActorId> {
    let n = workflow.actor_count();
    let mut indeg = vec![0usize; n];
    for ch in workflow.channels() {
        indeg[ch.to.actor.0] += 1;
    }
    let mut ready: std::collections::VecDeque<usize> =
        (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    while let Some(a) = ready.pop_front() {
        if seen[a] {
            continue;
        }
        seen[a] = true;
        order.push(ActorId(a));
        for ch in workflow.channels() {
            if ch.from.actor.0 == a {
                indeg[ch.to.actor.0] = indeg[ch.to.actor.0].saturating_sub(1);
                if indeg[ch.to.actor.0] == 0 {
                    ready.push_back(ch.to.actor.0);
                }
            }
        }
    }
    for (i, seen_i) in seen.iter().enumerate() {
        if !seen_i {
            order.push(ActorId(i));
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Actor, FireContext, IoSignature};
    use crate::actors::{Collector, FnActor, Router, VecSource};
    use crate::graph::WorkflowBuilder;
    use crate::token::Token;
    use crate::window::WindowSpec;

    #[test]
    fn runs_variable_rate_graph() {
        // Router sends evens one way, odds the other — rates are dynamic,
        // exactly what SDF cannot schedule and DDF exists for.
        let evens = Collector::new();
        let odds = Collector::new();
        let mut b = WorkflowBuilder::new("ddf");
        let s = b.add_actor("src", VecSource::new((1..=6).map(Token::Int).collect()));
        let r = b.add_actor(
            "route",
            Router::new(&["even", "odd"], |t: &Token| {
                Ok(Some((t.as_int()? % 2) as usize))
            }),
        );
        let ke = b.add_actor("evens", evens.actor());
        let ko = b.add_actor("odds", odds.actor());
        b.connect(s, "out", r, "in").unwrap();
        b.connect(r, "even", ke, "in").unwrap();
        b.connect(r, "odd", ko, "in").unwrap();
        let mut wf = b.build().unwrap();
        let report = DdfDirector::new().run(&mut wf).unwrap();
        assert_eq!(evens.len(), 3);
        assert_eq!(odds.len(), 3);
        assert!(report.firings >= 12);
    }

    #[test]
    fn flushes_partial_windows_at_end() {
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("flush");
        let s = b.add_actor("src", VecSource::new((0..3).map(Token::Int).collect()));
        let agg = b.add_actor(
            "agg",
            FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
                emit(0, Token::Int(w.len() as i64));
                Ok(())
            }),
        );
        let k = b.add_actor("sink", c.actor());
        b.connect_windowed(s, "out", agg, "in", WindowSpec::tuples(10, 10))
            .unwrap();
        b.connect(agg, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        DdfDirector::new().run(&mut wf).unwrap();
        assert_eq!(c.tokens(), vec![Token::Int(3)], "short window flushed at close");
    }

    #[test]
    fn max_firings_catches_runaway() {
        // An actor that emits two tokens per input back to itself explodes.
        struct Doubler;
        impl Actor for Doubler {
            fn signature(&self) -> IoSignature {
                IoSignature::transform("in", "out")
            }
            fn fire(&mut self, ctx: &mut dyn FireContext) -> crate::error::Result<()> {
                while let Some(w) = ctx.get(0) {
                    for t in w.tokens() {
                        ctx.emit(0, t.clone());
                        ctx.emit(0, t.clone());
                    }
                }
                Ok(())
            }
        }
        let mut b = WorkflowBuilder::new("runaway");
        let s = b.add_actor("src", VecSource::new(vec![Token::Int(1)]));
        let d = b.add_actor("boom", Doubler);
        b.connect(s, "out", d, "in").unwrap();
        b.connect(d, "out", d, "in").unwrap();
        let mut wf = b.build().unwrap();
        let err = DdfDirector::new().with_max_firings(100).run(&mut wf);
        assert!(matches!(err, Err(Error::Director(_))));
    }

    #[test]
    fn quasi_topo_handles_cycles() {
        struct Pass;
        impl Actor for Pass {
            fn signature(&self) -> IoSignature {
                IoSignature::transform("in", "out")
            }
            fn fire(&mut self, _ctx: &mut dyn FireContext) -> crate::error::Result<()> {
                Ok(())
            }
        }
        let mut b = WorkflowBuilder::new("cycle");
        let a = b.add_actor("a", Pass);
        let c = b.add_actor("c", Pass);
        b.connect(a, "out", c, "in").unwrap();
        b.connect(c, "out", a, "in").unwrap();
        let wf = b.build().unwrap();
        let order = quasi_topological(&wf);
        assert_eq!(order.len(), 2);
    }
}
