//! Composite actors: two-level workflow hierarchy.
//!
//! The Linear Road workflow (paper Appendix A) is a two-level hierarchy:
//! the top level is governed by a continuous-workflow director, while the
//! main tasks — detecting stopped cars, computing segment statistics — are
//! *sub-workflows* governed by SDF or DDF directors depending on whether
//! their rates are constant.
//!
//! A [`CompositeActor`] wraps an inner [`Workflow`]. Each firing takes the
//! windows delivered to the composite's input ports, injects their tokens
//! into designated entry sources of the inner workflow, runs the inner
//! director to quiescence (a bounded batch run), and re-emits whatever
//! reached the designated exit collectors. Windowing state lives at the
//! composite's own (outer) input ports; the inner run is a stateless batch
//! evaluation over the delivered window — which is exactly how the paper's
//! sub-workflows consume the windows formed at their composite's inputs.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::actor::{Actor, FireContext, IoSignature};
use crate::actors::Collector;
use crate::error::{Error, Result};
use crate::graph::Workflow;
use crate::token::Token;

use super::ddf::DdfDirector;
use super::sdf::SdfDirector;
use super::Director;

/// Which director governs the inner workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InnerDirector {
    /// Pre-compiled synchronous dataflow (constant rates).
    Sdf,
    /// Dynamic dataflow (fluid rates, decision points).
    Ddf,
}

/// Shared token queue feeding an [`InjectSource`] from outside the inner
/// workflow.
#[derive(Clone, Default)]
pub struct InjectHandle {
    queue: Arc<Mutex<VecDeque<Token>>>,
}

impl InjectHandle {
    /// A fresh, empty handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue a token for the next inner run.
    pub fn push(&self, token: Token) {
        self.queue.lock().push_back(token);
    }

    /// Tokens currently queued.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The source actor draining this handle.
    pub fn source(&self) -> InjectSource {
        InjectSource {
            queue: self.queue.clone(),
        }
    }
}

/// An inner-workflow source fed through an [`InjectHandle`].
pub struct InjectSource {
    queue: Arc<Mutex<VecDeque<Token>>>,
}

impl Actor for InjectSource {
    fn signature(&self) -> IoSignature {
        IoSignature::source("out")
    }

    fn prefire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.queue.lock().is_empty())
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        if let Some(t) = self.queue.lock().pop_front() {
            ctx.emit(0, t);
        }
        Ok(())
    }

    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.queue.lock().is_empty())
    }

    fn is_source(&self) -> bool {
        true
    }

    fn next_arrival(&self) -> Option<crate::time::Timestamp> {
        if self.queue.lock().is_empty() {
            None
        } else {
            Some(crate::time::Timestamp::ZERO)
        }
    }

    fn rates(&self) -> Option<crate::actor::SdfRates> {
        Some(crate::actor::SdfRates {
            consume: vec![],
            produce: vec![1],
        })
    }
}

/// An actor whose behaviour is an inner workflow run to quiescence per
/// firing.
pub struct CompositeActor {
    signature: IoSignature,
    inner: Workflow,
    director: InnerDirector,
    /// `entries[i]` feeds composite input port `i` into the inner graph.
    entries: Vec<InjectHandle>,
    /// `exits[j]` drains inner results onto composite output port `j`.
    exits: Vec<Collector>,
    drained: Vec<usize>,
}

impl CompositeActor {
    /// Build a composite. `entries.len()` and `exits.len()` must match the
    /// signature's port counts.
    pub fn new(
        signature: IoSignature,
        inner: Workflow,
        director: InnerDirector,
        entries: Vec<InjectHandle>,
        exits: Vec<Collector>,
    ) -> Result<Self> {
        if entries.len() != signature.inputs.len() {
            return Err(Error::Graph(format!(
                "composite declares {} inputs but {} entry handles",
                signature.inputs.len(),
                entries.len()
            )));
        }
        if exits.len() != signature.outputs.len() {
            return Err(Error::Graph(format!(
                "composite declares {} outputs but {} exit collectors",
                signature.outputs.len(),
                exits.len()
            )));
        }
        let drained = vec![0; exits.len()];
        Ok(CompositeActor {
            signature,
            inner,
            director,
            entries,
            exits,
            drained,
        })
    }
}

impl Actor for CompositeActor {
    fn signature(&self) -> IoSignature {
        self.signature.clone()
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        // Inject every delivered window's tokens into the matching entry.
        let mut any = false;
        while let Some((port, w)) = ctx.get_any() {
            any = true;
            for t in w.tokens() {
                self.entries[port].push(t.clone());
            }
        }
        if !any {
            return Ok(());
        }
        // Bounded inner run.
        match self.director {
            InnerDirector::Sdf => SdfDirector::new().run(&mut self.inner)?,
            InnerDirector::Ddf => DdfDirector::new().run(&mut self.inner)?,
        };
        // Re-emit everything newly collected at the exits.
        for (port, exit) in self.exits.iter().enumerate() {
            let items = exit.tokens();
            for t in &items[self.drained[port]..] {
                ctx.emit(port, t.clone());
            }
            self.drained[port] = items.len();
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actors::{FnActor, VecSource};
    use crate::director::threaded::ThreadedDirector;
    use crate::graph::WorkflowBuilder;
    use crate::testing::MockContext;
    use crate::window::WindowSpec;

    /// Inner workflow: entry → (sum of window... here per-token ×10) → exit.
    fn times_ten_composite() -> CompositeActor {
        let entry = InjectHandle::new();
        let exit = Collector::new();
        let mut b = WorkflowBuilder::new("inner");
        let src = b.add_actor("entry", entry.source());
        let m = b.add_actor(
            "x10",
            crate::actors::Map::new(|t: &Token| Ok(Some(Token::Int(t.as_int()? * 10)))),
        );
        let k = b.add_actor("exit", exit.actor());
        b.connect(src, "out", m, "in").unwrap();
        b.connect(m, "out", k, "in").unwrap();
        let inner = b.build().unwrap();
        CompositeActor::new(
            IoSignature::transform("in", "out"),
            inner,
            InnerDirector::Ddf,
            vec![entry],
            vec![exit],
        )
        .unwrap()
    }

    #[test]
    fn composite_runs_inner_workflow_per_firing() {
        let mut comp = times_ten_composite();
        let mut ctx = MockContext::new(1);
        ctx.push_token(0, Token::Int(3), crate::time::Timestamp(1));
        comp.fire(&mut ctx).unwrap();
        assert_eq!(ctx.emitted_on(0), vec![Token::Int(30)]);
        // Second firing does not re-emit old results.
        ctx.clear_emitted();
        ctx.push_token(0, Token::Int(4), crate::time::Timestamp(2));
        comp.fire(&mut ctx).unwrap();
        assert_eq!(ctx.emitted_on(0), vec![Token::Int(40)]);
    }

    #[test]
    fn composite_with_no_input_is_a_noop_firing() {
        let mut comp = times_ten_composite();
        let mut ctx = MockContext::new(1);
        comp.fire(&mut ctx).unwrap();
        assert!(ctx.emitted.is_empty());
    }

    #[test]
    fn mismatched_handles_rejected() {
        let entry = InjectHandle::new();
        let mut b = WorkflowBuilder::new("inner");
        b.add_actor("entry", entry.source());
        let inner = b.build().unwrap();
        let err = CompositeActor::new(
            IoSignature::transform("in", "out"),
            inner,
            InnerDirector::Ddf,
            vec![],
            vec![],
        );
        assert!(err.is_err());
    }

    #[test]
    fn composite_inside_threaded_top_level() {
        // Two-level hierarchy under the PNCWF director, with a window on
        // the composite's input: the inner sub-workflow sums each window.
        let entry = InjectHandle::new();
        let exit = Collector::new();
        let mut ib = WorkflowBuilder::new("inner-sum");
        let src = ib.add_actor("entry", entry.source());
        let sum = ib.add_actor(
            "sum",
            FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
                let mut s = 0;
                for t in w.tokens() {
                    s += t.as_int()?;
                }
                emit(0, Token::Int(s));
                Ok(())
            }),
        );
        let k = ib.add_actor("exit", exit.actor());
        ib.connect(src, "out", sum, "in").unwrap();
        ib.connect(sum, "out", k, "in").unwrap();
        // Inner "sum" fires per event (each_event windows inside); to sum a
        // whole outer window we aggregate the inner per-event results here
        // by feeding the composite 2-tuple windows and letting the inner
        // graph see each token individually — so the assertion below
        // checks per-token flow through the hierarchy.
        let inner = ib.build().unwrap();
        let comp = CompositeActor::new(
            IoSignature::transform("in", "out"),
            inner,
            InnerDirector::Ddf,
            vec![entry],
            vec![exit],
        )
        .unwrap();

        let out = Collector::new();
        let mut b = WorkflowBuilder::new("outer");
        let s = b.add_actor("src", VecSource::new((1..=4).map(Token::Int).collect()));
        let c = b.add_actor("composite", comp);
        let sink = b.add_actor("sink", out.actor());
        b.connect_windowed(s, "out", c, "in", WindowSpec::tuples(2, 2).delete_used(true))
            .unwrap();
        b.connect(c, "out", sink, "in").unwrap();
        let mut wf = b.build().unwrap();
        ThreadedDirector::new().run(&mut wf).unwrap();
        let got: Vec<i64> = out.tokens().iter().map(|t| t.as_int().unwrap()).collect();
        assert_eq!(got.len(), 4, "each of the 4 tokens flowed through the hierarchy");
        let total: i64 = got.iter().sum();
        assert_eq!(total, 10);
    }
}
