//! The SDF (Synchronous Dataflow) director: pre-compiled static schedules.
//!
//! Every actor declares fixed token consumption/production rates
//! ([`crate::actor::SdfRates`]). The director solves the balance equations
//! `q[a] * produce(a→b) = q[b] * consume(a→b)` for the repetition vector
//! `q`, derives a single-appearance schedule (topological order with
//! repetition counts — valid for the acyclic graphs the Linear Road
//! sub-workflows use), and executes it iteration by iteration. Rate
//! inconsistencies are rejected at scheduling time, before any actor fires
//! — the classic SDF guarantee.
//!
//! In the Linear Road workflow hierarchy, sub-workflows with constant
//! consumption and production rates are governed by SDF directors
//! (paper Appendix A).

use std::collections::VecDeque;
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::graph::Workflow;
use crate::telemetry::{FireRecord, RunPhase, Telemetry};
use crate::time::{SharedClock, VirtualClock};

use super::{Director, Fabric, QueueContext, RunReport};

/// Greatest common divisor.
fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// A non-negative rational, for balance-equation propagation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Frac {
    num: u64,
    den: u64,
}

impl Frac {
    fn new(num: u64, den: u64) -> Frac {
        debug_assert!(den != 0);
        let g = gcd(num, den).max(1);
        Frac {
            num: num / g,
            den: den / g,
        }
    }

    fn mul(self, num: u64, den: u64) -> Frac {
        Frac::new(self.num * num, self.den * den)
    }
}

/// The compiled schedule: repetition vector plus firing order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdfSchedule {
    /// Repetitions per actor per iteration.
    pub repetitions: Vec<u64>,
    /// Actor firing order (topological); each entry fires its full
    /// repetition count.
    pub order: Vec<usize>,
}

/// Solve the balance equations and derive the schedule. Public so tests
/// and tools can inspect schedules without running anything.
pub fn compile_schedule(workflow: &Workflow) -> Result<SdfSchedule> {
    let n = workflow.actor_count();
    let mut consume: Vec<Vec<u32>> = Vec::with_capacity(n);
    let mut produce: Vec<Vec<u32>> = Vec::with_capacity(n);
    for id in workflow.actor_ids() {
        let node = workflow.node(id);
        let sdf = node_rates(workflow, id.0).ok_or_else(|| {
            Error::Sdf(format!(
                "actor `{}` declares no SDF rates; every actor under an SDF director must",
                node.name
            ))
        })?;
        if sdf.consume.len() != node.signature.inputs.len()
            || sdf.produce.len() != node.signature.outputs.len()
        {
            return Err(Error::Sdf(format!(
                "actor `{}` rates do not match its port counts",
                node.name
            )));
        }
        if sdf.consume.contains(&0) {
            return Err(Error::Sdf(format!(
                "actor `{}` declares a zero consumption rate",
                node.name
            )));
        }
        consume.push(sdf.consume);
        produce.push(sdf.produce);
    }

    // Each input port must have exactly one incoming channel for SDF rate
    // analysis to be well defined.
    for id in workflow.actor_ids() {
        for port in 0..workflow.node(id).signature.inputs.len() {
            if workflow.in_degree(id, port) != 1 {
                return Err(Error::Sdf(format!(
                    "SDF requires exactly one channel into each input port; `{}` port {} has {}",
                    workflow.node(id).name,
                    port,
                    workflow.in_degree(id, port)
                )));
            }
        }
    }

    // Propagate fractional repetition factors across channels: each
    // channel a→b imposes q[b] = q[a] · produce(a)/consume(b).
    let mut q: Vec<Option<Frac>> = vec![None; n];
    for start in 0..n {
        if q[start].is_some() {
            continue;
        }
        q[start] = Some(Frac::new(1, 1));
        let mut bfs = VecDeque::from([start]);
        while let Some(a) = bfs.pop_front() {
            let qa = q[a].expect("set before enqueue");
            for ch in workflow.channels() {
                let (v, num, den) = if ch.from.actor.0 == a {
                    let p = produce[a][ch.from.port] as u64;
                    let c = consume[ch.to.actor.0][ch.to.port] as u64;
                    (ch.to.actor.0, p, c)
                } else if ch.to.actor.0 == a {
                    // Traverse backwards: invert the ratio.
                    let p = produce[ch.from.actor.0][ch.from.port] as u64;
                    let c = consume[a][ch.to.port] as u64;
                    (ch.from.actor.0, c, p)
                } else {
                    continue;
                };
                if den == 0 {
                    return Err(Error::Sdf(format!(
                        "zero production rate feeding actor `{}`",
                        workflow.node(crate::graph::ActorId(v)).name
                    )));
                }
                let qv = qa.mul(num, den);
                match q[v] {
                    None => {
                        q[v] = Some(qv);
                        bfs.push_back(v);
                    }
                    Some(existing) => {
                        if existing != qv {
                            return Err(Error::Sdf(format!(
                                "inconsistent rates at actor `{}`",
                                workflow.node(crate::graph::ActorId(v)).name
                            )));
                        }
                    }
                }
            }
        }
    }

    // Scale to the smallest integer vector.
    let lcm_den = q
        .iter()
        .map(|f| f.expect("all assigned").den)
        .fold(1u64, |acc, d| acc / gcd(acc, d) * d);
    let mut reps: Vec<u64> = q
        .iter()
        .map(|f| {
            let f = f.expect("all assigned");
            f.num * (lcm_den / f.den)
        })
        .collect();
    let g = reps.iter().copied().fold(0, gcd).max(1);
    for r in &mut reps {
        *r /= g;
    }

    // Topological order (acyclic graphs only).
    let mut indeg = vec![0usize; n];
    for ch in workflow.channels() {
        indeg[ch.to.actor.0] += 1;
    }
    let mut ready: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(a) = ready.pop_front() {
        order.push(a);
        for ch in workflow.channels() {
            if ch.from.actor.0 == a {
                indeg[ch.to.actor.0] -= 1;
                if indeg[ch.to.actor.0] == 0 {
                    ready.push_back(ch.to.actor.0);
                }
            }
        }
    }
    if order.len() != n {
        return Err(Error::Sdf(
            "graph has a cycle; cyclic SDF (with initial tokens) is not supported".into(),
        ));
    }

    Ok(SdfSchedule {
        repetitions: reps,
        order,
    })
}

fn node_rates(workflow: &Workflow, idx: usize) -> Option<crate::actor::SdfRates> {
    workflow
        .node(crate::graph::ActorId(idx))
        .peek_actor()
        .and_then(|a| a.rates())
}

/// Executes a compiled SDF schedule.
pub struct SdfDirector {
    clock: SharedClock,
    /// Maximum schedule iterations (`None` = until a source exhausts).
    pub max_iterations: Option<u64>,
    telemetry: Option<Telemetry>,
}

impl Default for SdfDirector {
    fn default() -> Self {
        Self::new()
    }
}

impl SdfDirector {
    /// A director on a fresh virtual clock, running until sources exhaust.
    pub fn new() -> Self {
        SdfDirector {
            clock: Arc::new(VirtualClock::new()),
            max_iterations: None,
            telemetry: None,
        }
    }

    /// Bound the number of schedule iterations.
    pub fn with_max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = Some(n);
        self
    }
}

impl Director for SdfDirector {
    fn run(&mut self, workflow: &mut Workflow) -> Result<RunReport> {
        let schedule = compile_schedule(workflow)?;
        let observer = self.telemetry.as_ref().map(|t| t.observer.clone());
        let fabric = Fabric::build_observed(workflow, observer)?;
        let started = self.clock.now();
        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::Start, started);
        }
        let mut report = RunReport::default();
        let mut contexts: Vec<QueueContext> = workflow
            .actor_ids()
            .map(|id| QueueContext::new(workflow.node(id).signature.inputs.len()))
            .collect();
        let consume: Vec<Vec<u32>> = workflow
            .actor_ids()
            .map(|id| {
                node_rates(workflow, id.0)
                    .expect("validated by compile_schedule")
                    .consume
            })
            .collect();

        // Initialize all actors.
        for id in workflow.actor_ids() {
            let ctx = &mut contexts[id.0];
            ctx.set_now(self.clock.now());
            workflow.node_mut(id).actor_mut().initialize(ctx)?;
            let (emissions, _) = ctx.take_emissions();
            report.events_routed += fabric.route(id, emissions, None, self.clock.now())?;
        }

        let mut iteration = 0u64;
        // Set when a source runs dry: the current schedule iteration is
        // completed (downstream actors must still consume the in-flight
        // tokens) and then the run ends.
        let mut stopping = false;
        'run: loop {
            if let Some(max) = self.max_iterations {
                if iteration >= max {
                    break;
                }
            }
            if self.telemetry.as_ref().is_some_and(|t| t.should_stop()) {
                break;
            }
            iteration += 1;
            for &a in &schedule.order {
                let id = crate::graph::ActorId(a);
                'reps: for _rep in 0..schedule.repetitions[a] {
                    let now = self.clock.now();
                    let ctx = &mut contexts[a];
                    ctx.set_now(now);
                    // Deliver the declared number of windows per input port.
                    let inbox = fabric.inbox(id);
                    let mut staged: Vec<(usize, crate::window::Window)> = Vec::new();
                    let mut counts = vec![0u32; consume[a].len()];
                    while counts
                        .iter()
                        .zip(&consume[a])
                        .any(|(have, need)| have < need)
                    {
                        match inbox.try_pop() {
                            Some((port, w)) => {
                                counts[port] += 1;
                                if fabric.wants_event_hooks() {
                                    if let Some(t) = &self.telemetry {
                                        t.observer.on_dequeue(
                                            id,
                                            port,
                                            w.trigger_wave(),
                                            w.formed_at,
                                            now,
                                        );
                                    }
                                }
                                staged.push((port, w));
                            }
                            None => {
                                if workflow.node(id).is_source || consume[a].is_empty() {
                                    break;
                                }
                                if stopping {
                                    // The drying source under-produced this
                                    // iteration: hand the partial delivery
                                    // to the context (a later rep or the
                                    // actor's own loop may still cope) and
                                    // skip this firing.
                                    for (port, w) in staged {
                                        ctx.deliver(port, w);
                                    }
                                    continue 'reps;
                                }
                                return Err(Error::Sdf(format!(
                                    "actor `{}` starved mid-schedule (rates inconsistent with behaviour)",
                                    workflow.node(id).name
                                )));
                            }
                        }
                    }
                    for (port, w) in staged {
                        ctx.deliver(port, w);
                    }
                    let node = workflow.node_mut(id);
                    let actor = node.actor_mut();
                    if let Some(t) = &self.telemetry {
                        t.observer.on_fire_start(id, now);
                    }
                    if !actor.prefire(ctx)? {
                        if workflow.node(id).is_source {
                            // The stream is over; finish the iteration.
                            stopping = true;
                        }
                        continue 'reps;
                    }
                    actor.fire(ctx)?;
                    report.firings += 1;
                    let events_in = ctx.consumed_events;
                    let (emissions, trigger) = ctx.take_emissions();
                    let tokens_out = emissions.len() as u64;
                    let origin = trigger.as_ref().map(|w| w.origin());
                    report.events_routed +=
                        fabric.route(id, emissions, trigger.as_ref(), self.clock.now())?;
                    if let Some(t) = &self.telemetry {
                        let ended = self.clock.now();
                        t.observer.on_fire_end(&FireRecord {
                            actor: id,
                            started: now,
                            ended,
                            busy: ended.since(now),
                            events_in,
                            tokens_out,
                            origin,
                            trigger,
                            fired: true,
                        });
                        if t.should_stop() {
                            // Finish the schedule iteration (downstream
                            // actors still consume in-flight tokens), then
                            // end the run — same wind-down as a dry source.
                            stopping = true;
                        }
                    }
                    if !actor.postfire(ctx)? {
                        stopping = true;
                    }
                }
            }
            if stopping {
                break 'run;
            }
        }

        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::Wrapup, self.clock.now());
        }
        for id in workflow.actor_ids() {
            let ctx = &mut contexts[id.0];
            ctx.set_now(self.clock.now());
            workflow.node_mut(id).actor_mut().finish(ctx)?;
            let (emissions, trigger) = ctx.take_emissions();
            report.events_routed +=
                fabric.route(id, emissions, trigger.as_ref(), self.clock.now())?;
            workflow.node_mut(id).actor_mut().wrapup()?;
            fabric.close_actor_outputs(id, self.clock.now())?;
        }
        report.elapsed = self.clock.now().since(started);
        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::End, self.clock.now());
        }
        Ok(report)
    }

    fn instrument(&mut self, telemetry: Telemetry) -> bool {
        self.telemetry = Some(telemetry);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{Actor, FireContext, IoSignature, SdfRates};
    use crate::actors::Collector;
    use crate::graph::WorkflowBuilder;
    use crate::token::Token;

    /// Source with fixed production rate.
    struct RateSource {
        left: i64,
        per_firing: u32,
    }
    impl Actor for RateSource {
        fn signature(&self) -> IoSignature {
            IoSignature::source("out")
        }
        fn prefire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
            Ok(self.left > 0)
        }
        fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
            for _ in 0..self.per_firing {
                ctx.emit(0, Token::Int(self.left));
                self.left -= 1;
            }
            Ok(())
        }
        fn is_source(&self) -> bool {
            true
        }
        fn rates(&self) -> Option<SdfRates> {
            Some(SdfRates {
                consume: vec![],
                produce: vec![self.per_firing],
            })
        }
    }

    /// Consumes `take` tokens, emits their sum.
    struct SumN {
        take: u32,
    }
    impl Actor for SumN {
        fn signature(&self) -> IoSignature {
            IoSignature::transform("in", "out")
        }
        fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
            let mut sum = 0;
            while let Some(w) = ctx.get(0) {
                for t in w.tokens() {
                    sum += t.as_int()?;
                }
            }
            ctx.emit(0, Token::Int(sum));
            Ok(())
        }
        fn rates(&self) -> Option<SdfRates> {
            Some(SdfRates {
                consume: vec![self.take],
                produce: vec![1],
            })
        }
    }

    struct RatedSink;
    impl Actor for RatedSink {
        fn signature(&self) -> IoSignature {
            IoSignature::sink("in")
        }
        fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
            Ok(())
        }
        fn rates(&self) -> Option<SdfRates> {
            Some(SdfRates {
                consume: vec![1],
                produce: vec![],
            })
        }
    }

    struct CollectorRated(crate::actors::CollectorActor);
    impl Actor for CollectorRated {
        fn signature(&self) -> IoSignature {
            IoSignature::sink("in")
        }
        fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
            self.0.fire(ctx)
        }
        fn rates(&self) -> Option<SdfRates> {
            Some(SdfRates {
                consume: vec![1],
                produce: vec![],
            })
        }
    }

    fn rate_graph() -> (Workflow, Collector) {
        // src (2/firing) → sum3 (3:1) → sink (1)
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("sdf");
        let s = b.add_actor(
            "src",
            RateSource {
                left: 12,
                per_firing: 2,
            },
        );
        let m = b.add_actor("sum3", SumN { take: 3 });
        let k = b.add_actor("sink", CollectorRated(c.actor()));
        b.connect(s, "out", m, "in").unwrap();
        b.connect(m, "out", k, "in").unwrap();
        (b.build().unwrap(), c)
    }

    #[test]
    fn repetition_vector_balances_rates() {
        let (wf, _c) = rate_graph();
        let sched = compile_schedule(&wf).unwrap();
        // 2·q[src] = 3·q[sum3], q[sum3] = q[sink] → q = [3, 2, 2].
        assert_eq!(sched.repetitions, vec![3, 2, 2]);
        assert_eq!(sched.order, vec![0, 1, 2]);
    }

    #[test]
    fn executes_schedule_until_source_exhausts() {
        let (mut wf, c) = rate_graph();
        let report = SdfDirector::new().run(&mut wf).unwrap();
        // 12 tokens → 4 sums of 3 consecutive descending values.
        assert_eq!(
            c.tokens(),
            vec![
                Token::Int(12 + 11 + 10),
                Token::Int(9 + 8 + 7),
                Token::Int(6 + 5 + 4),
                Token::Int(3 + 2 + 1),
            ]
        );
        assert!(report.firings > 0);
    }

    #[test]
    fn max_iterations_bounds_the_run() {
        let (mut wf, c) = rate_graph();
        SdfDirector::new()
            .with_max_iterations(1)
            .run(&mut wf)
            .unwrap();
        // One iteration: src fires 3× (6 tokens), sum3 2×, sink 2×.
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn missing_rates_rejected() {
        struct NoRates;
        impl Actor for NoRates {
            fn signature(&self) -> IoSignature {
                IoSignature::sink("in")
            }
            fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
                Ok(())
            }
        }
        let mut b = WorkflowBuilder::new("bad");
        let s = b.add_actor(
            "src",
            RateSource {
                left: 1,
                per_firing: 1,
            },
        );
        let k = b.add_actor("k", NoRates);
        b.connect(s, "out", k, "in").unwrap();
        let wf = b.build().unwrap();
        assert!(matches!(compile_schedule(&wf), Err(Error::Sdf(_))));
    }

    #[test]
    fn inconsistent_rates_rejected() {
        // Diamond where the two branches imply different repetition counts
        // for the join actor.
        struct Split2;
        impl Actor for Split2 {
            fn signature(&self) -> IoSignature {
                IoSignature::new(&["in"], &["a", "b"])
            }
            fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
                Ok(())
            }
            fn rates(&self) -> Option<SdfRates> {
                Some(SdfRates {
                    consume: vec![1],
                    produce: vec![1, 2], // branch b gets twice the tokens
                })
            }
        }
        struct Join;
        impl Actor for Join {
            fn signature(&self) -> IoSignature {
                IoSignature::new(&["x", "y"], &[])
            }
            fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
                Ok(())
            }
            fn rates(&self) -> Option<SdfRates> {
                Some(SdfRates {
                    consume: vec![1, 1], // but consumes them equally
                    produce: vec![],
                })
            }
        }
        let mut b = WorkflowBuilder::new("inconsistent");
        let s = b.add_actor(
            "src",
            RateSource {
                left: 4,
                per_firing: 1,
            },
        );
        let sp = b.add_actor("split", Split2);
        let j = b.add_actor("join", Join);
        b.connect(s, "out", sp, "in").unwrap();
        b.connect(sp, "a", j, "x").unwrap();
        b.connect(sp, "b", j, "y").unwrap();
        let wf = b.build().unwrap();
        let err = compile_schedule(&wf).unwrap_err();
        assert!(matches!(err, Error::Sdf(_)));
    }

    #[test]
    fn multi_channel_port_rejected() {
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("multi");
        let s1 = b.add_actor("s1", RateSource { left: 1, per_firing: 1 });
        let s2 = b.add_actor("s2", RateSource { left: 1, per_firing: 1 });
        let k = b.add_actor("k", CollectorRated(c.actor()));
        b.connect(s1, "out", k, "in").unwrap();
        b.connect(s2, "out", k, "in").unwrap();
        let wf = b.build().unwrap();
        assert!(matches!(compile_schedule(&wf), Err(Error::Sdf(_))));
    }

    #[test]
    fn zero_consumption_rejected() {
        struct ZeroSink;
        impl Actor for ZeroSink {
            fn signature(&self) -> IoSignature {
                IoSignature::sink("in")
            }
            fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
                Ok(())
            }
            fn rates(&self) -> Option<SdfRates> {
                Some(SdfRates {
                    consume: vec![0],
                    produce: vec![],
                })
            }
        }
        let mut b = WorkflowBuilder::new("zero");
        let s = b.add_actor("s", RateSource { left: 1, per_firing: 1 });
        let k = b.add_actor("k", ZeroSink);
        b.connect(s, "out", k, "in").unwrap();
        let wf = b.build().unwrap();
        assert!(matches!(compile_schedule(&wf), Err(Error::Sdf(_))));
    }

    #[test]
    fn unused_sink_rates_ok() {
        // RatedSink exists to exercise the type; wire a tiny graph.
        let mut b = WorkflowBuilder::new("tiny");
        let s = b.add_actor("s", RateSource { left: 2, per_firing: 1 });
        let k = b.add_actor("k", RatedSink);
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let sched = compile_schedule(&wf).unwrap();
        assert_eq!(sched.repetitions, vec![1, 1]);
        SdfDirector::new().run(&mut wf).unwrap();
    }
}
