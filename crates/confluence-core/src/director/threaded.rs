//! The PNCWF thread-based continuous-workflow director.
//!
//! Based on Kepler's PN/CN/DE directors: every actor is wrapped in its own
//! OS thread, allowing actors to run in parallel and blocking them whenever
//! there is no data to consume. Resource allocation among the threads is
//! handled directly by the operating system — which, as the paper's
//! evaluation shows, leaves no margin for QoS-based optimization (that is
//! STAFiLOS's job, in `confluence-sched`).
//!
//! The timeout of timed windows is handled by the waiting actor thread: it
//! waits on its inbox only until the earliest window-formation deadline of
//! its receivers, then forces the receivers to produce.

use std::sync::Arc;
use std::thread;
use std::time::Duration;

use crate::actor::Actor;
use crate::error::{Error, Result};
use crate::graph::{ActorId, Workflow};
use crate::receiver::InboxPop;
use crate::telemetry::{FireRecord, RunPhase, Telemetry};
use crate::time::{Clock, SharedClock, Timestamp, WallClock};

use super::{Director, Fabric, QueueContext, RunReport};

/// Longest uninterrupted block/sleep when a cooperative stop may be
/// pending: actor threads re-check the stop flag at least this often.
const STOP_POLL_INTERVAL: Duration = Duration::from_millis(10);

/// One OS thread per actor; OS scheduling; blocking windowed reads.
pub struct ThreadedDirector {
    clock: SharedClock,
    telemetry: Option<Telemetry>,
}

impl Default for ThreadedDirector {
    fn default() -> Self {
        Self::new()
    }
}

impl ThreadedDirector {
    /// A director on the wall clock (the normal mode).
    pub fn new() -> Self {
        ThreadedDirector {
            clock: Arc::new(WallClock::new()),
            telemetry: None,
        }
    }

    /// A director on a caller-supplied clock (tests).
    pub fn with_clock(clock: SharedClock) -> Self {
        ThreadedDirector {
            clock,
            telemetry: None,
        }
    }
}

struct ControllerOutcome {
    actor: Box<dyn Actor>,
    firings: u64,
    routed: u64,
    error: Option<Error>,
}

impl Director for ThreadedDirector {
    fn run(&mut self, workflow: &mut Workflow) -> Result<RunReport> {
        let observer = self.telemetry.as_ref().map(|t| t.observer.clone());
        let fabric = Fabric::build_observed(workflow, observer)?;
        // PN semantics: bounded channels really block the writing actor
        // thread (cooperative directors leave this off).
        fabric.set_blocking(true);
        let fabric = Arc::new(fabric);
        let started = self.clock.now();
        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::Start, started);
        }
        let mut handles = Vec::with_capacity(workflow.actor_count());
        for id in workflow.actor_ids() {
            let node = workflow.node_mut(id);
            let actor = node.take_actor();
            let name = node.name.clone();
            let is_source = node.is_source;
            let n_inputs = node.signature.inputs.len();
            let fabric = fabric.clone();
            let clock = self.clock.clone();
            let tele = self.telemetry.clone();
            let handle = thread::Builder::new()
                .name(format!("cwf-{name}"))
                .spawn(move || controller(id, actor, is_source, n_inputs, &fabric, &*clock, tele))
                .map_err(|e| Error::Director(format!("failed to spawn actor thread: {e}")))?;
            handles.push((id, handle));
        }

        let mut report = RunReport::default();
        let mut first_error = None;
        for (id, handle) in handles {
            let outcome = handle
                .join()
                .map_err(|_| Error::Director(format!("actor thread {id} panicked")))?;
            report.firings += outcome.firings;
            report.events_routed += outcome.routed;
            if first_error.is_none() {
                first_error = outcome.error;
            }
            workflow.node_mut(id).return_actor(outcome.actor);
        }
        report.elapsed = self.clock.now().since(started);
        if let Some(t) = &self.telemetry {
            t.observer.on_run_phase(RunPhase::End, self.clock.now());
        }
        match first_error {
            Some(e) => Err(e),
            None => Ok(report),
        }
    }

    fn instrument(&mut self, telemetry: Telemetry) -> bool {
        self.telemetry = Some(telemetry);
        true
    }
}

/// The per-actor thread body: transitions the actor through its iteration
/// phases, blocking on the inbox between firings.
fn controller(
    id: ActorId,
    mut actor: Box<dyn Actor>,
    is_source: bool,
    n_inputs: usize,
    fabric: &Fabric,
    clock: &dyn Clock,
    tele: Option<Telemetry>,
) -> ControllerOutcome {
    let mut ctx = QueueContext::new(n_inputs);
    let mut firings = 0u64;
    let mut routed = 0u64;
    let should_stop = |tele: &Option<Telemetry>| tele.as_ref().is_some_and(|t| t.should_stop());

    let result = (|| -> Result<()> {
        ctx.set_now(clock.now());
        actor.initialize(&mut ctx)?;
        let (init_emissions, _) = ctx.take_emissions();
        routed += fabric.route(id, init_emissions, None, clock.now())?;

        if is_source {
            loop {
                if should_stop(&tele) {
                    break;
                }
                // Pace by the source's timetable (wall-clock realization of
                // event arrival times).
                if let Some(arrival) = actor.next_arrival() {
                    let now = clock.now();
                    if arrival > now {
                        let mut remaining = arrival.since(now).to_std();
                        // Sleep in slices so a stop request does not have
                        // to wait out a long inter-arrival gap.
                        while !remaining.is_zero() {
                            if should_stop(&tele) {
                                break;
                            }
                            let slice = if tele.is_some() {
                                remaining.min(STOP_POLL_INTERVAL)
                            } else {
                                remaining
                            };
                            thread::sleep(slice);
                            remaining = remaining.saturating_sub(slice);
                        }
                        if should_stop(&tele) {
                            break;
                        }
                    }
                }
                let fire_start = clock.now();
                ctx.set_now(fire_start);
                let mut emitted_any = false;
                let mut fired = false;
                let mut tokens_out = 0u64;
                if actor.prefire(&mut ctx)? {
                    if let Some(t) = &tele {
                        t.observer.on_fire_start(id, fire_start);
                    }
                    actor.fire(&mut ctx)?;
                    let (emissions, _) = ctx.take_emissions();
                    emitted_any = !emissions.is_empty();
                    tokens_out = emissions.len() as u64;
                    fired = true;
                    firings += 1;
                    routed += fabric.route(id, emissions, None, clock.now())?;
                    routed += fabric.route_expired(clock.now())?;
                }
                if fired {
                    if let Some(t) = &tele {
                        let ended = clock.now();
                        t.observer.on_fire_end(&FireRecord {
                            actor: id,
                            started: fire_start,
                            ended,
                            busy: ended.since(fire_start),
                            events_in: 0,
                            tokens_out,
                            origin: None,
                            trigger: None,
                            fired,
                        });
                    }
                }
                if !actor.postfire(&mut ctx)? {
                    break;
                }
                if !emitted_any
                    && matches!(actor.next_arrival(), None | Some(Timestamp::ZERO))
                {
                    // A source with nothing to say right now and no future
                    // arrival to sleep toward (idle push source, or a
                    // custom source whose timetable is exhausted but which
                    // stays alive): back off instead of spinning.
                    thread::sleep(Duration::from_millis(1));
                }
            }
        } else {
            let inbox = fabric.inbox(id).clone();
            loop {
                if should_stop(&tele) {
                    break;
                }
                let now = clock.now();
                let mut timeout = fabric
                    .receivers(id)
                    .iter()
                    .filter_map(|r| r.next_deadline())
                    .min()
                    .map(|deadline| deadline.since(now).to_std());
                if tele.is_some() {
                    // Bound the block so a stop request is noticed promptly.
                    timeout = Some(timeout.map_or(STOP_POLL_INTERVAL, |t| t.min(STOP_POLL_INTERVAL)));
                }
                match inbox.pop_blocking(timeout) {
                    InboxPop::Window(port, window) => {
                        let fire_start = clock.now();
                        ctx.set_now(fire_start);
                        if fabric.wants_event_hooks() {
                            if let Some(t) = &tele {
                                t.observer.on_dequeue(
                                    id,
                                    port,
                                    window.trigger_wave(),
                                    window.formed_at,
                                    fire_start,
                                );
                            }
                        }
                        ctx.deliver(port, window);
                        let mut fired = false;
                        let mut events_in = 0u64;
                        let mut tokens_out = 0u64;
                        let mut origin = None;
                        let mut trigger_tag = None;
                        // Fire telemetry mirrors the source branch: a
                        // prefire refusal reports neither a start nor a
                        // record, so busy-time stats agree across paths.
                        if actor.prefire(&mut ctx)? {
                            if let Some(t) = &tele {
                                t.observer.on_fire_start(id, fire_start);
                            }
                            actor.fire(&mut ctx)?;
                            events_in = ctx.consumed_events;
                            let (emissions, trigger) = ctx.take_emissions();
                            tokens_out = emissions.len() as u64;
                            origin = trigger.as_ref().map(|w| w.origin());
                            fired = true;
                            firings += 1;
                            routed +=
                                fabric.route(id, emissions, trigger.as_ref(), clock.now())?;
                            routed += fabric.route_expired(clock.now())?;
                            trigger_tag = trigger;
                        }
                        if fired {
                            if let Some(t) = &tele {
                                let ended = clock.now();
                                t.observer.on_fire_end(&FireRecord {
                                    actor: id,
                                    started: fire_start,
                                    ended,
                                    busy: ended.since(fire_start),
                                    events_in,
                                    tokens_out,
                                    origin,
                                    trigger: trigger_tag,
                                    fired,
                                });
                            }
                        }
                        if !actor.postfire(&mut ctx)? {
                            break;
                        }
                    }
                    InboxPop::TimedOut => {
                        // A window-formation deadline passed: force the
                        // receivers to evaluate their window semantics.
                        let now = clock.now();
                        fabric.poll_actor(id, now);
                        let _ = fabric.route_expired(now)?;
                    }
                    InboxPop::Closed => break,
                }
            }
        }
        // Inputs drained (or stream ended): the actor's final chance to
        // emit while its outputs are still open.
        ctx.set_now(clock.now());
        actor.finish(&mut ctx)?;
        let (finish_emissions, trigger) = ctx.take_emissions();
        routed += fabric.route(id, finish_emissions, trigger.as_ref(), clock.now())?;
        routed += fabric.route_expired(clock.now())?;
        actor.wrapup()
    })();

    let close_error = fabric.close_actor_outputs(id, clock.now()).err();
    ControllerOutcome {
        actor,
        firings,
        routed,
        error: result.err().or(close_error),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::{FireContext, IoSignature};
    use crate::actors::{Collector, LatencyProbe, PushSource, TimedSource, VecSource};
    use crate::graph::WorkflowBuilder;
    use crate::time::Micros;
    use crate::token::Token;
    use crate::window::{GroupBy, WindowSpec};

    struct AddOne;
    impl Actor for AddOne {
        fn signature(&self) -> IoSignature {
            IoSignature::transform("in", "out")
        }
        fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
            while let Some(w) = ctx.get(0) {
                for t in w.tokens() {
                    ctx.emit(0, Token::Int(t.as_int()? + 1));
                }
            }
            Ok(())
        }
    }

    #[test]
    fn runs_linear_pipeline_to_completion() {
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("pipeline");
        let s = b.add_actor(
            "src",
            VecSource::new((0..10).map(Token::Int).collect()),
        );
        let a = b.add_actor("inc", AddOne);
        let k = b.add_actor("sink", c.actor());
        b.connect(s, "out", a, "in").unwrap();
        b.connect(a, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let report = ThreadedDirector::new().run(&mut wf).unwrap();
        assert_eq!(c.tokens(), (1..=10).map(Token::Int).collect::<Vec<_>>());
        assert!(report.firings >= 11);
        assert_eq!(report.events_routed, 20);
    }

    #[test]
    fn fan_out_and_merge() {
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("diamond");
        let s = b.add_actor("src", VecSource::new(vec![Token::Int(1), Token::Int(2)]));
        let a1 = b.add_actor("a1", AddOne);
        let a2 = b.add_actor("a2", AddOne);
        let u = b.add_actor("union", crate::actors::Union::new(2));
        let k = b.add_actor("sink", c.actor());
        b.connect(s, "out", a1, "in").unwrap();
        b.connect(s, "out", a2, "in").unwrap();
        b.connect(a1, "out", u, "in0").unwrap();
        b.connect(a2, "out", u, "in1").unwrap();
        b.connect(u, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        ThreadedDirector::new().run(&mut wf).unwrap();
        let mut got: Vec<i64> = c.tokens().iter().map(|t| t.as_int().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![2, 2, 3, 3], "both branches see both tokens");
    }

    #[test]
    fn grouped_sliding_windows_under_threads() {
        // Stopped-car shape: {Size: 2, Step: 1, Group-by: carid}.
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("windows");
        let reports: Vec<Token> = vec![(1, 10), (2, 30), (1, 11), (2, 31), (1, 12)]
            .into_iter()
            .map(|(car, pos)| Token::record().field("carid", car).field("pos", pos).build())
            .collect();
        let s = b.add_actor("src", VecSource::new(reports));
        let pairs = b.add_actor(
            "pairs",
            crate::actors::FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
                if w.len() < 2 {
                    // End-of-stream flush produces short windows; a real
                    // pairwise operator ignores them.
                    return Ok(());
                }
                let first = w.events.first().unwrap().token.int_field("pos")?;
                let last = w.events.last().unwrap().token.int_field("pos")?;
                emit(0, Token::Int(last - first));
                Ok(())
            }),
        );
        let k = b.add_actor("sink", c.actor());
        b.connect_windowed(
            s,
            "out",
            pairs,
            "in",
            WindowSpec::tuples(2, 1).group_by(GroupBy::fields(&["carid"])),
        )
        .unwrap();
        b.connect(pairs, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        ThreadedDirector::new().run(&mut wf).unwrap();
        let mut got: Vec<i64> = c.tokens().iter().map(|t| t.as_int().unwrap()).collect();
        got.sort();
        assert_eq!(got, vec![1, 1, 1], "car1: 10→11, 11→12; car2: 30→31");
    }

    #[test]
    fn push_source_end_to_end() {
        let c = Collector::new();
        let (src, handle) = PushSource::new();
        let mut b = WorkflowBuilder::new("push");
        let s = b.add_actor("src", src);
        let k = b.add_actor("sink", c.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let producer = std::thread::spawn(move || {
            for i in 0..5 {
                handle.push(Token::Int(i));
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            // handle drops here, ending the stream
        });
        ThreadedDirector::new().run(&mut wf).unwrap();
        producer.join().unwrap();
        assert_eq!(c.len(), 5);
    }

    #[test]
    fn timed_window_timeout_fires_without_closing_event() {
        // A lone event in a 20ms tumbling window must come out via the
        // timeout path (no later event ever closes the window).
        let probe = LatencyProbe::new();
        let c = Collector::new();
        let mut b = WorkflowBuilder::new("timeout");
        let s = b.add_actor(
            "src",
            TimedSource::new(vec![(Timestamp(0), Token::Int(1))]),
        );
        let agg = b.add_actor(
            "agg",
            crate::actors::FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
                emit(0, Token::Int(w.len() as i64));
                Ok(())
            }),
        );
        let k = b.add_actor("sink", c.actor());
        let _ = probe;
        b.connect_windowed(
            s,
            "out",
            agg,
            "in",
            WindowSpec::tumbling_time(Micros::from_millis(20)),
        )
        .unwrap();
        b.connect(agg, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        ThreadedDirector::new().run(&mut wf).unwrap();
        assert_eq!(c.tokens(), vec![Token::Int(1)]);
    }

    #[test]
    fn actor_error_is_reported() {
        struct Boom;
        impl Actor for Boom {
            fn signature(&self) -> IoSignature {
                IoSignature::sink("in")
            }
            fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
                Err(Error::actor("boom", "fire", "deliberate"))
            }
        }
        let mut b = WorkflowBuilder::new("err");
        let s = b.add_actor("src", VecSource::new(vec![Token::Int(1)]));
        let k = b.add_actor("boom", Boom);
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        let err = ThreadedDirector::new().run(&mut wf).unwrap_err();
        assert!(matches!(err, Error::Actor { .. }));
    }

    #[test]
    fn latency_probe_measures_under_wall_clock() {
        let p = LatencyProbe::new();
        let mut b = WorkflowBuilder::new("latency");
        let s = b.add_actor("src", VecSource::new(vec![Token::Int(1)]));
        let k = b.add_actor("probe", p.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        ThreadedDirector::new().run(&mut wf).unwrap();
        assert_eq!(p.len(), 1);
    }
}
