//! Machine-readable version of the paper's Table 1: the taxonomy of
//! directors found in Kepler / PtolemyII plus the continuous-workflow
//! directors (PNCWF and the STAFiLOS SCWF).
//!
//! Each entry records how actors interact, what drives computation, how
//! firing is scheduled, what notion of time is supported, and whether the
//! model is QoS-aware — the five columns of Table 1 — plus whether this
//! repository implements the director.

/// How actors interact under the model of computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Interaction {
    /// Topology-driven push along channels.
    TopologyPush,
    /// Central event queue.
    EventQueue,
    /// Topology-driven, mixed push/pull.
    TopologyPushPull,
    /// Synchronous push.
    SynchronousPush,
    /// Priority-queue mediated push.
    PriorityQueue,
    /// Push with windowed receivers.
    PushWindowed,
}

/// What drives computation forward.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComputationDriver {
    /// A schedule compiled before execution.
    PreCompiled,
    /// Availability of data.
    DataDriven,
    /// Event occurrence.
    EventDriven,
    /// Priorities.
    PriorityBased,
    /// Data and time jointly.
    DataTimeDriven,
    /// Data plus window formation.
    DataWindowedDriven,
}

/// How actor firing is scheduled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scheduling {
    /// Fixed pre-compiled order.
    PreCompiled,
    /// Iterative, consumption-based.
    IterativeConsumption,
    /// Delegated to OS threads.
    ThreadOs,
    /// Event timestamp order.
    EventOrder,
    /// Several strategies available.
    Multiple,
    /// Pre-emptive priority-based.
    PreemptivePriority,
    /// Time-based (timed multitasking).
    TimeBased,
    /// Pluggable policy (the STAFiLOS framework).
    Pluggable,
}

/// Notion of time supported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeSupport {
    /// No time semantics.
    None,
    /// A global clock.
    Global,
    /// Global or per-actor local clocks.
    GlobalOrLocal,
    /// Global tick (synchronous-reactive).
    GlobalTick,
    /// Local clocks only.
    Local,
}

/// QoS awareness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Qos {
    /// None.
    None,
    /// Static priorities.
    Priority,
    /// Pluggable QoS-driven scheduling policies.
    Pluggable,
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DirectorTraits {
    /// Short name (SDF, DDF, PN, ..., PNCWF, SCWF).
    pub name: &'static str,
    /// Full name.
    pub full_name: &'static str,
    /// Actor interaction style.
    pub interaction: Interaction,
    /// Computation driver.
    pub driver: ComputationDriver,
    /// Scheduling approach.
    pub scheduling: Scheduling,
    /// Time support.
    pub time: TimeSupport,
    /// QoS support.
    pub qos: Qos,
    /// Whether this repository implements the director.
    pub implemented: bool,
}

/// The full taxonomy: Kepler's directors (first group), PtolemyII's
/// (second group), and the continuous-workflow directors.
pub fn taxonomy() -> Vec<DirectorTraits> {
    use ComputationDriver as D;
    use Interaction as I;
    use Qos as Q;
    use Scheduling as S;
    use TimeSupport as T;
    vec![
        DirectorTraits {
            name: "SDF",
            full_name: "Synchronous Dataflow",
            interaction: I::TopologyPush,
            driver: D::PreCompiled,
            scheduling: S::PreCompiled,
            time: T::None,
            qos: Q::None,
            implemented: true,
        },
        DirectorTraits {
            name: "DDF",
            full_name: "Dynamic Dataflow",
            interaction: I::TopologyPush,
            driver: D::DataDriven,
            scheduling: S::IterativeConsumption,
            time: T::None,
            qos: Q::None,
            implemented: true,
        },
        DirectorTraits {
            name: "PN",
            full_name: "Process Networks",
            interaction: I::TopologyPush,
            driver: D::DataDriven,
            scheduling: S::ThreadOs,
            time: T::None,
            qos: Q::None,
            implemented: false,
        },
        DirectorTraits {
            name: "DE",
            full_name: "Discrete Event",
            interaction: I::EventQueue,
            driver: D::EventDriven,
            scheduling: S::EventOrder,
            time: T::Global,
            qos: Q::None,
            implemented: true,
        },
        DirectorTraits {
            name: "CN",
            full_name: "Component Interaction (client/server)",
            interaction: I::TopologyPushPull,
            driver: D::PreCompiled,
            scheduling: S::PreCompiled,
            time: T::Global,
            qos: Q::None,
            implemented: false,
        },
        DirectorTraits {
            name: "CI",
            full_name: "Push/Pull Component Interaction",
            interaction: I::TopologyPushPull,
            driver: D::DataDriven,
            scheduling: S::ThreadOs,
            time: T::None,
            qos: Q::None,
            implemented: false,
        },
        DirectorTraits {
            name: "CSP",
            full_name: "Communicating Sequential Processes",
            interaction: I::SynchronousPush,
            driver: D::DataDriven,
            scheduling: S::ThreadOs,
            time: T::Global,
            qos: Q::None,
            implemented: false,
        },
        DirectorTraits {
            name: "DT",
            full_name: "Discrete Time",
            interaction: I::TopologyPush,
            driver: D::PreCompiled,
            scheduling: S::PreCompiled,
            time: T::GlobalOrLocal,
            qos: Q::None,
            implemented: false,
        },
        DirectorTraits {
            name: "HDF",
            full_name: "Heterochronous Dataflow",
            interaction: I::TopologyPush,
            driver: D::DataDriven,
            scheduling: S::Multiple,
            time: T::None,
            qos: Q::None,
            implemented: false,
        },
        DirectorTraits {
            name: "SR",
            full_name: "Synchronous Reactive",
            interaction: I::SynchronousPush,
            driver: D::PreCompiled,
            scheduling: S::PreCompiled,
            time: T::GlobalTick,
            qos: Q::None,
            implemented: false,
        },
        DirectorTraits {
            name: "TM",
            full_name: "Timed Multitasking",
            interaction: I::PriorityQueue,
            driver: D::PriorityBased,
            scheduling: S::PreemptivePriority,
            time: T::None,
            qos: Q::Priority,
            implemented: false,
        },
        DirectorTraits {
            name: "TPN",
            full_name: "Timed Process Networks",
            interaction: I::TopologyPush,
            driver: D::DataTimeDriven,
            scheduling: S::ThreadOs,
            time: T::Global,
            qos: Q::None,
            implemented: false,
        },
        DirectorTraits {
            name: "PNCWF",
            full_name: "Continuous Workflow (thread-based)",
            interaction: I::PushWindowed,
            driver: D::DataWindowedDriven,
            scheduling: S::ThreadOs,
            time: T::Local,
            qos: Q::None,
            implemented: true,
        },
        DirectorTraits {
            name: "SCWF",
            full_name: "Scheduled Continuous Workflow (STAFiLOS)",
            interaction: I::PushWindowed,
            driver: D::DataWindowedDriven,
            scheduling: S::Pluggable,
            time: T::Local,
            qos: Q::Pluggable,
            implemented: true,
        },
    ]
}

/// Render the taxonomy as an aligned text table (the `experiments --table1`
/// output).
pub fn render_table() -> String {
    let rows = taxonomy();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<6} {:<18} {:<22} {:<22} {:<12} {:<10} {}\n",
        "Name", "Interaction", "Computation Driver", "Scheduling", "Time", "QoS", "Implemented"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<6} {:<18} {:<22} {:<22} {:<12} {:<10} {}\n",
            r.name,
            format!("{:?}", r.interaction),
            format!("{:?}", r.driver),
            format!("{:?}", r.scheduling),
            format!("{:?}", r.time),
            format!("{:?}", r.qos),
            if r.implemented { "yes" } else { "no" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn taxonomy_covers_table_1_plus_cwf_directors() {
        let t = taxonomy();
        assert_eq!(t.len(), 14, "12 Kepler/Ptolemy rows + PNCWF + SCWF");
        for name in ["SDF", "DDF", "PN", "DE", "CN", "CI", "CSP", "DT", "HDF", "SR", "TM", "TPN", "PNCWF", "SCWF"] {
            assert!(t.iter().any(|r| r.name == name), "missing {name}");
        }
    }

    #[test]
    fn implemented_set_matches_this_repository() {
        let implemented: Vec<&str> = taxonomy()
            .into_iter()
            .filter(|r| r.implemented)
            .map(|r| r.name)
            .collect();
        assert_eq!(implemented, vec!["SDF", "DDF", "DE", "PNCWF", "SCWF"]);
    }

    #[test]
    fn only_cwf_directors_are_windowed_and_scwf_is_qos_pluggable() {
        for r in taxonomy() {
            let windowed = r.interaction == Interaction::PushWindowed;
            assert_eq!(windowed, r.name == "PNCWF" || r.name == "SCWF");
            if r.name == "SCWF" {
                assert_eq!(r.qos, Qos::Pluggable);
                assert_eq!(r.scheduling, Scheduling::Pluggable);
            }
        }
    }

    #[test]
    fn render_produces_a_row_per_director() {
        let s = render_table();
        assert_eq!(s.lines().count(), 15); // header + 14 rows
        assert!(s.contains("PNCWF"));
    }
}
