//! Workflow specification: actors, ports, channels, and the builder.
//!
//! A workflow is specified once — which actors exist, how their ports are
//! wired, what window semantics each input carries, what priority the
//! designer gave each actor — and can then be executed under different
//! models of computation (directors). This mirrors Kepler's decoupling of
//! workflow specification from execution.

use std::collections::HashMap;

use crate::actor::{Actor, IoSignature};
use crate::channel::ChannelPolicy;
use crate::error::{Error, Result};
use crate::shard::{OrderedMerge, ShardReplica, ShardSplitter};
use crate::window::{GroupBy, Measure, WindowSpec};

/// Identifies an actor within one workflow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ActorId(pub usize);

impl ActorId {
    /// The raw index.
    pub fn index(self) -> usize {
        self.0
    }

    /// Endpoint on this actor's port named `name`.
    pub fn port(self, name: impl Into<String>) -> Endpoint {
        Endpoint {
            actor: self,
            port: PortKey::Name(name.into()),
        }
    }

    /// Endpoint on this actor's output port `index`.
    pub fn out(self, index: usize) -> Endpoint {
        Endpoint {
            actor: self,
            port: PortKey::Index(index),
        }
    }

    /// Endpoint on this actor's input port `index`.
    pub fn input(self, index: usize) -> Endpoint {
        Endpoint {
            actor: self,
            port: PortKey::Index(index),
        }
    }
}

impl std::fmt::Display for ActorId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "actor#{}", self.0)
    }
}

/// A reference to one port of one actor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortRef {
    /// The actor.
    pub actor: ActorId,
    /// Port index within the actor's input or output list.
    pub port: usize,
}

/// A directed channel from an output port to an input port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Channel {
    /// Producing end.
    pub from: PortRef,
    /// Consuming end.
    pub to: PortRef,
}

/// An actor plus its per-workflow configuration.
pub struct ActorNode {
    /// Unique name within the workflow.
    pub name: String,
    actor: Option<Box<dyn Actor>>,
    /// Cached signature (stable for the actor's lifetime).
    pub signature: IoSignature,
    /// Designer-assigned priority (used by priority-based schedulers;
    /// lower value = more urgent, like Unix nice). Default 20.
    pub priority: i32,
    /// Whether the actor reported itself as a source.
    pub is_source: bool,
}

impl std::fmt::Debug for ActorNode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorNode")
            .field("name", &self.name)
            .field("signature", &self.signature)
            .field("priority", &self.priority)
            .field("is_source", &self.is_source)
            .field("actor_present", &self.actor.is_some())
            .finish()
    }
}

impl ActorNode {
    /// Borrow the actor mutably. Panics if the actor is currently taken by
    /// a director (programming error).
    pub fn actor_mut(&mut self) -> &mut dyn Actor {
        self.actor
            .as_deref_mut()
            .expect("actor taken by a director")
    }

    /// Borrow the actor immutably (e.g. to read its declared SDF rates).
    /// `None` while a director has taken it.
    pub fn peek_actor(&self) -> Option<&dyn Actor> {
        self.actor.as_deref()
    }

    /// Move the actor out (thread-based directors move each actor into its
    /// own thread).
    pub fn take_actor(&mut self) -> Box<dyn Actor> {
        self.actor.take().expect("actor already taken")
    }

    /// Return a previously taken actor.
    pub fn return_actor(&mut self, actor: Box<dyn Actor>) {
        debug_assert!(self.actor.is_none());
        self.actor = Some(actor);
    }
}

/// A complete, validated workflow specification.
pub struct Workflow {
    name: String,
    nodes: Vec<ActorNode>,
    channels: Vec<Channel>,
    /// Window spec for each (actor, input port).
    input_windows: Vec<Vec<WindowSpec>>,
    /// For each (actor, output port): downstream (actor, input port) pairs.
    routes: Vec<Vec<Vec<PortRef>>>,
    /// For each (actor, input port): number of incoming channels.
    in_degree: Vec<Vec<usize>>,
    /// For each (actor, input port): where that port's expired-items queue
    /// is delivered, if a handler activity was attached.
    expired_routes: Vec<Vec<Option<PortRef>>>,
    /// Per-(actor, input port) channel policy overrides; `None` falls back
    /// to the workflow-wide default.
    channel_policies: Vec<Vec<Option<ChannelPolicy>>>,
    /// Workflow-wide channel policy for ports without an override.
    default_channel_policy: ChannelPolicy,
    /// Shard groups produced by build-time expansion, in declaration order.
    shard_groups: Vec<ShardGroup>,
}

impl std::fmt::Debug for Workflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workflow")
            .field("name", &self.name)
            .field("actors", &self.nodes.len())
            .field("channels", &self.channels.len())
            .finish()
    }
}

impl Workflow {
    /// The workflow's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of actors.
    pub fn actor_count(&self) -> usize {
        self.nodes.len()
    }

    /// All actor ids.
    pub fn actor_ids(&self) -> impl Iterator<Item = ActorId> {
        (0..self.nodes.len()).map(ActorId)
    }

    /// Borrow a node.
    pub fn node(&self, id: ActorId) -> &ActorNode {
        &self.nodes[id.0]
    }

    /// Borrow a node mutably.
    pub fn node_mut(&mut self, id: ActorId) -> &mut ActorNode {
        &mut self.nodes[id.0]
    }

    /// Look an actor up by name.
    pub fn find(&self, name: &str) -> Option<ActorId> {
        self.nodes.iter().position(|n| n.name == name).map(ActorId)
    }

    /// All channels.
    pub fn channels(&self) -> &[Channel] {
        &self.channels
    }

    /// Downstream destinations of one output port.
    pub fn routes_from(&self, actor: ActorId, out_port: usize) -> &[PortRef] {
        &self.routes[actor.0][out_port]
    }

    /// Number of channels feeding one input port.
    pub fn in_degree(&self, actor: ActorId, in_port: usize) -> usize {
        self.in_degree[actor.0][in_port]
    }

    /// Window specification attached to one input port.
    pub fn window_spec(&self, actor: ActorId, in_port: usize) -> &WindowSpec {
        &self.input_windows[actor.0][in_port]
    }

    /// Destination of one input port's expired-items queue, if any.
    pub fn expired_route(&self, actor: ActorId, in_port: usize) -> Option<PortRef> {
        self.expired_routes[actor.0][in_port]
    }

    /// Channel capacity policy in force on one input port (the per-port
    /// override if set, the workflow default otherwise).
    pub fn channel_policy(&self, actor: ActorId, in_port: usize) -> ChannelPolicy {
        self.channel_policies[actor.0][in_port].unwrap_or(self.default_channel_policy)
    }

    /// The workflow-wide channel policy for ports without an override.
    pub fn default_channel_policy(&self) -> ChannelPolicy {
        self.default_channel_policy
    }

    /// Set the workflow-wide channel policy (ports with explicit overrides
    /// keep them). Takes effect the next time a fabric is built, i.e. at
    /// the next run.
    pub fn set_default_channel_policy(&mut self, policy: ChannelPolicy) {
        self.default_channel_policy = policy;
    }

    /// Override the channel policy on one input port.
    pub fn set_channel_policy(&mut self, actor: ActorId, in_port: usize, policy: ChannelPolicy) {
        self.channel_policies[actor.0][in_port] = Some(policy);
    }

    /// Shard groups produced by build-time expansion (empty when nothing
    /// was sharded).
    pub fn shard_groups(&self) -> &[ShardGroup] {
        &self.shard_groups
    }

    /// Whether any port routes its expired events to a handler.
    pub fn has_expired_routes(&self) -> bool {
        self.expired_routes
            .iter()
            .any(|ports| ports.iter().any(|p| p.is_some()))
    }

    /// Ids of source actors.
    pub fn sources(&self) -> Vec<ActorId> {
        self.actor_ids()
            .filter(|id| self.node(*id).is_source)
            .collect()
    }

    /// Ids of actors with no output channels (workflow outputs).
    pub fn sinks(&self) -> Vec<ActorId> {
        self.actor_ids()
            .filter(|id| self.routes[id.0].iter().all(|r| r.is_empty()))
            .collect()
    }

    /// Immediate downstream actor ids of `actor` (deduplicated).
    pub fn downstream_actors(&self, actor: ActorId) -> Vec<ActorId> {
        let mut out: Vec<ActorId> = self.routes[actor.0]
            .iter()
            .flatten()
            .map(|p| p.actor)
            .collect();
        out.sort();
        out.dedup();
        out
    }

    /// Render the workflow as Graphviz DOT (actors as nodes labelled with
    /// name and priority; channels as edges labelled with port names;
    /// expired-handler feeds as dashed edges; shard groups as dashed
    /// clusters).
    pub fn to_dot(&self) -> String {
        let mut out = format!("digraph \"{}\" {{\n  rankdir=LR;\n", self.name);
        let mut in_group = vec![false; self.nodes.len()];
        for g in &self.shard_groups {
            for id in g.members() {
                in_group[id.0] = true;
            }
        }
        let node_line = |i: usize| {
            let node = &self.nodes[i];
            let shape = if node.is_source { "invhouse" } else { "box" };
            format!(
                "  n{i} [label=\"{}\\np{}\" shape={shape}];\n",
                node.name, node.priority
            )
        };
        for (i, grouped) in in_group.iter().enumerate() {
            if !grouped {
                out.push_str(&node_line(i));
            }
        }
        for (k, g) in self.shard_groups.iter().enumerate() {
            out.push_str(&format!(
                "  subgraph cluster_shard{k} {{\n    label=\"{} x{}\";\n    style=dashed;\n",
                g.base,
                g.replicas.len()
            ));
            for id in g.members() {
                out.push_str(&format!("  {}", node_line(id.0)));
            }
            out.push_str("  }\n");
        }
        for ch in &self.channels {
            let from = &self.nodes[ch.from.actor.0];
            let to = &self.nodes[ch.to.actor.0];
            out.push_str(&format!(
                "  n{} -> n{} [label=\"{}→{}\"];\n",
                ch.from.actor.0,
                ch.to.actor.0,
                from.signature.outputs[ch.from.port],
                to.signature.inputs[ch.to.port],
            ));
        }
        for (a, ports) in self.expired_routes.iter().enumerate() {
            for dest in ports.iter().flatten() {
                out.push_str(&format!(
                    "  n{a} -> n{} [style=dashed label=\"expired\"];\n",
                    dest.actor.0
                ));
            }
        }
        out.push_str("}\n");
        out
    }

    /// Immediate upstream actor ids of `actor` (deduplicated).
    pub fn upstream_actors(&self, actor: ActorId) -> Vec<ActorId> {
        let mut out: Vec<ActorId> = self
            .channels
            .iter()
            .filter(|c| c.to.actor == actor)
            .map(|c| c.from.actor)
            .collect();
        out.sort();
        out.dedup();
        out
    }
}

/// Fluent constructor for [`Workflow`]s.
///
/// ```
/// use confluence_core::graph::WorkflowBuilder;
/// use confluence_core::actors::{VecSource, Collector};
/// use confluence_core::token::Token;
/// use confluence_core::window::WindowSpec;
///
/// let mut b = WorkflowBuilder::new("demo");
/// let src = b.add_actor("src", VecSource::new(vec![Token::Int(1)]));
/// let sink = b.add_actor("sink", Collector::new().actor());
/// b.connect(src, "out", sink, "in").unwrap();
/// b.set_window(sink, "in", WindowSpec::each_event()).unwrap();
/// let wf = b.build().unwrap();
/// assert_eq!(wf.actor_count(), 2);
/// ```
pub struct WorkflowBuilder {
    name: String,
    nodes: Vec<ActorNode>,
    channels: Vec<Channel>,
    input_windows: Vec<Vec<WindowSpec>>,
    expired_handlers: Vec<(ActorId, String, ActorId, String)>,
    channel_policies: Vec<Vec<Option<ChannelPolicy>>>,
    default_channel_policy: ChannelPolicy,
    shards: Vec<(ActorId, Shard)>,
}

/// Selects a port on an actor, either by declared name or by positional
/// index in the actor's [`IoSignature`](crate::actor::IoSignature). All
/// builder methods that take a port accept both forms:
///
/// ```ignore
/// b.connect(a, "out", c, "in")?;   // by name
/// b.connect(a, 0, c, 0)?;          // by index
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortSel<'a> {
    /// Select by declared port name.
    Name(&'a str),
    /// Select by positional index.
    Index(usize),
}

impl<'a> From<&'a str> for PortSel<'a> {
    fn from(name: &'a str) -> Self {
        PortSel::Name(name)
    }
}

impl<'a> From<&'a String> for PortSel<'a> {
    fn from(name: &'a String) -> Self {
        PortSel::Name(name)
    }
}

impl From<usize> for PortSel<'_> {
    fn from(index: usize) -> Self {
        PortSel::Index(index)
    }
}

impl std::fmt::Display for PortSel<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PortSel::Name(n) => write!(f, "{n}"),
            PortSel::Index(i) => write!(f, "#{i}"),
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum PortKey {
    Name(String),
    Index(usize),
}

/// A typed reference to one port of one actor — the uniform endpoint
/// vocabulary accepted (as `impl Into<Endpoint>`) by every builder method:
/// [`WorkflowBuilder::link`], [`WorkflowBuilder::window`],
/// [`WorkflowBuilder::link_windowed`], [`WorkflowBuilder::channel_policy`],
/// [`WorkflowBuilder::expired_handler`], and [`WorkflowBuilder::shard`].
///
/// Endpoints are made from an [`ActorId`]: `actor.port("pos_in")`,
/// `actor.out(0)`, `actor.input(1)` — or a bare `ActorId`, meaning its
/// first port. Whether the port resolves against the actor's inputs or
/// outputs is decided by the argument position (`from` resolves outputs,
/// `to` resolves inputs), so `out`/`input` differ only in what they say at
/// the call site.
///
/// ```
/// use confluence_core::graph::WorkflowBuilder;
/// use confluence_core::actors::{VecSource, Collector};
/// use confluence_core::token::Token;
///
/// let mut b = WorkflowBuilder::new("endpoints");
/// let src = b.add_actor("src", VecSource::new(vec![Token::Int(1)]));
/// let sink = b.add_actor("sink", Collector::new().actor());
/// b.link(src.port("out"), sink.port("in")).unwrap();
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Endpoint {
    /// The actor this endpoint belongs to.
    pub actor: ActorId,
    port: PortKey,
}

impl Endpoint {
    fn sel(&self) -> PortSel<'_> {
        match &self.port {
            PortKey::Name(n) => PortSel::Name(n),
            PortKey::Index(i) => PortSel::Index(*i),
        }
    }
}

/// A bare actor id is an endpoint on the actor's first (often only) port.
impl From<ActorId> for Endpoint {
    fn from(actor: ActorId) -> Self {
        actor.out(0)
    }
}

impl From<(ActorId, &str)> for Endpoint {
    fn from((actor, name): (ActorId, &str)) -> Self {
        actor.port(name)
    }
}

impl From<(ActorId, usize)> for Endpoint {
    fn from((actor, index): (ActorId, usize)) -> Self {
        actor.out(index)
    }
}

/// Declarative keyed-sharding specification for one actor, applied with
/// [`WorkflowBuilder::shard`]. Reuses the window [`GroupBy`] machinery as
/// its key expression.
#[derive(Debug, Clone)]
pub struct Shard {
    key: GroupBy,
    replicas: usize,
    replica_channel_policy: Option<ChannelPolicy>,
}

impl Shard {
    /// Shard by the value of the named record fields.
    pub fn by_fields(names: &[&str]) -> Shard {
        Self::by_key(GroupBy::fields(names))
    }

    /// Shard by an arbitrary [`GroupBy`] key expression. A
    /// [`GroupBy::Key`] closure is accepted unchecked: the caller asserts
    /// it is consistent with the actor's window grouping.
    pub fn by_key(key: GroupBy) -> Shard {
        Shard {
            key,
            replicas: 2,
            replica_channel_policy: None,
        }
    }

    /// Number of replicas (default 2). `replicas(1)` makes the expansion a
    /// structural no-op.
    pub fn replicas(mut self, n: usize) -> Shard {
        self.replicas = n;
        self
    }

    /// Channel policy applied to every replica's input port (defaults to
    /// the workflow-wide policy).
    pub fn replica_channel_policy(mut self, policy: ChannelPolicy) -> Shard {
        self.replica_channel_policy = Some(policy);
        self
    }
}

/// Metadata about one expanded shard group, recorded on the built
/// [`Workflow`] for telemetry and DOT export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardGroup {
    /// Name of the actor that was sharded.
    pub base: String,
    /// The generated key-hash splitter (occupies the original node slot).
    pub splitter: ActorId,
    /// Replica ids, in shard order.
    pub replicas: Vec<ActorId>,
    /// The generated ordered merge stage.
    pub merge: ActorId,
}

impl ShardGroup {
    /// Every generated actor of this group: splitter, replicas, merge.
    pub fn members(&self) -> impl Iterator<Item = ActorId> + '_ {
        std::iter::once(self.splitter)
            .chain(self.replicas.iter().copied())
            .chain(std::iter::once(self.merge))
    }
}

impl WorkflowBuilder {
    /// Start building a workflow.
    pub fn new(name: impl Into<String>) -> Self {
        WorkflowBuilder {
            name: name.into(),
            nodes: Vec::new(),
            channels: Vec::new(),
            input_windows: Vec::new(),
            expired_handlers: Vec::new(),
            channel_policies: Vec::new(),
            default_channel_policy: ChannelPolicy::unbounded(),
            shards: Vec::new(),
        }
    }

    /// Add an actor under a unique name. Every input port starts with the
    /// degenerate per-event window ([`WindowSpec::each_event`]); attach
    /// richer semantics with [`WorkflowBuilder::set_window`].
    pub fn add_actor(&mut self, name: impl Into<String>, actor: impl Actor + 'static) -> ActorId {
        self.add_boxed_actor(name, Box::new(actor))
    }

    /// Add an already-boxed actor.
    pub fn add_boxed_actor(&mut self, name: impl Into<String>, actor: Box<dyn Actor>) -> ActorId {
        let signature = actor.signature();
        let is_source = actor.is_source();
        let id = ActorId(self.nodes.len());
        self.input_windows
            .push(vec![WindowSpec::each_event(); signature.inputs.len()]);
        self.channel_policies
            .push(vec![None; signature.inputs.len()]);
        self.nodes.push(ActorNode {
            name: name.into(),
            actor: Some(actor),
            signature,
            priority: 20,
            is_source,
        });
        id
    }

    fn resolve_output(&self, actor: ActorId, sel: PortSel<'_>) -> Result<usize> {
        let node = self
            .nodes
            .get(actor.0)
            .ok_or_else(|| Error::UnknownActor(format!("{actor}")))?;
        match sel {
            PortSel::Name(name) => node.signature.output_index(name).ok_or_else(|| {
                Error::UnknownPort(format!("{}.{name} (output)", node.name))
            }),
            PortSel::Index(i) if i < node.signature.outputs.len() => Ok(i),
            PortSel::Index(i) => Err(Error::UnknownPort(format!(
                "{}.#{i} (output; {} ports)",
                node.name,
                node.signature.outputs.len()
            ))),
        }
    }

    fn resolve_input(&self, actor: ActorId, sel: PortSel<'_>) -> Result<usize> {
        let node = self
            .nodes
            .get(actor.0)
            .ok_or_else(|| Error::UnknownActor(format!("{actor}")))?;
        match sel {
            PortSel::Name(name) => node.signature.input_index(name).ok_or_else(|| {
                Error::UnknownPort(format!("{}.{name} (input)", node.name))
            }),
            PortSel::Index(i) if i < node.signature.inputs.len() => Ok(i),
            PortSel::Index(i) => Err(Error::UnknownPort(format!(
                "{}.#{i} (input; {} ports)",
                node.name,
                node.signature.inputs.len()
            ))),
        }
    }

    fn endpoint_of(actor: ActorId, sel: PortSel<'_>) -> Endpoint {
        match sel {
            PortSel::Name(n) => actor.port(n),
            PortSel::Index(i) => actor.out(i),
        }
    }

    /// Connect an output endpoint to an input endpoint.
    pub fn link(&mut self, from: impl Into<Endpoint>, to: impl Into<Endpoint>) -> Result<()> {
        let (from, to) = (from.into(), to.into());
        let fp = self.resolve_output(from.actor, from.sel())?;
        let tp = self.resolve_input(to.actor, to.sel())?;
        self.channels.push(Channel {
            from: PortRef {
                actor: from.actor,
                port: fp,
            },
            to: PortRef {
                actor: to.actor,
                port: tp,
            },
        });
        Ok(())
    }

    /// Connect `from`'s output port to `to`'s input port. Ports are
    /// selected by name or by index ([`PortSel`]). Thin wrapper over
    /// [`WorkflowBuilder::link`].
    pub fn connect<'a>(
        &mut self,
        from: ActorId,
        from_port: impl Into<PortSel<'a>>,
        to: ActorId,
        to_port: impl Into<PortSel<'a>>,
    ) -> Result<()> {
        self.link(
            Self::endpoint_of(from, from_port.into()),
            Self::endpoint_of(to, to_port.into()),
        )
    }

    /// Connect actors into a linear pipeline: each actor's first output
    /// port feeds the next actor's first input port.
    pub fn chain(&mut self, actors: &[ActorId]) -> Result<()> {
        for pair in actors.windows(2) {
            self.connect(pair[0], 0usize, pair[1], 0usize)?;
        }
        Ok(())
    }

    /// Attach window semantics to an input endpoint.
    pub fn window(&mut self, at: impl Into<Endpoint>, spec: WindowSpec) -> Result<()> {
        spec.validate()?;
        let at = at.into();
        let idx = self.resolve_input(at.actor, at.sel())?;
        self.input_windows[at.actor.0][idx] = spec;
        Ok(())
    }

    /// Attach window semantics to an input port. Thin wrapper over
    /// [`WorkflowBuilder::window`].
    pub fn set_window<'a>(
        &mut self,
        actor: ActorId,
        port: impl Into<PortSel<'a>>,
        spec: WindowSpec,
    ) -> Result<()> {
        self.window(Self::endpoint_of(actor, port.into()), spec)
    }

    /// Convenience: [`WorkflowBuilder::link`] and set the destination
    /// endpoint's window in one go.
    pub fn link_windowed(
        &mut self,
        from: impl Into<Endpoint>,
        to: impl Into<Endpoint>,
        spec: WindowSpec,
    ) -> Result<()> {
        let to = to.into();
        self.link(from, to.clone())?;
        self.window(to, spec)
    }

    /// Convenience: connect and set the destination port's window in one
    /// go. Thin wrapper over [`WorkflowBuilder::link_windowed`].
    pub fn connect_windowed<'a>(
        &mut self,
        from: ActorId,
        from_port: impl Into<PortSel<'a>>,
        to: ActorId,
        to_port: impl Into<PortSel<'a>>,
        spec: WindowSpec,
    ) -> Result<()> {
        self.link_windowed(
            Self::endpoint_of(from, from_port.into()),
            Self::endpoint_of(to, to_port.into()),
            spec,
        )
    }

    /// Assign a designer priority (used by the QBS scheduler; lower is more
    /// urgent).
    pub fn set_priority(&mut self, actor: ActorId, priority: i32) {
        self.nodes[actor.0].priority = priority;
    }

    /// Attach a channel capacity policy to one input endpoint (overrides
    /// the workflow default set by
    /// [`WorkflowBuilder::set_default_channel_policy`]).
    pub fn channel_policy(&mut self, at: impl Into<Endpoint>, policy: ChannelPolicy) -> Result<()> {
        let at = at.into();
        let idx = self.resolve_input(at.actor, at.sel())?;
        self.channel_policies[at.actor.0][idx] = Some(policy);
        Ok(())
    }

    /// Attach a channel capacity policy to one input port. Thin wrapper
    /// over [`WorkflowBuilder::channel_policy`].
    pub fn set_channel_policy<'a>(
        &mut self,
        actor: ActorId,
        port: impl Into<PortSel<'a>>,
        policy: ChannelPolicy,
    ) -> Result<()> {
        self.channel_policy(Self::endpoint_of(actor, port.into()), policy)
    }

    /// Set the workflow-wide channel policy applied to every input port
    /// without an explicit override. Defaults to
    /// [`ChannelPolicy::unbounded`].
    pub fn set_default_channel_policy(&mut self, policy: ChannelPolicy) {
        self.default_channel_policy = policy;
    }

    /// Attach a handler activity to an input endpoint's expired-items
    /// queue (paper §2.1: "when events expire they are pushed to an
    /// expired items queue which are optionally handled by another
    /// workflow activity"). Events sliding out of `at`'s windows are
    /// delivered to `handler` instead of being discarded.
    pub fn expired_handler(
        &mut self,
        at: impl Into<Endpoint>,
        handler: impl Into<Endpoint>,
    ) -> Result<()> {
        // Resolve eagerly and store the canonical names; final route
        // resolution happens at build().
        let (at, handler) = (at.into(), handler.into());
        let pi = self.resolve_input(at.actor, at.sel())?;
        let hi = self.resolve_input(handler.actor, handler.sel())?;
        let port = self.nodes[at.actor.0].signature.inputs[pi].clone();
        let handler_port = self.nodes[handler.actor.0].signature.inputs[hi].clone();
        self.expired_handlers
            .push((at.actor, port, handler.actor, handler_port));
        Ok(())
    }

    /// Attach an expired-items handler by `(actor, port)` pairs. Thin
    /// wrapper over [`WorkflowBuilder::expired_handler`].
    pub fn set_expired_handler<'a>(
        &mut self,
        actor: ActorId,
        port: impl Into<PortSel<'a>>,
        handler: ActorId,
        handler_port: impl Into<PortSel<'a>>,
    ) -> Result<()> {
        self.expired_handler(
            Self::endpoint_of(actor, port.into()),
            Self::endpoint_of(handler, handler_port.into()),
        )
    }

    /// Mark an actor for keyed sharding: at [`WorkflowBuilder::build`] the
    /// actor is expanded into `spec.replicas` replicas behind a generated
    /// key-hash splitter and an ordered merge stage (see [`crate::shard`]),
    /// invisible to both its neighbours and the director. The actor must
    /// have exactly one input and one output port, support
    /// [`Actor::replicate`], and its input window's group-by must be at
    /// least as fine as the shard key (or be the per-event window).
    pub fn shard(&mut self, actor: impl Into<Endpoint>, spec: Shard) -> Result<()> {
        let actor = actor.into().actor;
        let node = self
            .nodes
            .get(actor.0)
            .ok_or_else(|| Error::UnknownActor(format!("{actor}")))?;
        if spec.replicas == 0 {
            return Err(Error::Graph(format!(
                "shard on `{}` needs at least one replica",
                node.name
            )));
        }
        if self.shards.iter().any(|(id, _)| *id == actor) {
            return Err(Error::Graph(format!(
                "actor `{}` is already marked for sharding",
                node.name
            )));
        }
        self.shards.push((actor, spec));
        Ok(())
    }

    /// Expand every [`WorkflowBuilder::shard`] declaration in place,
    /// returning the recorded group metadata.
    fn expand_shards(&mut self) -> Result<Vec<ShardGroup>> {
        let mut groups = Vec::new();
        let shards = std::mem::take(&mut self.shards);
        for (id, spec) in shards {
            if spec.replicas == 1 {
                continue; // structural no-op
            }
            let node = &self.nodes[id.0];
            let base = node.name.clone();
            if node.is_source {
                return Err(Error::Graph(format!("cannot shard source actor `{base}`")));
            }
            if node.signature.inputs.len() != 1 || node.signature.outputs.len() != 1 {
                return Err(Error::Graph(format!(
                    "cannot shard `{base}`: sharding requires exactly one input and one \
                     output port (has {} inputs, {} outputs)",
                    node.signature.inputs.len(),
                    node.signature.outputs.len()
                )));
            }
            // The actor's window moves to the replicas, so per-replica
            // windowing must equal global windowing: the window's group-by
            // has to be at least as fine as the shard key (every window
            // group lands whole on one replica), unless each event forms
            // its own window anyway.
            let w = self.input_windows[id.0][0].clone();
            let per_event = w.size == Measure::Tuples(1) && w.step == Measure::Tuples(1);
            let compatible = per_event
                || match (&spec.key, &w.group_by) {
                    (GroupBy::Fields(k), GroupBy::Fields(g)) => k.iter().all(|f| g.contains(f)),
                    (GroupBy::Key(_), _) => true, // caller-asserted
                    _ => false,
                };
            if !compatible {
                return Err(Error::Graph(format!(
                    "cannot shard `{base}`: its input window must group by at least the \
                     shard key fields (or be the per-event window)"
                )));
            }
            let n = spec.replicas;
            let in_name = node.signature.inputs[0].clone();
            let priority = node.priority;

            // The splitter takes over the sharded actor's node slot so
            // upstream channels stay untouched.
            let inner = self.nodes[id.0].actor.take().expect("actor taken before build");
            let mut inners = vec![inner];
            for _ in 1..n {
                let replica = inners[0].replicate().ok_or_else(|| {
                    Error::Graph(format!(
                        "cannot shard `{base}`: Actor::replicate returned None \
                         (the actor does not declare itself replicable)"
                    ))
                })?;
                inners.push(replica);
            }
            let splitter: Box<dyn Actor> =
                Box::new(ShardSplitter::new(spec.key.clone(), n, in_name.as_str()));
            let signature = splitter.signature();
            self.nodes[id.0] = ActorNode {
                name: format!("{base}#split"),
                actor: Some(splitter),
                signature,
                priority,
                is_source: false,
            };
            self.input_windows[id.0] = vec![WindowSpec::each_event()];

            let replica_ids: Vec<ActorId> = inners
                .into_iter()
                .enumerate()
                .map(|(r, inner)| {
                    let rid = self.add_boxed_actor(
                        format!("{base}#{r}"),
                        Box::new(ShardReplica::new(inner)),
                    );
                    self.nodes[rid.0].priority = priority;
                    self.input_windows[rid.0][0] = w.clone();
                    if let Some(policy) = spec.replica_channel_policy {
                        self.channel_policies[rid.0][0] = Some(policy);
                    }
                    rid
                })
                .collect();
            let merge = self.add_boxed_actor(format!("{base}#merge"), Box::new(OrderedMerge::new(n)));
            self.nodes[merge.0].priority = priority;

            // Re-point the sharded actor's out-edges to the merge, *before*
            // wiring the generated channels (which also originate at `id`).
            for ch in &mut self.channels {
                if ch.from.actor == id {
                    ch.from = PortRef {
                        actor: merge,
                        port: 0,
                    };
                }
            }
            for (r, &rid) in replica_ids.iter().enumerate() {
                self.connect(id, r, rid, 0usize)?;
                self.connect(rid, 0usize, merge, r)?;
                self.connect(rid, 1usize, merge, n + r)?;
            }

            // Expired events of the (now replica-held) window keep flowing
            // to the declared handler, from every replica.
            let handlers = std::mem::take(&mut self.expired_handlers);
            for (a, p, h, hp) in handlers {
                if a == id {
                    for &rid in &replica_ids {
                        self.expired_handlers.push((rid, p.clone(), h, hp.clone()));
                    }
                } else {
                    self.expired_handlers.push((a, p, h, hp));
                }
            }

            groups.push(ShardGroup {
                base,
                splitter: id,
                replicas: replica_ids,
                merge,
            });
        }
        Ok(groups)
    }

    /// Validate and produce the workflow.
    pub fn build(mut self) -> Result<Workflow> {
        let shard_groups = self.expand_shards()?;
        let mut seen = HashMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            if let Some(prev) = seen.insert(node.name.clone(), i) {
                return Err(Error::Graph(format!(
                    "duplicate actor name `{}` (actors #{prev} and #{i})",
                    node.name
                )));
            }
        }
        let mut routes: Vec<Vec<Vec<PortRef>>> = self
            .nodes
            .iter()
            .map(|n| vec![Vec::new(); n.signature.outputs.len()])
            .collect();
        let mut in_degree: Vec<Vec<usize>> = self
            .nodes
            .iter()
            .map(|n| vec![0; n.signature.inputs.len()])
            .collect();
        for ch in &self.channels {
            routes[ch.from.actor.0][ch.from.port].push(ch.to);
            in_degree[ch.to.actor.0][ch.to.port] += 1;
        }
        let mut expired_routes: Vec<Vec<Option<PortRef>>> = self
            .nodes
            .iter()
            .map(|n| vec![None; n.signature.inputs.len()])
            .collect();
        for (actor, port, handler, handler_port) in &self.expired_handlers {
            let pi = self.nodes[actor.0]
                .signature
                .input_index(port)
                .expect("validated at registration");
            let hi = self.nodes[handler.0]
                .signature
                .input_index(handler_port)
                .expect("validated at registration");
            expired_routes[actor.0][pi] = Some(PortRef {
                actor: *handler,
                port: hi,
            });
        }
        // Source actors must not have connected inputs; non-source actors
        // with inputs must have at least one connected input overall,
        // otherwise they can never fire. A port that only receives expired
        // events counts as connected.
        let expired_fed: Vec<ActorId> = expired_routes
            .iter()
            .flatten()
            .flatten()
            .map(|p| p.actor)
            .collect();
        for (i, node) in self.nodes.iter().enumerate() {
            if node.is_source && in_degree[i].iter().any(|&d| d > 0) {
                return Err(Error::Graph(format!(
                    "source actor `{}` has connected inputs",
                    node.name
                )));
            }
            if !node.is_source
                && !node.signature.inputs.is_empty()
                && in_degree[i].iter().all(|&d| d == 0)
                && !expired_fed.contains(&ActorId(i))
            {
                return Err(Error::Graph(format!(
                    "actor `{}` has no connected inputs and is not a source",
                    node.name
                )));
            }
        }
        Ok(Workflow {
            name: self.name,
            nodes: self.nodes,
            channels: self.channels,
            input_windows: self.input_windows,
            routes,
            in_degree,
            expired_routes,
            channel_policies: self.channel_policies,
            default_channel_policy: self.default_channel_policy,
            shard_groups,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::FireContext;
    use crate::token::Token;

    struct Src;
    impl Actor for Src {
        fn signature(&self) -> IoSignature {
            IoSignature::source("out")
        }
        fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
            ctx.emit(0, Token::Int(1));
            Ok(())
        }
        fn is_source(&self) -> bool {
            true
        }
    }

    struct Pass;
    impl Actor for Pass {
        fn signature(&self) -> IoSignature {
            IoSignature::transform("in", "out")
        }
        fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
            if let Some(w) = ctx.get(0) {
                for t in w.tokens() {
                    ctx.emit(0, t.clone());
                }
            }
            Ok(())
        }
    }

    struct Sink;
    impl Actor for Sink {
        fn signature(&self) -> IoSignature {
            IoSignature::sink("in")
        }
        fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
            Ok(())
        }
    }

    fn diamond() -> Workflow {
        let mut b = WorkflowBuilder::new("diamond");
        let s = b.add_actor("src", Src);
        let p1 = b.add_actor("p1", Pass);
        let p2 = b.add_actor("p2", Pass);
        let k = b.add_actor("sink", Sink);
        b.connect(s, "out", p1, "in").unwrap();
        b.connect(s, "out", p2, "in").unwrap();
        b.connect(p1, "out", k, "in").unwrap();
        b.connect(p2, "out", k, "in").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builds_and_queries_topology() {
        let wf = diamond();
        assert_eq!(wf.actor_count(), 4);
        assert_eq!(wf.channels().len(), 4);
        let s = wf.find("src").unwrap();
        let k = wf.find("sink").unwrap();
        assert_eq!(wf.sources(), vec![s]);
        assert_eq!(wf.sinks(), vec![k]);
        assert_eq!(wf.routes_from(s, 0).len(), 2);
        assert_eq!(wf.in_degree(k, 0), 2);
        assert_eq!(wf.downstream_actors(s).len(), 2);
        assert_eq!(wf.upstream_actors(k).len(), 2);
        assert!(wf.find("nope").is_none());
        assert_eq!(format!("{s}"), "actor#0");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut b = WorkflowBuilder::new("dup");
        b.add_actor("x", Src);
        b.add_actor("x", Sink);
        assert!(matches!(b.build(), Err(Error::Graph(_))));
    }

    #[test]
    fn unknown_ports_rejected() {
        let mut b = WorkflowBuilder::new("bad");
        let s = b.add_actor("s", Src);
        let k = b.add_actor("k", Sink);
        assert!(b.connect(s, "nope", k, "in").is_err());
        assert!(b.connect(s, "out", k, "nope").is_err());
        assert!(b
            .set_window(k, "nope", crate::window::WindowSpec::each_event())
            .is_err());
    }

    #[test]
    fn ports_select_by_index_or_name() {
        // Index-based connect builds the same topology as name-based.
        let mut b = WorkflowBuilder::new("by-index");
        let s = b.add_actor("src", Src);
        let p = b.add_actor("pass", Pass);
        let k = b.add_actor("sink", Sink);
        b.connect(s, 0, p, 0).unwrap();
        b.connect(p, "out", k, 0).unwrap();
        b.set_window(k, 0, crate::window::WindowSpec::tuples(2, 1))
            .unwrap();
        let wf = b.build().unwrap();
        assert_eq!(wf.channels().len(), 2);
        assert_eq!(
            wf.window_spec(k, 0).size,
            crate::window::Measure::Tuples(2)
        );
        // Out-of-range indices are rejected with the port error.
        let mut b = WorkflowBuilder::new("oob");
        let s = b.add_actor("src", Src);
        let k = b.add_actor("sink", Sink);
        assert!(matches!(b.connect(s, 3, k, 0), Err(Error::UnknownPort(_))));
        assert!(matches!(b.connect(s, 0, k, 9), Err(Error::UnknownPort(_))));
    }

    #[test]
    fn chain_builds_linear_pipeline() {
        let mut b = WorkflowBuilder::new("chained");
        let s = b.add_actor("src", Src);
        let p1 = b.add_actor("p1", Pass);
        let p2 = b.add_actor("p2", Pass);
        let k = b.add_actor("sink", Sink);
        b.chain(&[s, p1, p2, k]).unwrap();
        let wf = b.build().unwrap();
        assert_eq!(wf.channels().len(), 3);
        assert_eq!(wf.routes_from(s, 0), &[PortRef { actor: p1, port: 0 }]);
        assert_eq!(wf.routes_from(p1, 0), &[PortRef { actor: p2, port: 0 }]);
        assert_eq!(wf.routes_from(p2, 0), &[PortRef { actor: k, port: 0 }]);
        // Degenerate chains are no-ops.
        let mut b = WorkflowBuilder::new("short");
        let s = b.add_actor("src", Src);
        b.chain(&[s]).unwrap();
        b.chain(&[]).unwrap();
    }

    #[test]
    fn dangling_input_rejected() {
        let mut b = WorkflowBuilder::new("dangling");
        b.add_actor("s", Src);
        b.add_actor("k", Sink); // never connected
        assert!(matches!(b.build(), Err(Error::Graph(_))));
    }

    #[test]
    fn source_with_input_rejected() {
        struct WeirdSource;
        impl Actor for WeirdSource {
            fn signature(&self) -> IoSignature {
                IoSignature::new(&["in"], &["out"])
            }
            fn fire(&mut self, _ctx: &mut dyn FireContext) -> Result<()> {
                Ok(())
            }
            fn is_source(&self) -> bool {
                true
            }
        }
        let mut b = WorkflowBuilder::new("weird");
        let s = b.add_actor("s", Src);
        let w = b.add_actor("w", WeirdSource);
        b.connect(s, "out", w, "in").unwrap();
        assert!(matches!(b.build(), Err(Error::Graph(_))));
    }

    #[test]
    fn priorities_and_windows_stored() {
        let mut b = WorkflowBuilder::new("p");
        let s = b.add_actor("s", Src);
        let k = b.add_actor("k", Sink);
        b.connect_windowed(s, "out", k, "in", crate::window::WindowSpec::tuples(4, 1))
            .unwrap();
        b.set_priority(k, 5);
        let wf = b.build().unwrap();
        assert_eq!(wf.node(k).priority, 5);
        assert_eq!(
            wf.window_spec(k, 0).size,
            crate::window::Measure::Tuples(4)
        );
        assert_eq!(wf.node(s).priority, 20);
    }

    #[test]
    fn dot_export_lists_nodes_and_edges() {
        let wf = diamond();
        let dot = wf.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.contains("src"));
        assert!(dot.contains("invhouse"), "sources get a distinct shape");
        assert_eq!(dot.matches(" -> ").count(), 4, "four channels");
        assert!(dot.contains("out→in"));
    }

    #[test]
    fn take_and_return_actor() {
        let mut wf = diamond();
        let s = wf.find("src").unwrap();
        let a = wf.node_mut(s).take_actor();
        wf.node_mut(s).return_actor(a);
        let _ = wf.node_mut(s).actor_mut();
    }
}
