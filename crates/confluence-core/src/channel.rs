//! Channel capacity policies: bounded queues with backpressure.
//!
//! Kepler/Ptolemy PN semantics make every channel a *bounded* queue: a
//! writer facing a full queue blocks until the reader drains it. CONFLuEnCE
//! inherits those semantics for the thread-based PNCWF director, while the
//! cooperative directors (SDF/DDF/DE/SCWF) — which cannot block inside their
//! own scheduling loop — resolve a full queue by shedding or erroring
//! according to the same policy object.
//!
//! A [`ChannelPolicy`] is attached per input port (or as a workflow-wide
//! default) and interpreted by the fabric when routing events:
//!
//! * capacity is counted in *formed windows* waiting in the destination
//!   actor's inbox for that port — not raw buffered tuples, so a window
//!   larger than the capacity can still form;
//! * [`OnFull::Block`] blocks the writer (threaded director) with
//!   Parks-style artificial-deadlock relief: if every writer is blocked and
//!   no reader makes progress, the smallest full queue is grown;
//! * [`OnFull::DropOldest`] / [`OnFull::DropNewest`] shed load and report it
//!   through the observer's `on_shed` hook;
//! * [`OnFull::Error`] fails the run with [`crate::error::Error::ChannelFull`].

/// What to do when a bounded channel is at capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OnFull {
    /// Block the writer until the reader drains the queue (PN semantics).
    /// Under cooperative directors, which must not block their scheduling
    /// loop, the event is admitted anyway and the overflow is reported as a
    /// zero-wait block.
    #[default]
    Block,
    /// Drop the oldest queued window to admit the new event (keep fresh
    /// data; classic load shedding for monitoring streams).
    DropOldest,
    /// Drop the incoming event (keep old data; at-most-once admission).
    DropNewest,
    /// Fail the run with [`crate::error::Error::ChannelFull`].
    Error,
}

/// Capacity bound and overflow behavior for one channel (input port).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelPolicy {
    /// Maximum formed windows queued on the port; `None` means unbounded
    /// (the historical behavior and the default).
    pub capacity: Option<usize>,
    /// Behavior when the queue is at capacity.
    pub on_full: OnFull,
}

impl Default for ChannelPolicy {
    fn default() -> Self {
        ChannelPolicy::unbounded()
    }
}

impl ChannelPolicy {
    /// No capacity bound (historical behavior).
    pub const fn unbounded() -> Self {
        ChannelPolicy {
            capacity: None,
            on_full: OnFull::Block,
        }
    }

    /// Bounded queue that blocks the writer when full (PN semantics).
    pub const fn block(capacity: usize) -> Self {
        ChannelPolicy {
            capacity: Some(capacity),
            on_full: OnFull::Block,
        }
    }

    /// Bounded queue that sheds the oldest queued window when full.
    pub const fn drop_oldest(capacity: usize) -> Self {
        ChannelPolicy {
            capacity: Some(capacity),
            on_full: OnFull::DropOldest,
        }
    }

    /// Bounded queue that discards the incoming event when full.
    pub const fn drop_newest(capacity: usize) -> Self {
        ChannelPolicy {
            capacity: Some(capacity),
            on_full: OnFull::DropNewest,
        }
    }

    /// Bounded queue that fails the run when full.
    pub const fn error(capacity: usize) -> Self {
        ChannelPolicy {
            capacity: Some(capacity),
            on_full: OnFull::Error,
        }
    }

    /// Whether this policy imposes a capacity bound.
    pub fn is_bounded(&self) -> bool {
        self.capacity.is_some()
    }

    /// The capacity bound, treating unbounded as `usize::MAX`.
    pub fn capacity_or_max(&self) -> usize {
        self.capacity.unwrap_or(usize::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_unbounded() {
        let p = ChannelPolicy::default();
        assert!(!p.is_bounded());
        assert_eq!(p.capacity_or_max(), usize::MAX);
        assert_eq!(p.on_full, OnFull::Block);
    }

    #[test]
    fn constructors_set_policy() {
        assert_eq!(ChannelPolicy::block(8).capacity, Some(8));
        assert_eq!(ChannelPolicy::block(8).on_full, OnFull::Block);
        assert_eq!(ChannelPolicy::drop_oldest(4).on_full, OnFull::DropOldest);
        assert_eq!(ChannelPolicy::drop_newest(4).on_full, OnFull::DropNewest);
        assert_eq!(ChannelPolicy::error(2).on_full, OnFull::Error);
        assert!(ChannelPolicy::error(2).is_bounded());
        assert_eq!(ChannelPolicy::block(8).capacity_or_max(), 8);
    }
}
