//! Receivers: the active queues sitting on actor input ports.
//!
//! In Kepler the receiving point of a channel has a *receiver* object which
//! is provided not by the actor but by the director. CONFLuEnCE's
//! **Windowed Receiver** encapsulates arriving tokens into timestamped,
//! wave-stamped events, runs the window operator on the queue, and makes
//! formed windows available to the actor's `get()` — here split into:
//!
//! * [`PortReceiver`] — one per input port: wraps the [`WindowOperator`]
//!   behind a lock and forwards formed windows to the owning actor's inbox
//!   (the paper's TM Windowed Receiver forwarding produced windows to the
//!   actor's ready queue at the director, Figure 4);
//! * [`ActorInbox`] — one per actor: the ready queue of `(port, Window)`
//!   pairs. The thread-based director blocks on it; the STAFiLOS scheduled
//!   director polls it and feeds its scheduler.
//!
//! Channels are *bounded* when a [`ChannelPolicy`] with a capacity is
//! attached: capacity is counted in formed windows queued per port, and a
//! full port either blocks the writer (PN semantics, orchestrated by the
//! fabric), sheds, or errors — see [`crate::channel`].

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::channel::{ChannelPolicy, OnFull};
use crate::error::{Error, Result};
use crate::event::CwEvent;
use crate::time::Timestamp;
use crate::window::{Window, WindowOperator, WindowSpec};

/// Callback surface for executors that schedule actors as tasks instead of
/// parking a thread per inbox (the pool director). Installed once per inbox
/// via [`ActorInbox::set_waker`]; the inbox invokes it outside its own lock.
pub trait InboxWaker: Send + Sync {
    /// A window became ready (or a feeding port closed): the owning actor
    /// should be (re-)enqueued for execution.
    fn on_ready(&self);
    /// Queue space was freed on this inbox: writers parked on a full port
    /// may retry.
    fn on_space(&self);
}

/// Result of a blocking inbox pop.
#[derive(Debug, PartialEq)]
pub enum InboxPop {
    /// A window is ready on the given input port.
    Window(usize, Window),
    /// The wait deadline passed with no window.
    TimedOut,
    /// Every upstream port has closed and no windows remain.
    Closed,
}

#[derive(Debug)]
struct InboxState {
    /// Ready windows with each window's earliest wave-origin (µs,
    /// `u64::MAX` when the window carries no events) cached at push time.
    windows: VecDeque<(usize, u64, Window)>,
    open_ports: usize,
    /// Formed windows currently queued, per input port (the occupancy that
    /// bounded channel policies meter).
    per_port: Vec<usize>,
}

impl InboxState {
    fn depth_slot(&mut self, port: usize) -> &mut usize {
        if port >= self.per_port.len() {
            self.per_port.resize(port + 1, 0);
        }
        &mut self.per_port[port]
    }
}

/// Cached earliest origin of a window about to be queued (µs).
fn origin_key(window: &Window) -> u64 {
    window
        .earliest_origin()
        .map(|t| t.as_micros())
        .unwrap_or(u64::MAX)
}

/// The per-actor ready queue of formed windows.
pub struct ActorInbox {
    state: Mutex<InboxState>,
    cond: Condvar,
    /// Writers blocked on a full port wait here; every pop (and every
    /// drop-shed, close, or capacity growth) notifies it.
    space: Condvar,
    /// Shared fabric-wide progress counter, bumped on every push and pop.
    /// The no-progress detector behind Parks-style deadlock relief reads it.
    progress: Arc<AtomicU64>,
    /// Earliest wave-origin (µs) of the window at the queue front —
    /// `u64::MAX` when no window is pending. Maintained under the state
    /// lock, readable without it: the O(1) staleness signal deadline-aware
    /// pool policies key on.
    oldest: AtomicU64,
    /// Optional task-executor hook, set once before the run starts.
    waker: std::sync::OnceLock<Arc<dyn InboxWaker>>,
}

impl std::fmt::Debug for ActorInbox {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorInbox")
            .field("state", &self.state)
            .field("has_waker", &self.waker.get().is_some())
            .finish()
    }
}

impl ActorInbox {
    /// An inbox fed by `input_ports` port receivers.
    pub fn new(input_ports: usize) -> Arc<Self> {
        Self::new_shared(input_ports, Arc::new(AtomicU64::new(0)))
    }

    /// An inbox wired to a fabric-wide progress counter.
    pub fn new_shared(input_ports: usize, progress: Arc<AtomicU64>) -> Arc<Self> {
        Arc::new(ActorInbox {
            state: Mutex::new(InboxState {
                windows: VecDeque::new(),
                open_ports: input_ports,
                per_port: vec![0; input_ports],
            }),
            cond: Condvar::new(),
            space: Condvar::new(),
            progress,
            oldest: AtomicU64::new(u64::MAX),
            waker: std::sync::OnceLock::new(),
        })
    }

    /// Install the task-executor hook. First caller wins; the thread-based
    /// directors never install one and pay nothing for the check.
    pub fn set_waker(&self, waker: Arc<dyn InboxWaker>) {
        let _ = self.waker.set(waker);
    }

    fn wake_ready(&self) {
        if let Some(w) = self.waker.get() {
            w.on_ready();
        }
    }

    fn wake_space(&self) {
        if let Some(w) = self.waker.get() {
            w.on_space();
        }
    }

    /// Re-publish the front window's cached origin (call with the state
    /// lock held, after any queue mutation).
    fn refresh_oldest(&self, st: &InboxState) {
        let front = st.windows.front().map(|(_, o, _)| *o).unwrap_or(u64::MAX);
        self.oldest.store(front, Ordering::Relaxed);
    }

    /// Earliest wave-origin among the events of the oldest pending window
    /// (the one the next firing will consume), or `None` when the inbox is
    /// empty or the window carries no events. O(1): the origin is cached
    /// at push time and published through an atomic.
    pub fn oldest_origin(&self) -> Option<Timestamp> {
        match self.oldest.load(Ordering::Relaxed) {
            u64::MAX => None,
            us => Some(Timestamp(us)),
        }
    }

    /// Enqueue a formed window from input port `port`.
    pub fn push(&self, port: usize, window: Window) {
        let mut st = self.state.lock();
        *st.depth_slot(port) += 1;
        st.windows.push_back((port, origin_key(&window), window));
        self.refresh_oldest(&st);
        drop(st);
        self.progress.fetch_add(1, Ordering::Relaxed);
        self.cond.notify_one();
        self.wake_ready();
    }

    /// Enqueue a batch of formed windows from input port `port` under one
    /// lock acquisition, with one progress bump and one wakeup for the
    /// whole batch (the fabric's batched routing path).
    pub fn push_batch(&self, port: usize, windows: Vec<Window>) {
        if windows.is_empty() {
            return;
        }
        let mut st = self.state.lock();
        *st.depth_slot(port) += windows.len();
        for w in windows {
            let key = origin_key(&w);
            st.windows.push_back((port, key, w));
        }
        self.refresh_oldest(&st);
        drop(st);
        self.progress.fetch_add(1, Ordering::Relaxed);
        self.cond.notify_one();
        self.wake_ready();
    }

    /// Non-blocking pop (used by scheduled directors).
    pub fn try_pop(&self) -> Option<(usize, Window)> {
        let mut st = self.state.lock();
        let popped = st.windows.pop_front();
        if let Some((port, _, _)) = &popped {
            let port = *port;
            let slot = st.depth_slot(port);
            *slot = slot.saturating_sub(1);
            self.refresh_oldest(&st);
            drop(st);
            self.progress.fetch_add(1, Ordering::Relaxed);
            self.space.notify_all();
            self.wake_space();
        }
        popped.map(|(port, _, w)| (port, w))
    }

    /// Blocking pop with an optional wall-clock timeout (used by the
    /// thread-based director; the timeout realizes window-formation
    /// timeouts, after which the caller polls its receivers).
    pub fn pop_blocking(&self, timeout: Option<std::time::Duration>) -> InboxPop {
        let mut st = self.state.lock();
        loop {
            if let Some((port, _, w)) = st.windows.pop_front() {
                let slot = st.depth_slot(port);
                *slot = slot.saturating_sub(1);
                self.refresh_oldest(&st);
                drop(st);
                self.progress.fetch_add(1, Ordering::Relaxed);
                self.space.notify_all();
                self.wake_space();
                return InboxPop::Window(port, w);
            }
            if st.open_ports == 0 {
                return InboxPop::Closed;
            }
            match timeout {
                Some(t) => {
                    if self.cond.wait_for(&mut st, t).timed_out() {
                        return InboxPop::TimedOut;
                    }
                }
                None => self.cond.wait(&mut st),
            }
        }
    }

    /// Number of ready windows.
    pub fn len(&self) -> usize {
        self.state.lock().windows.len()
    }

    /// Whether no windows are ready.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Formed windows currently queued for input `port`.
    pub fn port_depth(&self, port: usize) -> usize {
        let st = self.state.lock();
        st.per_port.get(port).copied().unwrap_or(0)
    }

    /// Remove (shed) the oldest queued window belonging to `port`.
    pub fn drop_oldest(&self, port: usize) -> Option<Window> {
        let mut st = self.state.lock();
        let pos = st.windows.iter().position(|(p, _, _)| *p == port)?;
        let (_, _, w) = st.windows.remove(pos)?;
        let slot = st.depth_slot(port);
        *slot = slot.saturating_sub(1);
        self.refresh_oldest(&st);
        drop(st);
        self.progress.fetch_add(1, Ordering::Relaxed);
        self.space.notify_all();
        self.wake_space();
        Some(w)
    }

    /// Wait until `port` has fewer than `capacity` queued windows, the
    /// timeout passes, or the inbox owner goes away. Returns whether space
    /// is available now.
    pub fn wait_for_space(
        &self,
        port: usize,
        capacity: usize,
        timeout: std::time::Duration,
    ) -> bool {
        let mut st = self.state.lock();
        loop {
            let depth = st.per_port.get(port).copied().unwrap_or(0);
            if depth < capacity {
                return true;
            }
            if self.space.wait_for(&mut st, timeout).timed_out() {
                let depth = st.per_port.get(port).copied().unwrap_or(0);
                return depth < capacity;
            }
        }
    }

    /// Wake writers blocked on a full port (used after capacity growth).
    pub fn notify_space(&self) {
        self.space.notify_all();
        self.wake_space();
    }

    /// Mark one feeding port as closed (its upstream actors all finished).
    pub fn close_port(&self) {
        let mut st = self.state.lock();
        st.open_ports = st.open_ports.saturating_sub(1);
        drop(st);
        self.cond.notify_all();
        self.space.notify_all();
        self.wake_ready();
        self.wake_space();
    }

    /// Whether every feeding port has closed (more windows may still be
    /// queued).
    pub fn all_ports_closed(&self) -> bool {
        self.state.lock().open_ports == 0
    }
}

/// Outcome of a capacity-aware [`PortReceiver::try_put`].
#[derive(Debug)]
pub enum TryPut {
    /// The event was admitted; this many windows were formed and forwarded
    /// to the inbox.
    Stored(usize),
    /// The event was admitted by shedding: `dropped` previously-queued
    /// events were discarded (0 when the *incoming* event was the one
    /// dropped), and `windows` new windows formed.
    Shed {
        /// Events discarded to make room (or the incoming event itself
        /// under [`OnFull::DropNewest`]).
        dropped: u64,
        /// Windows formed by the admitted event (0 under `DropNewest`).
        windows: usize,
    },
    /// The port is at capacity under [`OnFull::Block`]; the event is
    /// returned so the caller can wait for space and retry.
    Full(CwEvent),
}

/// The Windowed Receiver on one input port.
pub struct PortReceiver {
    op: Mutex<WindowOperator>,
    inbox: Arc<ActorInbox>,
    port: usize,
    /// Channels still feeding this port; when the count reaches zero the
    /// receiver flushes and closes its inbox port.
    remaining_upstreams: Mutex<usize>,
    /// Capacity bound and overflow behavior for this channel.
    policy: ChannelPolicy,
    /// Effective capacity: starts at the policy's bound and grows under
    /// Parks-style artificial-deadlock relief. `usize::MAX` when unbounded.
    effective_capacity: AtomicUsize,
}

impl std::fmt::Debug for PortReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortReceiver")
            .field("port", &self.port)
            .field("policy", &self.policy)
            .finish()
    }
}

impl PortReceiver {
    /// Build the receiver for input `port` of the actor owning `inbox`,
    /// with the given window semantics, fed by `upstreams` channels.
    pub fn new(
        spec: WindowSpec,
        inbox: Arc<ActorInbox>,
        port: usize,
        upstreams: usize,
    ) -> Result<Self> {
        Self::with_policy(spec, inbox, port, upstreams, ChannelPolicy::unbounded())
    }

    /// [`PortReceiver::new`] with an explicit channel capacity policy.
    pub fn with_policy(
        spec: WindowSpec,
        inbox: Arc<ActorInbox>,
        port: usize,
        upstreams: usize,
        policy: ChannelPolicy,
    ) -> Result<Self> {
        Ok(PortReceiver {
            op: Mutex::new(WindowOperator::new(spec)?),
            inbox,
            port,
            remaining_upstreams: Mutex::new(upstreams),
            policy,
            effective_capacity: AtomicUsize::new(policy.capacity_or_max()),
        })
    }

    /// The input port index this receiver serves.
    pub fn port(&self) -> usize {
        self.port
    }

    /// The channel policy attached to this port.
    pub fn policy(&self) -> &ChannelPolicy {
        &self.policy
    }

    /// The inbox this receiver forwards to.
    pub fn inbox(&self) -> &Arc<ActorInbox> {
        &self.inbox
    }

    /// Current effective capacity (policy bound, possibly grown by
    /// deadlock relief). `usize::MAX` when unbounded.
    pub fn effective_capacity(&self) -> usize {
        self.effective_capacity.load(Ordering::Relaxed)
    }

    /// Whether the port is bounded and currently at (or over) capacity.
    pub fn is_full(&self) -> bool {
        self.policy.is_bounded() && self.inbox.port_depth(self.port) >= self.effective_capacity()
    }

    /// Grow the effective capacity by the policy's original bound
    /// (artificial-deadlock relief). Returns the new capacity.
    pub fn grow_capacity(&self) -> usize {
        let step = self.policy.capacity_or_max().max(1);
        let new = self
            .effective_capacity
            .fetch_add(step, Ordering::Relaxed)
            .saturating_add(step);
        self.inbox.notify_space();
        new
    }

    /// The paper's `put()`: encapsulated event goes into the appropriate
    /// group queue; within the same call window semantics are evaluated and
    /// any produced window is forwarded to the actor's ready queue.
    /// Returns the number of windows produced.
    ///
    /// This path never blocks and never sheds: a full [`OnFull::Block`] /
    /// drop-policy port is admitted over capacity and [`OnFull::Error`]
    /// fails. Capacity orchestration (waiting, shedding, relief) lives in
    /// the fabric, which goes through [`PortReceiver::try_put`] first.
    pub fn put(&self, event: CwEvent, now: Timestamp) -> Result<usize> {
        if self.policy.on_full == OnFull::Error && self.is_full() {
            return Err(Error::ChannelFull {
                port: self.port,
                capacity: self.effective_capacity(),
            });
        }
        self.put_unchecked(event, now)
    }

    /// Admit the event regardless of capacity.
    fn put_unchecked(&self, event: CwEvent, now: Timestamp) -> Result<usize> {
        let mut op = self.op.lock();
        let n = op.push(event, now)?;
        for _ in 0..n {
            let w = op.pop_window().expect("push reported n windows");
            self.inbox.push(self.port, w);
        }
        Ok(n)
    }

    /// Admit a whole firing's worth of events under a single operator-lock
    /// acquisition, forwarding all formed windows to the inbox in one
    /// batch. Capacity is not consulted — the fabric only takes this path
    /// for unbounded ports. Returns windows formed.
    ///
    /// On a mid-batch error the windows formed so far are still forwarded
    /// (matching the per-event path, which forwards as it goes) before the
    /// error is returned.
    pub fn put_batch(&self, events: Vec<CwEvent>, now: Timestamp) -> Result<usize> {
        let mut op = self.op.lock();
        let mut formed = Vec::new();
        let mut failed = None;
        for event in events {
            match op.push(event, now) {
                Ok(n) => {
                    for _ in 0..n {
                        formed.push(op.pop_window().expect("push reported n windows"));
                    }
                }
                Err(e) => {
                    failed = Some(e);
                    break;
                }
            }
        }
        drop(op);
        let n = formed.len();
        self.inbox.push_batch(self.port, formed);
        match failed {
            Some(e) => Err(e),
            None => Ok(n),
        }
    }

    /// Capacity-aware put. On a full port, resolves according to the
    /// channel policy:
    ///
    /// * [`OnFull::Block`] — returns [`TryPut::Full`] with the event handed
    ///   back; the caller (fabric) waits for space and retries, or admits
    ///   it anyway under cooperative directors;
    /// * [`OnFull::DropOldest`] — sheds the oldest queued window on this
    ///   port, then admits the event;
    /// * [`OnFull::DropNewest`] — discards the incoming event;
    /// * [`OnFull::Error`] — fails with [`Error::ChannelFull`].
    pub fn try_put(&self, event: CwEvent, now: Timestamp) -> Result<TryPut> {
        if !self.is_full() {
            return Ok(TryPut::Stored(self.put_unchecked(event, now)?));
        }
        match self.policy.on_full {
            OnFull::Block => Ok(TryPut::Full(event)),
            OnFull::DropOldest => {
                let dropped = self
                    .inbox
                    .drop_oldest(self.port)
                    .map(|w| w.len() as u64)
                    // Nothing queued to shed (capacity 0 edge): drop the
                    // incoming event instead.
                    .unwrap_or(0);
                if dropped == 0 {
                    return Ok(TryPut::Shed {
                        dropped: 1,
                        windows: 0,
                    });
                }
                let windows = self.put_unchecked(event, now)?;
                Ok(TryPut::Shed { dropped, windows })
            }
            OnFull::DropNewest => Ok(TryPut::Shed {
                dropped: 1,
                windows: 0,
            }),
            OnFull::Error => Err(Error::ChannelFull {
                port: self.port,
                capacity: self.effective_capacity(),
            }),
        }
    }

    /// Evaluate time-driven window production at director time `now`
    /// (window-timeout events). Returns windows produced.
    pub fn poll(&self, now: Timestamp) -> usize {
        let mut op = self.op.lock();
        let n = op.poll(now);
        for _ in 0..n {
            let w = op.pop_window().expect("poll reported n windows");
            self.inbox.push(self.port, w);
        }
        n
    }

    /// Earliest time at which [`PortReceiver::poll`] could produce.
    pub fn next_deadline(&self) -> Option<Timestamp> {
        self.op.lock().next_deadline()
    }

    /// Events buffered in group queues.
    pub fn pending_events(&self) -> usize {
        self.op.lock().pending_events()
    }

    /// Drain expired events (for an expired-items handler activity).
    pub fn drain_expired(&self) -> Vec<CwEvent> {
        self.op.lock().drain_expired()
    }

    /// One upstream channel finished. When the last one does, remaining
    /// partial windows are flushed to the inbox and the inbox port closes.
    /// Returns `true` if this call fully closed the receiver.
    ///
    /// Idempotent past zero: a close on an already-closed receiver (e.g. a
    /// double-close through the expired-queue cascade) is a no-op rather
    /// than an underflow — `debug_assert!` alone would let the decrement
    /// wrap in release builds.
    pub fn upstream_closed(&self, now: Timestamp) -> bool {
        let mut remaining = self.remaining_upstreams.lock();
        debug_assert!(*remaining > 0, "more closes than upstream channels");
        if *remaining == 0 {
            return false;
        }
        *remaining = remaining.saturating_sub(1);
        if *remaining > 0 {
            return false;
        }
        drop(remaining);
        let mut op = self.op.lock();
        let n = op.flush(now);
        for _ in 0..n {
            let w = op.pop_window().expect("flush reported n windows");
            self.inbox.push(self.port, w);
        }
        drop(op);
        self.inbox.close_port();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Token;

    fn ev(v: i64, ts: u64) -> CwEvent {
        CwEvent::external(Token::Int(v), Timestamp(ts))
    }

    #[test]
    fn put_forms_windows_into_inbox() {
        let inbox = ActorInbox::new(1);
        let r = PortReceiver::new(WindowSpec::tuples(2, 2), inbox.clone(), 0, 1).unwrap();
        assert_eq!(r.put(ev(1, 0), Timestamp(0)).unwrap(), 0);
        assert!(inbox.is_empty());
        assert_eq!(r.put(ev(2, 1), Timestamp(1)).unwrap(), 1);
        let (port, w) = inbox.try_pop().unwrap();
        assert_eq!(port, 0);
        assert_eq!(w.len(), 2);
        assert_eq!(r.port(), 0);
    }

    #[test]
    fn poll_produces_timed_windows() {
        use crate::time::Micros;
        let inbox = ActorInbox::new(1);
        let spec = WindowSpec::tuples(10, 10).with_timeout(Micros(50));
        let r = PortReceiver::new(spec, inbox.clone(), 0, 1).unwrap();
        r.put(ev(1, 0), Timestamp(0)).unwrap();
        assert_eq!(r.next_deadline(), Some(Timestamp(50)));
        assert_eq!(r.poll(Timestamp(49)), 0);
        assert_eq!(r.poll(Timestamp(50)), 1);
        assert_eq!(inbox.len(), 1);
        assert_eq!(r.pending_events(), 0);
        assert_eq!(r.drain_expired().len(), 1);
    }

    #[test]
    fn close_flushes_and_closes_inbox() {
        let inbox = ActorInbox::new(1);
        let r = PortReceiver::new(WindowSpec::tuples(10, 10), inbox.clone(), 0, 2).unwrap();
        r.put(ev(1, 0), Timestamp(0)).unwrap();
        r.upstream_closed(Timestamp(5));
        assert!(!inbox.all_ports_closed(), "one of two upstreams remains");
        r.upstream_closed(Timestamp(6));
        assert!(inbox.all_ports_closed());
        let (_, w) = inbox.try_pop().expect("flushed short window");
        assert!(w.timed_out);
        assert_eq!(inbox.pop_blocking(None), InboxPop::Closed);
    }

    #[test]
    fn double_close_is_a_noop() {
        let inbox = ActorInbox::new(1);
        let r = PortReceiver::new(WindowSpec::tuples(10, 10), inbox.clone(), 0, 1).unwrap();
        assert!(r.upstream_closed(Timestamp(0)));
        // A second close (release builds drop the debug_assert) must not
        // wrap the upstream count back to usize::MAX.
        #[cfg(not(debug_assertions))]
        {
            assert!(!r.upstream_closed(Timestamp(1)));
            assert!(!r.upstream_closed(Timestamp(2)));
        }
        assert!(inbox.all_ports_closed());
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let inbox = ActorInbox::new(1);
        let inbox2 = inbox.clone();
        let t = std::thread::spawn(move || inbox2.pop_blocking(None));
        std::thread::sleep(std::time::Duration::from_millis(20));
        inbox.push(
            0,
            Window {
                group: Token::Unit,
                events: vec![ev(1, 0)],
                formed_at: Timestamp(0),
                timed_out: false,
            },
        );
        match t.join().unwrap() {
            InboxPop::Window(0, w) => assert_eq!(w.len(), 1),
            other => panic!("unexpected pop result: {other:?}"),
        }
    }

    #[test]
    fn blocking_pop_times_out() {
        let inbox = ActorInbox::new(1);
        let r = inbox.pop_blocking(Some(std::time::Duration::from_millis(5)));
        assert_eq!(r, InboxPop::TimedOut);
    }

    #[test]
    fn blocking_pop_returns_closed() {
        let inbox = ActorInbox::new(1);
        inbox.close_port();
        assert_eq!(inbox.pop_blocking(None), InboxPop::Closed);
    }

    #[test]
    fn inbox_tracks_per_port_depth() {
        let inbox = ActorInbox::new(2);
        let r0 = PortReceiver::new(WindowSpec::each_event(), inbox.clone(), 0, 1).unwrap();
        let r1 = PortReceiver::new(WindowSpec::each_event(), inbox.clone(), 1, 1).unwrap();
        r0.put(ev(1, 0), Timestamp(0)).unwrap();
        r0.put(ev(2, 1), Timestamp(1)).unwrap();
        r1.put(ev(3, 2), Timestamp(2)).unwrap();
        assert_eq!(inbox.port_depth(0), 2);
        assert_eq!(inbox.port_depth(1), 1);
        inbox.try_pop().unwrap();
        assert_eq!(inbox.port_depth(0), 1);
        let shed = inbox.drop_oldest(1).expect("port 1 has a window");
        assert_eq!(shed.len(), 1);
        assert_eq!(inbox.port_depth(1), 0);
        assert!(inbox.drop_oldest(1).is_none());
    }

    #[test]
    fn oldest_origin_tracks_the_queue_front() {
        let inbox = ActorInbox::new(1);
        assert_eq!(inbox.oldest_origin(), None, "empty inbox has no origin");
        let r = PortReceiver::new(WindowSpec::each_event(), inbox.clone(), 0, 1).unwrap();
        r.put(ev(1, 100), Timestamp(100)).unwrap();
        r.put(ev(2, 50), Timestamp(100)).unwrap();
        assert_eq!(
            inbox.oldest_origin(),
            Some(Timestamp(100)),
            "front window's origin, not the global min"
        );
        inbox.try_pop().unwrap();
        assert_eq!(inbox.oldest_origin(), Some(Timestamp(50)));
        inbox.try_pop().unwrap();
        assert_eq!(inbox.oldest_origin(), None);
    }

    #[test]
    fn try_put_blocks_at_capacity() {
        let inbox = ActorInbox::new(1);
        let r = PortReceiver::with_policy(
            WindowSpec::each_event(),
            inbox.clone(),
            0,
            1,
            ChannelPolicy::block(2),
        )
        .unwrap();
        assert!(matches!(
            r.try_put(ev(1, 0), Timestamp(0)).unwrap(),
            TryPut::Stored(1)
        ));
        assert!(matches!(
            r.try_put(ev(2, 1), Timestamp(1)).unwrap(),
            TryPut::Stored(1)
        ));
        assert!(r.is_full());
        match r.try_put(ev(3, 2), Timestamp(2)).unwrap() {
            TryPut::Full(e) => assert_eq!(e.token, Token::Int(3)),
            other => panic!("expected Full, got {other:?}"),
        }
        inbox.try_pop().unwrap();
        assert!(!r.is_full());
        assert!(matches!(
            r.try_put(ev(3, 2), Timestamp(2)).unwrap(),
            TryPut::Stored(1)
        ));
    }

    #[test]
    fn try_put_sheds_oldest() {
        let inbox = ActorInbox::new(1);
        let r = PortReceiver::with_policy(
            WindowSpec::each_event(),
            inbox.clone(),
            0,
            1,
            ChannelPolicy::drop_oldest(1),
        )
        .unwrap();
        r.try_put(ev(1, 0), Timestamp(0)).unwrap();
        match r.try_put(ev(2, 1), Timestamp(1)).unwrap() {
            TryPut::Shed { dropped, windows } => {
                assert_eq!(dropped, 1);
                assert_eq!(windows, 1);
            }
            other => panic!("expected Shed, got {other:?}"),
        }
        let (_, w) = inbox.try_pop().unwrap();
        assert_eq!(w.events[0].token, Token::Int(2), "oldest was shed");
    }

    #[test]
    fn try_put_drops_newest() {
        let inbox = ActorInbox::new(1);
        let r = PortReceiver::with_policy(
            WindowSpec::each_event(),
            inbox.clone(),
            0,
            1,
            ChannelPolicy::drop_newest(1),
        )
        .unwrap();
        r.try_put(ev(1, 0), Timestamp(0)).unwrap();
        match r.try_put(ev(2, 1), Timestamp(1)).unwrap() {
            TryPut::Shed { dropped, windows } => {
                assert_eq!(dropped, 1);
                assert_eq!(windows, 0);
            }
            other => panic!("expected Shed, got {other:?}"),
        }
        let (_, w) = inbox.try_pop().unwrap();
        assert_eq!(w.events[0].token, Token::Int(1), "newest was dropped");
        assert!(inbox.try_pop().is_none());
    }

    #[test]
    fn try_put_errors_when_full() {
        let inbox = ActorInbox::new(1);
        let r = PortReceiver::with_policy(
            WindowSpec::each_event(),
            inbox.clone(),
            0,
            1,
            ChannelPolicy::error(1),
        )
        .unwrap();
        r.try_put(ev(1, 0), Timestamp(0)).unwrap();
        assert!(matches!(
            r.try_put(ev(2, 1), Timestamp(1)),
            Err(Error::ChannelFull { port: 0, capacity: 1 })
        ));
        assert!(matches!(
            r.put(ev(2, 1), Timestamp(1)),
            Err(Error::ChannelFull { .. })
        ));
    }

    #[test]
    fn grow_capacity_relieves_full_port() {
        let inbox = ActorInbox::new(1);
        let r = PortReceiver::with_policy(
            WindowSpec::each_event(),
            inbox.clone(),
            0,
            1,
            ChannelPolicy::block(1),
        )
        .unwrap();
        r.try_put(ev(1, 0), Timestamp(0)).unwrap();
        assert!(r.is_full());
        assert_eq!(r.grow_capacity(), 2);
        assert!(!r.is_full());
        assert!(matches!(
            r.try_put(ev(2, 1), Timestamp(1)).unwrap(),
            TryPut::Stored(1)
        ));
    }

    #[test]
    fn wait_for_space_wakes_on_pop() {
        let inbox = ActorInbox::new(1);
        let r = PortReceiver::with_policy(
            WindowSpec::each_event(),
            inbox.clone(),
            0,
            1,
            ChannelPolicy::block(1),
        )
        .unwrap();
        r.try_put(ev(1, 0), Timestamp(0)).unwrap();
        let inbox2 = inbox.clone();
        let t = std::thread::spawn(move || {
            inbox2.wait_for_space(0, 1, std::time::Duration::from_secs(5))
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        inbox.try_pop().unwrap();
        assert!(t.join().unwrap(), "waiter saw the freed slot");
    }
}
