//! Receivers: the active queues sitting on actor input ports.
//!
//! In Kepler the receiving point of a channel has a *receiver* object which
//! is provided not by the actor but by the director. CONFLuEnCE's
//! **Windowed Receiver** encapsulates arriving tokens into timestamped,
//! wave-stamped events, runs the window operator on the queue, and makes
//! formed windows available to the actor's `get()` — here split into:
//!
//! * [`PortReceiver`] — one per input port: wraps the [`WindowOperator`]
//!   behind a lock and forwards formed windows to the owning actor's inbox
//!   (the paper's TM Windowed Receiver forwarding produced windows to the
//!   actor's ready queue at the director, Figure 4);
//! * [`ActorInbox`] — one per actor: the ready queue of `(port, Window)`
//!   pairs. The thread-based director blocks on it; the STAFiLOS scheduled
//!   director polls it and feeds its scheduler.

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::error::Result;
use crate::event::CwEvent;
use crate::time::Timestamp;
use crate::window::{Window, WindowOperator, WindowSpec};

/// Result of a blocking inbox pop.
#[derive(Debug, PartialEq)]
pub enum InboxPop {
    /// A window is ready on the given input port.
    Window(usize, Window),
    /// The wait deadline passed with no window.
    TimedOut,
    /// Every upstream port has closed and no windows remain.
    Closed,
}

#[derive(Debug)]
struct InboxState {
    windows: VecDeque<(usize, Window)>,
    open_ports: usize,
}

/// The per-actor ready queue of formed windows.
#[derive(Debug)]
pub struct ActorInbox {
    state: Mutex<InboxState>,
    cond: Condvar,
}

impl ActorInbox {
    /// An inbox fed by `input_ports` port receivers.
    pub fn new(input_ports: usize) -> Arc<Self> {
        Arc::new(ActorInbox {
            state: Mutex::new(InboxState {
                windows: VecDeque::new(),
                open_ports: input_ports,
            }),
            cond: Condvar::new(),
        })
    }

    /// Enqueue a formed window from input port `port`.
    pub fn push(&self, port: usize, window: Window) {
        let mut st = self.state.lock();
        st.windows.push_back((port, window));
        drop(st);
        self.cond.notify_one();
    }

    /// Non-blocking pop (used by scheduled directors).
    pub fn try_pop(&self) -> Option<(usize, Window)> {
        self.state.lock().windows.pop_front()
    }

    /// Blocking pop with an optional wall-clock timeout (used by the
    /// thread-based director; the timeout realizes window-formation
    /// timeouts, after which the caller polls its receivers).
    pub fn pop_blocking(&self, timeout: Option<std::time::Duration>) -> InboxPop {
        let mut st = self.state.lock();
        loop {
            if let Some((port, w)) = st.windows.pop_front() {
                return InboxPop::Window(port, w);
            }
            if st.open_ports == 0 {
                return InboxPop::Closed;
            }
            match timeout {
                Some(t) => {
                    if self.cond.wait_for(&mut st, t).timed_out() {
                        return InboxPop::TimedOut;
                    }
                }
                None => self.cond.wait(&mut st),
            }
        }
    }

    /// Number of ready windows.
    pub fn len(&self) -> usize {
        self.state.lock().windows.len()
    }

    /// Whether no windows are ready.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mark one feeding port as closed (its upstream actors all finished).
    pub fn close_port(&self) {
        let mut st = self.state.lock();
        st.open_ports = st.open_ports.saturating_sub(1);
        drop(st);
        self.cond.notify_all();
    }

    /// Whether every feeding port has closed (more windows may still be
    /// queued).
    pub fn all_ports_closed(&self) -> bool {
        self.state.lock().open_ports == 0
    }
}

/// The Windowed Receiver on one input port.
pub struct PortReceiver {
    op: Mutex<WindowOperator>,
    inbox: Arc<ActorInbox>,
    port: usize,
    /// Channels still feeding this port; when the count reaches zero the
    /// receiver flushes and closes its inbox port.
    remaining_upstreams: Mutex<usize>,
}

impl std::fmt::Debug for PortReceiver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortReceiver")
            .field("port", &self.port)
            .finish()
    }
}

impl PortReceiver {
    /// Build the receiver for input `port` of the actor owning `inbox`,
    /// with the given window semantics, fed by `upstreams` channels.
    pub fn new(
        spec: WindowSpec,
        inbox: Arc<ActorInbox>,
        port: usize,
        upstreams: usize,
    ) -> Result<Self> {
        Ok(PortReceiver {
            op: Mutex::new(WindowOperator::new(spec)?),
            inbox,
            port,
            remaining_upstreams: Mutex::new(upstreams),
        })
    }

    /// The input port index this receiver serves.
    pub fn port(&self) -> usize {
        self.port
    }

    /// The paper's `put()`: encapsulated event goes into the appropriate
    /// group queue; within the same call window semantics are evaluated and
    /// any produced window is forwarded to the actor's ready queue.
    /// Returns the number of windows produced.
    pub fn put(&self, event: CwEvent, now: Timestamp) -> Result<usize> {
        let mut op = self.op.lock();
        let n = op.push(event, now)?;
        for _ in 0..n {
            let w = op.pop_window().expect("push reported n windows");
            self.inbox.push(self.port, w);
        }
        Ok(n)
    }

    /// Evaluate time-driven window production at director time `now`
    /// (window-timeout events). Returns windows produced.
    pub fn poll(&self, now: Timestamp) -> usize {
        let mut op = self.op.lock();
        let n = op.poll(now);
        for _ in 0..n {
            let w = op.pop_window().expect("poll reported n windows");
            self.inbox.push(self.port, w);
        }
        n
    }

    /// Earliest time at which [`PortReceiver::poll`] could produce.
    pub fn next_deadline(&self) -> Option<Timestamp> {
        self.op.lock().next_deadline()
    }

    /// Events buffered in group queues.
    pub fn pending_events(&self) -> usize {
        self.op.lock().pending_events()
    }

    /// Drain expired events (for an expired-items handler activity).
    pub fn drain_expired(&self) -> Vec<CwEvent> {
        self.op.lock().drain_expired()
    }

    /// One upstream channel finished. When the last one does, remaining
    /// partial windows are flushed to the inbox and the inbox port closes.
    /// Returns `true` if this call fully closed the receiver.
    pub fn upstream_closed(&self, now: Timestamp) -> bool {
        let mut remaining = self.remaining_upstreams.lock();
        debug_assert!(*remaining > 0, "more closes than upstream channels");
        *remaining -= 1;
        if *remaining > 0 {
            return false;
        }
        drop(remaining);
        let mut op = self.op.lock();
        let n = op.flush(now);
        for _ in 0..n {
            let w = op.pop_window().expect("flush reported n windows");
            self.inbox.push(self.port, w);
        }
        drop(op);
        self.inbox.close_port();
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::token::Token;

    fn ev(v: i64, ts: u64) -> CwEvent {
        CwEvent::external(Token::Int(v), Timestamp(ts))
    }

    #[test]
    fn put_forms_windows_into_inbox() {
        let inbox = ActorInbox::new(1);
        let r = PortReceiver::new(WindowSpec::tuples(2, 2), inbox.clone(), 0, 1).unwrap();
        assert_eq!(r.put(ev(1, 0), Timestamp(0)).unwrap(), 0);
        assert!(inbox.is_empty());
        assert_eq!(r.put(ev(2, 1), Timestamp(1)).unwrap(), 1);
        let (port, w) = inbox.try_pop().unwrap();
        assert_eq!(port, 0);
        assert_eq!(w.len(), 2);
        assert_eq!(r.port(), 0);
    }

    #[test]
    fn poll_produces_timed_windows() {
        use crate::time::Micros;
        let inbox = ActorInbox::new(1);
        let spec = WindowSpec::tuples(10, 10).with_timeout(Micros(50));
        let r = PortReceiver::new(spec, inbox.clone(), 0, 1).unwrap();
        r.put(ev(1, 0), Timestamp(0)).unwrap();
        assert_eq!(r.next_deadline(), Some(Timestamp(50)));
        assert_eq!(r.poll(Timestamp(49)), 0);
        assert_eq!(r.poll(Timestamp(50)), 1);
        assert_eq!(inbox.len(), 1);
        assert_eq!(r.pending_events(), 0);
        assert_eq!(r.drain_expired().len(), 1);
    }

    #[test]
    fn close_flushes_and_closes_inbox() {
        let inbox = ActorInbox::new(1);
        let r = PortReceiver::new(WindowSpec::tuples(10, 10), inbox.clone(), 0, 2).unwrap();
        r.put(ev(1, 0), Timestamp(0)).unwrap();
        r.upstream_closed(Timestamp(5));
        assert!(!inbox.all_ports_closed(), "one of two upstreams remains");
        r.upstream_closed(Timestamp(6));
        assert!(inbox.all_ports_closed());
        let (_, w) = inbox.try_pop().expect("flushed short window");
        assert!(w.timed_out);
        assert_eq!(inbox.pop_blocking(None), InboxPop::Closed);
    }

    #[test]
    fn blocking_pop_wakes_on_push() {
        let inbox = ActorInbox::new(1);
        let inbox2 = inbox.clone();
        let t = std::thread::spawn(move || inbox2.pop_blocking(None));
        std::thread::sleep(std::time::Duration::from_millis(20));
        inbox.push(
            0,
            Window {
                group: Token::Unit,
                events: vec![ev(1, 0)],
                formed_at: Timestamp(0),
                timed_out: false,
            },
        );
        match t.join().unwrap() {
            InboxPop::Window(0, w) => assert_eq!(w.len(), 1),
            other => panic!("unexpected pop result: {other:?}"),
        }
    }

    #[test]
    fn blocking_pop_times_out() {
        let inbox = ActorInbox::new(1);
        let r = inbox.pop_blocking(Some(std::time::Duration::from_millis(5)));
        assert_eq!(r, InboxPop::TimedOut);
    }

    #[test]
    fn blocking_pop_returns_closed() {
        let inbox = ActorInbox::new(1);
        inbox.close_port();
        assert_eq!(inbox.pop_blocking(None), InboxPop::Closed);
    }
}
