//! Test utilities: a scripted [`FireContext`] for driving actors directly.
//!
//! Used by this crate's unit tests and by downstream crates
//! (`confluence-sched`, `confluence-linearroad`) to exercise actors without
//! standing up a full director.

use std::collections::VecDeque;

use crate::actor::FireContext;
use crate::time::Timestamp;
use crate::token::Token;
use crate::window::Window;

/// A [`FireContext`] with pre-loaded input windows that records emissions.
#[derive(Debug, Default)]
pub struct MockContext {
    now: Timestamp,
    inputs: Vec<VecDeque<Window>>,
    /// Everything the actor emitted, as `(output port, token)` pairs in
    /// emission order.
    pub emitted: Vec<(usize, Token)>,
}

impl MockContext {
    /// A context with `input_ports` empty input queues.
    pub fn new(input_ports: usize) -> Self {
        MockContext {
            now: Timestamp::ZERO,
            inputs: (0..input_ports).map(|_| VecDeque::new()).collect(),
            emitted: Vec::new(),
        }
    }

    /// Set the reported director time.
    pub fn at(mut self, now: Timestamp) -> Self {
        self.now = now;
        self
    }

    /// Update the reported director time in place.
    pub fn set_now(&mut self, now: Timestamp) {
        self.now = now;
    }

    /// Queue a window on an input port.
    pub fn push_window(&mut self, port: usize, window: Window) {
        self.inputs[port].push_back(window);
    }

    /// Queue a single-event window wrapping `token` (external event at
    /// `ts`) on an input port — the common case in tests.
    pub fn push_token(&mut self, port: usize, token: Token, ts: Timestamp) {
        let event = crate::event::CwEvent::external(token, ts);
        self.push_window(
            port,
            Window {
                group: Token::Unit,
                events: vec![event],
                formed_at: ts,
                timed_out: false,
            },
        );
    }

    /// Tokens emitted on one output port.
    pub fn emitted_on(&self, port: usize) -> Vec<Token> {
        self.emitted
            .iter()
            .filter(|(p, _)| *p == port)
            .map(|(_, t)| t.clone())
            .collect()
    }

    /// Clear recorded emissions.
    pub fn clear_emitted(&mut self) {
        self.emitted.clear();
    }
}

impl FireContext for MockContext {
    fn now(&self) -> Timestamp {
        self.now
    }

    fn get(&mut self, port: usize) -> Option<Window> {
        self.inputs.get_mut(port)?.pop_front()
    }

    fn get_any(&mut self) -> Option<(usize, Window)> {
        for (i, q) in self.inputs.iter_mut().enumerate() {
            if let Some(w) = q.pop_front() {
                return Some((i, w));
            }
        }
        None
    }

    fn emit(&mut self, port: usize, token: Token) {
        self.emitted.push((port, token));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_context_scripts_inputs_and_records_outputs() {
        let mut ctx = MockContext::new(2).at(Timestamp(7));
        assert_eq!(ctx.now(), Timestamp(7));
        ctx.push_token(1, Token::Int(5), Timestamp(1));
        assert!(ctx.get(0).is_none());
        let (port, w) = ctx.get_any().unwrap();
        assert_eq!(port, 1);
        assert_eq!(w.len(), 1);
        ctx.emit(0, Token::Int(9));
        assert_eq!(ctx.emitted_on(0), vec![Token::Int(9)]);
        assert!(ctx.emitted_on(1).is_empty());
        ctx.clear_emitted();
        assert!(ctx.emitted.is_empty());
        ctx.set_now(Timestamp(9));
        assert_eq!(ctx.now(), Timestamp(9));
    }
}
