//! Dynamic, self-describing data items flowing through a workflow.
//!
//! Kepler calls the data items exchanged between actors *tokens*; we keep
//! the name. A [`Token`] is a small dynamically-typed value: scalars,
//! strings, records (named fields), and arrays. Records are the workhorse —
//! a Linear Road position report, for example, is a record with fields
//! `time`, `carid`, `speed`, `xway`, `lane`, `dir`, `seg`, `pos`.
//!
//! Tokens are cheap to clone: strings, records, and arrays are reference
//! counted.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{Error, Result};

/// A dynamically-typed data item.
#[derive(Debug, Clone, Default)]
pub enum Token {
    /// The unit token: pure trigger, carries no data.
    #[default]
    Unit,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// Immutable shared string.
    Str(Arc<str>),
    /// Record with named fields, in declaration order.
    Record(Arc<Record>),
    /// Immutable array of tokens.
    Array(Arc<[Token]>),
}

/// Records at or below this many fields are probed linearly on lookup —
/// a handful of short string compares beats binary-search bookkeeping.
const SMALL_RECORD: usize = 8;

/// A record token's payload: ordered named fields.
#[derive(Debug, Clone)]
pub struct Record {
    fields: Vec<(Arc<str>, Token)>,
    /// Field positions ordered by name, populated only past
    /// [`SMALL_RECORD`] fields: lookups binary-search this permutation
    /// instead of re-scanning the declaration order.
    sorted: Box<[u16]>,
}

impl Record {
    /// Create a record from `(name, value)` pairs, keeping order.
    pub fn new(fields: Vec<(Arc<str>, Token)>) -> Self {
        let sorted = if fields.len() > SMALL_RECORD && fields.len() <= u16::MAX as usize {
            let mut index: Vec<u16> = (0..fields.len() as u16).collect();
            index.sort_by(|&a, &b| fields[a as usize].0.cmp(&fields[b as usize].0));
            index.into_boxed_slice()
        } else {
            Box::default()
        };
        Record { fields, sorted }
    }

    /// Declaration-order position of field `name`: a linear probe for
    /// small records, a binary search over the name-sorted permutation
    /// otherwise. Pairs with [`Record::get_at`] so hot loops can resolve
    /// a field name once and index thereafter.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        if self.sorted.is_empty() {
            return self.fields.iter().position(|(n, _)| n.as_ref() == name);
        }
        let at = self
            .sorted
            .partition_point(|&i| self.fields[i as usize].0.as_ref() < name);
        let &i = self.sorted.get(at)?;
        (self.fields[i as usize].0.as_ref() == name).then_some(i as usize)
    }

    /// Look a field up by name.
    pub fn get(&self, name: &str) -> Option<&Token> {
        self.index_of(name).map(|i| &self.fields[i].1)
    }

    /// Field value at declaration-order position `index` (from
    /// [`Record::index_of`]).
    pub fn get_at(&self, index: usize) -> Option<&Token> {
        self.fields.get(index).map(|(_, v)| v)
    }

    /// Iterate the fields in declaration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Token)> {
        self.fields.iter().map(|(n, v)| (n.as_ref(), v))
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the record has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// A copy of this record with `name` set to `value` (replacing an
    /// existing field or appending a new one).
    pub fn with(&self, name: &str, value: Token) -> Record {
        let mut fields = self.fields.clone();
        if let Some(slot) = fields.iter_mut().find(|(n, _)| n.as_ref() == name) {
            slot.1 = value;
        } else {
            fields.push((Arc::from(name), value));
        }
        Record::new(fields)
    }
}

/// Field-wise equality; the lookup index is derived state.
impl PartialEq for Record {
    fn eq(&self, other: &Self) -> bool {
        self.fields == other.fields
    }
}

/// Fluent builder for record tokens.
///
/// ```
/// use confluence_core::token::Token;
/// let report = Token::record()
///     .field("carid", 107)
///     .field("speed", 54.5)
///     .build();
/// assert_eq!(report.get("carid").unwrap().as_int().unwrap(), 107);
/// ```
#[derive(Debug, Default)]
pub struct RecordBuilder {
    fields: Vec<(Arc<str>, Token)>,
}

impl RecordBuilder {
    /// Append a field.
    pub fn field(mut self, name: &str, value: impl Into<Token>) -> Self {
        self.fields.push((Arc::from(name), value.into()));
        self
    }

    /// Finish, producing a record token.
    pub fn build(self) -> Token {
        Token::Record(Arc::new(Record::new(self.fields)))
    }
}

impl Token {
    /// Start building a record token.
    pub fn record() -> RecordBuilder {
        RecordBuilder::default()
    }

    /// Build a string token.
    pub fn str(s: &str) -> Token {
        Token::Str(Arc::from(s))
    }

    /// Build an array token.
    pub fn array(items: Vec<Token>) -> Token {
        Token::Array(Arc::from(items))
    }

    /// The variant name, used in type-error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Token::Unit => "Unit",
            Token::Bool(_) => "Bool",
            Token::Int(_) => "Int",
            Token::Float(_) => "Float",
            Token::Str(_) => "Str",
            Token::Record(_) => "Record",
            Token::Array(_) => "Array",
        }
    }

    /// Interpret as integer.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Token::Int(v) => Ok(*v),
            other => Err(Error::TokenType {
                expected: "Int",
                found: other.type_name(),
            }),
        }
    }

    /// Interpret as float, widening integers.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Token::Float(v) => Ok(*v),
            Token::Int(v) => Ok(*v as f64),
            other => Err(Error::TokenType {
                expected: "Float",
                found: other.type_name(),
            }),
        }
    }

    /// Interpret as boolean.
    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Token::Bool(v) => Ok(*v),
            other => Err(Error::TokenType {
                expected: "Bool",
                found: other.type_name(),
            }),
        }
    }

    /// Interpret as string slice.
    pub fn as_str(&self) -> Result<&str> {
        match self {
            Token::Str(v) => Ok(v.as_ref()),
            other => Err(Error::TokenType {
                expected: "Str",
                found: other.type_name(),
            }),
        }
    }

    /// Interpret as record.
    pub fn as_record(&self) -> Result<&Record> {
        match self {
            Token::Record(v) => Ok(v.as_ref()),
            other => Err(Error::TokenType {
                expected: "Record",
                found: other.type_name(),
            }),
        }
    }

    /// Interpret as array slice.
    pub fn as_array(&self) -> Result<&[Token]> {
        match self {
            Token::Array(v) => Ok(v.as_ref()),
            other => Err(Error::TokenType {
                expected: "Array",
                found: other.type_name(),
            }),
        }
    }

    /// Record field access: `token.get("seg")`.
    ///
    /// Returns `Err` if the token is not a record; `Ok(None)` if the field
    /// is absent.
    pub fn get(&self, name: &str) -> Result<&Token> {
        self.as_record()?
            .get(name)
            .ok_or_else(|| Error::MissingField(name.to_string()))
    }

    /// Shorthand: integer field of a record.
    pub fn int_field(&self, name: &str) -> Result<i64> {
        self.get(name)?.as_int()
    }

    /// Shorthand: float field of a record.
    pub fn float_field(&self, name: &str) -> Result<f64> {
        self.get(name)?.as_float()
    }

    /// Project a record onto a subset of its fields (used by group-by key
    /// extraction). Missing fields become an error.
    pub fn project(&self, names: &[impl AsRef<str>]) -> Result<Token> {
        let rec = self.as_record()?;
        let mut fields = Vec::with_capacity(names.len());
        for name in names {
            let name = name.as_ref();
            let value = rec
                .get(name)
                .ok_or_else(|| Error::MissingField(name.to_string()))?;
            fields.push((Arc::from(name), value.clone()));
        }
        Ok(Token::Record(Arc::new(Record::new(fields))))
    }
}

impl From<i64> for Token {
    fn from(v: i64) -> Self {
        Token::Int(v)
    }
}
impl From<i32> for Token {
    fn from(v: i32) -> Self {
        Token::Int(v as i64)
    }
}
impl From<u32> for Token {
    fn from(v: u32) -> Self {
        Token::Int(v as i64)
    }
}
impl From<f64> for Token {
    fn from(v: f64) -> Self {
        Token::Float(v)
    }
}
impl From<bool> for Token {
    fn from(v: bool) -> Self {
        Token::Bool(v)
    }
}
impl From<&str> for Token {
    fn from(v: &str) -> Self {
        Token::str(v)
    }
}
impl From<String> for Token {
    fn from(v: String) -> Self {
        Token::Str(Arc::from(v.as_str()))
    }
}

impl PartialEq for Token {
    fn eq(&self, other: &Self) -> bool {
        use Token::*;
        match (self, other) {
            (Unit, Unit) => true,
            (Bool(a), Bool(b)) => a == b,
            (Int(a), Int(b)) => a == b,
            (Float(a), Float(b)) => a.to_bits() == b.to_bits(),
            (Int(a), Float(b)) | (Float(b), Int(a)) => (*a as f64).to_bits() == b.to_bits(),
            (Str(a), Str(b)) => a == b,
            (Record(a), Record(b)) => a == b,
            (Array(a), Array(b)) => a == b,
            _ => false,
        }
    }
}

impl Eq for Token {}

impl Hash for Token {
    fn hash<H: Hasher>(&self, state: &mut H) {
        std::mem::discriminant(self).hash(state);
        match self {
            Token::Unit => {}
            Token::Bool(v) => v.hash(state),
            Token::Int(v) => v.hash(state),
            // Floats hash by bit pattern; combined with the bit-pattern
            // equality above this keeps Eq/Hash consistent.
            Token::Float(v) => v.to_bits().hash(state),
            Token::Str(v) => v.hash(state),
            Token::Record(rec) => {
                for (n, v) in rec.iter() {
                    n.hash(state);
                    v.hash(state);
                }
            }
            Token::Array(items) => {
                for v in items.iter() {
                    v.hash(state);
                }
            }
        }
    }
}

impl PartialOrd for Token {
    /// Total order within comparable variants; cross-type comparisons (other
    /// than Int/Float) order by variant. This gives group keys and sort keys
    /// a stable, deterministic order.
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Token {
    fn cmp(&self, other: &Self) -> Ordering {
        use Token::*;
        fn rank(t: &Token) -> u8 {
            match t {
                Unit => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Str(_) => 3,
                Record(_) => 4,
                Array(_) => 5,
            }
        }
        match (self, other) {
            (Unit, Unit) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Str(a), Str(b)) => a.cmp(b),
            (Record(a), Record(b)) => {
                for ((na, va), (nb, vb)) in a.iter().zip(b.iter()) {
                    match na.cmp(nb).then_with(|| va.cmp(vb)) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                a.len().cmp(&b.len())
            }
            (Array(a), Array(b)) => {
                for (va, vb) in a.iter().zip(b.iter()) {
                    match va.cmp(vb) {
                        Ordering::Equal => continue,
                        non_eq => return non_eq,
                    }
                }
                a.len().cmp(&b.len())
            }
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Unit => write!(f, "()"),
            Token::Bool(v) => write!(f, "{v}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Float(v) => write!(f, "{v}"),
            Token::Str(v) => write!(f, "{v:?}"),
            Token::Record(rec) => {
                write!(f, "{{")?;
                for (i, (n, v)) in rec.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{n}: {v}")?;
                }
                write!(f, "}}")
            }
            Token::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(t: &Token) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn scalar_accessors() {
        assert_eq!(Token::Int(5).as_int().unwrap(), 5);
        assert_eq!(Token::Int(5).as_float().unwrap(), 5.0);
        assert_eq!(Token::Float(2.5).as_float().unwrap(), 2.5);
        assert!(Token::Bool(true).as_bool().unwrap());
        assert_eq!(Token::str("hi").as_str().unwrap(), "hi");
        assert!(matches!(
            Token::Int(1).as_str(),
            Err(Error::TokenType {
                expected: "Str",
                found: "Int"
            })
        ));
    }

    #[test]
    fn record_building_and_access() {
        let t = Token::record().field("a", 1).field("b", 2.0).build();
        assert_eq!(t.int_field("a").unwrap(), 1);
        assert_eq!(t.float_field("b").unwrap(), 2.0);
        assert!(matches!(t.get("c"), Err(Error::MissingField(_))));
        let rec = t.as_record().unwrap();
        assert_eq!(rec.len(), 2);
        assert!(!rec.is_empty());
        let names: Vec<&str> = rec.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "b"]);
    }

    #[test]
    fn record_with_replaces_or_appends() {
        let t = Token::record().field("a", 1).build();
        let rec = t.as_record().unwrap();
        let updated = rec.with("a", Token::Int(9));
        assert_eq!(updated.get("a").unwrap().as_int().unwrap(), 9);
        let extended = rec.with("b", Token::Int(2));
        assert_eq!(extended.len(), 2);
        assert_eq!(extended.get("b").unwrap().as_int().unwrap(), 2);
    }

    #[test]
    fn index_of_and_get_agree_across_probe_paths() {
        // Small record: linear probe path.
        let small = Token::record().field("carid", 1).field("seg", 2).build();
        let rec = small.as_record().unwrap();
        assert_eq!(rec.index_of("carid"), Some(0));
        assert_eq!(rec.index_of("seg"), Some(1));
        assert_eq!(rec.index_of("nope"), None);
        assert_eq!(rec.get_at(1).unwrap().as_int().unwrap(), 2);
        assert_eq!(rec.get_at(9), None);
        // Large record: binary search over the name-sorted permutation.
        let mut b = Token::record();
        for i in 0..20 {
            b = b.field(&format!("f{i:02}"), i);
        }
        let large = b.field("seg", 99).build();
        let rec = large.as_record().unwrap();
        for i in 0..20 {
            let name = format!("f{i:02}");
            let at = rec.index_of(&name).unwrap();
            assert_eq!(at, i as usize, "declaration order is preserved");
            assert_eq!(rec.get_at(at), rec.get(&name));
        }
        assert_eq!(rec.index_of("seg"), Some(20));
        assert_eq!(large.int_field("seg").unwrap(), 99);
        assert_eq!(rec.index_of("zzz"), None);
        assert_eq!(rec.index_of(""), None);
    }

    #[test]
    fn record_equality_ignores_lookup_index() {
        let mut a = Token::record();
        let mut b = Token::record();
        for i in 0..12 {
            a = a.field(&format!("k{i}"), i);
            b = b.field(&format!("k{i}"), i);
        }
        assert_eq!(a.build(), b.build());
    }

    #[test]
    fn projection_extracts_group_keys() {
        let t = Token::record()
            .field("xway", 0)
            .field("seg", 42)
            .field("speed", 55.0)
            .build();
        let key = t.project(&["xway", "seg"]).unwrap();
        assert_eq!(
            key,
            Token::record().field("xway", 0).field("seg", 42).build()
        );
        assert!(t.project(&["nope"]).is_err());
        assert!(Token::Int(1).project(&["x"]).is_err());
    }

    #[test]
    fn eq_and_hash_consistent_for_floats() {
        let a = Token::Float(1.0);
        let b = Token::Int(1);
        assert_eq!(a, b);
        // NaN equals itself under bit-pattern equality → usable as a key.
        let nan = Token::Float(f64::NAN);
        assert_eq!(nan, nan.clone());
        assert_eq!(hash_of(&nan), hash_of(&nan.clone()));
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v = vec![
            Token::str("b"),
            Token::Int(2),
            Token::Unit,
            Token::Float(1.5),
            Token::str("a"),
            Token::Bool(false),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                Token::Unit,
                Token::Bool(false),
                Token::Float(1.5),
                Token::Int(2),
                Token::str("a"),
                Token::str("b"),
            ]
        );
    }

    #[test]
    fn array_and_record_ordering() {
        let a = Token::array(vec![Token::Int(1), Token::Int(2)]);
        let b = Token::array(vec![Token::Int(1), Token::Int(3)]);
        let c = Token::array(vec![Token::Int(1)]);
        assert!(a < b);
        assert!(c < a);
        let r1 = Token::record().field("k", 1).build();
        let r2 = Token::record().field("k", 2).build();
        assert!(r1 < r2);
    }

    #[test]
    fn display_renders_values() {
        let t = Token::record()
            .field("id", 7)
            .field("tags", Token::array(vec![Token::str("x")]))
            .build();
        assert_eq!(t.to_string(), "{id: 7, tags: [\"x\"]}");
        assert_eq!(Token::Unit.to_string(), "()");
    }

    #[test]
    fn conversions() {
        let _: Token = 1i64.into();
        let _: Token = 1i32.into();
        let _: Token = 1u32.into();
        let _: Token = 1.0f64.into();
        let _: Token = true.into();
        let _: Token = "s".into();
        let _: Token = String::from("s").into();
        assert_eq!(Token::from(3i32), Token::Int(3));
    }

    #[test]
    fn type_names() {
        for (t, n) in [
            (Token::Unit, "Unit"),
            (Token::Bool(true), "Bool"),
            (Token::Int(0), "Int"),
            (Token::Float(0.0), "Float"),
            (Token::str(""), "Str"),
            (Token::record().build(), "Record"),
            (Token::array(vec![]), "Array"),
        ] {
            assert_eq!(t.type_name(), n);
        }
    }
}
