//! A declarative workflow specification language.
//!
//! Kepler's decoupling rests on workflows being *specified* separately
//! from their execution: a designer drags actors onto a canvas, connects
//! ports, and configures window parameters in dialogs, producing a MoML
//! document the engine loads. This module is that surface in textual
//! form: a small language describing actors (instantiated through an
//! [`ActorRegistry`]), channels with full window semantics, priorities,
//! and expired-item handlers — parsed into a [`Workflow`](crate::graph::Workflow) ready for any
//! director.
//!
//! ```text
//! workflow demo {
//!     actor feed   = ticks()
//!     actor dedup  = dedup(keys: [carid], capacity: 1000)
//!     actor out    = sink()
//!
//!     connect feed.out -> dedup.in
//!         window tuples(4, 1) group_by(carid) delete_used timeout(5s)
//!     connect dedup.out -> out.in
//!
//!     priority out = 5
//!     expired dedup.in -> out.in
//! }
//! ```
//!
//! Actor *types* (`ticks`, `dedup`, `sink` above) come from the registry:
//! the standard library types are pre-registered by
//! [`ActorRegistry::with_standard_actors`], and applications register
//! their own constructors (closing over feeds, stores, collectors) with
//! [`ActorRegistry::register`].

mod parser;
mod registry;

pub use parser::{parse, parse_with_name};
pub use registry::{ActorRegistry, Params};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actors::{Collector, VecSource};
    use crate::director::ddf::DdfDirector;
    use crate::director::Director;
    use crate::token::Token;
    use crate::window::Measure;

    fn registry_with(collector: &Collector, items: Vec<Token>) -> ActorRegistry {
        let mut reg = ActorRegistry::with_standard_actors();
        let c = collector.clone();
        let items = std::sync::Mutex::new(Some(items));
        reg.register("numbers", move |_params| {
            let data = items.lock().unwrap().take().unwrap_or_default();
            Ok(Box::new(VecSource::new(data)))
        });
        reg.register("collect", move |_params| Ok(Box::new(c.actor())));
        reg
    }

    #[test]
    fn end_to_end_spec_run() {
        let out = Collector::new();
        let reg = registry_with(&out, (1..=6).map(Token::Int).collect());
        let spec = r#"
            workflow demo {
                actor src  = numbers()
                actor pass = union(inputs: 1)
                actor sink = collect()

                connect src.out -> pass.in0
                    window tuples(2, 2) delete_used
                connect pass.out -> sink.in

                priority sink = 5
            }
        "#;
        let mut wf = parse(spec, &reg).unwrap();
        assert_eq!(wf.name(), "demo");
        assert_eq!(wf.actor_count(), 3);
        let sink = wf.find("sink").unwrap();
        assert_eq!(wf.node(sink).priority, 5);
        let pass = wf.find("pass").unwrap();
        assert_eq!(wf.window_spec(pass, 0).size, Measure::Tuples(2));
        DdfDirector::new().run(&mut wf).unwrap();
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn expired_handlers_in_spec() {
        let out = Collector::new();
        let audit = Collector::new();
        let mut reg = registry_with(&out, (0..4).map(Token::Int).collect());
        let a = audit.clone();
        reg.register("audit", move |_| Ok(Box::new(a.actor())));
        let spec = r#"
            workflow expired-demo {
                actor src   = numbers()
                actor sink  = collect()
                actor audit = audit()
                connect src.out -> sink.in
                    window tuples(2, 2) delete_used
                expired sink.in -> audit.in
            }
        "#;
        let mut wf = parse(spec, &reg).unwrap();
        DdfDirector::new().run(&mut wf).unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(audit.len(), 4, "consumed events expired to the auditor");
    }

    #[test]
    fn time_windows_group_by_and_timeout() {
        let out = Collector::new();
        let reg = registry_with(&out, vec![]);
        let spec = r#"
            workflow w {
                actor src  = numbers()
                actor sink = collect()
                connect src.out -> sink.in
                    window time(60s, 30s) group_by(xway, seg) timeout(5s)
            }
        "#;
        let wf = parse(spec, &reg).unwrap();
        let sink = wf.find("sink").unwrap();
        let spec = wf.window_spec(sink, 0);
        assert_eq!(spec.size, Measure::Time(crate::time::Micros::from_secs(60)));
        assert_eq!(spec.step, Measure::Time(crate::time::Micros::from_secs(30)));
        assert_eq!(spec.timeout, Some(crate::time::Micros::from_secs(5)));
        assert!(matches!(
            &spec.group_by,
            crate::window::GroupBy::Fields(f) if f.len() == 2
        ));
    }

    #[test]
    fn wave_window_and_ms_units() {
        let out = Collector::new();
        let reg = registry_with(&out, vec![]);
        let spec = r#"
            workflow w {
                actor src  = numbers()
                actor sink = collect()
                connect src.out -> sink.in window wave timeout(250ms)
            }
        "#;
        let wf = parse(spec, &reg).unwrap();
        let sink = wf.find("sink").unwrap();
        let w = wf.window_spec(sink, 0);
        assert_eq!(w.size, Measure::Wave);
        assert_eq!(w.timeout, Some(crate::time::Micros::from_millis(250)));
    }

    #[test]
    fn name_override() {
        let out = Collector::new();
        let reg = registry_with(&out, vec![]);
        let wf = parse_with_name(
            "workflow declared { actor src = numbers() actor sink = collect() connect src.out -> sink.in }",
            &reg,
            "runtime-name",
        )
        .unwrap();
        assert_eq!(wf.name(), "runtime-name");
    }

    #[test]
    fn good_errors() {
        let out = Collector::new();
        let reg = registry_with(&out, vec![]);
        // Unknown actor type.
        let err = parse("workflow w { actor a = nope() }", &reg).unwrap_err();
        assert!(err.to_string().contains("nope"), "{err}");
        // Unknown actor in connect.
        let err = parse(
            "workflow w { actor a = numbers() connect a.out -> b.in }",
            &reg,
        )
        .unwrap_err();
        assert!(err.to_string().contains('b'), "{err}");
        // Syntax error.
        let err = parse("workflow w { actor = }", &reg).unwrap_err();
        assert!(err.to_string().contains("line"), "{err}");
        // Garbage after the workflow block.
        let err = parse("workflow w { } trailing", &reg).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn standard_actor_types_instantiable() {
        let out = Collector::new();
        let mut reg = registry_with(&out, vec![Token::record().field("k", 1).build()]);
        let c2 = out.clone();
        reg.register("collect2", move |_| Ok(Box::new(c2.actor())));
        let spec = r#"
            workflow std {
                actor src   = numbers()
                actor uniq  = dedup(keys: [k], capacity: 10)
                actor gate  = throttle(max: 100, per_ms: 1000)
                actor both  = union(inputs: 2)
                actor sink  = collect()
                connect src.out  -> uniq.in
                connect uniq.out -> gate.in
                connect gate.out -> both.in0
                connect src.out  -> both.in1
                connect both.out -> sink.in
            }
        "#;
        let mut wf = parse(spec, &reg).unwrap();
        DdfDirector::new().run(&mut wf).unwrap();
        assert_eq!(out.len(), 2, "one via dedup/throttle path, one direct");
    }
}
