//! The actor registry: mapping spec-language type names to constructors.

use std::collections::HashMap;
use std::sync::Arc;

use crate::actor::Actor;
use crate::actors::{Dedup, HashJoin, Throttle, Union};
use crate::error::{Error, Result};
use crate::time::Micros;
use crate::token::Token;

/// Parameters of one actor instantiation in a spec:
/// `dedup(keys: [a, b], capacity: 100)` becomes
/// `{keys: Array[Str], capacity: Int}`.
#[derive(Debug, Clone, Default)]
pub struct Params {
    values: HashMap<String, Token>,
}

impl Params {
    /// Build from `(name, value)` pairs.
    pub fn new(values: impl IntoIterator<Item = (String, Token)>) -> Self {
        Params {
            values: values.into_iter().collect(),
        }
    }

    /// Raw access.
    pub fn get(&self, name: &str) -> Option<&Token> {
        self.values.get(name)
    }

    /// A required integer parameter.
    pub fn int(&self, name: &str) -> Result<i64> {
        self.get(name)
            .ok_or_else(|| Error::Graph(format!("missing parameter `{name}`")))?
            .as_int()
    }

    /// An optional integer parameter with a default.
    pub fn int_or(&self, name: &str, default: i64) -> Result<i64> {
        match self.get(name) {
            Some(t) => t.as_int(),
            None => Ok(default),
        }
    }

    /// A required list-of-identifiers parameter, as strings.
    pub fn names(&self, name: &str) -> Result<Vec<String>> {
        let arr = self
            .get(name)
            .ok_or_else(|| Error::Graph(format!("missing parameter `{name}`")))?
            .as_array()?;
        arr.iter()
            .map(|t| Ok(t.as_str()?.to_string()))
            .collect()
    }
}

type Constructor = Arc<dyn Fn(&Params) -> Result<Box<dyn Actor>> + Send + Sync>;

/// Maps actor type names to constructors.
#[derive(Clone, Default)]
pub struct ActorRegistry {
    constructors: HashMap<String, Constructor>,
}

impl ActorRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry pre-loaded with the parameterizable standard actors:
    ///
    /// * `union(inputs: N)` — merge N streams;
    /// * `dedup(keys: [a, b], capacity: N)` — first event per key;
    /// * `throttle(max: N, per_ms: M)` — rate limiting;
    /// * `hash_join(keys: [a], retain: N)` — symmetric keyed join.
    ///
    /// Sources and sinks are application-specific (they close over feeds
    /// and collectors), so applications register those themselves.
    pub fn with_standard_actors() -> Self {
        let mut reg = Self::new();
        reg.register("union", |p: &Params| {
            Ok(Box::new(Union::new(p.int_or("inputs", 2)? as usize)))
        });
        reg.register("dedup", |p: &Params| {
            let keys = p.names("keys")?;
            let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            Ok(Box::new(Dedup::new(&refs, p.int_or("capacity", 4096)? as usize)))
        });
        reg.register("throttle", |p: &Params| {
            Ok(Box::new(Throttle::new(
                p.int("max")? as u64,
                Micros::from_millis(p.int_or("per_ms", 1000)? as u64),
            )))
        });
        reg.register("hash_join", |p: &Params| {
            let keys = p.names("keys")?;
            let refs: Vec<&str> = keys.iter().map(String::as_str).collect();
            Ok(Box::new(HashJoin::new(&refs, p.int_or("retain", 64)? as usize)))
        });
        reg
    }

    /// Register (or replace) a constructor for `type_name`.
    pub fn register(
        &mut self,
        type_name: &str,
        constructor: impl Fn(&Params) -> Result<Box<dyn Actor>> + Send + Sync + 'static,
    ) {
        self.constructors
            .insert(type_name.to_string(), Arc::new(constructor));
    }

    /// Instantiate an actor of `type_name` with `params`.
    pub fn construct(&self, type_name: &str, params: &Params) -> Result<Box<dyn Actor>> {
        let ctor = self.constructors.get(type_name).ok_or_else(|| {
            Error::Graph(format!("unknown actor type `{type_name}` (not registered)"))
        })?;
        ctor(params)
    }

    /// Registered type names (sorted).
    pub fn type_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.constructors.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

impl std::fmt::Debug for ActorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActorRegistry")
            .field("types", &self.type_names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_types_present() {
        let reg = ActorRegistry::with_standard_actors();
        assert_eq!(reg.type_names(), vec!["dedup", "hash_join", "throttle", "union"]);
    }

    #[test]
    fn construct_with_params() {
        let reg = ActorRegistry::with_standard_actors();
        let p = Params::new([("inputs".to_string(), Token::Int(3))]);
        let a = reg.construct("union", &p).unwrap();
        assert_eq!(a.signature().inputs.len(), 3);
        assert!(reg.construct("nope", &p).is_err());
    }

    #[test]
    fn param_accessors() {
        let p = Params::new([
            ("n".to_string(), Token::Int(7)),
            (
                "keys".to_string(),
                Token::array(vec![Token::str("a"), Token::str("b")]),
            ),
        ]);
        assert_eq!(p.int("n").unwrap(), 7);
        assert!(p.int("missing").is_err());
        assert_eq!(p.int_or("missing", 9).unwrap(), 9);
        assert_eq!(p.names("keys").unwrap(), vec!["a", "b"]);
        assert!(p.names("n").is_err());
        assert!(p.get("keys").is_some());
    }
}
