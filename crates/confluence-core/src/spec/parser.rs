//! Parser for the workflow specification language.
//!
//! Hand-rolled lexer + recursive descent; errors carry line numbers.

use crate::error::{Error, Result};
use crate::graph::{ActorId, Workflow, WorkflowBuilder};
use crate::time::Micros;
use crate::token::Token as DataToken;
use crate::window::{GroupBy, WindowSpec};

use super::registry::{ActorRegistry, Params};

/// Parse a workflow spec, instantiating actors through the registry.
pub fn parse(source: &str, registry: &ActorRegistry) -> Result<Workflow> {
    Parser::new(source, registry)?.parse_workflow()
}

/// Like [`parse`], but overrides the workflow's declared name.
pub fn parse_with_name(source: &str, registry: &ActorRegistry, name: &str) -> Result<Workflow> {
    let mut p = Parser::new(source, registry)?;
    p.name_override = Some(name.to_string());
    p.parse_workflow()
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Str(String),
    Int(i64),
    Float(f64),
    Arrow,
    LBrace,
    RBrace,
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
    Dot,
    Eq,
}

impl std::fmt::Display for Tok {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Str(s) => write!(f, "\"{s}\""),
            Tok::Int(v) => write!(f, "{v}"),
            Tok::Float(v) => write!(f, "{v}"),
            Tok::Arrow => write!(f, "`->`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBracket => write!(f, "`[`"),
            Tok::RBracket => write!(f, "`]`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Colon => write!(f, "`:`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Eq => write!(f, "`=`"),
        }
    }
}

fn lex(source: &str) -> Result<Vec<(Tok, u32)>> {
    let mut out = Vec::new();
    let mut chars = source.chars().peekable();
    let mut line: u32 = 1;
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '#' => {
                for c in chars.by_ref() {
                    if c == '\n' {
                        line += 1;
                        break;
                    }
                }
            }
            '{' => {
                out.push((Tok::LBrace, line));
                chars.next();
            }
            '}' => {
                out.push((Tok::RBrace, line));
                chars.next();
            }
            '(' => {
                out.push((Tok::LParen, line));
                chars.next();
            }
            ')' => {
                out.push((Tok::RParen, line));
                chars.next();
            }
            '[' => {
                out.push((Tok::LBracket, line));
                chars.next();
            }
            ']' => {
                out.push((Tok::RBracket, line));
                chars.next();
            }
            ',' => {
                out.push((Tok::Comma, line));
                chars.next();
            }
            ':' => {
                out.push((Tok::Colon, line));
                chars.next();
            }
            '.' => {
                out.push((Tok::Dot, line));
                chars.next();
            }
            '=' => {
                out.push((Tok::Eq, line));
                chars.next();
            }
            '-' => {
                chars.next();
                match chars.peek() {
                    Some('>') => {
                        chars.next();
                        out.push((Tok::Arrow, line));
                    }
                    Some(c) if c.is_ascii_digit() => {
                        let (tok, _) = lex_number(&mut chars, true, line)?;
                        out.push((tok, line));
                    }
                    _ => {
                        return Err(Error::Graph(format!(
                            "spec syntax error at line {line}: stray `-`"
                        )))
                    }
                }
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\n') | None => {
                            return Err(Error::Graph(format!(
                                "spec syntax error at line {line}: unterminated string"
                            )))
                        }
                        Some(c) => s.push(c),
                    }
                }
                out.push((Tok::Str(s), line));
            }
            c if c.is_ascii_digit() => {
                let (tok, _) = lex_number(&mut chars, false, line)?;
                out.push((tok, line));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push((Tok::Ident(s), line));
            }
            other => {
                return Err(Error::Graph(format!(
                    "spec syntax error at line {line}: unexpected character `{other}`"
                )))
            }
        }
    }
    Ok(out)
}

fn lex_number(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    negative: bool,
    line: u32,
) -> Result<(Tok, u32)> {
    let mut s = String::new();
    if negative {
        s.push('-');
    }
    let mut is_float = false;
    while let Some(&c) = chars.peek() {
        if c.is_ascii_digit() || c == '_' {
            if c != '_' {
                s.push(c);
            }
            chars.next();
        } else if c == '.' {
            // Lookahead: `1.5` is a float, `a.b` port syntax never starts
            // with a digit, so a dot after digits is always a fraction.
            is_float = true;
            s.push(c);
            chars.next();
        } else {
            break;
        }
    }
    if is_float {
        s.parse::<f64>()
            .map(|v| (Tok::Float(v), line))
            .map_err(|_| Error::Graph(format!("spec syntax error at line {line}: bad number `{s}`")))
    } else {
        s.parse::<i64>()
            .map(|v| (Tok::Int(v), line))
            .map_err(|_| Error::Graph(format!("spec syntax error at line {line}: bad number `{s}`")))
    }
}

struct Parser<'a> {
    tokens: Vec<(Tok, u32)>,
    pos: usize,
    registry: &'a ActorRegistry,
    name_override: Option<String>,
}

impl<'a> Parser<'a> {
    fn new(source: &str, registry: &'a ActorRegistry) -> Result<Self> {
        Ok(Parser {
            tokens: lex(source)?,
            pos: 0,
            registry,
            name_override: None,
        })
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos)
            .or_else(|| self.tokens.last())
            .map(|(_, l)| *l)
            .unwrap_or(1)
    }

    fn err(&self, msg: impl std::fmt::Display) -> Error {
        Error::Graph(format!("spec error at line {}: {msg}", self.line()))
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Result<Tok> {
        let t = self
            .tokens
            .get(self.pos)
            .map(|(t, _)| t.clone())
            .ok_or_else(|| self.err("unexpected end of input"))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect(&mut self, want: &Tok) -> Result<()> {
        let got = self.next()?;
        if &got == want {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.err(format!("expected {want}, found {got}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected an identifier, found {other}")))
            }
        }
    }

    fn keyword(&mut self, kw: &str) -> Result<()> {
        let s = self.ident()?;
        if s == kw {
            Ok(())
        } else {
            self.pos -= 1;
            Err(self.err(format!("expected `{kw}`, found `{s}`")))
        }
    }

    fn eat_ident(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Tok::Ident(s)) if s == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn parse_workflow(&mut self) -> Result<Workflow> {
        self.keyword("workflow")?;
        let declared = match self.next()? {
            Tok::Ident(s) => s,
            Tok::Str(s) => s,
            other => {
                self.pos -= 1;
                return Err(self.err(format!("expected workflow name, found {other}")));
            }
        };
        let name = self.name_override.clone().unwrap_or(declared);
        let mut b = WorkflowBuilder::new(name);
        let mut actors: Vec<(String, ActorId)> = Vec::new();
        self.expect(&Tok::LBrace)?;
        loop {
            if matches!(self.peek(), Some(Tok::RBrace)) {
                self.pos += 1;
                break;
            }
            let stmt = self.ident()?;
            match stmt.as_str() {
                "actor" => self.parse_actor(&mut b, &mut actors)?,
                "connect" => self.parse_connect(&mut b, &actors)?,
                "priority" => {
                    let who = self.ident()?;
                    self.expect(&Tok::Eq)?;
                    let p = self.int()?;
                    let id = lookup(&actors, &who).map_err(|e| self.err(e))?;
                    b.set_priority(id, p as i32);
                }
                "expired" => {
                    let (from, from_port) = self.port()?;
                    self.expect(&Tok::Arrow)?;
                    let (to, to_port) = self.port()?;
                    let from_id = lookup(&actors, &from).map_err(|e| self.err(e))?;
                    let to_id = lookup(&actors, &to).map_err(|e| self.err(e))?;
                    b.set_expired_handler(from_id, &from_port, to_id, &to_port)?;
                }
                other => {
                    self.pos -= 1;
                    return Err(self.err(format!(
                        "expected `actor`, `connect`, `priority` or `expired`, found `{other}`"
                    )));
                }
            }
        }
        if self.pos != self.tokens.len() {
            return Err(self.err(format!(
                "unexpected content after the workflow block: {}",
                self.tokens[self.pos].0
            )));
        }
        b.build()
    }

    fn parse_actor(
        &mut self,
        b: &mut WorkflowBuilder,
        actors: &mut Vec<(String, ActorId)>,
    ) -> Result<()> {
        let name = self.ident()?;
        self.expect(&Tok::Eq)?;
        let type_name = self.ident()?;
        self.expect(&Tok::LParen)?;
        let mut params: Vec<(String, DataToken)> = Vec::new();
        if !matches!(self.peek(), Some(Tok::RParen)) {
            loop {
                let key = self.ident()?;
                self.expect(&Tok::Colon)?;
                let value = self.value()?;
                params.push((key, value));
                if matches!(self.peek(), Some(Tok::Comma)) {
                    self.pos += 1;
                } else {
                    break;
                }
            }
        }
        self.expect(&Tok::RParen)?;
        if actors.iter().any(|(n, _)| n == &name) {
            return Err(self.err(format!("duplicate actor `{name}`")));
        }
        let actor = self
            .registry
            .construct(&type_name, &Params::new(params))
            .map_err(|e| self.err(e))?;
        let id = b.add_boxed_actor(name.clone(), actor);
        actors.push((name, id));
        Ok(())
    }

    fn parse_connect(
        &mut self,
        b: &mut WorkflowBuilder,
        actors: &[(String, ActorId)],
    ) -> Result<()> {
        let (from, from_port) = self.port()?;
        self.expect(&Tok::Arrow)?;
        let (to, to_port) = self.port()?;
        let from_id = lookup(actors, &from).map_err(|e| self.err(e))?;
        let to_id = lookup(actors, &to).map_err(|e| self.err(e))?;
        b.connect(from_id, &from_port, to_id, &to_port)?;
        if self.eat_ident("window") {
            let spec = self.window_spec()?;
            b.set_window(to_id, &to_port, spec)?;
        }
        Ok(())
    }

    fn window_spec(&mut self) -> Result<WindowSpec> {
        let kind = self.ident()?;
        let mut spec = match kind.as_str() {
            "tuples" => {
                self.expect(&Tok::LParen)?;
                let size = self.int()? as usize;
                self.expect(&Tok::Comma)?;
                let step = self.int()? as usize;
                self.expect(&Tok::RParen)?;
                WindowSpec::tuples(size, step)
            }
            "time" => {
                self.expect(&Tok::LParen)?;
                let size = self.duration()?;
                self.expect(&Tok::Comma)?;
                let step = self.duration()?;
                self.expect(&Tok::RParen)?;
                WindowSpec::time(size, step)
            }
            "wave" => WindowSpec::wave(),
            "each" => WindowSpec::each_event(),
            other => {
                self.pos -= 1;
                return Err(self.err(format!(
                    "expected `tuples`, `time`, `wave` or `each`, found `{other}`"
                )));
            }
        };
        loop {
            if self.eat_ident("group_by") {
                self.expect(&Tok::LParen)?;
                let mut fields = Vec::new();
                loop {
                    fields.push(self.ident()?);
                    if matches!(self.peek(), Some(Tok::Comma)) {
                        self.pos += 1;
                    } else {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
                let refs: Vec<&str> = fields.iter().map(String::as_str).collect();
                spec = spec.group_by(GroupBy::fields(&refs));
            } else if self.eat_ident("delete_used") {
                spec = spec.delete_used(true);
            } else if self.eat_ident("timeout") {
                self.expect(&Tok::LParen)?;
                let d = self.duration()?;
                self.expect(&Tok::RParen)?;
                spec = spec.with_timeout(d);
            } else {
                break;
            }
        }
        Ok(spec)
    }

    fn port(&mut self) -> Result<(String, String)> {
        let actor = self.ident()?;
        self.expect(&Tok::Dot)?;
        let port = self.ident()?;
        Ok((actor, port))
    }

    fn int(&mut self) -> Result<i64> {
        match self.next()? {
            Tok::Int(v) => Ok(v),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected an integer, found {other}")))
            }
        }
    }

    /// A duration: `5s`, `250ms`, `10us` (the unit lexes as a trailing
    /// identifier).
    fn duration(&mut self) -> Result<Micros> {
        let n = self.int()?;
        if n < 0 {
            return Err(self.err("durations must be non-negative"));
        }
        let unit = self.ident()?;
        match unit.as_str() {
            "s" => Ok(Micros::from_secs(n as u64)),
            "ms" => Ok(Micros::from_millis(n as u64)),
            "us" => Ok(Micros(n as u64)),
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected a duration unit (s/ms/us), found `{other}`")))
            }
        }
    }

    fn value(&mut self) -> Result<DataToken> {
        match self.next()? {
            Tok::Int(v) => Ok(DataToken::Int(v)),
            Tok::Float(v) => Ok(DataToken::Float(v)),
            Tok::Str(s) => Ok(DataToken::str(&s)),
            Tok::Ident(s) if s == "true" => Ok(DataToken::Bool(true)),
            Tok::Ident(s) if s == "false" => Ok(DataToken::Bool(false)),
            // Bare identifiers are strings (field names read naturally).
            Tok::Ident(s) => Ok(DataToken::str(&s)),
            Tok::LBracket => {
                let mut items = Vec::new();
                if !matches!(self.peek(), Some(Tok::RBracket)) {
                    loop {
                        items.push(self.value()?);
                        if matches!(self.peek(), Some(Tok::Comma)) {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket)?;
                Ok(DataToken::array(items))
            }
            other => {
                self.pos -= 1;
                Err(self.err(format!("expected a value, found {other}")))
            }
        }
    }
}

fn lookup(actors: &[(String, ActorId)], name: &str) -> std::result::Result<ActorId, String> {
    actors
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, id)| *id)
        .ok_or_else(|| format!("unknown actor `{name}` (declare it with `actor` first)"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexer_basics() {
        let toks = lex("workflow w { a.b -> c.d } # comment\n[1, 2.5, \"x\"] 5s").unwrap();
        let kinds: Vec<&Tok> = toks.iter().map(|(t, _)| t).collect();
        assert!(matches!(kinds[0], Tok::Ident(s) if s == "workflow"));
        assert!(kinds.contains(&&Tok::Arrow));
        assert!(kinds.contains(&&Tok::Float(2.5)));
        assert!(kinds.contains(&&Tok::Str("x".into())));
        // 5s lexes as Int(5), Ident("s").
        let pos5 = kinds.iter().position(|t| **t == Tok::Int(5)).unwrap();
        assert!(matches!(kinds[pos5 + 1], Tok::Ident(s) if s == "s"));
    }

    #[test]
    fn lexer_line_numbers_and_errors() {
        let err = lex("ok\n  @").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = lex("\"unterminated").unwrap_err();
        assert!(err.to_string().contains("unterminated"), "{err}");
        let err = lex("a - b").unwrap_err();
        assert!(err.to_string().contains("stray"), "{err}");
    }

    #[test]
    fn negative_numbers() {
        let toks = lex("x: -5").unwrap();
        assert!(toks.iter().any(|(t, _)| *t == Tok::Int(-5)));
    }
}
