//! Lock-cheap live statistics for wall-clock scheduling.
//!
//! The STAFiLOS simulator feeds its policies from a `StatsModule` it owns
//! and mutates between firings. The pool executor has no such single
//! thread: firings complete concurrently on every worker, and priority
//! keys are computed on the push/pop hot path. [`LiveStats`] is the
//! atomics-only equivalent — per-actor EMA fire cost, cumulative
//! selectivity counters, and EMA queue-wait age, sampled from the same
//! numbers the recorder hooks see — with the Rate-Based global priorities
//! cached and refreshed lazily so the hot path is a plain atomic load.
//!
//! The global selectivity/cost propagation is the shared
//! [`estimator`](super::estimator) core, so the simulator and the real
//! executor rank actors identically from identical local statistics.

use std::sync::atomic::{AtomicU64, Ordering};

use crate::graph::Workflow;
use crate::telemetry::{estimator, FireRecord, Observer};
use crate::time::Micros;

/// Smoothing factor of the exponential moving averages (1/8, the classic
/// TCP RTT estimator weight): `ema' = ema + ALPHA·(sample − ema)`.
pub const EMA_ALPHA: f64 = 0.125;

/// Cached rate priorities are recomputed at most once per this many
/// recorded firings (the refresh walks the whole topology).
const REFRESH_EVERY: u64 = 64;

/// One actor's live counters. All `f64` values live in `AtomicU64` bit
/// patterns; cumulative counters are plain integers.
struct ActorLive {
    /// EMA of the wall-clock fire cost, µs (f64 bits; 0 ⇒ unseeded).
    ema_cost: AtomicU64,
    /// EMA of the triggering wave's queue-wait age at fire end, µs.
    ema_wait: AtomicU64,
    /// Completed firings.
    fires: AtomicU64,
    /// Cumulative wall-clock cost, µs.
    total_cost: AtomicU64,
    /// Cumulative events consumed.
    events_in: AtomicU64,
    /// Cumulative tokens produced.
    events_out: AtomicU64,
    /// Cached Rate-Based priority `gSel/gCost` (f64 bits).
    cached_rate: AtomicU64,
}

impl ActorLive {
    fn new() -> Self {
        ActorLive {
            ema_cost: AtomicU64::new(0f64.to_bits()),
            ema_wait: AtomicU64::new(0f64.to_bits()),
            fires: AtomicU64::new(0),
            total_cost: AtomicU64::new(0),
            events_in: AtomicU64::new(0),
            events_out: AtomicU64::new(0),
            cached_rate: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }
}

/// Advance an EMA cell: seed with the first sample, blend afterwards.
/// Lossy under contention (a concurrent update may be overwritten), which
/// is fine for a smoothed estimate.
fn ema_update(cell: &AtomicU64, sample: f64, seeded: bool) {
    let prev = f64::from_bits(cell.load(Ordering::Relaxed));
    let next = if seeded {
        prev + EMA_ALPHA * (sample - prev)
    } else {
        sample
    };
    cell.store(next.to_bits(), Ordering::Relaxed);
}

/// Live per-actor statistics for priority computation under wall-clock
/// executors. Shareable across workers; every operation is a handful of
/// relaxed atomic ops.
pub struct LiveStats {
    actors: Vec<ActorLive>,
    /// Downstream actor indices per actor (workflow topology).
    downstream: Vec<Vec<usize>>,
    /// Firings recorded since the cached rate priorities were refreshed.
    since_refresh: AtomicU64,
}

impl LiveStats {
    /// Fresh statistics for the given workflow's topology.
    pub fn new(workflow: &Workflow) -> Self {
        let downstream = workflow
            .actor_ids()
            .map(|id| {
                workflow
                    .downstream_actors(id)
                    .into_iter()
                    .map(|d| d.index())
                    .collect()
            })
            .collect();
        Self::with_downstream(downstream)
    }

    /// Fresh statistics over an explicit downstream topology (tests).
    pub fn with_downstream(downstream: Vec<Vec<usize>>) -> Self {
        LiveStats {
            actors: (0..downstream.len()).map(|_| ActorLive::new()).collect(),
            downstream,
            since_refresh: AtomicU64::new(0),
        }
    }

    /// Number of actors tracked.
    pub fn len(&self) -> usize {
        self.actors.len()
    }

    /// Whether no actors are tracked.
    pub fn is_empty(&self) -> bool {
        self.actors.is_empty()
    }

    /// Record one completed firing: wall cost, events consumed, tokens
    /// produced, and (for internal actors) the triggering wave's age at
    /// completion. Refreshes the cached rate priorities every
    /// [`REFRESH_EVERY`] firings.
    pub fn record_fire(
        &self,
        actor: usize,
        cost: Micros,
        events_in: u64,
        tokens_out: u64,
        wait_age: Option<Micros>,
    ) {
        let Some(a) = self.actors.get(actor) else {
            return;
        };
        let seeded = a.fires.fetch_add(1, Ordering::Relaxed) > 0;
        ema_update(&a.ema_cost, cost.as_micros() as f64, seeded);
        if let Some(age) = wait_age {
            // The wait EMA seeds on its own first sample: source firings
            // carry no wave age and must not pin the seed at zero.
            let wait_seeded = f64::from_bits(a.ema_wait.load(Ordering::Relaxed)) > 0.0;
            ema_update(&a.ema_wait, age.as_micros() as f64, wait_seeded);
        }
        a.total_cost.fetch_add(cost.as_micros(), Ordering::Relaxed);
        a.events_in.fetch_add(events_in, Ordering::Relaxed);
        a.events_out.fetch_add(tokens_out, Ordering::Relaxed);
        if self.since_refresh.fetch_add(1, Ordering::Relaxed) + 1 >= REFRESH_EVERY {
            self.since_refresh.store(0, Ordering::Relaxed);
            self.refresh_rate_priorities();
        }
    }

    /// EMA wall-clock fire cost, µs (0 before any firing).
    pub fn ema_cost(&self, actor: usize) -> f64 {
        f64::from_bits(self.actors[actor].ema_cost.load(Ordering::Relaxed))
    }

    /// EMA queue-wait age of triggering waves, µs (0 before any sample).
    pub fn ema_wait(&self, actor: usize) -> f64 {
        f64::from_bits(self.actors[actor].ema_wait.load(Ordering::Relaxed))
    }

    /// Completed firings recorded for `actor`.
    pub fn fires(&self, actor: usize) -> u64 {
        self.actors[actor].fires.load(Ordering::Relaxed)
    }

    /// Cumulative local selectivity (events out / events in; 1.0 before
    /// any input — the neutral assumption, matching the simulator).
    pub fn selectivity(&self, actor: usize) -> f64 {
        let a = &self.actors[actor];
        let ins = a.events_in.load(Ordering::Relaxed);
        if ins == 0 {
            1.0
        } else {
            a.events_out.load(Ordering::Relaxed) as f64 / ins as f64
        }
    }

    /// Mean cost per consumed event, µs (falls back to mean invocation
    /// cost when nothing was consumed — again matching the simulator).
    pub fn cost_per_event(&self, actor: usize) -> f64 {
        let a = &self.actors[actor];
        let total = a.total_cost.load(Ordering::Relaxed) as f64;
        let ins = a.events_in.load(Ordering::Relaxed);
        if ins == 0 {
            let fires = a.fires.load(Ordering::Relaxed);
            if fires == 0 {
                0.0
            } else {
                total / fires as f64
            }
        } else {
            total / ins as f64
        }
    }

    /// The cached Rate-Based priority `Pr(A) = gSel/gCost` (infinite until
    /// costs are observed, so fresh actors rank first). Refreshed lazily
    /// by [`LiveStats::record_fire`].
    pub fn rate_priority(&self, actor: usize) -> f64 {
        f64::from_bits(self.actors[actor].cached_rate.load(Ordering::Relaxed))
    }

    /// Recompute every actor's Rate-Based priority from the current local
    /// statistics through the shared estimator core.
    pub fn refresh_rate_priorities(&self) {
        let sel = |i: usize| self.selectivity(i);
        let cost = |i: usize| self.cost_per_event(i);
        for (i, a) in self.actors.iter().enumerate() {
            let pr = estimator::rate_priority(i, &cost, &sel, &self.downstream);
            a.cached_rate.store(pr.to_bits(), Ordering::Relaxed);
        }
    }
}

impl Observer for LiveStats {
    fn on_fire_end(&self, record: &FireRecord) {
        if !record.fired {
            return;
        }
        let wait = record.origin.map(|o| record.ended.since(o));
        self.record_fire(
            record.actor.0,
            record.busy,
            record.events_in,
            record.tokens_out,
            wait,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::ActorId;
    use crate::telemetry::FireRecord;
    use crate::time::Timestamp;

    fn chain3() -> LiveStats {
        // 0 → 1 → 2.
        LiveStats::with_downstream(vec![vec![1], vec![2], vec![]])
    }

    #[test]
    fn ema_cost_matches_hand_computed_sequence() {
        let s = chain3();
        // Samples 100, 200, 60 with α = 1/8, seeded by the first:
        // 100 → 100 + 0.125·(200−100) = 112.5 → 112.5 + 0.125·(60−112.5).
        s.record_fire(1, Micros(100), 1, 1, None);
        assert_eq!(s.ema_cost(1), 100.0);
        s.record_fire(1, Micros(200), 1, 1, None);
        assert_eq!(s.ema_cost(1), 112.5);
        s.record_fire(1, Micros(60), 1, 1, None);
        assert_eq!(s.ema_cost(1), 112.5 + 0.125 * (60.0 - 112.5));
        assert_eq!(s.fires(1), 3);
    }

    #[test]
    fn ema_wait_seeds_independently_of_cost() {
        let s = chain3();
        // Two firings without a wave age (source-like), then aged ones.
        s.record_fire(1, Micros(10), 1, 1, None);
        s.record_fire(1, Micros(10), 1, 1, None);
        assert_eq!(s.ema_wait(1), 0.0);
        s.record_fire(1, Micros(10), 1, 1, Some(Micros(1_000)));
        assert_eq!(s.ema_wait(1), 1_000.0, "first age seeds the wait EMA");
        s.record_fire(1, Micros(10), 1, 1, Some(Micros(2_000)));
        assert_eq!(s.ema_wait(1), 1_000.0 + 0.125 * (2_000.0 - 1_000.0));
    }

    #[test]
    fn selectivity_and_cost_per_event_are_cumulative() {
        let s = chain3();
        assert_eq!(s.selectivity(0), 1.0, "neutral before input");
        s.record_fire(1, Micros(100), 4, 2, None);
        s.record_fire(1, Micros(300), 4, 2, None);
        assert_eq!(s.selectivity(1), 0.5);
        assert_eq!(s.cost_per_event(1), 50.0, "400µs over 8 events");
    }

    #[test]
    fn rate_priorities_match_the_simulator_math() {
        let s = chain3();
        // 1: 10µs/ev sel 0.5; 2 (terminal): 5µs/ev.
        s.record_fire(1, Micros(100), 10, 5, None);
        s.record_fire(2, Micros(50), 10, 0, None);
        s.refresh_rate_priorities();
        // gCost(2) = 5, gSel(2) = 1 → Pr = 0.2.
        assert_eq!(s.rate_priority(2), 1.0 / 5.0);
        // gCost(1) = 10 + 0.5·5 = 12.5, gSel(1) = 0.5 → Pr = 0.04.
        assert_eq!(s.rate_priority(1), 0.5 / 12.5);
        // 0 never fired: cost 0 at itself but downstream costs propagate;
        // gCost(0) = 0 + 1·12.5 = 12.5, gSel(0) = 1·0.5.
        assert_eq!(s.rate_priority(0), 0.5 / 12.5);
    }

    #[test]
    fn observer_hook_feeds_the_sampler() {
        let s = chain3();
        s.on_fire_end(&FireRecord {
            actor: ActorId(1),
            started: Timestamp(1_000),
            ended: Timestamp(1_200),
            busy: Micros(200),
            events_in: 2,
            tokens_out: 1,
            origin: Some(Timestamp(100)),
            trigger: None,
            fired: true,
        });
        assert_eq!(s.fires(1), 1);
        assert_eq!(s.ema_cost(1), 200.0);
        assert_eq!(s.ema_wait(1), 1_100.0, "ended − origin");
        // Non-firings leave everything untouched.
        s.on_fire_end(&FireRecord {
            actor: ActorId(1),
            started: Timestamp(2_000),
            ended: Timestamp(2_001),
            busy: Micros(1),
            events_in: 0,
            tokens_out: 0,
            origin: None,
            trigger: None,
            fired: false,
        });
        assert_eq!(s.fires(1), 1);
    }
}
