//! Shared estimator math for priority scheduling.
//!
//! The Sharaf et al. \[28\] *global* selectivity and cost estimators — the
//! inputs to the Rate-Based priority `Pr(A) = S_A / C_A` — and the QBS
//! quantum allotment (Equation 1) are used both by the virtual-time
//! STAFiLOS simulator (`confluence-sched::stats`) and by the wall-clock
//! pool executor's [`LiveStats`](super::LiveStats) sampler. Keeping one
//! implementation here guarantees the simulator and the real executor
//! rank actors identically from the same local statistics.
//!
//! Both propagations walk the downstream topology with a memo that doubles
//! as a cycle guard (a back edge contributes 0, so feedback loops neither
//! diverge nor double-count).

/// Global selectivity of actor `idx`: the expected number of workflow
/// *outputs* eventually produced per event this actor consumes — the
/// product of local selectivities along each downstream path, summed over
/// paths when the actor feeds multiple branches. Terminal actors are
/// output operators and count 1 regardless of their local selectivity.
///
/// `local_selectivity(i)` supplies actor `i`'s local events-out/events-in
/// ratio; `downstream[i]` lists the actors fed by actor `i`.
pub fn global_selectivity(
    idx: usize,
    local_selectivity: &dyn Fn(usize) -> f64,
    downstream: &[Vec<usize>],
) -> f64 {
    let mut memo = vec![None; downstream.len()];
    selectivity_memo(idx, local_selectivity, downstream, &mut memo)
}

fn selectivity_memo(
    idx: usize,
    local_selectivity: &dyn Fn(usize) -> f64,
    downstream: &[Vec<usize>],
    memo: &mut Vec<Option<f64>>,
) -> f64 {
    if let Some(v) = memo[idx] {
        return v;
    }
    memo[idx] = Some(0.0); // cycle guard
    let v = if downstream[idx].is_empty() {
        1.0
    } else {
        local_selectivity(idx)
            * downstream[idx]
                .clone()
                .into_iter()
                .map(|d| selectivity_memo(d, local_selectivity, downstream, memo))
                .sum::<f64>()
    };
    memo[idx] = Some(v);
    v
}

/// Global average cost per event at actor `idx`: the work this event and
/// its descendants will require through the rest of the workflow — own
/// cost per event plus downstream cost weighted by the actor's local
/// selectivity, summed over downstream paths for shared actors.
pub fn global_cost(
    idx: usize,
    cost_per_event: &dyn Fn(usize) -> f64,
    local_selectivity: &dyn Fn(usize) -> f64,
    downstream: &[Vec<usize>],
) -> f64 {
    let mut memo = vec![None; downstream.len()];
    cost_memo(idx, cost_per_event, local_selectivity, downstream, &mut memo)
}

fn cost_memo(
    idx: usize,
    cost_per_event: &dyn Fn(usize) -> f64,
    local_selectivity: &dyn Fn(usize) -> f64,
    downstream: &[Vec<usize>],
    memo: &mut Vec<Option<f64>>,
) -> f64 {
    if let Some(v) = memo[idx] {
        return v;
    }
    memo[idx] = Some(0.0); // cycle guard
    let own = cost_per_event(idx);
    let sel = local_selectivity(idx);
    let down: f64 = downstream[idx]
        .clone()
        .into_iter()
        .map(|d| cost_memo(d, cost_per_event, local_selectivity, downstream, memo))
        .sum();
    let v = own + sel * down;
    memo[idx] = Some(v);
    v
}

/// The Rate-Based (Highest Rate) priority `Pr(A) = S_A / C_A` from the
/// global estimators; infinite while no cost has been observed so fresh
/// actors get probed early.
pub fn rate_priority(
    idx: usize,
    cost_per_event: &dyn Fn(usize) -> f64,
    local_selectivity: &dyn Fn(usize) -> f64,
    downstream: &[Vec<usize>],
) -> f64 {
    let c = global_cost(idx, cost_per_event, local_selectivity, downstream);
    if c <= 0.0 {
        f64::INFINITY
    } else {
        global_selectivity(idx, local_selectivity, downstream) / c
    }
}

/// QBS Equation 1: the quantum (µs) allotted per re-quantification to a
/// designer priority `p` (lower = more urgent) under basic quantum `b`:
/// `(40 − p)·b` for `p ≥ 20`, `(40 − p)·4b` for `p < 20`.
pub fn qbs_allotment(priority: i32, basic_quantum: u64) -> i64 {
    let b = basic_quantum as i64;
    let head = (40 - priority as i64).max(1);
    if priority >= 20 {
        head * b
    } else {
        head * 4 * b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// src(0) → a(1) → k1(3), src(0) → b(2) → k2(4) — the topology the
    /// `confluence-sched::stats` tests pin exact numbers on.
    fn two_path_downstream() -> Vec<Vec<usize>> {
        vec![vec![1, 2], vec![3], vec![4], vec![], vec![]]
    }

    #[test]
    fn selectivity_multiplies_paths_and_sums_branches() {
        let down = two_path_downstream();
        let sel = |i: usize| [1.0, 0.5, 1.0, 0.0, 0.0][i];
        assert_eq!(global_selectivity(3, &sel, &down), 1.0, "terminal is 1");
        assert_eq!(global_selectivity(1, &sel, &down), 0.5);
        assert_eq!(global_selectivity(0, &sel, &down), 1.5);
    }

    #[test]
    fn cost_adds_weighted_downstream_work() {
        let down = two_path_downstream();
        let sel = |i: usize| [1.0, 0.5, 1.0, 0.0, 0.0][i];
        let cost = |i: usize| [0.0, 10.0, 20.0, 5.0, 10.0][i];
        assert_eq!(global_cost(1, &cost, &sel, &down), 12.5);
        assert_eq!(global_cost(2, &cost, &sel, &down), 30.0);
        assert_eq!(global_cost(0, &cost, &sel, &down), 42.5);
    }

    #[test]
    fn cycles_are_guarded_not_divergent() {
        // 0 → 1 → 0 (feedback), 1 → 2 (output).
        let down = vec![vec![1], vec![0, 2], vec![]];
        let sel = |_: usize| 1.0;
        let cost = |_: usize| 1.0;
        let s = global_selectivity(0, &sel, &down);
        let c = global_cost(0, &cost, &sel, &down);
        assert!(s.is_finite() && c.is_finite());
        // 0's path: sel(0)·(sel(1)·(back-edge 0 + terminal 1)) = 1.
        assert_eq!(s, 1.0);
    }

    #[test]
    fn rate_priority_is_infinite_before_costs() {
        let down = two_path_downstream();
        let sel = |_: usize| 1.0;
        let zero = |_: usize| 0.0;
        assert_eq!(rate_priority(0, &zero, &sel, &down), f64::INFINITY);
        let cost = |_: usize| 2.0;
        let pr = rate_priority(3, &cost, &sel, &down);
        assert_eq!(pr, 0.5, "terminal: gSel 1 / gCost 2");
    }

    #[test]
    fn equation_1_allotments() {
        assert_eq!(qbs_allotment(20, 500), 20 * 500);
        assert_eq!(qbs_allotment(25, 500), 15 * 500);
        assert_eq!(qbs_allotment(19, 500), 21 * 4 * 500);
        assert_eq!(qbs_allotment(5, 500), 35 * 4 * 500);
        assert_eq!(qbs_allotment(45, 500), 500, "head clamps at 1");
    }
}
