//! Wave-lineage tracing: causal spans, a flight recorder, and trace
//! exports.
//!
//! The engine's defining construct is the *wave* — the lineage tree of
//! events rooted at one external arrival, carried as hierarchical
//! wave-tags (`t1000.3.1`). The aggregate telemetry of
//! [`MetricsRecorder`](crate::telemetry::MetricsRecorder) tells you
//! *that* p95 latency moved; this module tells you *where* a wave spent
//! its time. A [`Tracer`] is an [`Observer`](crate::telemetry::Observer)
//! subscribing to the fine-grained hook surface (`on_admit`,
//! `on_enqueue`, `on_dequeue`, `on_fire_end`, `on_block`) and
//! reconstructing, per traced wave, a span list covering every stage an
//! event passes through: admission, per-port queue residence, window
//! formation + queue wait, firing service time, and block waits.
//!
//! Cost is bounded two ways:
//!
//! * **Head-based sampling** — the sampling decision is taken once per
//!   *root wave* ([`TraceConfig::sample_every`]: trace 1-in-N roots); all
//!   descendants of an unsampled root are dropped at the hook boundary,
//!   so cost is O(sampled), not O(events).
//! * **A bounded flight recorder** — spans live in a capacity-bounded
//!   buffer ([`TraceConfig::max_spans`]) evicting *whole waves*,
//!   oldest-origin first, so a long run keeps the most recent complete
//!   traces and never tears a wave in half.
//!
//! A disabled tracer (`sample_every == 0`) reports
//! `wants_event_hooks() == false`, which switches the per-event hook
//! calls off inside the fabric entirely — the recorder can stay attached
//! in production. The flight recorder itself is a single mutex-guarded
//! map (not lock-free): it is touched only for sampled waves, which the
//! sampler keeps rare.

mod export;
mod span;

pub use export::{CpSegment, CriticalPath, TraceReport};
pub use span::{Span, SpanKind, WaveTrace};

use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::graph::{ActorId, Workflow};
use crate::telemetry::{FireRecord, Observer};
use crate::time::{Micros, Timestamp};
use crate::wave::WaveTag;

/// Tracer knobs.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Trace one in this many root waves (1 = every wave, 0 = tracing
    /// off). The first root is always sampled.
    pub sample_every: u64,
    /// Flight-recorder capacity in spans. When exceeded, whole waves are
    /// evicted oldest-origin first (at least one wave is always kept).
    pub max_spans: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            sample_every: 1,
            max_spans: 65_536,
        }
    }
}

impl TraceConfig {
    /// Sample 1-in-`n` root waves.
    pub fn sampled(n: u64) -> Self {
        TraceConfig {
            sample_every: n,
            ..TraceConfig::default()
        }
    }

    /// Tracing off: hooks become no-ops and the fabric skips the
    /// per-event calls entirely.
    pub fn disabled() -> Self {
        TraceConfig {
            sample_every: 0,
            ..TraceConfig::default()
        }
    }
}

#[derive(Default)]
struct TracerState {
    /// Origins (µs) of waves currently held in the flight recorder.
    sampled: HashSet<u64>,
    /// The flight recorder: origin µs → trace. A `BTreeMap` so eviction
    /// pops the smallest key — the oldest wave — first.
    waves: BTreeMap<u64, WaveTrace>,
    /// Total spans across `waves` (eviction trigger).
    spans_total: usize,
    /// The most recent root sampling decision, so the burst of admits
    /// one source firing produces is decided once.
    last_decided: Option<(u64, bool)>,
    /// Largest evicted origin: anything at or below arrived too long ago
    /// to trace coherently and is dropped outright.
    evicted_floor: Option<u64>,
    /// Block waits reported but not yet attached to the admission that
    /// follows them, keyed by (actor, port).
    pending_block: HashMap<(usize, usize), (Timestamp, Micros)>,
    sampled_roots: u64,
    evicted_waves: u64,
    dropped_spans: u64,
}

/// The wave-lineage tracer: an [`Observer`] reconstructing per-wave span
/// traces from the fine-grained hook stream. Attach via
/// [`Engine::with_tracer`](crate::engine::Engine::with_tracer) (or any
/// director's telemetry), run, then call [`Tracer::report`].
pub struct Tracer {
    config: TraceConfig,
    actor_names: Vec<String>,
    roots_seen: AtomicU64,
    state: Mutex<TracerState>,
}

impl Tracer {
    /// A tracer with the given knobs and no actor names (exports fall
    /// back to `actor N` labels).
    pub fn new(config: TraceConfig) -> Self {
        Tracer {
            config,
            actor_names: Vec::new(),
            roots_seen: AtomicU64::new(0),
            state: Mutex::new(TracerState::default()),
        }
    }

    /// A tracer that labels spans with `workflow`'s actor names.
    pub fn for_workflow(workflow: &Workflow, config: TraceConfig) -> Self {
        let mut tracer = Tracer::new(config);
        tracer.actor_names = workflow
            .actor_ids()
            .map(|id| workflow.node(id).name.clone())
            .collect();
        tracer
    }

    /// Whether tracing is on at all.
    pub fn enabled(&self) -> bool {
        self.config.sample_every > 0
    }

    /// Root waves observed so far (sampled or not).
    pub fn roots_seen(&self) -> u64 {
        self.roots_seen.load(Ordering::Relaxed)
    }

    /// Snapshot the flight recorder into a [`TraceReport`].
    pub fn report(&self) -> TraceReport {
        let st = self.state.lock();
        TraceReport {
            waves: st.waves.values().cloned().collect(),
            roots_seen: self.roots_seen.load(Ordering::Relaxed),
            sampled_roots: st.sampled_roots,
            evicted_waves: st.evicted_waves,
            dropped_spans: st.dropped_spans,
            actor_names: self.actor_names.clone(),
        }
    }

    /// Drop every recorded wave (counters are kept).
    pub fn clear(&self) {
        let mut st = self.state.lock();
        st.waves.clear();
        st.sampled.clear();
        st.spans_total = 0;
        st.pending_block.clear();
    }

    fn past_floor(st: &TracerState, key: u64) -> bool {
        st.evicted_floor.is_some_and(|floor| key <= floor)
    }

    /// Append `span` to the wave keyed `key`, evicting oldest waves when
    /// the recorder overflows. `root` allows creating the wave entry.
    fn push_span(&self, st: &mut TracerState, key: u64, origin: Timestamp, span: Span, root: bool) {
        if !root && !st.sampled.contains(&key) {
            if Self::past_floor(st, key) {
                st.dropped_spans += 1;
            }
            return;
        }
        if Self::past_floor(st, key) {
            st.dropped_spans += 1;
            return;
        }
        let wave = st.waves.entry(key).or_insert_with(|| WaveTrace {
            origin,
            spans: Vec::new(),
        });
        wave.spans.push(span);
        st.spans_total += 1;
        while st.spans_total > self.config.max_spans && st.waves.len() > 1 {
            if let Some((evicted_key, evicted)) = st.waves.pop_first() {
                st.spans_total -= evicted.spans.len();
                st.sampled.remove(&evicted_key);
                st.evicted_waves += 1;
                st.evicted_floor = Some(
                    st.evicted_floor
                        .map_or(evicted_key, |floor| floor.max(evicted_key)),
                );
            }
        }
    }
}

impl Observer for Tracer {
    fn wants_event_hooks(&self) -> bool {
        self.enabled()
    }

    fn on_admit(&self, from: ActorId, wave: &WaveTag, at: Timestamp) {
        if !self.enabled() {
            return;
        }
        let key = wave.origin().as_micros();
        let mut st = self.state.lock();
        if Self::past_floor(&st, key) {
            st.dropped_spans += 1;
            return;
        }
        let keep = if st.sampled.contains(&key) {
            true
        } else if let Some((k, decision)) = st.last_decided {
            if k == key {
                decision
            } else {
                self.decide(&mut st, key)
            }
        } else {
            self.decide(&mut st, key)
        };
        if !keep {
            return;
        }
        st.sampled.insert(key);
        self.push_span(
            &mut st,
            key,
            wave.origin(),
            Span {
                kind: SpanKind::Admit,
                actor: from,
                port: None,
                tag: Some(wave.clone()),
                start: at,
                end: at,
                events: 1,
                fired: false,
            },
            true,
        );
    }

    fn on_enqueue(&self, actor: ActorId, port: usize, wave: &WaveTag, at: Timestamp) {
        if !self.enabled() {
            return;
        }
        let key = wave.origin().as_micros();
        let mut st = self.state.lock();
        // A block wait reported for this port just before the admission
        // belongs to the admitted event's wave (consumed either way, so a
        // stale wait is never attributed to a much later wave).
        let pending = st.pending_block.remove(&(actor.0, port));
        if !st.sampled.contains(&key) {
            return;
        }
        if let Some((block_at, waited)) = pending {
            self.push_span(
                &mut st,
                key,
                wave.origin(),
                Span {
                    kind: SpanKind::Block,
                    actor,
                    port: Some(port),
                    tag: Some(wave.clone()),
                    start: Timestamp(block_at.as_micros().saturating_sub(waited.as_micros())),
                    end: block_at,
                    events: 1,
                    fired: false,
                },
                false,
            );
        }
        self.push_span(
            &mut st,
            key,
            wave.origin(),
            Span {
                kind: SpanKind::Enqueue,
                actor,
                port: Some(port),
                tag: Some(wave.clone()),
                start: at,
                end: at,
                events: 1,
                fired: false,
            },
            false,
        );
    }

    fn on_dequeue(
        &self,
        actor: ActorId,
        port: usize,
        wave: Option<&WaveTag>,
        formed_at: Timestamp,
        at: Timestamp,
    ) {
        if !self.enabled() {
            return;
        }
        let Some(wave) = wave else { return };
        let key = wave.origin().as_micros();
        let mut st = self.state.lock();
        self.push_span(
            &mut st,
            key,
            wave.origin(),
            Span {
                kind: SpanKind::Dequeue,
                actor,
                port: Some(port),
                tag: Some(wave.clone()),
                start: formed_at,
                end: at,
                events: 1,
                fired: false,
            },
            false,
        );
    }

    fn on_fire_end(&self, record: &FireRecord) {
        if !self.enabled() {
            return;
        }
        let Some(trigger) = &record.trigger else {
            return;
        };
        let key = trigger.origin().as_micros();
        let mut st = self.state.lock();
        self.push_span(
            &mut st,
            key,
            trigger.origin(),
            Span {
                kind: SpanKind::Fire,
                actor: record.actor,
                port: None,
                tag: Some(trigger.clone()),
                start: record.started,
                end: record.ended,
                events: record.events_in,
                fired: record.fired,
            },
            false,
        );
    }

    fn on_block(&self, actor: ActorId, port: usize, waited: Micros, at: Timestamp) {
        if !self.enabled() || waited == Micros::ZERO {
            return;
        }
        let mut st = self.state.lock();
        st.pending_block.insert((actor.0, port), (at, waited));
    }
}

impl Tracer {
    /// Take (and record) the sampling decision for a freshly-seen root.
    fn decide(&self, st: &mut TracerState, key: u64) -> bool {
        let n = self.roots_seen.fetch_add(1, Ordering::Relaxed);
        let keep = n.is_multiple_of(self.config.sample_every);
        st.last_decided = Some((key, keep));
        if keep {
            st.sampled_roots += 1;
        }
        keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn admit(t: &Tracer, src: usize, origin: u64) -> WaveTag {
        let tag = WaveTag::external(Timestamp(origin));
        t.on_admit(ActorId(src), &tag, Timestamp(origin));
        tag
    }

    /// Simulate one hop: enqueue the event at `actor`, dequeue it, fire.
    fn hop(t: &Tracer, actor: usize, tag: &WaveTag, start: u64, service: u64) -> u64 {
        t.on_enqueue(ActorId(actor), 0, tag, Timestamp(start));
        t.on_dequeue(ActorId(actor), 0, Some(tag), Timestamp(start), Timestamp(start + 1));
        let end = start + 1 + service;
        t.on_fire_end(&FireRecord {
            actor: ActorId(actor),
            started: Timestamp(start + 1),
            ended: Timestamp(end),
            busy: Micros(service),
            events_in: 1,
            tokens_out: 1,
            origin: Some(tag.origin()),
            trigger: Some(tag.clone()),
            fired: true,
        });
        end
    }

    #[test]
    fn samples_one_in_n_roots_with_full_lineage() {
        let t = Tracer::new(TraceConfig::sampled(3));
        for i in 0..9u64 {
            let origin = 1_000 * (i + 1);
            let root = admit(&t, 0, origin);
            let end = hop(&t, 1, &root, origin + 10, 5);
            hop(&t, 2, &root.child(1, true), end + 10, 5);
        }
        let report = t.report();
        assert_eq!(report.roots_seen, 9);
        assert_eq!(report.sampled_roots, 3);
        assert_eq!(report.waves.len(), 3);
        // Sampled waves are the 1st, 4th, and 7th roots, each complete.
        let origins: Vec<u64> = report.waves.iter().map(|w| w.origin.as_micros()).collect();
        assert_eq!(origins, vec![1_000, 4_000, 7_000]);
        for wave in &report.waves {
            let kinds: Vec<&str> = wave.spans.iter().map(|s| s.kind.label()).collect();
            assert_eq!(
                kinds,
                vec![
                    "admit", "enqueue", "dequeue", "fire", "enqueue", "dequeue", "fire"
                ],
                "full lineage for wave {}",
                wave.origin.as_micros()
            );
        }
    }

    #[test]
    fn disabled_tracer_records_nothing_and_declines_event_hooks() {
        let t = Tracer::new(TraceConfig::disabled());
        assert!(!t.wants_event_hooks());
        let root = admit(&t, 0, 50);
        hop(&t, 1, &root, 60, 5);
        let report = t.report();
        assert_eq!(report.roots_seen, 0);
        assert!(report.waves.is_empty());
    }

    #[test]
    fn flight_recorder_evicts_oldest_wave_whole() {
        // Each wave below records 7 spans.
        let t = Tracer::new(TraceConfig {
            max_spans: 10,
            ..TraceConfig::default()
        });
        for i in 0..3u64 {
            let origin = 1_000 * (i + 1);
            let root = admit(&t, 0, origin);
            let end = hop(&t, 1, &root, origin + 10, 5);
            hop(&t, 2, &root.child(1, true), end + 10, 5);
        }
        let report = t.report();
        // Only the newest wave fits; the two older ones were evicted as
        // complete units — no partial waves survive.
        assert_eq!(report.evicted_waves, 2);
        assert_eq!(report.waves.len(), 1);
        assert_eq!(report.waves[0].origin, Timestamp(3_000));
        assert_eq!(report.waves[0].spans.len(), 7, "newest wave is untorn");
    }

    #[test]
    fn late_spans_for_evicted_waves_are_dropped() {
        let t = Tracer::new(TraceConfig {
            max_spans: 8,
            ..TraceConfig::default()
        });
        let w1 = admit(&t, 0, 1_000);
        hop(&t, 1, &w1, 1_010, 5);
        let w2 = admit(&t, 0, 2_000);
        let end = hop(&t, 1, &w2, 2_010, 5);
        hop(&t, 2, &w2.child(1, true), end + 10, 5); // overflows: w1 evicted
        // A straggler span of the evicted wave must not resurrect it.
        hop(&t, 2, &w1.child(1, true), 5_000, 5);
        let report = t.report();
        assert_eq!(report.waves.len(), 1);
        assert_eq!(report.waves[0].origin, Timestamp(2_000));
        assert!(report.dropped_spans > 0);
    }

    #[test]
    fn block_wait_attaches_to_the_following_admission() {
        let t = Tracer::new(TraceConfig::default());
        let root = admit(&t, 0, 100);
        t.on_block(ActorId(1), 0, Micros(40), Timestamp(150));
        t.on_enqueue(ActorId(1), 0, &root, Timestamp(150));
        let report = t.report();
        let wave = &report.waves[0];
        let block = wave
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Block)
            .expect("block span recorded");
        assert_eq!(block.start, Timestamp(110));
        assert_eq!(block.end, Timestamp(150));
        assert_eq!(block.tag, Some(root));
    }
}
