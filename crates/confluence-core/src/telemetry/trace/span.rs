//! Span and wave-trace models for the lineage tracer.

use crate::graph::ActorId;
use crate::time::{Micros, Timestamp};
use crate::wave::WaveTag;

/// The lifecycle stage one [`Span`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// An external event was stamped and entered the workflow (wave root).
    Admit,
    /// An event was admitted into an input-port queue.
    Enqueue,
    /// A formed window was popped for firing. The span runs from window
    /// formation to the pop, i.e. it covers the window's queue wait.
    Dequeue,
    /// A firing attempt at an actor (service time).
    Fire,
    /// A writer blocked on a full `Block`-policy input port before the
    /// admission that follows.
    Block,
}

impl SpanKind {
    /// Stable lower-case label (exports and tests).
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Admit => "admit",
            SpanKind::Enqueue => "enqueue",
            SpanKind::Dequeue => "dequeue",
            SpanKind::Fire => "fire",
            SpanKind::Block => "block",
        }
    }
}

/// One recorded stage of one traced wave.
#[derive(Debug, Clone)]
pub struct Span {
    /// Which lifecycle stage this span covers.
    pub kind: SpanKind,
    /// The actor the stage happened at (destination actor for enqueue /
    /// block spans, the firing actor for fire spans, the source for admit
    /// spans).
    pub actor: ActorId,
    /// The input port, for the port-scoped kinds (enqueue/dequeue/block).
    pub port: Option<usize>,
    /// The wave-tag the span is attributed to: the event's own tag for
    /// admit/enqueue spans, the window's trigger tag for dequeue spans,
    /// the firing's trigger tag for fire spans. `None` where the director
    /// could not attribute one (e.g. a block wait, attributed to the wave
    /// of the admission that follows it).
    pub tag: Option<WaveTag>,
    /// Span start (== `end` for the instantaneous kinds).
    pub start: Timestamp,
    /// Span end.
    pub end: Timestamp,
    /// Events involved: consumed events for fire spans, 1 for per-event
    /// kinds.
    pub events: u64,
    /// For fire spans, whether the actor actually fired.
    pub fired: bool,
}

impl Span {
    /// The span's duration (zero for instantaneous kinds).
    pub fn duration(&self) -> Micros {
        self.end.since(self.start)
    }
}

/// All recorded spans of one wave, in arrival order.
#[derive(Debug, Clone)]
pub struct WaveTrace {
    /// The wave's identity: the timestamp of its initiating external
    /// event.
    pub origin: Timestamp,
    /// Spans in the order the tracer observed them.
    pub spans: Vec<Span>,
}

impl WaveTrace {
    /// When the wave's root event was admitted (falls back to the origin
    /// timestamp when the admit span was not observed).
    pub fn admitted_at(&self) -> Timestamp {
        self.spans
            .iter()
            .find(|s| s.kind == SpanKind::Admit)
            .map(|s| s.start)
            .unwrap_or(self.origin)
    }

    /// The latest span end — when the wave last did anything.
    pub fn last_activity(&self) -> Timestamp {
        self.spans
            .iter()
            .map(|s| s.end)
            .max()
            .unwrap_or(self.origin)
    }

    /// End-to-end latency of the wave: admission to last activity.
    pub fn end_to_end(&self) -> Micros {
        self.last_activity().since(self.admitted_at())
    }

    /// A director-independent rendering of the wave's causal structure:
    /// one sorted line per span, with the origin timestamp normalized to
    /// zero so traces of the same workflow taken under different clocks
    /// compare equal. Timestamps and durations are deliberately excluded.
    pub fn structure(&self) -> Vec<String> {
        let mut lines: Vec<String> = self
            .spans
            .iter()
            .map(|s| {
                let tag = match &s.tag {
                    Some(t) => {
                        let mut z = WaveTag::external(Timestamp::ZERO);
                        for step in t.path() {
                            z = z.child(step.index, step.last);
                        }
                        z.to_string()
                    }
                    None => "-".to_string(),
                };
                let port = s.port.map(|p| p.to_string()).unwrap_or_else(|| "-".into());
                format!("{} a{} p{} {}", s.kind.label(), s.actor.0, port, tag)
            })
            .collect();
        lines.sort();
        lines
    }

    /// All distinct wave-tags observed in this trace, in wave order.
    pub fn tags(&self) -> Vec<WaveTag> {
        let mut tags: Vec<WaveTag> = self.spans.iter().filter_map(|s| s.tag.clone()).collect();
        tags.sort();
        tags.dedup();
        tags
    }
}
