//! Trace exports: Chrome/Perfetto JSON, per-wave critical paths, and the
//! plain-text wave tree dump.

use std::collections::HashMap;
use std::fmt::Write as _;

use crate::graph::ActorId;
use crate::time::{Micros, Timestamp};
use crate::wave::WaveTag;

use super::span::{Span, SpanKind, WaveTrace};

/// A point-in-time snapshot of a [`Tracer`](super::Tracer)'s flight
/// recorder, with the exports hanging off it.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// Recorded waves, oldest origin first.
    pub waves: Vec<WaveTrace>,
    /// Root waves observed (sampled or not).
    pub roots_seen: u64,
    /// Root waves the sampler kept.
    pub sampled_roots: u64,
    /// Waves evicted whole from the flight recorder.
    pub evicted_waves: u64,
    /// Spans dropped because their wave had already been evicted.
    pub dropped_spans: u64,
    /// Actor names for display (empty → `actor N` fallbacks).
    pub actor_names: Vec<String>,
}

/// One hop segment of a wave's critical path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CpSegment {
    /// `"route"`, `"wait"`, or `"service"`.
    pub stage: &'static str,
    /// The actor the segment is charged to.
    pub actor: ActorId,
    /// Segment duration.
    pub duration: Micros,
}

/// The causal chain from a wave's admission to its final firing,
/// decomposed into telescoping route / wait / service segments whose sum
/// equals the wave's end-to-end latency.
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The wave's origin timestamp.
    pub origin: Timestamp,
    /// Sum of all segments (== admission → final firing end).
    pub total: Micros,
    /// Segments in causal order, root first.
    pub segments: Vec<CpSegment>,
    /// The stage kind with the largest summed duration.
    pub dominant: &'static str,
}

impl CriticalPath {
    /// Total duration charged to one stage kind.
    pub fn stage_total(&self, stage: &str) -> Micros {
        Micros(
            self.segments
                .iter()
                .filter(|s| s.stage == stage)
                .map(|s| s.duration.as_micros())
                .sum(),
        )
    }
}

impl TraceReport {
    fn actor_label(&self, actor: ActorId) -> String {
        self.actor_names
            .get(actor.0)
            .cloned()
            .unwrap_or_else(|| format!("actor {}", actor.0))
    }

    /// The recorded wave containing the tag spelled `tag` (paper dotted
    /// form, e.g. `t1000.3.1!`), if any. This is the round-trip
    /// counterpart of the tree dump: any tag line it prints can be fed
    /// back here.
    pub fn find_wave(&self, tag: &str) -> Option<&WaveTrace> {
        let tag = WaveTag::parse(tag)?;
        self.waves
            .iter()
            .find(|w| w.origin == tag.origin() && w.spans.iter().any(|s| s.tag.as_ref() == Some(&tag)))
    }

    /// Reconstruct each wave's critical path (waves too torn to walk are
    /// skipped).
    pub fn critical_paths(&self) -> Vec<CriticalPath> {
        self.waves.iter().filter_map(critical_path).collect()
    }

    /// The plain-text wave tree dump: every recorded wave, its spans
    /// grouped under their wave-tags in wave order, with durations.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for wave in &self.waves {
            let _ = writeln!(
                out,
                "wave t{} — {} spans, end-to-end {} µs",
                wave.origin.as_micros(),
                wave.spans.len(),
                wave.end_to_end().as_micros()
            );
            let mut spans: Vec<&Span> = wave.spans.iter().collect();
            spans.sort_by(|a, b| {
                a.tag
                    .cmp(&b.tag)
                    .then(a.start.cmp(&b.start))
                    .then(a.kind.label().cmp(b.kind.label()))
            });
            for span in spans {
                let tag = span
                    .tag
                    .as_ref()
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "-".to_string());
                let depth = span.tag.as_ref().map(|t| t.depth()).unwrap_or(0);
                let port = span
                    .port
                    .map(|p| format!(" port {p}"))
                    .unwrap_or_default();
                let _ = writeln!(
                    out,
                    "  {:indent$}{tag}  {kind} {actor}{port} ({dur} µs)",
                    "",
                    indent = 2 * depth,
                    kind = span.kind.label(),
                    actor = self.actor_label(span.actor),
                    dur = span.duration().as_micros(),
                );
            }
        }
        if self.waves.is_empty() {
            out.push_str("no waves recorded\n");
        }
        out
    }

    /// Human-readable critical-path summary: per wave, the dominant stage
    /// and the hop-by-hop decomposition.
    pub fn render_critical_paths(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "critical paths ({} waves recorded, {} roots seen, {} sampled, {} evicted)",
            self.waves.len(),
            self.roots_seen,
            self.sampled_roots,
            self.evicted_waves
        );
        for cp in self.critical_paths() {
            let _ = writeln!(
                out,
                "wave t{}: {} µs end-to-end, dominated by {} ({} µs route / {} µs wait / {} µs service)",
                cp.origin.as_micros(),
                cp.total.as_micros(),
                cp.dominant,
                cp.stage_total("route").as_micros(),
                cp.stage_total("wait").as_micros(),
                cp.stage_total("service").as_micros(),
            );
            for seg in &cp.segments {
                let _ = writeln!(
                    out,
                    "  {:<8} {:<24} {} µs",
                    seg.stage,
                    self.actor_label(seg.actor),
                    seg.duration.as_micros()
                );
            }
        }
        out
    }

    /// Export as Chrome `chrome://tracing` / Perfetto trace-event JSON.
    ///
    /// Each actor gets two tracks: `2*actor` for firings (and admissions)
    /// and `2*actor+1` for queue residence (window wait, block wait).
    /// Every parent→child firing link in a wave's lineage becomes a flow
    /// arrow (`ph:"s"` / `ph:"f"`), so following the arrows follows the
    /// wave tree.
    pub fn to_chrome_json(&self) -> String {
        let mut events: Vec<String> = Vec::new();
        // Thread-name metadata so tracks are labeled with actor names.
        let mut actors: Vec<usize> = self
            .waves
            .iter()
            .flat_map(|w| w.spans.iter().map(|s| s.actor.0))
            .collect();
        actors.sort_unstable();
        actors.dedup();
        for a in &actors {
            let name = escape_json(&self.actor_label(ActorId(*a)));
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                2 * a,
                name
            ));
            events.push(format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{} (queue)\"}}}}",
                2 * a + 1,
                name
            ));
        }
        let mut flow_id = 0u64;
        for wave in &self.waves {
            for span in &wave.spans {
                let tag = span
                    .tag
                    .as_ref()
                    .map(|t| t.to_string())
                    .unwrap_or_default();
                let (tid, name) = match span.kind {
                    SpanKind::Fire => (2 * span.actor.0, format!("fire {tag}")),
                    SpanKind::Admit => (2 * span.actor.0, format!("admit {tag}")),
                    SpanKind::Dequeue => (2 * span.actor.0 + 1, format!("queue {tag}")),
                    SpanKind::Block => (2 * span.actor.0 + 1, format!("block {tag}")),
                    SpanKind::Enqueue => {
                        events.push(format!(
                            "{{\"ph\":\"i\",\"pid\":1,\"tid\":{},\"ts\":{},\"s\":\"t\",\"name\":\"enqueue {}\",\"cat\":\"wave\"}}",
                            2 * span.actor.0 + 1,
                            span.start.as_micros(),
                            escape_json(&tag)
                        ));
                        continue;
                    }
                };
                let dur = span.duration().as_micros().max(1);
                events.push(format!(
                    "{{\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"wave\",\"args\":{{\"wave\":\"{}\",\"events\":{}}}}}",
                    tid,
                    span.start.as_micros(),
                    dur,
                    escape_json(&name),
                    escape_json(&tag),
                    span.events
                ));
            }
            // Flow arrows along the lineage: each fire span links back to
            // the span that produced its trigger event.
            let fires = fire_spans(wave);
            for fire in wave.spans.iter().filter(|s| s.kind == SpanKind::Fire) {
                let Some(tag) = &fire.tag else { continue };
                let producer = match tag.parent() {
                    None => wave
                        .spans
                        .iter()
                        .find(|s| s.kind == SpanKind::Admit && s.tag.as_ref() == Some(tag)),
                    Some(parent) => closest_preceding(&fires, &parent, fire.start),
                };
                let Some(producer) = producer else { continue };
                let src_tid = 2 * producer.actor.0;
                flow_id += 1;
                events.push(format!(
                    "{{\"ph\":\"s\",\"pid\":1,\"tid\":{},\"ts\":{},\"id\":{},\"name\":\"wave\",\"cat\":\"wave\"}}",
                    src_tid,
                    producer.end.as_micros().max(producer.start.as_micros()),
                    flow_id
                ));
                events.push(format!(
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":{},\"ts\":{},\"id\":{},\"name\":\"wave\",\"cat\":\"wave\"}}",
                    2 * fire.actor.0,
                    fire.start.as_micros(),
                    flow_id
                ));
            }
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(e);
        }
        out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
        out
    }
}

/// All fire spans of a wave indexed by trigger tag (fan-out can record
/// several firings per tag — one per consuming actor).
fn fire_spans(wave: &WaveTrace) -> HashMap<WaveTag, Vec<&Span>> {
    let mut map: HashMap<WaveTag, Vec<&Span>> = HashMap::new();
    for span in wave.spans.iter().filter(|s| s.kind == SpanKind::Fire) {
        if let Some(tag) = &span.tag {
            map.entry(tag.clone()).or_default().push(span);
        }
    }
    map
}

/// Among the firings triggered by `tag`, the one ending latest at or
/// before `before` (the producer closest in time to its consumer); falls
/// back to the earliest if none precede.
fn closest_preceding<'a>(
    fires: &'a HashMap<WaveTag, Vec<&'a Span>>,
    tag: &WaveTag,
    before: Timestamp,
) -> Option<&'a Span> {
    let candidates = fires.get(tag)?;
    candidates
        .iter()
        .filter(|s| s.end <= before)
        .max_by_key(|s| s.end)
        .or_else(|| candidates.iter().min_by_key(|s| s.end))
        .copied()
}

/// Walk the causal chain backwards from the wave's last firing to its
/// admission, emitting telescoping segments: for every hop, *route*
/// (producer's end → enqueue), *wait* (enqueue → firing start), and
/// *service* (the firing itself). Because the segments telescope, their
/// sum is exactly `last firing end − admission`, the wave's end-to-end
/// latency up to its final firing.
fn critical_path(wave: &WaveTrace) -> Option<CriticalPath> {
    let fires = fire_spans(wave);
    let last = wave
        .spans
        .iter()
        .filter(|s| s.kind == SpanKind::Fire)
        .max_by_key(|s| s.end)?;
    let mut segments: Vec<CpSegment> = Vec::new();
    let mut cursor = last;
    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > 10_000 {
            return None; // malformed chain; refuse to loop forever
        }
        let tag = cursor.tag.as_ref()?;
        // The event that triggered `cursor` was enqueued at cursor's
        // actor carrying exactly `tag`.
        let enqueue_at = wave
            .spans
            .iter()
            .filter(|s| {
                s.kind == SpanKind::Enqueue
                    && s.actor == cursor.actor
                    && s.tag.as_ref() == Some(tag)
                    && s.start <= cursor.start
            })
            .map(|s| s.start)
            .max()?;
        segments.push(CpSegment {
            stage: "service",
            actor: cursor.actor,
            duration: cursor.end.since(cursor.start),
        });
        segments.push(CpSegment {
            stage: "wait",
            actor: cursor.actor,
            duration: cursor.start.since(enqueue_at),
        });
        match tag.parent() {
            None => {
                // Root event: the producer is the admission itself.
                let admit = wave
                    .spans
                    .iter()
                    .find(|s| s.kind == SpanKind::Admit && s.tag.as_ref() == Some(tag))?;
                segments.push(CpSegment {
                    stage: "route",
                    actor: cursor.actor,
                    duration: enqueue_at.since(admit.start),
                });
                segments.reverse();
                let total = Micros(segments.iter().map(|s| s.duration.as_micros()).sum());
                let dominant = ["route", "wait", "service"]
                    .into_iter()
                    .max_by_key(|stage| {
                        segments
                            .iter()
                            .filter(|s| s.stage == *stage)
                            .map(|s| s.duration.as_micros())
                            .sum::<u64>()
                    })
                    .unwrap_or("service");
                return Some(CriticalPath {
                    origin: wave.origin,
                    total,
                    segments,
                    dominant,
                });
            }
            Some(parent) => {
                let producer = closest_preceding(&fires, &parent, enqueue_at)?;
                segments.push(CpSegment {
                    stage: "route",
                    actor: cursor.actor,
                    duration: enqueue_at.since(producer.end),
                });
                cursor = producer;
            }
        }
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::super::{TraceConfig, Tracer};
    use super::*;
    use crate::telemetry::{FireRecord, Observer};

    /// A two-hop wave in virtual time with known segment durations.
    fn two_hop_tracer() -> Tracer {
        let t = Tracer::new(TraceConfig::default());
        let root = WaveTag::external(Timestamp(1_000));
        t.on_admit(ActorId(0), &root, Timestamp(1_000));
        // route 10µs, wait 5µs, service 20µs at actor 1
        t.on_enqueue(ActorId(1), 0, &root, Timestamp(1_010));
        t.on_dequeue(ActorId(1), 0, Some(&root), Timestamp(1_010), Timestamp(1_015));
        t.on_fire_end(&FireRecord {
            actor: ActorId(1),
            started: Timestamp(1_015),
            ended: Timestamp(1_035),
            busy: Micros(20),
            events_in: 1,
            tokens_out: 1,
            origin: Some(Timestamp(1_000)),
            trigger: Some(root.clone()),
            fired: true,
        });
        // route 3µs, wait 2µs, service 40µs at actor 2
        let child = root.child(1, true);
        t.on_enqueue(ActorId(2), 0, &child, Timestamp(1_038));
        t.on_dequeue(ActorId(2), 0, Some(&child), Timestamp(1_038), Timestamp(1_040));
        t.on_fire_end(&FireRecord {
            actor: ActorId(2),
            started: Timestamp(1_040),
            ended: Timestamp(1_080),
            busy: Micros(40),
            events_in: 1,
            tokens_out: 0,
            origin: Some(Timestamp(1_000)),
            trigger: Some(child),
            fired: true,
        });
        t
    }

    #[test]
    fn critical_path_telescopes_to_end_to_end_latency() {
        let report = two_hop_tracer().report();
        let paths = report.critical_paths();
        assert_eq!(paths.len(), 1);
        let cp = &paths[0];
        // admit t1000 → final firing end t1080.
        assert_eq!(cp.total, Micros(80));
        assert_eq!(cp.total, report.waves[0].end_to_end());
        let stages: Vec<(&str, u64)> = cp
            .segments
            .iter()
            .map(|s| (s.stage, s.duration.as_micros()))
            .collect();
        assert_eq!(
            stages,
            vec![
                ("route", 10),
                ("wait", 5),
                ("service", 20),
                ("route", 3),
                ("wait", 2),
                ("service", 40),
            ]
        );
        assert_eq!(cp.dominant, "service");
        assert_eq!(cp.stage_total("route"), Micros(13));
    }

    #[test]
    fn chrome_export_has_slices_and_matched_flow_arrows() {
        let json = two_hop_tracer().report().to_chrome_json();
        assert!(json.contains("\"traceEvents\""));
        let x_events = json.matches("\"ph\":\"X\"").count();
        assert!(x_events >= 3, "admit + 2 fires + 2 queue slices, got {x_events}");
        let starts = json.matches("\"ph\":\"s\"").count();
        let finishes = json.matches("\"ph\":\"f\"").count();
        assert_eq!(starts, 2, "one flow arrow per firing link");
        assert_eq!(starts, finishes, "every flow start has a finish");
        assert!(json.contains("\"bp\":\"e\""));
    }

    #[test]
    fn tree_dump_tags_round_trip_through_parse() {
        let report = two_hop_tracer().report();
        let tree = report.render_tree();
        assert!(tree.contains("wave t1000"));
        assert!(tree.contains("t1000.1!"));
        // Any tag line of the dump can be fed back through the parser.
        let wave = report.find_wave("t1000.1!").expect("tag resolves to its wave");
        assert_eq!(wave.origin, Timestamp(1_000));
        assert!(report.find_wave("t9999").is_none());
        assert!(report.find_wave("garbage").is_none());
    }
}
