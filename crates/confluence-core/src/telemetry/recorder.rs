//! Lock-free metrics collection and point-in-time snapshots.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::graph::{ActorId, Workflow};
use crate::time::{Micros, Timestamp};

use super::{FireRecord, Observer, RunPhase, WorkerMetrics};

/// Number of power-of-two latency buckets: bucket `i` counts samples
/// `< 2^i` µs; the final bucket is the overflow (+Inf) bucket. 2^38 µs
/// is ~3.2 days, far beyond any run this engine executes.
const LATENCY_BUCKETS: usize = 40;

/// Fixed-bucket histogram of end-to-end tuple latencies in microseconds.
/// Buckets grow by powers of two so a single `leading_zeros` finds the
/// slot; recording is a handful of relaxed atomic adds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    pub fn new() -> Self {
        Self::default()
    }

    /// Index of the bucket holding `micros`: smallest `i` with
    /// `micros < 2^i`, clamped to the overflow bucket.
    fn bucket_index(micros: u64) -> usize {
        let i = (64 - micros.leading_zeros()) as usize;
        i.min(LATENCY_BUCKETS - 1)
    }

    /// Record one latency sample.
    pub fn record(&self, latency: Micros) {
        let us = latency.as_micros();
        self.buckets[Self::bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(us, Ordering::Relaxed);
        self.max_micros.fetch_max(us, Ordering::Relaxed);
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`LatencyHistogram`]. `buckets[i]` counts samples
/// `< 2^i` µs (non-cumulative); the last bucket is the overflow bucket.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub buckets: Vec<u64>,
    pub count: u64,
    pub sum_micros: u64,
    pub max_micros: u64,
}

impl HistogramSnapshot {
    /// Mean latency over all samples.
    pub fn mean(&self) -> Micros {
        match self.sum_micros.checked_div(self.count) {
            Some(mean) => Micros(mean),
            None => Micros::ZERO,
        }
    }

    /// Upper bound (in µs) of the bucket containing quantile `q` in
    /// `0.0..=1.0` — a conservative percentile estimate.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper_micros(i).unwrap_or(u64::MAX);
            }
        }
        u64::MAX
    }
}

/// Upper bound of bucket `i` in µs; `None` for the overflow bucket.
fn bucket_upper_micros(i: usize) -> Option<u64> {
    if i + 1 >= LATENCY_BUCKETS {
        None
    } else {
        Some(1u64 << i)
    }
}

/// Per-actor counter cell. Every field is a relaxed atomic so actor
/// threads under the threaded director update without contention.
#[derive(Debug, Default)]
struct ActorCell {
    fires: AtomicU64,
    attempts: AtomicU64,
    busy_micros: AtomicU64,
    events_in: AtomicU64,
    tokens_out: AtomicU64,
    windows_closed: AtomicU64,
    queue_high_water: AtomicU64,
    events_expired: AtomicU64,
    blocks: AtomicU64,
    block_micros: AtomicU64,
    events_shed: AtomicU64,
    routed_out: AtomicU64,
}

/// Per-channel delivery counter cell, pre-sized from the workflow's
/// channel list so the routing hot path stays lock-free.
#[derive(Debug)]
struct EdgeCell {
    from: ActorId,
    to: ActorId,
    port: usize,
    events: AtomicU64,
}

/// Routed-event count for one channel `(from, to, port)` in a
/// [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeMetrics {
    /// Producing actor.
    pub from: ActorId,
    pub from_name: String,
    /// Consuming actor.
    pub to: ActorId,
    pub to_name: String,
    /// Destination input port on `to`.
    pub port: usize,
    /// Events delivered over this channel.
    pub events: u64,
}

/// Metrics for one actor in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActorMetrics {
    pub id: ActorId,
    pub name: String,
    /// Successful firings (prefire accepted).
    pub fires: u64,
    /// Firing attempts including refusals.
    pub attempts: u64,
    /// Total busy time charged to the actor.
    pub busy: Micros,
    /// Events consumed from input windows.
    pub events_in: u64,
    /// Tokens emitted on output ports.
    pub tokens_out: u64,
    /// Ready windows formed on the actor's input ports.
    pub windows_closed: u64,
    /// Highest observed inbox depth.
    pub queue_high_water: u64,
    /// Events expired out of the actor's windows.
    pub events_expired: u64,
    /// Writers that hit this actor's full input ports under a `Block`
    /// channel policy (backpressure events).
    pub blocks: u64,
    /// Total time writers spent blocked on this actor's full ports.
    pub block_time: Micros,
    /// Events shed at this actor's full input ports under drop policies.
    pub events_shed: u64,
    /// Events this actor delivered downstream (routing passes it
    /// originated).
    pub routed_out: u64,
}

/// One replica's slice of a [`ShardMetrics`] group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardReplicaMetrics {
    /// Replica index within the group (the `<i>` of `base#<i>`).
    pub replica: usize,
    /// Successful firings of this replica.
    pub fires: u64,
    /// Events the replica consumed.
    pub events_in: u64,
    /// Tokens the replica produced.
    pub tokens_out: u64,
    /// Highest observed inbox depth on the replica.
    pub queue_high_water: u64,
    /// Busy time charged to the replica.
    pub busy: Micros,
}

/// Aggregated per-replica metrics for one expanded shard group, recovered
/// from the generated `base#<i>` actor names (see
/// [`crate::graph::WorkflowBuilder::shard`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Name of the sharded base actor.
    pub base: String,
    /// Per-replica metrics, in replica order.
    pub replicas: Vec<ShardReplicaMetrics>,
}

impl ShardMetrics {
    /// Firings summed over all replicas.
    pub fn total_fires(&self) -> u64 {
        self.replicas.iter().map(|r| r.fires).sum()
    }

    /// Load imbalance: the busiest replica's firing share of a perfectly
    /// even split (1.0 = balanced, `replicas` = everything on one).
    pub fn imbalance(&self) -> f64 {
        let total = self.total_fires();
        if total == 0 || self.replicas.is_empty() {
            return 1.0;
        }
        let max = self.replicas.iter().map(|r| r.fires).max().unwrap_or(0);
        max as f64 * self.replicas.len() as f64 / total as f64
    }
}

/// Atomics-only [`Observer`] that aggregates the hook stream into
/// per-actor counters plus an end-to-end latency histogram fed by sink
/// firings. Safe to share across the threaded director's actor threads;
/// `snapshot()` can be taken at any point, including mid-run.
#[derive(Debug)]
pub struct MetricsRecorder {
    names: Vec<String>,
    is_sink: Vec<bool>,
    actors: Vec<ActorCell>,
    edges: Vec<EdgeCell>,
    edge_index: HashMap<(usize, usize, usize), usize>,
    events_routed: AtomicU64,
    latency: LatencyHistogram,
    run_started: AtomicU64,
    run_ended: AtomicU64,
    /// Per-worker counters from pooled executors (empty under the
    /// thread-per-actor directors). Cold path: reported once per run.
    workers: Mutex<Vec<WorkerMetrics>>,
}

impl MetricsRecorder {
    /// Recorder sized for `workflow`, capturing actor names and sink-ness
    /// (sink firings feed the end-to-end latency histogram).
    pub fn for_workflow(workflow: &Workflow) -> Self {
        let sinks = workflow.sinks();
        let names: Vec<String> = workflow
            .actor_ids()
            .map(|id| workflow.node(id).name.clone())
            .collect();
        let is_sink = workflow
            .actor_ids()
            .map(|id| sinks.contains(&id))
            .collect();
        let mut edges = Vec::new();
        for id in workflow.actor_ids() {
            for port in 0..workflow.node(id).signature.outputs.len() {
                for dest in workflow.routes_from(id, port) {
                    edges.push((id, dest.actor, dest.port));
                }
            }
        }
        Self::with_names(names, is_sink).with_edges(edges)
    }

    /// Recorder over explicit actor names; `is_sink[i]` marks the actors
    /// whose firings feed the latency histogram.
    pub fn with_names(names: Vec<String>, is_sink: Vec<bool>) -> Self {
        assert_eq!(names.len(), is_sink.len());
        let actors = (0..names.len()).map(|_| ActorCell::default()).collect();
        MetricsRecorder {
            names,
            is_sink,
            actors,
            edges: Vec::new(),
            edge_index: HashMap::new(),
            events_routed: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
            run_started: AtomicU64::new(0),
            run_ended: AtomicU64::new(0),
            workers: Mutex::new(Vec::new()),
        }
    }

    /// Declare the workflow's channels so per-edge deliveries reported by
    /// [`Observer::on_route_edge`] can be counted lock-free. Deliveries on
    /// edges not declared here are ignored.
    pub fn with_edges(mut self, edges: Vec<(ActorId, ActorId, usize)>) -> Self {
        for (from, to, port) in edges {
            let key = (from.0, to.0, port);
            if self.edge_index.contains_key(&key) {
                continue;
            }
            self.edge_index.insert(key, self.edges.len());
            self.edges.push(EdgeCell {
                from,
                to,
                port,
                events: AtomicU64::new(0),
            });
        }
        self
    }

    fn cell(&self, actor: ActorId) -> Option<&ActorCell> {
        self.actors.get(actor.0)
    }

    /// Total successful firings across all actors.
    pub fn total_fires(&self) -> u64 {
        self.actors
            .iter()
            .map(|c| c.fires.load(Ordering::Relaxed))
            .sum()
    }

    /// Total channel deliveries observed.
    pub fn total_routed(&self) -> u64 {
        self.events_routed.load(Ordering::Relaxed)
    }

    /// Point-in-time copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let actors = self
            .actors
            .iter()
            .enumerate()
            .map(|(i, c)| ActorMetrics {
                id: ActorId(i),
                name: self.names[i].clone(),
                fires: c.fires.load(Ordering::Relaxed),
                attempts: c.attempts.load(Ordering::Relaxed),
                busy: Micros(c.busy_micros.load(Ordering::Relaxed)),
                events_in: c.events_in.load(Ordering::Relaxed),
                tokens_out: c.tokens_out.load(Ordering::Relaxed),
                windows_closed: c.windows_closed.load(Ordering::Relaxed),
                queue_high_water: c.queue_high_water.load(Ordering::Relaxed),
                events_expired: c.events_expired.load(Ordering::Relaxed),
                blocks: c.blocks.load(Ordering::Relaxed),
                block_time: Micros(c.block_micros.load(Ordering::Relaxed)),
                events_shed: c.events_shed.load(Ordering::Relaxed),
                routed_out: c.routed_out.load(Ordering::Relaxed),
            })
            .collect();
        let edges = self
            .edges
            .iter()
            .map(|e| EdgeMetrics {
                from: e.from,
                from_name: self.names.get(e.from.0).cloned().unwrap_or_default(),
                to: e.to,
                to_name: self.names.get(e.to.0).cloned().unwrap_or_default(),
                port: e.port,
                events: e.events.load(Ordering::Relaxed),
            })
            .collect();
        let mut workers = self.workers.lock().clone();
        workers.sort_by_key(|w| w.worker);
        MetricsSnapshot {
            actors,
            edges,
            events_routed: self.events_routed.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
            run_started: Timestamp(self.run_started.load(Ordering::Relaxed)),
            run_ended: Timestamp(self.run_ended.load(Ordering::Relaxed)),
            workers,
        }
    }
}

impl Observer for MetricsRecorder {
    fn on_run_phase(&self, phase: RunPhase, at: Timestamp) {
        match phase {
            RunPhase::Start => self.run_started.store(at.as_micros(), Ordering::Relaxed),
            RunPhase::End => self.run_ended.store(at.as_micros(), Ordering::Relaxed),
            _ => {}
        }
    }

    fn on_fire_end(&self, record: &FireRecord) {
        let Some(cell) = self.cell(record.actor) else {
            return;
        };
        cell.attempts.fetch_add(1, Ordering::Relaxed);
        if !record.fired {
            return;
        }
        cell.fires.fetch_add(1, Ordering::Relaxed);
        cell.busy_micros
            .fetch_add(record.busy.as_micros(), Ordering::Relaxed);
        cell.events_in.fetch_add(record.events_in, Ordering::Relaxed);
        cell.tokens_out
            .fetch_add(record.tokens_out, Ordering::Relaxed);
        if self.is_sink.get(record.actor.0).copied().unwrap_or(false) {
            if let Some(origin) = record.origin {
                self.latency.record(record.ended.since(origin));
            }
        }
    }

    fn on_route(&self, from: ActorId, delivered: u64, _at: Timestamp) {
        self.events_routed.fetch_add(delivered, Ordering::Relaxed);
        if let Some(cell) = self.cell(from) {
            cell.routed_out.fetch_add(delivered, Ordering::Relaxed);
        }
    }

    fn on_route_edge(&self, from: ActorId, to: ActorId, port: usize, events: u64, _at: Timestamp) {
        if let Some(&i) = self.edge_index.get(&(from.0, to.0, port)) {
            self.edges[i].events.fetch_add(events, Ordering::Relaxed);
        }
    }

    fn on_window_close(
        &self,
        actor: ActorId,
        _port: usize,
        windows: usize,
        queue_depth: usize,
        _at: Timestamp,
    ) {
        if let Some(cell) = self.cell(actor) {
            cell.windows_closed
                .fetch_add(windows as u64, Ordering::Relaxed);
            cell.queue_high_water
                .fetch_max(queue_depth as u64, Ordering::Relaxed);
        }
    }

    fn on_expire(&self, actor: ActorId, _port: usize, events: u64, _at: Timestamp) {
        if let Some(cell) = self.cell(actor) {
            cell.events_expired.fetch_add(events, Ordering::Relaxed);
        }
    }

    fn on_block(&self, actor: ActorId, _port: usize, waited: Micros, _at: Timestamp) {
        if let Some(cell) = self.cell(actor) {
            cell.blocks.fetch_add(1, Ordering::Relaxed);
            cell.block_micros
                .fetch_add(waited.as_micros(), Ordering::Relaxed);
        }
    }

    fn on_shed(&self, actor: ActorId, _port: usize, events: u64, _at: Timestamp) {
        if let Some(cell) = self.cell(actor) {
            cell.events_shed.fetch_add(events, Ordering::Relaxed);
        }
    }

    fn on_worker(&self, metrics: &WorkerMetrics) {
        let mut workers = self.workers.lock();
        match workers.iter_mut().find(|w| w.worker == metrics.worker) {
            Some(w) => *w = metrics.clone(),
            None => workers.push(metrics.clone()),
        }
    }
}

/// Point-in-time view over a [`MetricsRecorder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    pub actors: Vec<ActorMetrics>,
    /// Per-channel delivery counts, in the workflow's channel order
    /// (empty unless the recorder was built with the workflow topology).
    pub edges: Vec<EdgeMetrics>,
    /// Channel deliveries across the whole workflow.
    pub events_routed: u64,
    /// End-to-end tuple latency at the sinks (director time).
    pub latency: HistogramSnapshot,
    /// Director time at [`RunPhase::Start`].
    pub run_started: Timestamp,
    /// Director time at [`RunPhase::End`].
    pub run_ended: Timestamp,
    /// Per-worker counters from pooled executors, ordered by worker index
    /// (empty under the thread-per-actor directors).
    pub workers: Vec<WorkerMetrics>,
}

impl MetricsSnapshot {
    /// Total successful firings.
    pub fn total_fires(&self) -> u64 {
        self.actors.iter().map(|a| a.fires).sum()
    }

    /// Metrics for the actor named `name`, if present.
    pub fn actor(&self, name: &str) -> Option<&ActorMetrics> {
        self.actors.iter().find(|a| a.name == name)
    }

    /// Total backpressure blocks across all actors.
    pub fn total_blocks(&self) -> u64 {
        self.actors.iter().map(|a| a.blocks).sum()
    }

    /// Total time writers spent blocked, across all actors.
    pub fn total_block_time(&self) -> Micros {
        Micros(self.actors.iter().map(|a| a.block_time.as_micros()).sum())
    }

    /// Total events shed by drop channel policies across all actors.
    pub fn total_shed(&self) -> u64 {
        self.actors.iter().map(|a| a.events_shed).sum()
    }

    /// Highest observed inbox depth across all actors.
    pub fn max_queue_high_water(&self) -> u64 {
        self.actors
            .iter()
            .map(|a| a.queue_high_water)
            .max()
            .unwrap_or(0)
    }

    /// Recover the per-shard view from the generated `base#<i>` replica
    /// names, one [`ShardMetrics`] per expanded shard group in base-name
    /// order. Workflows without sharding yield an empty vec.
    pub fn shards(&self) -> Vec<ShardMetrics> {
        let mut groups: Vec<ShardMetrics> = Vec::new();
        for a in &self.actors {
            let Some((base, idx)) = a.name.rsplit_once('#') else {
                continue;
            };
            let Ok(replica) = idx.parse::<usize>() else {
                continue; // `base#split` / `base#merge` helpers.
            };
            let entry = ShardReplicaMetrics {
                replica,
                fires: a.fires,
                events_in: a.events_in,
                tokens_out: a.tokens_out,
                queue_high_water: a.queue_high_water,
                busy: a.busy,
            };
            match groups.iter_mut().find(|g| g.base == base) {
                Some(g) => g.replicas.push(entry),
                None => groups.push(ShardMetrics {
                    base: base.to_string(),
                    replicas: vec![entry],
                }),
            }
        }
        for g in &mut groups {
            g.replicas.sort_by_key(|r| r.replica);
        }
        groups.sort_by(|a, b| a.base.cmp(&b.base));
        groups
    }

    /// Serialize as a self-contained JSON document (no external deps).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.actors.len() * 192);
        out.push('{');
        push_kv_u64(&mut out, "events_routed", self.events_routed);
        out.push(',');
        push_kv_u64(&mut out, "total_fires", self.total_fires());
        out.push(',');
        push_kv_u64(&mut out, "run_started_us", self.run_started.as_micros());
        out.push(',');
        push_kv_u64(&mut out, "run_ended_us", self.run_ended.as_micros());
        out.push_str(",\"actors\":[");
        for (i, a) in self.actors.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str("\"name\":");
            push_json_string(&mut out, &a.name);
            out.push(',');
            push_kv_u64(&mut out, "fires", a.fires);
            out.push(',');
            push_kv_u64(&mut out, "attempts", a.attempts);
            out.push(',');
            push_kv_u64(&mut out, "busy_us", a.busy.as_micros());
            out.push(',');
            push_kv_u64(&mut out, "events_in", a.events_in);
            out.push(',');
            push_kv_u64(&mut out, "tokens_out", a.tokens_out);
            out.push(',');
            push_kv_u64(&mut out, "windows_closed", a.windows_closed);
            out.push(',');
            push_kv_u64(&mut out, "queue_high_water", a.queue_high_water);
            out.push(',');
            push_kv_u64(&mut out, "events_expired", a.events_expired);
            out.push(',');
            push_kv_u64(&mut out, "blocks", a.blocks);
            out.push(',');
            push_kv_u64(&mut out, "block_us", a.block_time.as_micros());
            out.push(',');
            push_kv_u64(&mut out, "events_shed", a.events_shed);
            out.push(',');
            push_kv_u64(&mut out, "routed_out", a.routed_out);
            out.push('}');
        }
        out.push_str("],\"edges\":[");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            out.push_str("\"from\":");
            push_json_string(&mut out, &e.from_name);
            out.push_str(",\"to\":");
            push_json_string(&mut out, &e.to_name);
            out.push(',');
            push_kv_u64(&mut out, "port", e.port as u64);
            out.push(',');
            push_kv_u64(&mut out, "events", e.events);
            out.push('}');
        }
        out.push_str("],\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_kv_u64(&mut out, "worker", w.worker as u64);
            out.push(',');
            push_kv_u64(&mut out, "fires", w.fires);
            out.push(',');
            push_kv_u64(&mut out, "steals", w.steals);
            out.push(',');
            push_kv_u64(&mut out, "queue_depth", w.queue_depth);
            out.push('}');
        }
        out.push_str("],\"latency\":{");
        push_kv_u64(&mut out, "count", self.latency.count);
        out.push(',');
        push_kv_u64(&mut out, "sum_us", self.latency.sum_micros);
        out.push(',');
        push_kv_u64(&mut out, "max_us", self.latency.max_micros);
        out.push_str(",\"buckets\":[");
        for (i, n) in self.latency.buckets.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&n.to_string());
        }
        out.push_str("]}}");
        out
    }

    /// Serialize in the Prometheus text exposition format. Latencies are
    /// exported as a cumulative histogram in seconds.
    pub fn to_prometheus(&self) -> String {
        type MetricCol = (&'static str, &'static str, fn(&ActorMetrics) -> u64);
        let mut out = String::with_capacity(512 + self.actors.len() * 512);
        let gauges: [MetricCol; 1] = [(
            "confluence_actor_queue_high_water",
            "Highest observed inbox depth per actor",
            |a| a.queue_high_water,
        )];
        let counters: [MetricCol; 11] = [
            (
                "confluence_actor_fires_total",
                "Successful firings per actor",
                |a| a.fires,
            ),
            (
                "confluence_actor_attempts_total",
                "Firing attempts per actor (including prefire refusals)",
                |a| a.attempts,
            ),
            (
                "confluence_actor_busy_microseconds_total",
                "Busy time charged per actor in microseconds",
                |a| a.busy.as_micros(),
            ),
            (
                "confluence_actor_events_in_total",
                "Events consumed from input windows per actor",
                |a| a.events_in,
            ),
            (
                "confluence_actor_tokens_out_total",
                "Tokens emitted on output ports per actor",
                |a| a.tokens_out,
            ),
            (
                "confluence_actor_windows_closed_total",
                "Ready windows formed on input ports per actor",
                |a| a.windows_closed,
            ),
            (
                "confluence_actor_events_expired_total",
                "Events expired out of windows per actor",
                |a| a.events_expired,
            ),
            (
                "confluence_actor_blocks_total",
                "Backpressure blocks on the actor's full input ports",
                |a| a.blocks,
            ),
            (
                "confluence_actor_block_microseconds_total",
                "Time writers spent blocked on the actor's full input ports",
                |a| a.block_time.as_micros(),
            ),
            (
                "confluence_actor_events_shed_total",
                "Events shed at the actor's full input ports by drop policies",
                |a| a.events_shed,
            ),
            (
                "confluence_actor_routed_out_total",
                "Events the actor delivered downstream",
                |a| a.routed_out,
            ),
        ];
        for (name, help, get) in counters {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
            for a in &self.actors {
                out.push_str(&format!(
                    "{name}{{actor=\"{}\"}} {}\n",
                    escape_label(&a.name),
                    get(a)
                ));
            }
        }
        for (name, help, get) in gauges {
            out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} gauge\n"));
            for a in &self.actors {
                out.push_str(&format!(
                    "{name}{{actor=\"{}\"}} {}\n",
                    escape_label(&a.name),
                    get(a)
                ));
            }
        }
        out.push_str(
            "# HELP confluence_events_routed_total Channel deliveries across the workflow\n\
             # TYPE confluence_events_routed_total counter\n",
        );
        out.push_str(&format!(
            "confluence_events_routed_total {}\n",
            self.events_routed
        ));
        if !self.edges.is_empty() {
            out.push_str(
                "# HELP confluence_edge_events_total Events delivered per channel\n\
                 # TYPE confluence_edge_events_total counter\n",
            );
            for e in &self.edges {
                out.push_str(&format!(
                    "confluence_edge_events_total{{from=\"{}\",to=\"{}\",port=\"{}\"}} {}\n",
                    escape_label(&e.from_name),
                    escape_label(&e.to_name),
                    e.port,
                    e.events
                ));
            }
        }
        if !self.workers.is_empty() {
            type WorkerCol = (&'static str, &'static str, fn(&WorkerMetrics) -> u64);
            let worker_counters: [WorkerCol; 2] = [
                (
                    "confluence_worker_fires_total",
                    "Firings executed per pool worker",
                    |w| w.fires,
                ),
                (
                    "confluence_worker_steals_total",
                    "Tasks stolen from other workers' deques per pool worker",
                    |w| w.steals,
                ),
            ];
            for (name, help, get) in worker_counters {
                out.push_str(&format!("# HELP {name} {help}\n# TYPE {name} counter\n"));
                for w in &self.workers {
                    out.push_str(&format!("{name}{{worker=\"{}\"}} {}\n", w.worker, get(w)));
                }
            }
            out.push_str(
                "# HELP confluence_worker_queue_depth High-water mark of the worker's ready deque\n\
                 # TYPE confluence_worker_queue_depth gauge\n",
            );
            for w in &self.workers {
                out.push_str(&format!(
                    "confluence_worker_queue_depth{{worker=\"{}\"}} {}\n",
                    w.worker, w.queue_depth
                ));
            }
        }
        let shards = self.shards();
        if !shards.is_empty() {
            out.push_str(
                "# HELP confluence_shard_replica_fires_total Successful firings per shard replica\n\
                 # TYPE confluence_shard_replica_fires_total counter\n",
            );
            for g in &shards {
                for r in &g.replicas {
                    out.push_str(&format!(
                        "confluence_shard_replica_fires_total{{shard=\"{}\",replica=\"{}\"}} {}\n",
                        escape_label(&g.base),
                        r.replica,
                        r.fires
                    ));
                }
            }
            out.push_str(
                "# HELP confluence_shard_replica_queue_high_water Highest observed inbox depth per shard replica\n\
                 # TYPE confluence_shard_replica_queue_high_water gauge\n",
            );
            for g in &shards {
                for r in &g.replicas {
                    out.push_str(&format!(
                        "confluence_shard_replica_queue_high_water{{shard=\"{}\",replica=\"{}\"}} {}\n",
                        escape_label(&g.base),
                        r.replica,
                        r.queue_high_water
                    ));
                }
            }
        }
        out.push_str(
            "# HELP confluence_tuple_latency_seconds End-to-end tuple latency at the sinks\n\
             # TYPE confluence_tuple_latency_seconds histogram\n",
        );
        let mut cumulative = 0u64;
        for (i, n) in self.latency.buckets.iter().enumerate() {
            cumulative += n;
            match bucket_upper_micros(i) {
                Some(us) => out.push_str(&format!(
                    "confluence_tuple_latency_seconds_bucket{{le=\"{}\"}} {}\n",
                    us as f64 / 1e6,
                    cumulative
                )),
                None => out.push_str(&format!(
                    "confluence_tuple_latency_seconds_bucket{{le=\"+Inf\"}} {}\n",
                    cumulative
                )),
            }
        }
        out.push_str(&format!(
            "confluence_tuple_latency_seconds_sum {}\n",
            self.latency.sum_micros as f64 / 1e6
        ));
        out.push_str(&format!(
            "confluence_tuple_latency_seconds_count {}\n",
            self.latency.count
        ));
        // The same histogram in raw microseconds, for consumers that want
        // integer bucket bounds (`le` labels are cumulative upper bounds,
        // per the exposition format).
        out.push_str(
            "# HELP confluence_latency_us End-to-end tuple latency at the sinks in microseconds\n\
             # TYPE confluence_latency_us histogram\n",
        );
        let mut cumulative = 0u64;
        for (i, n) in self.latency.buckets.iter().enumerate() {
            cumulative += n;
            match bucket_upper_micros(i) {
                Some(us) => out.push_str(&format!(
                    "confluence_latency_us_bucket{{le=\"{us}\"}} {cumulative}\n"
                )),
                None => out.push_str(&format!(
                    "confluence_latency_us_bucket{{le=\"+Inf\"}} {cumulative}\n"
                )),
            }
        }
        out.push_str(&format!(
            "confluence_latency_us_sum {}\n",
            self.latency.sum_micros
        ));
        out.push_str(&format!(
            "confluence_latency_us_count {}\n",
            self.latency.count
        ));
        out
    }

    /// Render the per-actor table for terminal output (bench runner).
    pub fn render_table(&self) -> String {
        let name_w = self
            .actors
            .iter()
            .map(|a| a.name.len())
            .chain(["actor".len()])
            .max()
            .unwrap_or(5);
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>8}  {:>9}  {:>7}  {:>7}  {:>7}\n",
            "actor", "fires", "busy_us", "events_in", "tokens_out", "windows", "queue_max", "expired", "blocks", "shed"
        ));
        for a in &self.actors {
            out.push_str(&format!(
                "{:<name_w$}  {:>8}  {:>10}  {:>10}  {:>10}  {:>8}  {:>9}  {:>7}  {:>7}  {:>7}\n",
                a.name,
                a.fires,
                a.busy.as_micros(),
                a.events_in,
                a.tokens_out,
                a.windows_closed,
                a.queue_high_water,
                a.events_expired,
                a.blocks,
                a.events_shed
            ));
        }
        for w in &self.workers {
            out.push_str(&format!(
                "worker {}: fires={} steals={} queue_max={}\n",
                w.worker, w.fires, w.steals, w.queue_depth
            ));
        }
        for e in &self.edges {
            out.push_str(&format!(
                "edge {} -> {}:{}  events={}\n",
                e.from_name, e.to_name, e.port, e.events
            ));
        }
        out.push_str(&format!(
            "routed={}  sink_latency: count={} mean={} max={}µs\n",
            self.events_routed,
            self.latency.count,
            self.latency.mean(),
            self.latency.max_micros
        ));
        out
    }
}

fn push_kv_u64(out: &mut String, key: &str, value: u64) {
    out.push('"');
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn escape_label(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn recorder2() -> MetricsRecorder {
        MetricsRecorder::with_names(
            vec!["src".into(), "sink".into()],
            vec![false, true],
        )
    }

    fn fire(actor: usize, busy: u64, origin: Option<u64>, ended: u64) -> FireRecord {
        FireRecord {
            actor: ActorId(actor),
            started: Timestamp(ended.saturating_sub(busy)),
            ended: Timestamp(ended),
            busy: Micros(busy),
            events_in: 2,
            tokens_out: 3,
            origin: origin.map(Timestamp),
            trigger: None,
            fired: true,
        }
    }

    #[test]
    fn bucket_index_is_power_of_two() {
        assert_eq!(LatencyHistogram::bucket_index(0), 0);
        assert_eq!(LatencyHistogram::bucket_index(1), 1);
        assert_eq!(LatencyHistogram::bucket_index(2), 2);
        assert_eq!(LatencyHistogram::bucket_index(3), 2);
        assert_eq!(LatencyHistogram::bucket_index(4), 3);
        assert_eq!(LatencyHistogram::bucket_index(1023), 10);
        assert_eq!(LatencyHistogram::bucket_index(1024), 11);
        assert_eq!(LatencyHistogram::bucket_index(u64::MAX), LATENCY_BUCKETS - 1);
    }

    #[test]
    fn histogram_mean_and_quantile() {
        let h = LatencyHistogram::new();
        for us in [1u64, 2, 4, 8, 1000] {
            h.record(Micros(us));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_micros, 1015);
        assert_eq!(s.max_micros, 1000);
        assert_eq!(s.mean(), Micros(203));
        // Median sample is 4µs → bucket upper bound 8.
        assert_eq!(s.quantile_upper_bound(0.5), 8);
        assert_eq!(s.quantile_upper_bound(1.0), 1024);
    }

    #[test]
    fn recorder_aggregates_fire_records() {
        let r = recorder2();
        r.on_run_phase(RunPhase::Start, Timestamp(10));
        r.on_fire_end(&fire(0, 5, None, 20));
        r.on_fire_end(&fire(0, 5, None, 30));
        r.on_fire_end(&fire(1, 7, Some(20), 50));
        // A refused attempt counts as an attempt only.
        r.on_fire_end(&FireRecord {
            fired: false,
            ..fire(1, 0, None, 50)
        });
        r.on_route(ActorId(0), 4, Timestamp(20));
        r.on_window_close(ActorId(1), 0, 2, 6, Timestamp(25));
        r.on_window_close(ActorId(1), 0, 1, 3, Timestamp(26));
        r.on_expire(ActorId(1), 0, 9, Timestamp(27));
        r.on_run_phase(RunPhase::End, Timestamp(60));

        let s = r.snapshot();
        assert_eq!(s.total_fires(), 3);
        assert_eq!(s.events_routed, 4);
        assert_eq!(s.run_started, Timestamp(10));
        assert_eq!(s.run_ended, Timestamp(60));
        let src = s.actor("src").unwrap();
        assert_eq!((src.fires, src.attempts), (2, 2));
        assert_eq!(src.busy, Micros(10));
        assert_eq!(src.events_in, 4);
        assert_eq!(src.tokens_out, 6);
        let sink = s.actor("sink").unwrap();
        assert_eq!((sink.fires, sink.attempts), (1, 2));
        assert_eq!(sink.windows_closed, 3);
        assert_eq!(sink.queue_high_water, 6);
        assert_eq!(sink.events_expired, 9);
        // Only the sink firing with an origin feeds the latency histogram.
        assert_eq!(s.latency.count, 1);
        assert_eq!(s.latency.sum_micros, 30);
    }

    #[test]
    fn non_sink_origins_do_not_feed_latency() {
        let r = recorder2();
        r.on_fire_end(&fire(0, 1, Some(5), 9));
        assert_eq!(r.snapshot().latency.count, 0);
    }

    #[test]
    fn json_shape_and_escaping() {
        let r = MetricsRecorder::with_names(vec!["a\"b".into()], vec![true]);
        r.on_fire_end(&fire(0, 2, Some(1), 4));
        let json = r.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"name\":\"a\\\"b\""));
        assert!(json.contains("\"fires\":1"));
        assert!(json.contains("\"events_routed\":0"));
        assert!(json.contains("\"latency\":{\"count\":1"));
        // Balanced braces/brackets — cheap structural check without a parser.
        let open = json.matches(['{', '[']).count();
        let close = json.matches(['}', ']']).count();
        assert_eq!(open, close);
    }

    #[test]
    fn prometheus_shape() {
        let r = recorder2();
        r.on_fire_end(&fire(0, 5, None, 20));
        r.on_fire_end(&fire(1, 7, Some(20), 50));
        r.on_route(ActorId(0), 2, Timestamp(20));
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("# TYPE confluence_actor_fires_total counter"));
        assert!(text.contains("confluence_actor_fires_total{actor=\"src\"} 1"));
        assert!(text.contains("confluence_actor_fires_total{actor=\"sink\"} 1"));
        assert!(text.contains("confluence_events_routed_total 2"));
        assert!(text.contains("# TYPE confluence_tuple_latency_seconds histogram"));
        assert!(text.contains("confluence_tuple_latency_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("confluence_tuple_latency_seconds_count 1"));
        assert!(text.contains("# TYPE confluence_latency_us histogram"));
        assert!(text.contains("confluence_latency_us_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("confluence_latency_us_sum 30"));
        assert!(text.contains("confluence_latency_us_count 1"));
        // Cumulative buckets never decrease, per histogram series.
        let mut last: HashMap<&str, u64> = HashMap::new();
        for line in text.lines().filter(|l| l.contains("_bucket{")) {
            let name = line.split('{').next().unwrap();
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            let prev = last.entry(name).or_insert(0);
            assert!(v >= *prev, "bucket series {name} decreased");
            *prev = v;
        }
        assert_eq!(last.len(), 2, "both histogram series present");
    }

    #[test]
    fn microsecond_histogram_has_integer_cumulative_buckets() {
        let r = recorder2();
        for (origin, ended) in [(0, 3), (0, 3), (0, 1000)] {
            r.on_fire_end(&fire(1, 1, Some(origin), ended));
        }
        let text = r.snapshot().to_prometheus();
        // 3µs lands below le="4"; all three samples below le="1024".
        assert!(text.contains("confluence_latency_us_bucket{le=\"4\"} 2"));
        assert!(text.contains("confluence_latency_us_bucket{le=\"1024\"} 3"));
        assert!(text.contains("confluence_latency_us_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("confluence_latency_us_sum 1006"));
        assert!(text.contains("confluence_latency_us_count 3"));
    }

    #[test]
    fn edge_counts_are_attributed_and_exported() {
        let r = recorder2().with_edges(vec![(ActorId(0), ActorId(1), 0)]);
        r.on_route_edge(ActorId(0), ActorId(1), 0, 5, Timestamp(1));
        r.on_route_edge(ActorId(0), ActorId(1), 0, 2, Timestamp(2));
        // Deliveries on an undeclared edge are ignored, not misattributed.
        r.on_route_edge(ActorId(1), ActorId(0), 3, 99, Timestamp(3));
        let s = r.snapshot();
        assert_eq!(s.edges.len(), 1);
        let e = &s.edges[0];
        assert_eq!((e.from, e.to, e.port, e.events), (ActorId(0), ActorId(1), 0, 7));
        assert_eq!((e.from_name.as_str(), e.to_name.as_str()), ("src", "sink"));
        let json = s.to_json();
        assert!(json.contains(
            "\"edges\":[{\"from\":\"src\",\"to\":\"sink\",\"port\":0,\"events\":7}]"
        ));
        let prom = s.to_prometheus();
        assert!(prom.contains(
            "confluence_edge_events_total{from=\"src\",to=\"sink\",port=\"0\"} 7"
        ));
        let table = s.render_table();
        assert!(table.contains("edge src -> sink:0  events=7"));
    }

    #[test]
    fn on_route_attributes_deliveries_to_the_producer() {
        let r = recorder2();
        r.on_route(ActorId(0), 4, Timestamp(20));
        r.on_route(ActorId(0), 3, Timestamp(21));
        let s = r.snapshot();
        assert_eq!(s.actor("src").unwrap().routed_out, 7);
        assert_eq!(s.actor("sink").unwrap().routed_out, 0);
        assert_eq!(s.events_routed, 7);
        assert!(s.to_json().contains("\"routed_out\":7"));
        assert!(s
            .to_prometheus()
            .contains("confluence_actor_routed_out_total{actor=\"src\"} 7"));
    }

    #[test]
    fn recorder_aggregates_backpressure_hooks() {
        let r = recorder2();
        r.on_block(ActorId(1), 0, Micros(200), Timestamp(5));
        r.on_block(ActorId(1), 0, Micros(300), Timestamp(6));
        r.on_shed(ActorId(1), 0, 4, Timestamp(7));
        let s = r.snapshot();
        let sink = s.actor("sink").unwrap();
        assert_eq!(sink.blocks, 2);
        assert_eq!(sink.block_time, Micros(500));
        assert_eq!(sink.events_shed, 4);
        assert_eq!(s.total_blocks(), 2);
        assert_eq!(s.total_block_time(), Micros(500));
        assert_eq!(s.total_shed(), 4);
        let json = s.to_json();
        assert!(json.contains("\"blocks\":2"));
        assert!(json.contains("\"block_us\":500"));
        assert!(json.contains("\"events_shed\":4"));
        let prom = s.to_prometheus();
        assert!(prom.contains("confluence_actor_blocks_total{actor=\"sink\"} 2"));
        assert!(prom.contains("confluence_actor_block_microseconds_total{actor=\"sink\"} 500"));
        assert!(prom.contains("confluence_actor_events_shed_total{actor=\"sink\"} 4"));
        assert!(prom.contains("confluence_actor_queue_high_water{actor=\"sink\"} 0"));
    }

    #[test]
    fn recorder_collects_worker_metrics() {
        let r = recorder2();
        let w1 = WorkerMetrics {
            worker: 1,
            fires: 8,
            steals: 2,
            queue_depth: 5,
        };
        let w0 = WorkerMetrics {
            worker: 0,
            fires: 12,
            steals: 0,
            queue_depth: 3,
        };
        r.on_worker(&w1);
        r.on_worker(&w0);
        // Re-reporting the same worker replaces, not duplicates.
        r.on_worker(&w0);
        let s = r.snapshot();
        assert_eq!(s.workers, vec![w0, w1], "sorted by worker index");
        let json = s.to_json();
        assert!(json.contains(
            "\"workers\":[{\"worker\":0,\"fires\":12,\"steals\":0,\"queue_depth\":3},\
             {\"worker\":1,\"fires\":8,\"steals\":2,\"queue_depth\":5}]"
        ));
        let prom = s.to_prometheus();
        assert!(prom.contains("confluence_worker_fires_total{worker=\"0\"} 12"));
        assert!(prom.contains("confluence_worker_steals_total{worker=\"1\"} 2"));
        assert!(prom.contains("confluence_worker_queue_depth{worker=\"1\"} 5"));
        let table = s.render_table();
        assert!(table.contains("worker 0: fires=12 steals=0 queue_max=3"));
    }

    #[test]
    fn worker_sections_absent_without_pool_runs() {
        let r = recorder2();
        let s = r.snapshot();
        assert!(s.workers.is_empty());
        assert!(s.to_json().contains("\"workers\":[]"));
        assert!(!s.to_prometheus().contains("confluence_worker_"));
        assert!(!s.render_table().contains("worker 0"));
    }

    #[test]
    fn table_lists_every_actor() {
        let r = recorder2();
        r.on_fire_end(&fire(0, 5, None, 20));
        let table = r.snapshot().render_table();
        assert!(table.contains("actor"));
        assert!(table.contains("src"));
        assert!(table.contains("sink"));
        assert!(table.contains("routed=0"));
    }
}
