//! Structured telemetry for workflow execution.
//!
//! The paper's STAFiLOS schedulers are driven entirely by runtime
//! statistics — queue backlogs, per-actor costs, tuple response times
//! (Table 2's scheduler inputs). This module is the engine-wide surface
//! those statistics flow through: every director reports its execution
//! through an [`Observer`], and the stock [`MetricsRecorder`] turns the
//! hook stream into per-actor counters and latency histograms without
//! taking a lock on the hot path.
//!
//! * [`Observer`] — the hook trait (`on_fire_start`/`on_fire_end`,
//!   `on_route`, `on_window_close`, `on_expire`, `on_run_phase`);
//! * [`MetricsRecorder`] — atomics-only implementation collecting fire
//!   counts, busy time, token throughput, queue high-water marks, and
//!   end-to-end tuple latency;
//! * [`MetricsSnapshot`] — a point-in-time view exportable as JSON or
//!   Prometheus text exposition format;
//! * [`RunControl`] / [`Telemetry`] — the cooperative-stop handle the
//!   [`Engine`](crate::engine::Engine) uses for `run_until`.

pub mod estimator;
mod livestats;
mod recorder;
pub mod trace;

pub use livestats::{LiveStats, EMA_ALPHA};
pub use recorder::{
    ActorMetrics, EdgeMetrics, HistogramSnapshot, LatencyHistogram, MetricsRecorder,
    MetricsSnapshot, ShardMetrics, ShardReplicaMetrics,
};
pub use trace::{SpanKind, TraceConfig, TraceReport, Tracer, WaveTrace};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use crate::graph::ActorId;
use crate::time::{Micros, Timestamp};
use crate::wave::WaveTag;

/// Phases of a workflow run, reported through [`Observer::on_run_phase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunPhase {
    /// Execution begins (fabric built, actors initialized or about to be).
    Start,
    /// Sources exhausted; output closure / partial-window flushing begins.
    Close,
    /// Actors are being wrapped up.
    Wrapup,
    /// The run is over.
    End,
}

impl RunPhase {
    /// Stable lower-case label (used in exports).
    pub fn label(self) -> &'static str {
        match self {
            RunPhase::Start => "start",
            RunPhase::Close => "close",
            RunPhase::Wrapup => "wrapup",
            RunPhase::End => "end",
        }
    }
}

/// Everything known about one completed firing attempt.
#[derive(Debug, Clone)]
pub struct FireRecord {
    /// The actor that fired.
    pub actor: ActorId,
    /// Director time when the firing began.
    pub started: Timestamp,
    /// Director time when the firing (and its routing) completed.
    pub ended: Timestamp,
    /// Cost charged to the firing: wall time under real-time directors,
    /// model cost under the scheduled virtual-time director, zero under
    /// the instantaneous-firing directors (SDF/DDF/DE).
    pub busy: Micros,
    /// Events consumed from input windows.
    pub events_in: u64,
    /// Tokens emitted on output ports.
    pub tokens_out: u64,
    /// Origin timestamp of the wave that triggered the firing (`None` for
    /// source firings and non-firings). `ended - origin` is the end-to-end
    /// response time of the triggering tuple at this actor.
    pub origin: Option<Timestamp>,
    /// Full wave-tag of the window that triggered the firing (`None` for
    /// source firings and non-firings). Where [`FireRecord::origin`] only
    /// identifies the wave, `trigger` identifies the exact position in
    /// its lineage tree — the span id tracing stitches causal chains
    /// from.
    pub trigger: Option<WaveTag>,
    /// Whether the actor actually fired (prefire returned true).
    pub fired: bool,
}

/// Counters for one worker thread of a pooled executor (the
/// [`PoolDirector`](crate::director::pool::PoolDirector)), reported once
/// per worker at the end of a run through [`Observer::on_worker`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Worker index (0-based).
    pub worker: usize,
    /// Firings executed on this worker.
    pub fires: u64,
    /// Tasks this worker stole from other workers' deques.
    pub steals: u64,
    /// High-water mark of this worker's ready deque.
    pub queue_depth: u64,
}

/// Execution hooks. All methods default to no-ops so observers implement
/// only what they need. Implementations must be cheap and thread-safe:
/// the threaded director invokes them concurrently from actor threads.
pub trait Observer: Send + Sync {
    /// A run phase boundary was crossed.
    fn on_run_phase(&self, phase: RunPhase, at: Timestamp) {
        let _ = (phase, at);
    }

    /// An actor is about to attempt a firing.
    fn on_fire_start(&self, actor: ActorId, at: Timestamp) {
        let _ = (actor, at);
    }

    /// A firing attempt completed (whether or not the actor fired).
    fn on_fire_end(&self, record: &FireRecord) {
        let _ = record;
    }

    /// `delivered` channel deliveries were routed from `from`'s outputs.
    fn on_route(&self, from: ActorId, delivered: u64, at: Timestamp) {
        let _ = (from, delivered, at);
    }

    /// `windows` ready windows formed on `actor`'s input `port`;
    /// `queue_depth` is the actor's inbox length after formation.
    fn on_window_close(&self, actor: ActorId, port: usize, windows: usize, queue_depth: usize, at: Timestamp) {
        let _ = (actor, port, windows, queue_depth, at);
    }

    /// `events` expired out of `actor`'s input `port` windows and were
    /// handed to an expired-items handler.
    fn on_expire(&self, actor: ActorId, port: usize, events: u64, at: Timestamp) {
        let _ = (actor, port, events, at);
    }

    /// A writer hit `actor`'s full input `port` under a `Block` channel
    /// policy and spent `waited` blocked before the event was admitted
    /// (zero under cooperative directors, which admit over capacity
    /// instead of blocking).
    fn on_block(&self, actor: ActorId, port: usize, waited: Micros, at: Timestamp) {
        let _ = (actor, port, waited, at);
    }

    /// `events` were shed at `actor`'s full input `port` under a drop
    /// channel policy.
    fn on_shed(&self, actor: ActorId, port: usize, events: u64, at: Timestamp) {
        let _ = (actor, port, events, at);
    }

    /// End-of-run counters for one worker thread of a pooled executor.
    fn on_worker(&self, metrics: &WorkerMetrics) {
        let _ = metrics;
    }

    /// An external event entered the workflow: `from`'s firing produced a
    /// freshly-stamped root wave `wave` (depth 0). Fine-grained — only
    /// delivered when [`Observer::wants_event_hooks`] returns true.
    fn on_admit(&self, from: ActorId, wave: &WaveTag, at: Timestamp) {
        let _ = (from, wave, at);
    }

    /// An event carrying `wave` was admitted into `actor`'s input `port`
    /// queue. Fine-grained — only delivered when
    /// [`Observer::wants_event_hooks`] returns true.
    fn on_enqueue(&self, actor: ActorId, port: usize, wave: &WaveTag, at: Timestamp) {
        let _ = (actor, port, wave, at);
    }

    /// A formed window was popped from `actor`'s inbox for firing. `wave`
    /// is the window's trigger wave-tag (`None` for empty flush windows),
    /// `formed_at` when the window closed. Reported per window (not per
    /// event), so it is always delivered.
    fn on_dequeue(
        &self,
        actor: ActorId,
        port: usize,
        wave: Option<&WaveTag>,
        formed_at: Timestamp,
        at: Timestamp,
    ) {
        let _ = (actor, port, wave, formed_at, at);
    }

    /// One destination batch of a routing pass: `events` deliveries went
    /// from `from` to `to`'s input `port`. Finer than
    /// [`Observer::on_route`] (which coalesces a whole firing), coarser
    /// than per-event — reported per edge per firing.
    fn on_route_edge(&self, from: ActorId, to: ActorId, port: usize, events: u64, at: Timestamp) {
        let _ = (from, to, port, events, at);
    }

    /// Whether this observer wants the per-event hooks ([`on_admit`]
    /// (Observer::on_admit) and [`on_enqueue`](Observer::on_enqueue)).
    /// The fabric skips those calls entirely when no observer asks, so a
    /// metrics-only (or disabled-tracer) run pays nothing per event.
    fn wants_event_hooks(&self) -> bool {
        false
    }
}

/// Fans hooks out to several observers in registration order.
#[derive(Default)]
pub struct MultiObserver {
    observers: Vec<Arc<dyn Observer>>,
}

impl MultiObserver {
    /// An empty fan-out.
    pub fn new(observers: Vec<Arc<dyn Observer>>) -> Self {
        MultiObserver { observers }
    }

    /// Append an observer.
    pub fn push(&mut self, observer: Arc<dyn Observer>) {
        self.observers.push(observer);
    }
}

impl Observer for MultiObserver {
    fn on_run_phase(&self, phase: RunPhase, at: Timestamp) {
        for o in &self.observers {
            o.on_run_phase(phase, at);
        }
    }
    fn on_fire_start(&self, actor: ActorId, at: Timestamp) {
        for o in &self.observers {
            o.on_fire_start(actor, at);
        }
    }
    fn on_fire_end(&self, record: &FireRecord) {
        for o in &self.observers {
            o.on_fire_end(record);
        }
    }
    fn on_route(&self, from: ActorId, delivered: u64, at: Timestamp) {
        for o in &self.observers {
            o.on_route(from, delivered, at);
        }
    }
    fn on_window_close(&self, actor: ActorId, port: usize, windows: usize, queue_depth: usize, at: Timestamp) {
        for o in &self.observers {
            o.on_window_close(actor, port, windows, queue_depth, at);
        }
    }
    fn on_expire(&self, actor: ActorId, port: usize, events: u64, at: Timestamp) {
        for o in &self.observers {
            o.on_expire(actor, port, events, at);
        }
    }
    fn on_block(&self, actor: ActorId, port: usize, waited: Micros, at: Timestamp) {
        for o in &self.observers {
            o.on_block(actor, port, waited, at);
        }
    }
    fn on_shed(&self, actor: ActorId, port: usize, events: u64, at: Timestamp) {
        for o in &self.observers {
            o.on_shed(actor, port, events, at);
        }
    }
    fn on_worker(&self, metrics: &WorkerMetrics) {
        for o in &self.observers {
            o.on_worker(metrics);
        }
    }
    fn on_admit(&self, from: ActorId, wave: &WaveTag, at: Timestamp) {
        for o in &self.observers {
            o.on_admit(from, wave, at);
        }
    }
    fn on_enqueue(&self, actor: ActorId, port: usize, wave: &WaveTag, at: Timestamp) {
        for o in &self.observers {
            o.on_enqueue(actor, port, wave, at);
        }
    }
    fn on_dequeue(
        &self,
        actor: ActorId,
        port: usize,
        wave: Option<&WaveTag>,
        formed_at: Timestamp,
        at: Timestamp,
    ) {
        for o in &self.observers {
            o.on_dequeue(actor, port, wave, formed_at, at);
        }
    }
    fn on_route_edge(&self, from: ActorId, to: ActorId, port: usize, events: u64, at: Timestamp) {
        for o in &self.observers {
            o.on_route_edge(from, to, port, events, at);
        }
    }
    fn wants_event_hooks(&self) -> bool {
        self.observers.iter().any(|o| o.wants_event_hooks())
    }
}

/// Cooperative stop flag shared between an [`Engine`](crate::engine::Engine)
/// and the director loops: directors poll [`RunControl::should_stop`] at
/// firing boundaries and wind the run down cleanly when it trips.
#[derive(Debug, Default)]
pub struct RunControl {
    stop: AtomicBool,
}

impl RunControl {
    /// A fresh control in the running state.
    pub fn new() -> Self {
        RunControl::default()
    }

    /// Ask the run to stop at the next firing boundary.
    pub fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    /// Whether a stop was requested.
    pub fn should_stop(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }
}

/// The bundle a director receives from [`Director::instrument`]
/// (crate::director::Director::instrument): where to send hooks, and the
/// stop flag to poll.
#[derive(Clone)]
pub struct Telemetry {
    /// Hook sink (often a [`MultiObserver`]).
    pub observer: Arc<dyn Observer>,
    /// Cooperative stop flag.
    pub control: Arc<RunControl>,
}

impl Telemetry {
    /// Telemetry around one observer with a fresh control.
    pub fn new(observer: Arc<dyn Observer>) -> Self {
        Telemetry {
            observer,
            control: Arc::new(RunControl::new()),
        }
    }

    /// Whether the run should wind down.
    pub fn should_stop(&self) -> bool {
        self.control.should_stop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[derive(Default)]
    struct Counting {
        fires: AtomicU64,
        phases: AtomicU64,
    }

    impl Observer for Counting {
        fn on_fire_start(&self, _actor: ActorId, _at: Timestamp) {
            self.fires.fetch_add(1, Ordering::Relaxed);
        }
        fn on_run_phase(&self, _phase: RunPhase, _at: Timestamp) {
            self.phases.fetch_add(1, Ordering::Relaxed);
        }
    }

    #[test]
    fn multi_observer_fans_out() {
        let a = Arc::new(Counting::default());
        let b = Arc::new(Counting::default());
        let multi = MultiObserver::new(vec![a.clone(), b.clone()]);
        multi.on_fire_start(ActorId(0), Timestamp::ZERO);
        multi.on_run_phase(RunPhase::Start, Timestamp::ZERO);
        multi.on_run_phase(RunPhase::End, Timestamp(5));
        // Default no-op hooks are callable through the fan-out too.
        multi.on_route(ActorId(0), 3, Timestamp(1));
        multi.on_window_close(ActorId(0), 0, 1, 2, Timestamp(1));
        multi.on_expire(ActorId(0), 0, 4, Timestamp(1));
        multi.on_block(ActorId(0), 0, Micros(7), Timestamp(1));
        multi.on_shed(ActorId(0), 0, 2, Timestamp(1));
        let wave = crate::wave::WaveTag::external(Timestamp(1));
        multi.on_admit(ActorId(0), &wave, Timestamp(1));
        multi.on_enqueue(ActorId(1), 0, &wave, Timestamp(1));
        multi.on_dequeue(ActorId(1), 0, Some(&wave), Timestamp(1), Timestamp(2));
        multi.on_route_edge(ActorId(0), ActorId(1), 0, 3, Timestamp(1));
        assert!(!multi.wants_event_hooks());
        multi.on_worker(&WorkerMetrics {
            worker: 0,
            fires: 3,
            steals: 1,
            queue_depth: 2,
        });
        multi.on_fire_end(&FireRecord {
            actor: ActorId(0),
            started: Timestamp::ZERO,
            ended: Timestamp(1),
            busy: Micros(1),
            events_in: 1,
            tokens_out: 1,
            origin: None,
            trigger: None,
            fired: true,
        });
        for o in [&a, &b] {
            assert_eq!(o.fires.load(Ordering::Relaxed), 1);
            assert_eq!(o.phases.load(Ordering::Relaxed), 2);
        }
    }

    #[test]
    fn run_control_trips_once() {
        let c = RunControl::new();
        assert!(!c.should_stop());
        c.request_stop();
        assert!(c.should_stop());
        let t = Telemetry::new(Arc::new(MultiObserver::default()));
        assert!(!t.should_stop());
        t.control.request_stop();
        assert!(t.should_stop());
    }

    #[test]
    fn phase_labels_are_stable() {
        assert_eq!(RunPhase::Start.label(), "start");
        assert_eq!(RunPhase::Close.label(), "close");
        assert_eq!(RunPhase::Wrapup.label(), "wrapup");
        assert_eq!(RunPhase::End.label(), "end");
    }
}
