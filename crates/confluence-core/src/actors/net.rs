//! Network push sources: connecting workflows to external data streams.
//!
//! CONFLuEnCE supports push communication by actors "able to connect to
//! external data streams (through TCP or HTTP connections)" — as data are
//! pushed into those connections, the actors pump it into the workflow's
//! internal ports at the rate dictated by the director's execution model
//! (paper §2.2). [`TcpPushSource`] drains a raw TCP connection line by
//! line; [`HttpPushSource`] speaks just enough HTTP/1.1 (status line,
//! headers, identity or chunked bodies) to consume a line-delimited
//! streaming endpoint. Each parsed line becomes a token the source emits
//! whenever the director fires it.

use std::io::{BufRead, BufReader};
use std::net::{TcpStream, ToSocketAddrs};
use std::thread::JoinHandle;

use crate::actor::{Actor, FireContext, IoSignature};
use crate::error::{Error, Result};
use crate::time::Timestamp;
use crate::token::Token;

use super::{PushHandle, PushSource};

/// A push source fed by a line-delimited TCP stream.
pub struct TcpPushSource {
    inner: PushSource,
    reader: Option<JoinHandle<()>>,
}

impl TcpPushSource {
    /// Connect to `addr` and parse each received line with `parse`
    /// (`None` skips the line). The stream ends — and with it this
    /// source — when the peer closes the connection.
    pub fn connect<A: ToSocketAddrs>(
        addr: A,
        parse: impl Fn(&str) -> Option<Token> + Send + 'static,
    ) -> Result<Self> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| Error::Actor {
                actor: "TcpPushSource".into(),
                stage: "initialize",
                message: format!("connect failed: {e}"),
            })?;
        Ok(Self::from_stream(stream, parse))
    }

    /// Build from an already-established stream (e.g. one side of an
    /// accepted connection).
    pub fn from_stream(
        stream: TcpStream,
        parse: impl Fn(&str) -> Option<Token> + Send + 'static,
    ) -> Self {
        let (inner, handle) = PushSource::new();
        let reader = std::thread::Builder::new()
            .name("cwf-tcp-reader".into())
            .spawn(move || pump(stream, handle, parse))
            .expect("spawn tcp reader thread");
        TcpPushSource {
            inner,
            reader: Some(reader),
        }
    }

    /// A parser for plain text lines (each line becomes a `Str` token).
    pub fn lines() -> impl Fn(&str) -> Option<Token> + Send + 'static {
        |line: &str| Some(Token::str(line))
    }

    /// A parser for comma-separated integer records with the given field
    /// names (malformed lines are skipped) — the shape of the Linear Road
    /// feed.
    pub fn csv_ints(fields: &[&str]) -> impl Fn(&str) -> Option<Token> + Send + 'static {
        let names: Vec<String> = fields.iter().map(|s| s.to_string()).collect();
        move |line: &str| {
            let parts: Vec<&str> = line.split(',').collect();
            if parts.len() != names.len() {
                return None;
            }
            let mut rec = Token::record();
            for (name, part) in names.iter().zip(parts) {
                rec = rec.field(name, part.trim().parse::<i64>().ok()?);
            }
            Some(rec.build())
        }
    }
}

fn pump(
    stream: TcpStream,
    handle: PushHandle,
    parse: impl Fn(&str) -> Option<Token>,
) {
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if let Some(token) = parse(&line) {
            if !handle.push(token) {
                break; // workflow gone
            }
        }
    }
    // Dropping `handle` here ends the stream.
}

impl Actor for TcpPushSource {
    fn signature(&self) -> IoSignature {
        IoSignature::source("out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        self.inner.fire(ctx)
    }

    fn postfire(&mut self, ctx: &mut dyn FireContext) -> Result<bool> {
        self.inner.postfire(ctx)
    }

    fn wrapup(&mut self) -> Result<()> {
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        Ok(())
    }

    fn is_source(&self) -> bool {
        true
    }

    fn next_arrival(&self) -> Option<Timestamp> {
        self.inner.next_arrival()
    }
}

/// A push source fed by a line-delimited HTTP/1.1 response body.
///
/// Speaks the minimal client side: one `GET` with `Connection: close`,
/// accepts identity (read-until-close) and `chunked` transfer encodings,
/// and streams the body's lines through the same parser machinery as
/// [`TcpPushSource`].
pub struct HttpPushSource {
    inner: PushSource,
    reader: Option<JoinHandle<()>>,
}

impl HttpPushSource {
    /// `GET http://{host_port}{path}` and stream the response body.
    pub fn get<A: ToSocketAddrs>(
        addr: A,
        host: &str,
        path: &str,
        parse: impl Fn(&str) -> Option<Token> + Send + 'static,
    ) -> Result<Self> {
        use std::io::Write;
        let mut stream = TcpStream::connect(addr).map_err(|e| Error::Actor {
            actor: "HttpPushSource".into(),
            stage: "initialize",
            message: format!("connect failed: {e}"),
        })?;
        let request = format!(
            "GET {path} HTTP/1.1\r\nHost: {host}\r\nAccept: */*\r\nConnection: close\r\n\r\n"
        );
        stream.write_all(request.as_bytes()).map_err(|e| Error::Actor {
            actor: "HttpPushSource".into(),
            stage: "initialize",
            message: format!("request failed: {e}"),
        })?;
        let (inner, handle) = PushSource::new();
        let reader = std::thread::Builder::new()
            .name("cwf-http-reader".into())
            .spawn(move || {
                let _ = http_pump(stream, handle, parse);
            })
            .expect("spawn http reader thread");
        Ok(HttpPushSource {
            inner,
            reader: Some(reader),
        })
    }
}

/// Read the response head; stream body lines (identity or chunked).
fn http_pump(
    stream: TcpStream,
    handle: PushHandle,
    parse: impl Fn(&str) -> Option<Token>,
) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    // Status line.
    reader.read_line(&mut line)?;
    let ok = line.split_whitespace().nth(1).map(|code| code.starts_with('2'));
    if ok != Some(true) {
        return Ok(()); // non-2xx: end of stream (handle drops)
    }
    // Headers.
    let mut chunked = false;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let trimmed = line.trim();
        if trimmed.is_empty() {
            break;
        }
        if let Some((name, value)) = trimmed.split_once(':') {
            if name.eq_ignore_ascii_case("transfer-encoding")
                && value.trim().eq_ignore_ascii_case("chunked")
            {
                chunked = true;
            }
        }
    }
    let push_lines = |text: &str| -> bool {
        for l in text.split('\n') {
            let l = l.trim_end_matches('\r');
            if l.is_empty() {
                continue;
            }
            if let Some(token) = parse(l) {
                if !handle.push(token) {
                    return false;
                }
            }
        }
        true
    };
    if !chunked {
        // Identity body: stream lines until close.
        loop {
            line.clear();
            if reader.read_line(&mut line)? == 0 {
                return Ok(());
            }
            if !push_lines(&line) {
                return Ok(());
            }
        }
    }
    // Chunked body: size line (hex), then that many bytes, then CRLF.
    use std::io::Read;
    let mut carry = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            break;
        }
        let size_str = line.trim().split(';').next().unwrap_or("").trim();
        let size = usize::from_str_radix(size_str, 16).unwrap_or(0);
        if size == 0 {
            break; // terminal chunk
        }
        let mut buf = vec![0u8; size];
        reader.read_exact(&mut buf)?;
        let mut crlf = [0u8; 2];
        let _ = reader.read_exact(&mut crlf);
        carry.push_str(&String::from_utf8_lossy(&buf));
        // Emit complete lines; keep the trailing partial in `carry`.
        while let Some(idx) = carry.find('\n') {
            let complete: String = carry.drain(..=idx).collect();
            if !push_lines(&complete) {
                return Ok(());
            }
        }
    }
    if !carry.is_empty() {
        push_lines(&carry);
    }
    Ok(())
}

impl Actor for HttpPushSource {
    fn signature(&self) -> IoSignature {
        IoSignature::source("out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        self.inner.fire(ctx)
    }

    fn postfire(&mut self, ctx: &mut dyn FireContext) -> Result<bool> {
        self.inner.postfire(ctx)
    }

    fn wrapup(&mut self) -> Result<()> {
        if let Some(reader) = self.reader.take() {
            let _ = reader.join();
        }
        Ok(())
    }

    fn is_source(&self) -> bool {
        true
    }

    fn next_arrival(&self) -> Option<Timestamp> {
        self.inner.next_arrival()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actors::Collector;
    use crate::director::threaded::ThreadedDirector;
    use crate::director::Director;
    use crate::graph::WorkflowBuilder;
    use std::io::Write;
    use std::net::TcpListener;

    #[test]
    fn csv_parser_builds_records() {
        let parse = TcpPushSource::csv_ints(&["a", "b"]);
        let t = parse("3, 4").unwrap();
        assert_eq!(t.int_field("a").unwrap(), 3);
        assert_eq!(t.int_field("b").unwrap(), 4);
        assert!(parse("3").is_none());
        assert!(parse("x,y").is_none());
    }

    #[test]
    fn lines_parser_wraps_strings() {
        let parse = TcpPushSource::lines();
        assert_eq!(parse("hello"), Some(Token::str("hello")));
    }

    #[test]
    fn tcp_stream_flows_into_workflow() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        // Producer: accept one connection, write the feed, close.
        let producer = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            for i in 0..5 {
                writeln!(conn, "{i},{}", i * 10).unwrap();
            }
            // drop closes the connection → end of stream
        });

        let src = TcpPushSource::connect(addr, TcpPushSource::csv_ints(&["id", "v"])).unwrap();
        let out = Collector::new();
        let mut b = WorkflowBuilder::new("tcp");
        let s = b.add_actor("feed", src);
        let k = b.add_actor("sink", out.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        ThreadedDirector::new().run(&mut wf).unwrap();
        producer.join().unwrap();
        assert_eq!(out.len(), 5);
        assert_eq!(out.tokens()[4].int_field("v").unwrap(), 40);
    }

    fn run_http_workflow(source: HttpPushSource) -> Collector {
        let out = Collector::new();
        let mut b = WorkflowBuilder::new("http");
        let s = b.add_actor("feed", source);
        let k = b.add_actor("sink", out.actor());
        b.connect(s, "out", k, "in").unwrap();
        let mut wf = b.build().unwrap();
        ThreadedDirector::new().run(&mut wf).unwrap();
        out
    }

    #[test]
    fn http_identity_body_streams_lines() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            // Read the request head (until blank line).
            let mut r = std::io::BufReader::new(conn.try_clone().unwrap());
            let mut line = String::new();
            loop {
                line.clear();
                std::io::BufRead::read_line(&mut r, &mut line).unwrap();
                if line.trim().is_empty() {
                    break;
                }
            }
            write!(conn, "HTTP/1.1 200 OK\r\nContent-Type: text/plain\r\n\r\n").unwrap();
            for i in 0..4 {
                writeln!(conn, "event-{i}").unwrap();
            }
        });
        let src = HttpPushSource::get(addr, "localhost", "/stream", TcpPushSource::lines()).unwrap();
        let out = run_http_workflow(src);
        server.join().unwrap();
        assert_eq!(out.len(), 4);
        assert_eq!(out.tokens()[0], Token::str("event-0"));
    }

    #[test]
    fn http_chunked_body_streams_lines() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let mut r = std::io::BufReader::new(conn.try_clone().unwrap());
            let mut line = String::new();
            loop {
                line.clear();
                std::io::BufRead::read_line(&mut r, &mut line).unwrap();
                if line.trim().is_empty() {
                    break;
                }
            }
            write!(
                conn,
                "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
            )
            .unwrap();
            // Two chunks splitting a line across the boundary.
            let body = "alpha\nbe";
            write!(conn, "{:x}\r\n{}\r\n", body.len(), body).unwrap();
            let body2 = "ta\ngamma\n";
            write!(conn, "{:x}\r\n{}\r\n", body2.len(), body2).unwrap();
            write!(conn, "0\r\n\r\n").unwrap();
        });
        let src = HttpPushSource::get(addr, "localhost", "/s", TcpPushSource::lines()).unwrap();
        let out = run_http_workflow(src);
        server.join().unwrap();
        assert_eq!(
            out.tokens(),
            vec![Token::str("alpha"), Token::str("beta"), Token::str("gamma")]
        );
    }

    #[test]
    fn http_error_status_yields_empty_stream() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            write!(conn, "HTTP/1.1 404 Not Found\r\n\r\n").unwrap();
        });
        let src = HttpPushSource::get(addr, "localhost", "/nope", TcpPushSource::lines()).unwrap();
        let out = run_http_workflow(src);
        server.join().unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn connect_failure_is_an_error() {
        // A port that nothing listens on (bind then drop to reserve-and-free).
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        assert!(TcpPushSource::connect(addr, TcpPushSource::lines()).is_err());
        assert!(HttpPushSource::get(addr, "h", "/", TcpPushSource::lines()).is_err());
    }
}
