//! Stream operators: keyed join, deduplication, throttling.
//!
//! These are the multi-stream building blocks monitoring workflows lean
//! on beyond plain map/filter: correlating two update streams on a key,
//! suppressing duplicates, and bounding downstream rates.

use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

use crate::actor::{Actor, FireContext, IoSignature};
use crate::error::Result;
use crate::time::{Micros, Timestamp};
use crate::token::{Record, Token};

/// Symmetric keyed stream join: events from `left` and `right` are matched
/// on a projected key; each match emits `{left: .., right: ..}`. Each
/// side buffers its most recent `retain` events per key (a bounded
/// symmetric hash join).
pub struct HashJoin {
    key_fields: Vec<String>,
    retain: usize,
    left: HashMap<Token, VecDeque<Token>>,
    right: HashMap<Token, VecDeque<Token>>,
}

impl HashJoin {
    /// Join on the given record fields, keeping `retain` events per key
    /// per side.
    pub fn new(key_fields: &[&str], retain: usize) -> Self {
        HashJoin {
            key_fields: key_fields.iter().map(|s| s.to_string()).collect(),
            retain: retain.max(1),
            left: HashMap::new(),
            right: HashMap::new(),
        }
    }

    fn merged(left: &Token, right: &Token) -> Token {
        Token::Record(Arc::new(Record::new(vec![
            (Arc::from("left"), left.clone()),
            (Arc::from("right"), right.clone()),
        ])))
    }
}

impl Actor for HashJoin {
    fn signature(&self) -> IoSignature {
        IoSignature::new(&["left", "right"], &["out"])
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some((port, w)) = ctx.get_any() {
            for t in w.tokens() {
                let key = t.project(&self.key_fields)?;
                let (own, other, left_side) = if port == 0 {
                    (&mut self.left, &self.right, true)
                } else {
                    (&mut self.right, &self.left, false)
                };
                if let Some(matches) = other.get(&key) {
                    for m in matches {
                        let out = if left_side {
                            Self::merged(t, m)
                        } else {
                            Self::merged(m, t)
                        };
                        ctx.emit(0, out);
                    }
                }
                let buf = own.entry(key).or_default();
                buf.push_back(t.clone());
                while buf.len() > self.retain {
                    buf.pop_front();
                }
            }
        }
        Ok(())
    }
}

/// Passes only the first event per key (bounded memory: evicts the oldest
/// remembered keys beyond `capacity`).
pub struct Dedup {
    key_fields: Vec<String>,
    capacity: usize,
    seen: HashSet<Token>,
    order: VecDeque<Token>,
}

impl Dedup {
    /// Deduplicate on the given record fields, remembering up to
    /// `capacity` keys.
    pub fn new(key_fields: &[&str], capacity: usize) -> Self {
        Dedup {
            key_fields: key_fields.iter().map(|s| s.to_string()).collect(),
            capacity: capacity.max(1),
            seen: HashSet::new(),
            order: VecDeque::new(),
        }
    }
}

impl Actor for Dedup {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for t in w.tokens() {
                let key = t.project(&self.key_fields)?;
                if self.seen.insert(key.clone()) {
                    self.order.push_back(key);
                    if self.order.len() > self.capacity {
                        let evicted = self.order.pop_front().expect("non-empty");
                        self.seen.remove(&evicted);
                    }
                    ctx.emit(0, t.clone());
                }
            }
        }
        Ok(())
    }
}

/// Rate limiter: passes at most `max_events` per `per` of stream time
/// (measured on the events' wave-origin timestamps, so behaviour is
/// deterministic under any scheduler); excess events are dropped.
pub struct Throttle {
    max_events: u64,
    per: Micros,
    window_start: Timestamp,
    passed_in_window: u64,
    /// Total dropped (for diagnostics; readable after `wrapup`).
    pub dropped: u64,
}

impl Throttle {
    /// Allow `max_events` per `per`.
    pub fn new(max_events: u64, per: Micros) -> Self {
        Throttle {
            max_events: max_events.max(1),
            per: Micros(per.as_micros().max(1)),
            window_start: Timestamp::ZERO,
            passed_in_window: 0,
            dropped: 0,
        }
    }
}

impl Actor for Throttle {
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for event in &w.events {
                let at = event.origin();
                if at.since(self.window_start) >= self.per {
                    // Align the new window to the event's own bucket.
                    let bucket = at.as_micros() / self.per.as_micros();
                    self.window_start = Timestamp(bucket * self.per.as_micros());
                    self.passed_in_window = 0;
                }
                if self.passed_in_window < self.max_events {
                    self.passed_in_window += 1;
                    ctx.emit(0, event.token.clone());
                } else {
                    self.dropped += 1;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::MockContext;

    fn rec(id: i64, v: &str) -> Token {
        Token::record().field("id", id).field("v", v).build()
    }

    #[test]
    fn join_matches_across_sides() {
        let mut j = HashJoin::new(&["id"], 4);
        let mut ctx = MockContext::new(2);
        ctx.push_token(0, rec(1, "L1"), Timestamp(1));
        ctx.push_token(1, rec(2, "R2"), Timestamp(2));
        ctx.push_token(1, rec(1, "R1"), Timestamp(3));
        ctx.push_token(0, rec(2, "L2"), Timestamp(4));
        j.fire(&mut ctx).unwrap();
        let out = ctx.emitted_on(0);
        assert_eq!(out.len(), 2);
        // MockContext drains port 0 first: L1, L2 buffer, then R2 meets
        // L2 and R1 meets L1.
        assert_eq!(out[0].get("left").unwrap().get("v").unwrap().as_str().unwrap(), "L2");
        assert_eq!(out[0].get("right").unwrap().get("v").unwrap().as_str().unwrap(), "R2");
        assert_eq!(out[1].get("left").unwrap().get("v").unwrap().as_str().unwrap(), "L1");
        assert_eq!(out[1].get("right").unwrap().get("v").unwrap().as_str().unwrap(), "R1");
    }

    #[test]
    fn join_retention_bounds_matches() {
        let mut j = HashJoin::new(&["id"], 2);
        let mut ctx = MockContext::new(2);
        for i in 0..5 {
            ctx.push_token(0, rec(1, &format!("L{i}")), Timestamp(i));
        }
        ctx.push_token(1, rec(1, "R"), Timestamp(9));
        j.fire(&mut ctx).unwrap();
        // Only the last 2 left events are retained.
        assert_eq!(ctx.emitted_on(0).len(), 2);
    }

    #[test]
    fn join_no_match_no_output() {
        let mut j = HashJoin::new(&["id"], 4);
        let mut ctx = MockContext::new(2);
        ctx.push_token(0, rec(1, "L"), Timestamp(1));
        ctx.push_token(1, rec(2, "R"), Timestamp(2));
        j.fire(&mut ctx).unwrap();
        assert!(ctx.emitted_on(0).is_empty());
    }

    #[test]
    fn dedup_passes_first_per_key() {
        let mut d = Dedup::new(&["id"], 100);
        let mut ctx = MockContext::new(1);
        for (id, v) in [(1, "a"), (2, "b"), (1, "c"), (2, "d"), (3, "e")] {
            ctx.push_token(0, rec(id, v), Timestamp(1));
        }
        d.fire(&mut ctx).unwrap();
        let out = ctx.emitted_on(0);
        assert_eq!(out.len(), 3);
        assert_eq!(out[0].get("v").unwrap().as_str().unwrap(), "a");
        assert_eq!(out[2].get("v").unwrap().as_str().unwrap(), "e");
    }

    #[test]
    fn dedup_capacity_evicts_oldest() {
        let mut d = Dedup::new(&["id"], 2);
        let mut ctx = MockContext::new(1);
        for id in [1, 2, 3, 1] {
            ctx.push_token(0, rec(id, "x"), Timestamp(1));
        }
        d.fire(&mut ctx).unwrap();
        // Key 1 was evicted when 3 arrived, so the second 1 passes again.
        assert_eq!(ctx.emitted_on(0).len(), 4);
    }

    #[test]
    fn throttle_caps_rate_per_window() {
        let mut th = Throttle::new(2, Micros(100));
        let mut ctx = MockContext::new(1);
        // 4 events in window [0,100), 1 in [100,200).
        for ts in [10, 20, 30, 40, 150] {
            ctx.push_token(0, Token::Int(ts as i64), Timestamp(ts));
        }
        th.fire(&mut ctx).unwrap();
        let out = ctx.emitted_on(0);
        assert_eq!(out.len(), 3, "2 from the first window + 1 from the second");
        assert_eq!(th.dropped, 2);
        assert_eq!(out[2], Token::Int(150));
    }
}
