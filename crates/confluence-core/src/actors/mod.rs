//! The standard actor library.
//!
//! Sources ([`VecSource`], [`TimedSource`], [`GeneratorSource`],
//! [`PushSource`], [`net::TcpPushSource`]), stream transforms ([`Map`],
//! [`Filter`], [`FnActor`], [`Router`], [`Union`], [`HashJoin`],
//! [`Dedup`], [`Throttle`]), and sinks ([`Collector`], [`LatencyProbe`]).
//! These are the building blocks workflow designers wire together; the
//! Linear Road workflow in `confluence-linearroad` is composed of them plus
//! domain-specific actors.

pub mod net;
mod stream_ops;

pub use net::{HttpPushSource, TcpPushSource};
pub use stream_ops::{Dedup, HashJoin, Throttle};

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::actor::{Actor, FireContext, IoSignature};
use crate::error::{Error, Result};
use crate::event::CwEvent;
use crate::time::{Micros, Timestamp};
use crate::token::Token;
use crate::window::Window;

// ---------------------------------------------------------------------------
// Sources
// ---------------------------------------------------------------------------

/// A source that emits a fixed sequence of tokens, one per firing.
pub struct VecSource {
    items: VecDeque<Token>,
}

impl VecSource {
    /// Source over the given tokens.
    pub fn new(items: Vec<Token>) -> Self {
        VecSource {
            items: items.into(),
        }
    }
}

impl Actor for VecSource {
    fn signature(&self) -> IoSignature {
        IoSignature::source("out")
    }

    fn prefire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.items.is_empty())
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        if let Some(t) = self.items.pop_front() {
            ctx.emit(0, t);
        }
        Ok(())
    }

    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.items.is_empty())
    }

    fn is_source(&self) -> bool {
        true
    }

    fn next_arrival(&self) -> Option<Timestamp> {
        // A VecSource is "always ready": it asks to fire immediately.
        if self.items.is_empty() {
            None
        } else {
            Some(Timestamp::ZERO)
        }
    }
}

/// A source driven by a timetable: each token carries the time at which it
/// enters the workflow. This is how external data streams (e.g. the Linear
/// Road position-report feed) are injected in virtual-time runs.
pub struct TimedSource {
    /// Remaining `(arrival, token)` pairs, ascending by arrival.
    schedule: VecDeque<(Timestamp, Token)>,
}

impl TimedSource {
    /// Source over an arrival schedule. The schedule is sorted by arrival
    /// time defensively.
    pub fn new(mut schedule: Vec<(Timestamp, Token)>) -> Self {
        schedule.sort_by_key(|(t, _)| *t);
        TimedSource {
            schedule: schedule.into(),
        }
    }

    /// How many events remain unreleased.
    pub fn remaining(&self) -> usize {
        self.schedule.len()
    }
}

impl Actor for TimedSource {
    fn signature(&self) -> IoSignature {
        IoSignature::source("out")
    }

    fn prefire(&mut self, ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(self
            .schedule
            .front()
            .is_some_and(|(t, _)| *t <= ctx.now()))
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        // Release every event whose arrival time has passed.
        while self
            .schedule
            .front()
            .is_some_and(|(t, _)| *t <= ctx.now())
        {
            let (_, token) = self.schedule.pop_front().expect("checked front");
            ctx.emit(0, token);
        }
        Ok(())
    }

    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.schedule.is_empty())
    }

    fn is_source(&self) -> bool {
        true
    }

    fn next_arrival(&self) -> Option<Timestamp> {
        self.schedule.front().map(|(t, _)| *t)
    }
}

/// A source driven by a closure: fired repeatedly until it returns `None`.
pub struct GeneratorSource<F> {
    gen: F,
    iteration: u64,
    done: bool,
}

impl<F> GeneratorSource<F>
where
    F: FnMut(u64) -> Option<Token> + Send,
{
    /// Source calling `gen(iteration)` once per firing.
    pub fn new(gen: F) -> Self {
        GeneratorSource {
            gen,
            iteration: 0,
            done: false,
        }
    }
}

impl<F> Actor for GeneratorSource<F>
where
    F: FnMut(u64) -> Option<Token> + Send,
{
    fn signature(&self) -> IoSignature {
        IoSignature::source("out")
    }

    fn prefire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.done)
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        match (self.gen)(self.iteration) {
            Some(t) => {
                self.iteration += 1;
                ctx.emit(0, t);
            }
            None => self.done = true,
        }
        Ok(())
    }

    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.done)
    }

    fn is_source(&self) -> bool {
        true
    }

    fn next_arrival(&self) -> Option<Timestamp> {
        if self.done {
            None
        } else {
            Some(Timestamp::ZERO)
        }
    }
}

/// Producer handle for a [`PushSource`].
///
/// Clones share the same channel; dropping every handle ends the stream.
#[derive(Clone)]
pub struct PushHandle {
    tx: crossbeam::channel::Sender<Token>,
}

impl PushHandle {
    /// Push a token into the workflow. Returns `false` if the source is
    /// gone.
    pub fn push(&self, token: Token) -> bool {
        self.tx.send(token).is_ok()
    }
}

/// A push-communication source: external producers (a TCP/HTTP feed in the
/// paper; any thread here) push tokens through a [`PushHandle`] and the
/// source pumps them into the workflow at the rate dictated by the
/// director's execution model.
pub struct PushSource {
    rx: crossbeam::channel::Receiver<Token>,
    disconnected: bool,
}

impl PushSource {
    /// Create the source and its producer handle.
    pub fn new() -> (Self, PushHandle) {
        let (tx, rx) = crossbeam::channel::unbounded();
        (
            PushSource {
                rx,
                disconnected: false,
            },
            PushHandle { tx },
        )
    }
}

impl Actor for PushSource {
    fn signature(&self) -> IoSignature {
        IoSignature::source("out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        loop {
            match self.rx.try_recv() {
                Ok(t) => ctx.emit(0, t),
                Err(crossbeam::channel::TryRecvError::Empty) => break,
                Err(crossbeam::channel::TryRecvError::Disconnected) => {
                    self.disconnected = true;
                    break;
                }
            }
        }
        Ok(())
    }

    fn postfire(&mut self, _ctx: &mut dyn FireContext) -> Result<bool> {
        Ok(!self.disconnected)
    }

    fn is_source(&self) -> bool {
        true
    }

    fn next_arrival(&self) -> Option<Timestamp> {
        if self.disconnected {
            None
        } else {
            Some(Timestamp::ZERO)
        }
    }
}

// ---------------------------------------------------------------------------
// Transforms
// ---------------------------------------------------------------------------

/// Applies a function to every token of every input window; `Some` results
/// are emitted on the single output.
pub struct Map<F> {
    f: F,
}

impl<F> Map<F>
where
    F: FnMut(&Token) -> Result<Option<Token>> + Send,
{
    /// Map with a fallible, optionally-filtering function.
    pub fn new(f: F) -> Self {
        Map { f }
    }
}

impl<F> Actor for Map<F>
where
    F: FnMut(&Token) -> Result<Option<Token>> + Send,
{
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for t in w.tokens() {
                if let Some(out) = (self.f)(t)? {
                    ctx.emit(0, out);
                }
            }
        }
        Ok(())
    }
}

/// Passes through tokens satisfying a predicate.
pub struct Filter<F> {
    pred: F,
}

impl<F> Filter<F>
where
    F: FnMut(&Token) -> Result<bool> + Send,
{
    /// Filter with a fallible predicate.
    pub fn new(pred: F) -> Self {
        Filter { pred }
    }
}

impl<F> Actor for Filter<F>
where
    F: FnMut(&Token) -> Result<bool> + Send,
{
    fn signature(&self) -> IoSignature {
        IoSignature::transform("in", "out")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for t in w.tokens() {
                if (self.pred)(t)? {
                    ctx.emit(0, t.clone());
                }
            }
        }
        Ok(())
    }
}

/// The general window-processing actor: full control over windows in and
/// emissions out. Most domain actors (the Linear Road operators) are
/// `FnActor`s.
pub struct FnActor<F> {
    signature: IoSignature,
    f: F,
}

impl<F> FnActor<F>
where
    F: FnMut(&Window, &mut dyn FnMut(usize, Token)) -> Result<()> + Send,
{
    /// A windowed actor with the given ports; `f` is called once per ready
    /// input window (from any port) with an emission callback.
    pub fn new(signature: IoSignature, f: F) -> Self {
        FnActor { signature, f }
    }
}

impl<F> Actor for FnActor<F>
where
    F: FnMut(&Window, &mut dyn FnMut(usize, Token)) -> Result<()> + Send,
{
    fn signature(&self) -> IoSignature {
        self.signature.clone()
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some((_port, w)) = ctx.get_any() {
            let mut outs: Vec<(usize, Token)> = Vec::new();
            (self.f)(&w, &mut |port, token| outs.push((port, token)))?;
            for (port, token) in outs {
                ctx.emit(port, token);
            }
        }
        Ok(())
    }
}

/// Routes each token to the output port chosen by a classifier function
/// (`None` drops the token).
pub struct Router<F> {
    outputs: Vec<String>,
    route: F,
}

impl<F> Router<F>
where
    F: FnMut(&Token) -> Result<Option<usize>> + Send,
{
    /// Router with named output ports.
    pub fn new(outputs: &[&str], route: F) -> Self {
        Router {
            outputs: outputs.iter().map(|s| s.to_string()).collect(),
            route,
        }
    }
}

impl<F> Actor for Router<F>
where
    F: FnMut(&Token) -> Result<Option<usize>> + Send,
{
    fn signature(&self) -> IoSignature {
        IoSignature {
            inputs: vec!["in".to_string()],
            outputs: self.outputs.clone(),
        }
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        let n = self.outputs.len();
        while let Some(w) = ctx.get(0) {
            for t in w.tokens() {
                if let Some(port) = (self.route)(t)? {
                    if port >= n {
                        return Err(Error::UnknownPort(format!(
                            "router chose output {port} of {n}"
                        )));
                    }
                    ctx.emit(port, t.clone());
                }
            }
        }
        Ok(())
    }
}

/// Merges any number of input streams into one output, preserving per-port
/// arrival order.
pub struct Union {
    inputs: Vec<String>,
}

impl Union {
    /// A union over `n` input ports named `in0..in{n-1}`.
    pub fn new(n: usize) -> Self {
        Union {
            inputs: (0..n).map(|i| format!("in{i}")).collect(),
        }
    }
}

impl Actor for Union {
    fn signature(&self) -> IoSignature {
        IoSignature {
            inputs: self.inputs.clone(),
            outputs: vec!["out".to_string()],
        }
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some((_, w)) = ctx.get_any() {
            for t in w.tokens() {
                ctx.emit(0, t.clone());
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// A collected sink item: when it was received and the event itself.
#[derive(Debug, Clone)]
pub struct Collected {
    /// Director time at receipt.
    pub received_at: Timestamp,
    /// The received event.
    pub event: CwEvent,
}

/// Handle to a collecting sink's storage. Create with [`Collector::new`],
/// obtain the actor with [`Collector::actor`], inspect after the run.
#[derive(Clone, Default)]
pub struct Collector {
    items: Arc<Mutex<Vec<Collected>>>,
}

impl Collector {
    /// A fresh, empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The sink actor feeding this collector.
    pub fn actor(&self) -> CollectorActor {
        CollectorActor {
            items: self.items.clone(),
        }
    }

    /// Everything collected so far.
    pub fn items(&self) -> Vec<Collected> {
        self.items.lock().clone()
    }

    /// Collected payload tokens, in receipt order.
    pub fn tokens(&self) -> Vec<Token> {
        self.items
            .lock()
            .iter()
            .map(|c| c.event.token.clone())
            .collect()
    }

    /// Number of collected events.
    pub fn len(&self) -> usize {
        self.items.lock().len()
    }

    /// Whether nothing was collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The sink actor behind a [`Collector`] handle.
pub struct CollectorActor {
    items: Arc<Mutex<Vec<Collected>>>,
}

impl Actor for CollectorActor {
    fn signature(&self) -> IoSignature {
        IoSignature::sink("in")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        let now = ctx.now();
        while let Some(w) = ctx.get(0) {
            let mut items = self.items.lock();
            for event in &w.events {
                items.push(Collected {
                    received_at: now,
                    event: event.clone(),
                });
            }
        }
        Ok(())
    }
}

/// One response-time sample: when the result appeared and how long after
/// its wave's initiating external event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencySample {
    /// Director time at which the result was observed.
    pub at: Timestamp,
    /// Response time: observation time minus wave-origin timestamp.
    pub latency: Micros,
}

/// Handle to a latency-measuring sink (the paper measures response time at
/// the TollNotification output actor — this is that probe).
#[derive(Clone, Default)]
pub struct LatencyProbe {
    samples: Arc<Mutex<Vec<LatencySample>>>,
}

impl LatencyProbe {
    /// A fresh probe.
    pub fn new() -> Self {
        Self::default()
    }

    /// The sink actor feeding this probe.
    pub fn actor(&self) -> LatencyProbeActor {
        LatencyProbeActor {
            samples: self.samples.clone(),
        }
    }

    /// All samples so far.
    pub fn samples(&self) -> Vec<LatencySample> {
        self.samples.lock().clone()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.lock().len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mean response time over all samples, if any.
    pub fn mean_latency(&self) -> Option<Micros> {
        let samples = self.samples.lock();
        if samples.is_empty() {
            return None;
        }
        let total: u64 = samples.iter().map(|s| s.latency.as_micros()).sum();
        Some(Micros(total / samples.len() as u64))
    }
}

/// The sink actor behind a [`LatencyProbe`] handle.
pub struct LatencyProbeActor {
    samples: Arc<Mutex<Vec<LatencySample>>>,
}

impl Actor for LatencyProbeActor {
    fn signature(&self) -> IoSignature {
        IoSignature::sink("in")
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        let now = ctx.now();
        while let Some(w) = ctx.get(0) {
            let mut samples = self.samples.lock();
            for event in &w.events {
                samples.push(LatencySample {
                    at: now,
                    latency: event.latency_at(now),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testing::MockContext;

    #[test]
    fn vec_source_emits_then_finishes() {
        let mut s = VecSource::new(vec![Token::Int(1), Token::Int(2)]);
        assert!(s.is_source());
        let mut ctx = MockContext::new(0);
        assert!(s.prefire(&mut ctx).unwrap());
        s.fire(&mut ctx).unwrap();
        assert!(s.postfire(&mut ctx).unwrap());
        s.fire(&mut ctx).unwrap();
        assert!(!s.postfire(&mut ctx).unwrap());
        assert!(!s.prefire(&mut ctx).unwrap());
        assert_eq!(ctx.emitted_on(0), vec![Token::Int(1), Token::Int(2)]);
        assert_eq!(s.next_arrival(), None);
    }

    #[test]
    fn timed_source_releases_by_schedule() {
        let mut s = TimedSource::new(vec![
            (Timestamp(30), Token::Int(3)), // out of order on purpose
            (Timestamp(10), Token::Int(1)),
            (Timestamp(20), Token::Int(2)),
        ]);
        assert_eq!(s.next_arrival(), Some(Timestamp(10)));
        assert_eq!(s.remaining(), 3);
        let mut ctx = MockContext::new(0).at(Timestamp(5));
        assert!(!s.prefire(&mut ctx).unwrap(), "nothing due yet");
        ctx.set_now(Timestamp(20));
        assert!(s.prefire(&mut ctx).unwrap());
        s.fire(&mut ctx).unwrap();
        assert_eq!(ctx.emitted_on(0), vec![Token::Int(1), Token::Int(2)]);
        assert!(s.postfire(&mut ctx).unwrap());
        assert_eq!(s.next_arrival(), Some(Timestamp(30)));
        ctx.set_now(Timestamp(30));
        s.fire(&mut ctx).unwrap();
        assert!(!s.postfire(&mut ctx).unwrap());
    }

    #[test]
    fn generator_source_runs_until_none() {
        let mut s = GeneratorSource::new(|i| if i < 3 { Some(Token::Int(i as i64)) } else { None });
        let mut ctx = MockContext::new(0);
        for _ in 0..4 {
            s.fire(&mut ctx).unwrap();
        }
        assert!(!s.postfire(&mut ctx).unwrap());
        assert_eq!(ctx.emitted_on(0).len(), 3);
        assert_eq!(s.next_arrival(), None);
    }

    #[test]
    fn push_source_pumps_pushed_tokens() {
        let (mut s, handle) = PushSource::new();
        assert!(handle.push(Token::Int(1)));
        assert!(handle.push(Token::Int(2)));
        let mut ctx = MockContext::new(0);
        s.fire(&mut ctx).unwrap();
        assert_eq!(ctx.emitted_on(0).len(), 2);
        assert!(s.postfire(&mut ctx).unwrap());
        drop(handle);
        s.fire(&mut ctx).unwrap();
        assert!(!s.postfire(&mut ctx).unwrap(), "stream ends when handles drop");
    }

    #[test]
    fn map_transforms_and_filters() {
        let mut m = Map::new(|t: &Token| {
            let v = t.as_int()?;
            Ok(if v % 2 == 0 { Some(Token::Int(v * 10)) } else { None })
        });
        let mut ctx = MockContext::new(1);
        for v in 1..=4 {
            ctx.push_token(0, Token::Int(v), Timestamp(v as u64));
        }
        m.fire(&mut ctx).unwrap();
        assert_eq!(ctx.emitted_on(0), vec![Token::Int(20), Token::Int(40)]);
    }

    #[test]
    fn filter_passes_matching() {
        let mut f = Filter::new(|t: &Token| Ok(t.as_int()? > 2));
        let mut ctx = MockContext::new(1);
        for v in 1..=4 {
            ctx.push_token(0, Token::Int(v), Timestamp(v as u64));
        }
        f.fire(&mut ctx).unwrap();
        assert_eq!(ctx.emitted_on(0), vec![Token::Int(3), Token::Int(4)]);
    }

    #[test]
    fn fn_actor_sees_whole_windows() {
        let mut a = FnActor::new(IoSignature::transform("in", "out"), |w, emit| {
            emit(0, Token::Int(w.len() as i64));
            Ok(())
        });
        let mut ctx = MockContext::new(1);
        ctx.push_window(
            0,
            Window {
                group: Token::Unit,
                events: vec![
                    CwEvent::external(Token::Int(1), Timestamp(1)),
                    CwEvent::external(Token::Int(2), Timestamp(2)),
                ],
                formed_at: Timestamp(2),
                timed_out: false,
            },
        );
        a.fire(&mut ctx).unwrap();
        assert_eq!(ctx.emitted_on(0), vec![Token::Int(2)]);
    }

    #[test]
    fn router_dispatches_by_port() {
        let mut r = Router::new(&["even", "odd"], |t: &Token| {
            Ok(Some((t.as_int()? % 2) as usize))
        });
        assert_eq!(r.signature().outputs, vec!["even", "odd"]);
        let mut ctx = MockContext::new(1);
        for v in 1..=4 {
            ctx.push_token(0, Token::Int(v), Timestamp(v as u64));
        }
        r.fire(&mut ctx).unwrap();
        assert_eq!(ctx.emitted_on(0), vec![Token::Int(2), Token::Int(4)]);
        assert_eq!(ctx.emitted_on(1), vec![Token::Int(1), Token::Int(3)]);
    }

    #[test]
    fn router_rejects_out_of_range_port() {
        let mut r = Router::new(&["only"], |_t: &Token| Ok(Some(7)));
        let mut ctx = MockContext::new(1);
        ctx.push_token(0, Token::Int(1), Timestamp(1));
        assert!(r.fire(&mut ctx).is_err());
    }

    #[test]
    fn union_merges_ports() {
        let mut u = Union::new(2);
        assert_eq!(u.signature().inputs, vec!["in0", "in1"]);
        let mut ctx = MockContext::new(2);
        ctx.push_token(0, Token::Int(1), Timestamp(1));
        ctx.push_token(1, Token::Int(2), Timestamp(2));
        u.fire(&mut ctx).unwrap();
        assert_eq!(ctx.emitted_on(0).len(), 2);
    }

    #[test]
    fn collector_gathers_events() {
        let c = Collector::new();
        let mut actor = c.actor();
        let mut ctx = MockContext::new(1).at(Timestamp(99));
        ctx.push_token(0, Token::Int(5), Timestamp(1));
        actor.fire(&mut ctx).unwrap();
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
        assert_eq!(c.tokens(), vec![Token::Int(5)]);
        assert_eq!(c.items()[0].received_at, Timestamp(99));
    }

    #[test]
    fn latency_probe_measures_response_time() {
        let p = LatencyProbe::new();
        let mut actor = p.actor();
        let mut ctx = MockContext::new(1).at(Timestamp(1_500));
        ctx.push_token(0, Token::Int(1), Timestamp(1_000));
        actor.fire(&mut ctx).unwrap();
        let samples = p.samples();
        assert_eq!(samples.len(), 1);
        assert_eq!(samples[0].latency, Micros(500));
        assert_eq!(samples[0].at, Timestamp(1_500));
        assert_eq!(p.mean_latency(), Some(Micros(500)));
        assert!(!p.is_empty());
        assert_eq!(LatencyProbe::new().mean_latency(), None);
    }
}
