//! Keyed actor sharding: the generated splitter, replica wrapper, and
//! ordered merge actors behind [`WorkflowBuilder::shard`].
//!
//! Declaring `b.shard(actor, Shard::by_fields(&["xway", "seg"]).replicas(n))`
//! makes `build()` expand the actor into a small sub-graph (Floe's elastic
//! dataflow shape, re-parameterized at build time):
//!
//! ```text
//!            ┌─ A#0 ─┐
//! … ─ A#split┼─ A#1 ─┼ A#merge ─ …
//!            └─ A#2 ─┘
//! ```
//!
//! * [`ShardSplitter`] takes the sharded actor's place: it stamps every
//!   record with a global dispatch sequence number (`__shard_seq`) and
//!   hash-routes it by the shard key to one replica output.
//! * [`ShardReplica`] wraps one replica of the original actor: per input
//!   window it strips the sequence stamps, runs the inner actor's `fire`,
//!   forwards its productions, and emits an *ack* record
//!   `{seq, count}` on a second output — `seq` being the highest dispatch
//!   sequence in the window, `count` the number of productions.
//! * [`OrderedMerge`] pairs each replica's productions with its acks and
//!   releases firing groups in global dispatch-sequence order, gated by
//!   per-replica watermarks (a group at sequence `s` is released once every
//!   replica has acked beyond `s`, proving no earlier group can still
//!   arrive). Remaining groups drain, still in order, in
//!   [`Actor::finish`] before the merge's outputs close.
//!
//! The net effect is CONFLuEnCE wave semantics preserved across data
//! parallelism: downstream actors observe one stream whose firing groups
//! appear in the order the splitter dispatched their trigger events,
//! regardless of replica interleaving.
//!
//! [`WorkflowBuilder::shard`]: crate::graph::WorkflowBuilder::shard

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::actor::{Actor, FireContext, IoSignature};
use crate::error::{Error, Result};
use crate::time::Timestamp;
use crate::token::{Record, Token};
use crate::window::{GroupBy, Window};

/// Field name used to carry the splitter's dispatch sequence number on
/// records between the splitter and its replicas. Stripped before the
/// wrapped actor sees the record.
pub const SEQ_FIELD: &str = "__shard_seq";

/// Deterministic shard assignment for a key token.
pub fn shard_of(key: &Token, replicas: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() % replicas as u64) as usize
}

fn strip_seq(token: &Token) -> Token {
    match token.as_record() {
        Ok(rec) if rec.get(SEQ_FIELD).is_some() => {
            let fields = rec
                .iter()
                .filter(|(n, _)| *n != SEQ_FIELD)
                .map(|(n, v)| (Arc::from(n), v.clone()))
                .collect();
            Token::Record(Arc::new(Record::new(fields)))
        }
        _ => token.clone(),
    }
}

/// Highest dispatch sequence among a window's events (`-1` when none carry
/// one, e.g. a timeout-flushed empty window).
fn window_seq(window: &Window) -> i64 {
    window
        .events
        .iter()
        .filter_map(|e| e.token.get(SEQ_FIELD).ok().and_then(|t| t.as_int().ok()))
        .max()
        .unwrap_or(-1)
}

fn ack_token(seq: i64, count: usize) -> Token {
    Token::record()
        .field("seq", seq)
        .field("count", count as i64)
        .build()
}

/// Key-hash fan-out stage generated for a sharded actor. Occupies the
/// original actor's node slot so upstream channels stay untouched.
pub struct ShardSplitter {
    key: GroupBy,
    replicas: usize,
    in_name: String,
    seq: i64,
}

impl ShardSplitter {
    /// A splitter routing `in_name` events to `replicas` outputs by `key`.
    pub fn new(key: GroupBy, replicas: usize, in_name: impl Into<String>) -> Self {
        ShardSplitter {
            key,
            replicas,
            in_name: in_name.into(),
            seq: 0,
        }
    }
}

impl Actor for ShardSplitter {
    fn signature(&self) -> IoSignature {
        let outputs: Vec<String> = (0..self.replicas).map(|r| format!("s{r}")).collect();
        IoSignature {
            inputs: vec![self.in_name.clone()],
            outputs,
        }
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            for token in w.tokens() {
                let key = self.key.key_of(token)?;
                let shard = shard_of(&key, self.replicas);
                let rec = token.as_record().map_err(|_| {
                    Error::Graph(format!(
                        "sharded streams carry records, got {}",
                        token.type_name()
                    ))
                })?;
                let stamped = Token::Record(Arc::new(rec.with(SEQ_FIELD, Token::Int(self.seq))));
                self.seq += 1;
                ctx.emit(shard, stamped);
            }
        }
        Ok(())
    }
}

/// Single-window [`FireContext`] shim handed to the wrapped actor: serves
/// one pre-delivered window and buffers the inner actor's emissions.
struct ShimCtx {
    now: Timestamp,
    window: Option<Window>,
    emissions: Vec<Token>,
}

impl ShimCtx {
    fn new(now: Timestamp, window: Option<Window>) -> Self {
        ShimCtx {
            now,
            window,
            emissions: Vec::new(),
        }
    }
}

impl FireContext for ShimCtx {
    fn now(&self) -> Timestamp {
        self.now
    }
    fn get(&mut self, port: usize) -> Option<Window> {
        if port == 0 {
            self.window.take()
        } else {
            None
        }
    }
    fn get_any(&mut self) -> Option<(usize, Window)> {
        self.window.take().map(|w| (0, w))
    }
    fn emit(&mut self, _port: usize, token: Token) {
        self.emissions.push(token);
    }
}

/// One replica of a sharded actor. Runs the inner actor one window at a
/// time and acks each firing on a second output so the downstream
/// [`OrderedMerge`] can restore dispatch order.
pub struct ShardReplica {
    inner: Box<dyn Actor>,
}

impl ShardReplica {
    /// Wrap one replica of the sharded actor.
    pub fn new(inner: Box<dyn Actor>) -> Self {
        ShardReplica { inner }
    }

    /// Forward buffered inner emissions, acking when asked.
    fn flush(ctx: &mut dyn FireContext, shim: ShimCtx, ack: Option<i64>) {
        let count = shim.emissions.len();
        for token in shim.emissions {
            ctx.emit(0, token);
        }
        match ack {
            Some(seq) => ctx.emit(1, ack_token(seq, count)),
            None if count > 0 => ctx.emit(1, ack_token(-1, count)),
            None => {}
        }
    }
}

impl Actor for ShardReplica {
    fn signature(&self) -> IoSignature {
        let inner = self.inner.signature();
        IoSignature {
            inputs: inner.inputs,
            outputs: vec!["out".into(), "ack".into()],
        }
    }

    fn initialize(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        let mut shim = ShimCtx::new(ctx.now(), None);
        self.inner.initialize(&mut shim)?;
        Self::flush(ctx, shim, None);
        Ok(())
    }

    fn prefire(&mut self, ctx: &mut dyn FireContext) -> Result<bool> {
        let mut shim = ShimCtx::new(ctx.now(), None);
        self.inner.prefire(&mut shim)
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some(w) = ctx.get(0) {
            let seq = window_seq(&w);
            let stripped = Window {
                group: w.group.clone(),
                events: w
                    .events
                    .iter()
                    .map(|e| {
                        let mut e = e.clone();
                        e.token = strip_seq(&e.token);
                        e
                    })
                    .collect(),
                formed_at: w.formed_at,
                timed_out: w.timed_out,
            };
            let mut shim = ShimCtx::new(ctx.now(), Some(stripped));
            self.inner.fire(&mut shim)?;
            Self::flush(ctx, shim, Some(seq));
        }
        Ok(())
    }

    fn postfire(&mut self, ctx: &mut dyn FireContext) -> Result<bool> {
        let mut shim = ShimCtx::new(ctx.now(), None);
        self.inner.postfire(&mut shim)
    }

    fn finish(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        let mut shim = ShimCtx::new(ctx.now(), None);
        self.inner.finish(&mut shim)?;
        Self::flush(ctx, shim, None);
        Ok(())
    }

    fn wrapup(&mut self) -> Result<()> {
        self.inner.wrapup()
    }

    fn replicate(&self) -> Option<Box<dyn Actor>> {
        self.inner
            .replicate()
            .map(|inner| Box::new(ShardReplica::new(inner)) as Box<dyn Actor>)
    }
}

/// Ordered merge stage generated for a sharded actor: restores global
/// dispatch-sequence order across replica outputs.
///
/// Inputs `in0..in{n-1}` carry replica productions, `ack0..ack{n-1}` the
/// matching firing acks. Firing groups with a known sequence are buffered
/// and released in sequence order once every replica's watermark has passed
/// them; groups without a sequence (timeout flushes, `finish` productions)
/// pass through immediately.
pub struct OrderedMerge {
    replicas: usize,
    /// Per replica: productions not yet claimed by an ack, in arrival order.
    bufs: Vec<VecDeque<Token>>,
    /// Per replica: acks not yet paired with `count` productions.
    acks: Vec<VecDeque<(i64, usize)>>,
    /// Per replica: highest acked dispatch sequence.
    watermark: Vec<i64>,
    /// Assembled groups awaiting ordered release, keyed by sequence.
    ready: BTreeMap<i64, Vec<Token>>,
    /// Highest sequence released so far.
    released: i64,
}

impl OrderedMerge {
    /// A merge over `replicas` replica streams.
    pub fn new(replicas: usize) -> Self {
        OrderedMerge {
            replicas,
            bufs: (0..replicas).map(|_| VecDeque::new()).collect(),
            acks: (0..replicas).map(|_| VecDeque::new()).collect(),
            watermark: vec![-1; replicas],
            ready: BTreeMap::new(),
            released: -1,
        }
    }

    /// Pair buffered productions with acks into release groups.
    fn assemble(&mut self, ctx: &mut dyn FireContext) {
        for r in 0..self.replicas {
            while let Some(&(seq, count)) = self.acks[r].front() {
                if self.bufs[r].len() < count {
                    break;
                }
                self.acks[r].pop_front();
                let group: Vec<Token> = self.bufs[r].drain(..count).collect();
                if seq >= 0 {
                    self.watermark[r] = self.watermark[r].max(seq);
                }
                if seq < 0 || seq <= self.released {
                    // No ordering handle (timeout flush / finish production)
                    // or a late group behind the release frontier: emit now.
                    for token in group {
                        ctx.emit(0, token);
                    }
                } else {
                    // Append, never overwrite: sliding windows can ack one
                    // sequence twice (a close-time flush window re-acks the
                    // highest sequence it still holds, usually with an
                    // empty production set).
                    self.ready.entry(seq).or_default().extend(group);
                }
            }
        }
    }

    /// Release every group proven safe by the replica watermarks.
    fn release(&mut self, ctx: &mut dyn FireContext) {
        let frontier = self.watermark.iter().copied().min().unwrap_or(-1);
        while let Some((&seq, _)) = self.ready.first_key_value() {
            if seq > frontier {
                break;
            }
            let group = self.ready.remove(&seq).expect("first key just observed");
            self.released = seq;
            for token in group {
                ctx.emit(0, token);
            }
        }
    }
}

impl Actor for OrderedMerge {
    fn signature(&self) -> IoSignature {
        let inputs: Vec<String> = (0..self.replicas)
            .map(|r| format!("in{r}"))
            .chain((0..self.replicas).map(|r| format!("ack{r}")))
            .collect();
        IoSignature {
            inputs,
            outputs: vec!["out".into()],
        }
    }

    fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        while let Some((port, w)) = ctx.get_any() {
            for token in w.tokens() {
                if port < self.replicas {
                    self.bufs[port].push_back(token.clone());
                } else {
                    let seq = token.int_field("seq")?;
                    let count = token.int_field("count")?.max(0) as usize;
                    self.acks[port - self.replicas].push_back((seq, count));
                }
            }
            self.assemble(ctx);
            self.release(ctx);
        }
        Ok(())
    }

    fn finish(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
        // All inputs have closed: everything assembled is safe to release in
        // sequence order, then any unpaired leftovers (an ack stream cut
        // short) drain in replica order so nothing is lost.
        self.assemble(ctx);
        for (_, group) in std::mem::take(&mut self.ready) {
            for token in group {
                ctx.emit(0, token);
            }
        }
        for r in 0..self.replicas {
            for token in self.bufs[r].drain(..) {
                ctx.emit(0, token);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actor::FireContext;
    use crate::event::CwEvent;

    /// Test harness context: pre-loaded windows, captured emissions.
    struct TestCtx {
        inbox: VecDeque<(usize, Window)>,
        out: Vec<(usize, Token)>,
    }

    impl TestCtx {
        fn new() -> Self {
            TestCtx {
                inbox: VecDeque::new(),
                out: Vec::new(),
            }
        }

        fn push(&mut self, port: usize, token: Token) {
            self.inbox.push_back((
                port,
                Window {
                    group: Token::Unit,
                    events: vec![CwEvent::external(token, Timestamp(0))],
                    formed_at: Timestamp(0),
                    timed_out: false,
                },
            ));
        }
    }

    impl FireContext for TestCtx {
        fn now(&self) -> Timestamp {
            Timestamp(0)
        }
        fn get(&mut self, port: usize) -> Option<Window> {
            let at = self.inbox.iter().position(|(p, _)| *p == port)?;
            self.inbox.remove(at).map(|(_, w)| w)
        }
        fn get_any(&mut self) -> Option<(usize, Window)> {
            self.inbox.pop_front()
        }
        fn emit(&mut self, port: usize, token: Token) {
            self.out.push((port, token));
        }
    }

    fn rec(id: i64) -> Token {
        Token::record().field("id", id).build()
    }

    #[test]
    fn splitter_stamps_and_routes_by_key() {
        let mut s = ShardSplitter::new(GroupBy::fields(&["id"]), 2, "in");
        let sig = s.signature();
        assert_eq!(sig.inputs, vec!["in"]);
        assert_eq!(sig.outputs, vec!["s0", "s1"]);
        let mut ctx = TestCtx::new();
        for i in 0..8 {
            ctx.push(0, rec(i));
        }
        s.fire(&mut ctx).unwrap();
        assert_eq!(ctx.out.len(), 8);
        // Sequence numbers are global and increasing across shards.
        let seqs: Vec<i64> = ctx
            .out
            .iter()
            .map(|(_, t)| t.int_field(SEQ_FIELD).unwrap())
            .collect();
        assert_eq!(seqs, (0..8).collect::<Vec<_>>());
        // Same key always lands on the same shard.
        let mut s2 = ShardSplitter::new(GroupBy::fields(&["id"]), 2, "in");
        let mut ctx2 = TestCtx::new();
        for i in 0..8 {
            ctx2.push(0, rec(i % 2));
        }
        s2.fire(&mut ctx2).unwrap();
        let ports: Vec<usize> = ctx2.out.iter().map(|(p, _)| *p).collect();
        for pair in ports.chunks(2) {
            assert_eq!(pair[0], ports[0]);
            assert_eq!(pair[1], ports[1]);
        }
        // Non-record payloads are rejected.
        let mut s3 = ShardSplitter::new(GroupBy::None, 2, "in");
        let mut ctx3 = TestCtx::new();
        ctx3.push(0, Token::Int(1));
        assert!(s3.fire(&mut ctx3).is_err());
    }

    /// Inner actor doubling an `id` field; counts lifecycle calls.
    struct DoubleId {
        finished: bool,
    }
    impl Actor for DoubleId {
        fn signature(&self) -> IoSignature {
            IoSignature::transform("in", "out")
        }
        fn fire(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
            while let Some(w) = ctx.get(0) {
                for t in w.tokens() {
                    assert!(
                        t.as_record().unwrap().get(SEQ_FIELD).is_none(),
                        "wrapper must strip the sequence stamp"
                    );
                    ctx.emit(0, rec(t.int_field("id")? * 2));
                }
            }
            Ok(())
        }
        fn finish(&mut self, ctx: &mut dyn FireContext) -> Result<()> {
            self.finished = true;
            ctx.emit(0, rec(-99));
            Ok(())
        }
        fn replicate(&self) -> Option<Box<dyn Actor>> {
            Some(Box::new(DoubleId { finished: false }))
        }
    }

    #[test]
    fn replica_wrapper_strips_fires_and_acks() {
        let mut r = ShardReplica::new(Box::new(DoubleId { finished: false }));
        let sig = r.signature();
        assert_eq!(sig.inputs, vec!["in"]);
        assert_eq!(sig.outputs, vec!["out", "ack"]);
        assert!(r.replicate().is_some());
        let mut ctx = TestCtx::new();
        let stamped = Token::Record(Arc::new(
            rec(21).as_record().unwrap().with(SEQ_FIELD, Token::Int(7)),
        ));
        ctx.push(0, stamped);
        r.initialize(&mut ctx).unwrap();
        assert!(r.prefire(&mut ctx).unwrap());
        r.fire(&mut ctx).unwrap();
        assert!(r.postfire(&mut ctx).unwrap());
        assert_eq!(ctx.out.len(), 2, "one production plus one ack");
        assert_eq!(ctx.out[0].0, 0);
        assert_eq!(ctx.out[0].1.int_field("id").unwrap(), 42);
        assert_eq!(ctx.out[1].0, 1);
        assert_eq!(ctx.out[1].1.int_field("seq").unwrap(), 7);
        assert_eq!(ctx.out[1].1.int_field("count").unwrap(), 1);
        // finish forwards the inner finish production with a seq-less ack.
        ctx.out.clear();
        r.finish(&mut ctx).unwrap();
        assert_eq!(ctx.out[0], (0, rec(-99)));
        assert_eq!(ctx.out[1].1.int_field("seq").unwrap(), -1);
        r.wrapup().unwrap();
    }

    #[test]
    fn merge_restores_dispatch_order_under_adversarial_interleaving() {
        // Replica 1's groups (seqs 1, 3) arrive before replica 0's (0, 2):
        // the merge must hold them until replica 0 catches up.
        let mut m = OrderedMerge::new(2);
        assert_eq!(m.signature().inputs, vec!["in0", "in1", "ack0", "ack1"]);
        let mut ctx = TestCtx::new();
        ctx.push(1, rec(10));
        ctx.push(3, ack_token(1, 1)); // ack1
        ctx.push(1, rec(30));
        ctx.push(3, ack_token(3, 1));
        m.fire(&mut ctx).unwrap();
        assert!(ctx.out.is_empty(), "held until replica 0's watermark moves");
        ctx.push(0, rec(0));
        ctx.push(2, ack_token(0, 1)); // ack0
        ctx.push(0, rec(20));
        ctx.push(2, ack_token(2, 1));
        m.fire(&mut ctx).unwrap();
        let ids: Vec<i64> = ctx
            .out
            .iter()
            .map(|(_, t)| t.int_field("id").unwrap())
            .collect();
        // seq 3 stays buffered: replica 0's watermark (2) hasn't passed it.
        assert_eq!(ids, vec![0, 10, 20]);
        let mut fin = TestCtx::new();
        m.finish(&mut fin).unwrap();
        let ids: Vec<i64> = fin
            .out
            .iter()
            .map(|(_, t)| t.int_field("id").unwrap())
            .collect();
        assert_eq!(ids, vec![30]);
    }

    #[test]
    fn merge_keeps_held_productions_across_duplicate_acks() {
        // Sliding windows re-ack a sequence they already acked (the
        // close-time flush window still holds the event): the second,
        // empty ack must not clobber the held production group.
        let mut m = OrderedMerge::new(2);
        let mut ctx = TestCtx::new();
        ctx.push(0, rec(10));
        ctx.push(2, ack_token(1, 1));
        ctx.push(2, ack_token(1, 0));
        m.fire(&mut ctx).unwrap();
        assert!(ctx.out.is_empty(), "replica 1's watermark is still behind");
        let mut fin = TestCtx::new();
        m.finish(&mut fin).unwrap();
        let ids: Vec<i64> = fin
            .out
            .iter()
            .map(|(_, t)| t.int_field("id").unwrap())
            .collect();
        assert_eq!(ids, vec![10]);
    }

    #[test]
    fn merge_passes_seqless_groups_through_and_drains_leftovers() {
        let mut m = OrderedMerge::new(2);
        let mut ctx = TestCtx::new();
        // A timeout-flushed firing with no sequence handle passes through.
        ctx.push(0, rec(1));
        ctx.push(2, ack_token(-1, 1));
        m.fire(&mut ctx).unwrap();
        assert_eq!(ctx.out.len(), 1);
        // Unacked leftovers drain at finish.
        let mut ctx2 = TestCtx::new();
        ctx2.push(1, rec(5));
        m.fire(&mut ctx2).unwrap();
        assert!(ctx2.out.is_empty());
        let mut fin = TestCtx::new();
        m.finish(&mut fin).unwrap();
        assert_eq!(fin.out.len(), 1);
        assert_eq!(fin.out[0].1.int_field("id").unwrap(), 5);
    }
}
